/**
 * @file
 * Reproduces Figure 10: normalized energy of the reuse-enabled
 * accelerator relative to the baseline accelerator for each DNN
 * (paper: 63% average savings; C3D 77%, AutoPilot 76%).
 */

#include <iostream>

#include "common/table_writer.h"
#include "harness/headline.h"
#include "harness/paper_reference.h"

int
main()
{
    using namespace reuse;
    std::cout << "Figure 10 reproduction: normalized energy "
                 "(baseline accelerator = 1.0)\n";

    const auto entries = computeHeadline({});
    TableWriter t({"DNN", "Baseline (J)", "Reuse (J)",
                   "Normalized", "Savings", "Paper savings"});
    double mean_savings = 0.0;
    for (const auto &e : entries) {
        const double norm =
            e.reuseEnergy.total() / e.baselineEnergy.total();
        mean_savings += e.energySavings();
        t.addRow({e.name,
                  formatDouble(e.baselineEnergy.total() * 1e3, 3) +
                      " mJ",
                  formatDouble(e.reuseEnergy.total() * 1e3, 3) + " mJ",
                  formatDouble(norm, 3),
                  formatPercent(e.energySavings()),
                  formatPercent(
                      paperReferences().at(e.name).energySavings, 0)});
    }
    t.print(std::cout);
    mean_savings /= static_cast<double>(entries.size());
    std::cout << "Average energy savings: "
              << formatPercent(mean_savings) << " (paper: 63%)\n";

    // Energy-delay headline (paper: 9.5x improvement).
    double edp_gain = 0.0;
    for (const auto &e : entries) {
        edp_gain += (e.baselineEnergy.total() * e.baseline.seconds) /
                    (e.reuseEnergy.total() * e.reuse.seconds);
    }
    edp_gain /= static_cast<double>(entries.size());
    std::cout << "Average energy-delay improvement: "
              << formatDouble(edp_gain, 1) << "x (paper: 9.5x)\n";
    return 0;
}
