/**
 * @file
 * Reproduces Figure 11: energy breakdown by hardware component,
 * aggregated over the four DNNs, for the baseline accelerator and the
 * reuse configuration (paper: the eDRAM Weights Buffer dominates in
 * both, with large reuse savings in every component).
 */

#include <iostream>

#include "common/table_writer.h"
#include "harness/headline.h"

int
main()
{
    using namespace reuse;
    std::cout << "Figure 11 reproduction: energy breakdown per "
                 "component (aggregated over the four DNNs)\n";

    const auto entries = computeHeadline({});
    EnergyBreakdown base_total, reuse_total;
    auto accumulate = [](EnergyBreakdown &acc,
                         const EnergyBreakdown &e) {
        acc.weightsBuffer += e.weightsBuffer;
        acc.ioBuffer += e.ioBuffer;
        acc.computeEngine += e.computeEngine;
        acc.mainMemory += e.mainMemory;
        acc.interconnect += e.interconnect;
        acc.staticEnergy += e.staticEnergy;
    };
    for (const auto &e : entries) {
        accumulate(base_total, e.baselineEnergy);
        accumulate(reuse_total, e.reuseEnergy);
    }

    TableWriter t({"Component", "Baseline share", "Reuse share",
                   "Reuse / Baseline"});
    const auto base_named = base_total.named();
    const auto reuse_named = reuse_total.named();
    for (size_t i = 0; i < base_named.size(); ++i) {
        const double b = base_named[i].second;
        const double r = reuse_named[i].second;
        t.addRow({base_named[i].first,
                  formatPercent(b / base_total.total()),
                  formatPercent(r / reuse_total.total()),
                  b > 0 ? formatPercent(r / b) : "-"});
    }
    t.print(std::cout);
    std::cout << "Total energy, reuse vs baseline: "
              << formatPercent(reuse_total.total() /
                               base_total.total())
              << " (paper: ~37% of baseline on average)\n";
    return 0;
}
