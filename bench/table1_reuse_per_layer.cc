/**
 * @file
 * Reproduces Table I: per-layer computation reuse for the four DNNs,
 * plus the accuracy impact of input quantization (measured here as
 * agreement with the FP32 from-scratch network; see DESIGN.md).
 */

#include <iostream>
#include <string>

#include "common/table_writer.h"
#include "harness/experiment.h"
#include "harness/paper_reference.h"
#include "harness/workload_setup.h"
#include "obs/trace_exporter.h"
#include "obs/trace_recorder.h"

namespace reuse {
namespace {

void
runWorkload(const std::string &name, size_t count)
{
    WorkloadSetupConfig cfg;
    Workload w = setupWorkload(name, cfg);
    const Network &net = *w.bundle.network;
    const auto inputs = w.generator->take(count);
    const auto m = measureWorkload(net, w.plan, inputs);

    const PaperReference &ref = paperReferences().at(name);
    std::cout << "\n=== " << name << " (" << net.summary() << ") ===\n";
    std::cout << "Accuracy proxy: top-1 agreement with FP32 = "
              << formatPercent(m.accuracy.top1Agreement)
              << " (paper accuracy loss: " << ref.accuracyLossPct
              << " pct points)\n";

    TableWriter t({"Layer", "Kind", "Similarity", "Comp. Reuse",
                   "Paper Reuse"});
    for (const auto &ls : m.stats.layers()) {
        if (!ls.reuseEnabled)
            continue;
        std::string paper = "-";
        for (const auto &[lname, frac] : ref.layerReuse) {
            if (lname == ls.layerName)
                paper = formatPercent(frac, 0);
        }
        t.addRow({ls.layerName, layerKindName(ls.kind),
                  formatPercent(ls.similarity()),
                  formatPercent(ls.computationReuse()), paper});
    }
    t.print(std::cout);
    std::cout << "Mean similarity: "
              << formatPercent(m.stats.meanSimilarity())
              << ", mean computation reuse: "
              << formatPercent(m.stats.meanComputationReuse()) << "\n";
}

} // namespace
} // namespace reuse

int
main(int argc, char **argv)
{
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace-out=", 0) == 0)
            trace_path = arg.substr(12);
    }
    if (!trace_path.empty() &&
        !reuse::obs::TraceRecorder::instance().enabled())
        reuse::obs::TraceRecorder::instance().setSampleEvery(1);

    std::cout << "Table I reproduction: per-layer computation reuse\n"
              << "(synthetic workloads; C3D functionally simulated at "
                 "reduced resolution)\n";
    reuse::runWorkload("Kaldi", 48);
    reuse::runWorkload("EESEN", 40);
    reuse::runWorkload("C3D", 5);
    reuse::runWorkload("AutoPilot", 12);

    if (!trace_path.empty() &&
        reuse::obs::TraceExporter::exportFile(trace_path)) {
        std::cout << "\nwrote trace to " << trace_path << "\n";
    }
    return 0;
}
