/**
 * @file
 * Reproduces Figure 12: speedup and energy reduction of the
 * reuse-enabled accelerator versus an i7-7700K CPU and a GTX 1080
 * GPU running the software frameworks (paper: the accelerator wins
 * everywhere except raw GPU speed on C3D; ~213x/115x average energy
 * reduction over CPU/GPU).
 */

#include <iostream>

#include "baseline/platform_model.h"
#include "common/table_writer.h"
#include "harness/headline.h"
#include "workloads/model_zoo.h"

int
main()
{
    using namespace reuse;
    std::cout << "Figure 12 reproduction: accelerator+reuse vs CPU "
                 "and GPU\n";

    HeadlineConfig cfg;
    const auto entries = computeHeadline(cfg);
    const auto cpu_spec = PlatformSpec::cpuI7_7700K();
    const auto gpu_spec = PlatformSpec::gpuGTX1080();

    TableWriter t({"DNN", "Speedup vs CPU", "Speedup vs GPU",
                   "Energy red. vs CPU", "Energy red. vs GPU"});
    double e_cpu_mean = 0.0, e_gpu_mean = 0.0;
    for (const auto &e : entries) {
        // The software platforms run the full networks from scratch
        // for the same number of executions / sequence lengths.
        std::unique_ptr<Network> full;
        Rng rng(cfg.setup.seed + 29);
        const Network *net = nullptr;
        if (e.name == "Kaldi") {
            full = buildKaldi(rng).network;
        } else if (e.name == "EESEN") {
            full = buildEesen(rng).network;
        } else if (e.name == "C3D") {
            full = buildC3D(rng, 1).network;
        } else {
            full = buildAutopilot(rng).network;
        }
        net = full.get();

        const int64_t execs = e.reuse.executions;
        const int64_t seq =
            net->isRecurrent() ? cfg.simulatedSequenceLength : 1;
        const auto cpu = runOnPlatform(*net, cpu_spec, execs, seq);
        const auto gpu = runOnPlatform(*net, gpu_spec, execs, seq);

        const double su_cpu = cpu.seconds / e.reuse.seconds;
        const double su_gpu = gpu.seconds / e.reuse.seconds;
        const double er_cpu = cpu.joules / e.reuseEnergy.total();
        const double er_gpu = gpu.joules / e.reuseEnergy.total();
        e_cpu_mean += er_cpu;
        e_gpu_mean += er_gpu;
        t.addRow({e.name, formatDouble(su_cpu, 1) + "x",
                  formatDouble(su_gpu, 2) + "x",
                  formatDouble(er_cpu, 0) + "x",
                  formatDouble(er_gpu, 0) + "x"});
    }
    t.print(std::cout);
    std::cout << "Average energy reduction: "
              << formatDouble(e_cpu_mean / 4.0, 0) << "x vs CPU "
              << "(paper: 213x), "
              << formatDouble(e_gpu_mean / 4.0, 0) << "x vs GPU "
              << "(paper: 115x)\n"
              << "Paper shape check: the GPU should win raw speed "
                 "only on C3D.\n";
    return 0;
}
