/**
 * @file
 * Reproduces Figure 4: relative difference (Euclidean distance of the
 * current vs. previous input vector over the previous vector's
 * magnitude) for the inputs of Kaldi's last two FC layers across a
 * stream of speech frames.
 */

#include <iostream>
#include <vector>

#include "common/table_writer.h"
#include "harness/workload_setup.h"
#include "tensor/tensor_ops.h"

namespace reuse {
namespace {

/** Captures the input of every layer for each frame. */
std::vector<std::vector<Tensor>>
captureLayerInputs(const Network &net, const std::vector<Tensor> &frames)
{
    std::vector<std::vector<Tensor>> per_layer(net.layerCount());
    for (const Tensor &frame : frames) {
        Tensor current = frame;
        for (size_t li = 0; li < net.layerCount(); ++li) {
            per_layer[li].push_back(current);
            current = net.layer(li).forward(current);
        }
    }
    return per_layer;
}

} // namespace
} // namespace reuse

int
main()
{
    using namespace reuse;
    std::cout << "Figure 4 reproduction: relative difference of "
                 "consecutive inputs, Kaldi FC5 and FC6\n"
              << "(paper: values fluctuate roughly between 5% and "
                 "25%, average relative difference < 14%)\n\n";

    WorkloadSetupConfig cfg;
    Workload w = setupKaldi(cfg);
    const Network &net = *w.bundle.network;

    // Locate FC5 and FC6 by name.
    size_t fc5 = 0, fc6 = 0;
    for (size_t li = 0; li < net.layerCount(); ++li) {
        if (net.layer(li).name() == "FC5")
            fc5 = li;
        if (net.layer(li).name() == "FC6")
            fc6 = li;
    }

    const size_t frames = 60;
    const auto inputs = w.generator->take(frames);
    const auto captured = captureLayerInputs(net, inputs);

    TableWriter t({"Frame", "FC5 rel.diff", "FC6 rel.diff"});
    double sum5 = 0.0, sum6 = 0.0;
    for (size_t f = 1; f < frames; ++f) {
        const double d5 = relativeDifference(captured[fc5][f],
                                             captured[fc5][f - 1]);
        const double d6 = relativeDifference(captured[fc6][f],
                                             captured[fc6][f - 1]);
        sum5 += d5;
        sum6 += d6;
        if (f % 5 == 0) {
            t.addRow({std::to_string(f), formatPercent(d5),
                      formatPercent(d6)});
        }
    }
    t.print(std::cout);
    std::cout << "Average over " << frames - 1
              << " frames: FC5 = "
              << formatPercent(sum5 / static_cast<double>(frames - 1))
              << ", FC6 = "
              << formatPercent(sum6 / static_cast<double>(frames - 1))
              << "\n";
    return 0;
}
