/**
 * @file
 * Google-benchmark microbenchmarks of the core kernels: from-scratch
 * versus reuse-based execution of FC, conv and LSTM layers at several
 * similarity levels.  These measure the host-side software kernels
 * (not the modelled accelerator) and demonstrate that the incremental
 * algorithm also pays off in software when similarity is high.
 */

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/conv_reuse.h"
#include "core/fc_reuse.h"
#include "nn/initializers.h"

namespace reuse {
namespace {

/** Perturbs a fraction of the inputs by more than one quantizer step. */
void
perturb(Tensor &t, Rng &rng, double fraction, float step)
{
    const auto n = t.numel();
    const auto count = static_cast<int64_t>(fraction * n);
    for (int64_t k = 0; k < count; ++k) {
        const int64_t i = rng.uniformInt(0, n - 1);
        t[i] += 2.0f * step * (rng.bernoulli(0.5) ? 1.0f : -1.0f);
    }
}

void
BM_FcFromScratch(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const int64_t m = state.range(1);
    Rng rng(1);
    FullyConnectedLayer fc("fc", n, m);
    initGlorot(fc, rng);
    Tensor in(Shape({n}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fc.forward(in));
    }
    state.SetItemsProcessed(state.iterations() * n * m);
}
BENCHMARK(BM_FcFromScratch)
    ->Args({400, 2000})
    ->Args({1152, 1164});

void
BM_FcReuse(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const int64_t m = state.range(1);
    const double change_fraction =
        static_cast<double>(state.range(2)) / 100.0;
    Rng rng(2);
    FullyConnectedLayer fc("fc", n, m);
    initGlorot(fc, rng);
    LinearQuantizer quant(16, -4.0f, 4.0f);
    FcReuseState reuse(fc, quant);
    Tensor in(Shape({n}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    LayerExecRecord rec;
    reuse.execute(in, rec);
    for (auto _ : state) {
        state.PauseTiming();
        perturb(in, rng, change_fraction, quant.step());
        state.ResumeTiming();
        benchmark::DoNotOptimize(reuse.execute(in, rec));
    }
    state.SetItemsProcessed(state.iterations() * n * m);
}
BENCHMARK(BM_FcReuse)
    ->Args({400, 2000, 0})
    ->Args({400, 2000, 10})
    ->Args({400, 2000, 34})
    ->Args({400, 2000, 100})
    ->Args({1152, 1164, 10});

void
BM_Conv2dFromScratch(benchmark::State &state)
{
    Rng rng(3);
    Conv2DLayer conv("conv", 3, 24, 5, 2);
    initGlorot(conv, rng);
    Tensor in(Shape({3, 66, 200}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(conv.forward(in));
    }
    state.SetItemsProcessed(state.iterations() *
                            conv.macCount(in.shape()));
}
BENCHMARK(BM_Conv2dFromScratch);

void
BM_Conv2dReuse(benchmark::State &state)
{
    const double change_fraction =
        static_cast<double>(state.range(0)) / 100.0;
    Rng rng(4);
    Conv2DLayer conv("conv", 3, 24, 5, 2);
    initGlorot(conv, rng);
    const Shape in_shape({3, 66, 200});
    LinearQuantizer quant(32, -4.0f, 4.0f);
    ConvReuseState reuse(conv, in_shape, quant);
    Tensor in(in_shape);
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    LayerExecRecord rec;
    reuse.execute(in, rec);
    for (auto _ : state) {
        state.PauseTiming();
        perturb(in, rng, change_fraction, quant.step());
        state.ResumeTiming();
        benchmark::DoNotOptimize(reuse.execute(in, rec));
    }
    state.SetItemsProcessed(state.iterations() *
                            conv.macCount(in_shape));
}
BENCHMARK(BM_Conv2dReuse)->Arg(0)->Arg(15)->Arg(54);

void
BM_Quantize(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(5);
    LinearQuantizer quant(16, -4.0f, 4.0f);
    Tensor in(Shape({n}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(quant.indices(in));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Quantize)->Arg(400)->Arg(39600);

} // namespace
} // namespace reuse

BENCHMARK_MAIN();
