/**
 * @file
 * Microbenchmarks of the core kernels, in two modes:
 *
 *  - default: google-benchmark suite of from-scratch versus
 *    reuse-based execution of FC and conv layers at several
 *    similarity levels;
 *  - `--json=PATH`: a hand-rolled scalar vs blocked vs SIMD
 *    comparison of the delta-update kernels that verifies
 *    bit-exactness while timing, writes machine-readable records
 *    (ns per delta update, effective GB/s, % of the STREAM-style
 *    memory peak probed at startup, speedups per layer shape) to
 *    PATH, and with `--min-speedup=X` / `--min-simd-vs-blocked=Y`
 *    exits non-zero when any FC shape with >= 1024 outputs at
 *    10-40% changed inputs falls below the bound (the CI perf-smoke
 *    gates);
 *  - `--arch`: prints the kernel dispatch decision (compiled and
 *    runnable families, the chosen arch, the REUSE_KERNELS
 *    override) and the probed memory peak, then exits.
 *
 * These measure the host-side software kernels (not the modelled
 * accelerator) and demonstrate that the incremental algorithm also
 * pays off in software when similarity is high.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/random.h"
#include "core/conv_reuse.h"
#include "core/fc_reuse.h"
#include "kernels/cpu_features.h"
#include "kernels/delta_kernels.h"
#include "kernels/dispatch.h"
#include "nn/initializers.h"

namespace reuse {
namespace {

/** Perturbs a fraction of the inputs by more than one quantizer step. */
void
perturb(Tensor &t, Rng &rng, double fraction, float step)
{
    const auto n = t.numel();
    const auto count = static_cast<int64_t>(fraction * n);
    for (int64_t k = 0; k < count; ++k) {
        const int64_t i = rng.uniformInt(0, n - 1);
        t[i] += 2.0f * step * (rng.bernoulli(0.5) ? 1.0f : -1.0f);
    }
}

void
BM_FcFromScratch(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const int64_t m = state.range(1);
    Rng rng(1);
    FullyConnectedLayer fc("fc", n, m);
    initGlorot(fc, rng);
    Tensor in(Shape({n}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(fc.forward(in));
    }
    state.SetItemsProcessed(state.iterations() * n * m);
}
BENCHMARK(BM_FcFromScratch)
    ->Args({400, 2000})
    ->Args({1152, 1164});

void
BM_FcReuse(benchmark::State &state)
{
    const int64_t n = state.range(0);
    const int64_t m = state.range(1);
    const double change_fraction =
        static_cast<double>(state.range(2)) / 100.0;
    Rng rng(2);
    FullyConnectedLayer fc("fc", n, m);
    initGlorot(fc, rng);
    LinearQuantizer quant(16, -4.0f, 4.0f);
    FcReuseState reuse(fc, quant);
    Tensor in(Shape({n}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    LayerExecRecord rec;
    reuse.execute(in, rec);
    for (auto _ : state) {
        state.PauseTiming();
        perturb(in, rng, change_fraction, quant.step());
        state.ResumeTiming();
        benchmark::DoNotOptimize(reuse.execute(in, rec));
    }
    state.SetItemsProcessed(state.iterations() * n * m);
}
BENCHMARK(BM_FcReuse)
    ->Args({400, 2000, 0})
    ->Args({400, 2000, 10})
    ->Args({400, 2000, 34})
    ->Args({400, 2000, 100})
    ->Args({1152, 1164, 10});

void
BM_Conv2dFromScratch(benchmark::State &state)
{
    Rng rng(3);
    Conv2DLayer conv("conv", 3, 24, 5, 2);
    initGlorot(conv, rng);
    Tensor in(Shape({3, 66, 200}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(conv.forward(in));
    }
    state.SetItemsProcessed(state.iterations() *
                            conv.macCount(in.shape()));
}
BENCHMARK(BM_Conv2dFromScratch);

void
BM_Conv2dReuse(benchmark::State &state)
{
    const double change_fraction =
        static_cast<double>(state.range(0)) / 100.0;
    Rng rng(4);
    Conv2DLayer conv("conv", 3, 24, 5, 2);
    initGlorot(conv, rng);
    const Shape in_shape({3, 66, 200});
    LinearQuantizer quant(32, -4.0f, 4.0f);
    ConvReuseState reuse(conv, in_shape, quant);
    Tensor in(in_shape);
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    LayerExecRecord rec;
    reuse.execute(in, rec);
    for (auto _ : state) {
        state.PauseTiming();
        perturb(in, rng, change_fraction, quant.step());
        state.ResumeTiming();
        benchmark::DoNotOptimize(reuse.execute(in, rec));
    }
    state.SetItemsProcessed(state.iterations() *
                            conv.macCount(in_shape));
}
BENCHMARK(BM_Conv2dReuse)->Arg(0)->Arg(15)->Arg(54);

void
BM_Quantize(benchmark::State &state)
{
    const int64_t n = state.range(0);
    Rng rng(5);
    LinearQuantizer quant(16, -4.0f, 4.0f);
    Tensor in(Shape({n}));
    rng.fillGaussian(in.data(), 0.0f, 1.0f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(quant.indices(in));
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Quantize)->Arg(400)->Arg(39600);

// ---------------------------------------------------------------
// JSON mode: scalar vs blocked delta-update kernels.
// ---------------------------------------------------------------

/** One timed comparison of the FC delta-update kernels. */
struct KernelRecord {
    std::string kernel;
    int64_t n = 0;
    int64_t m = 0;
    double change_fraction = 0.0;
    int64_t changed = 0;
    double scalar_ns = 0.0;
    double blocked_ns = 0.0;
    double simd_ns = 0.0;
    /** scalar / blocked: what blocking + baseline-ISA autovec buys. */
    double speedup = 0.0;
    /** blocked / simd: what the hand-written wide kernels add. */
    double simd_vs_blocked = 0.0;
    double ns_per_delta_update = 0.0;
    double gbps = 0.0;
    /** Effective GB/s as a percentage of the probed memory peak. */
    double roofline_pct = 0.0;
    bool bit_exact = false;
};

/**
 * Times `fn` as the minimum over `reps` measurements of `iters`
 * invocations each, returning ns per invocation.
 */
template <typename Fn>
double
timeNs(int reps, int iters, Fn &&fn)
{
    using Clock = std::chrono::steady_clock;
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const Clock::time_point t0 = Clock::now();
        for (int it = 0; it < iters; ++it)
            fn();
        const Clock::time_point t1 = Clock::now();
        const double ns =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    t1 - t0)
                    .count()) /
            iters;
        if (r == 0 || ns < best)
            best = ns;
    }
    return best;
}

/**
 * STREAM-style triad probe of the attainable memory bandwidth: the
 * roofline ceiling the delta kernels are measured against.  Three
 * arrays well past L2 (48 MB total), a[i] = b[i] + s * c[i], best of
 * several passes; 12 bytes of traffic per element (two reads, one
 * write, STREAM counting).
 */
double
probeMemoryPeakGbps()
{
    const int64_t n = 4 << 20;
    AlignedVector<float> a(n, 1.0f), b(n, 2.0f), c(n, 3.0f);
    const double ns = timeNs(5, 1, [&] {
        float *pa = a.data();
        const float *pb = b.data();
        const float *pc = c.data();
        for (int64_t i = 0; i < n; ++i)
            pa[i] = pb[i] + 0.42f * pc[i];
        benchmark::DoNotOptimize(pa[n - 1]);
    });
    return ns > 0.0 ? static_cast<double>(n) * 12.0 / ns : 0.0;
}

/** Single-threaded dispatch pinned to the process-wide arch choice. */
kernels::DeltaDispatch
simdDispatch()
{
    kernels::DeltaDispatch d = kernels::defaultDispatch();
    // Single-threaded so GB/s and roofline share are per-core
    // numbers, comparable across the scalar/blocked columns.
    d.parallel_mac_threshold = -1;
    return d;
}

/** Picks an iteration count so one measurement is ~milliseconds. */
int
itersFor(int64_t macs)
{
    const int64_t target_macs = 16'000'000;
    const int64_t iters = target_macs / (macs > 0 ? macs : 1);
    return static_cast<int>(iters < 1 ? 1 : (iters > 2000 ? 2000 : iters));
}

/** Builds a change list of exactly `changed` distinct positions. */
kernels::ChangeList
exactChanges(int64_t n, int64_t changed, Rng &rng)
{
    kernels::ChangeList changes;
    // Evenly spread positions: representative of the paper's
    // uncorrelated per-element changes, deterministic run-to-run.
    for (int64_t c = 0; c < changed; ++c) {
        const int64_t pos = (c * n) / (changed > 0 ? changed : 1);
        changes.push(static_cast<int32_t>(pos),
                     rng.gaussian(0.0f, 0.5f));
    }
    return changes;
}

KernelRecord
benchFcDelta(int64_t n, int64_t m, double fraction, Rng &rng,
             double peak_gbps)
{
    KernelRecord rec;
    rec.kernel = "fc_delta";
    rec.n = n;
    rec.m = m;
    rec.change_fraction = fraction;
    rec.changed = static_cast<int64_t>(fraction * n);

    AlignedVector<float> weights(static_cast<size_t>(n * m));
    rng.fillGaussian(weights, 0.0f, 0.1f);
    AlignedVector<float> base(static_cast<size_t>(m));
    rng.fillGaussian(base, 0.0f, 1.0f);
    const kernels::ChangeList changes = exactChanges(n, rec.changed, rng);
    const kernels::DeltaDispatch simd = simdDispatch();

    // Bit-exactness is part of the benchmark contract: a fast wrong
    // kernel must fail the gate.
    AlignedVector<float> scalar_out = base;
    AlignedVector<float> blocked_out = base;
    AlignedVector<float> simd_out = base;
    kernels::applyDeltasScalar(changes, weights.data(), m,
                               scalar_out.data());
    kernels::applyDeltasBlocked(changes, weights.data(), m,
                                blocked_out.data());
    kernels::applyDeltas(changes, weights.data(), m, simd_out.data(),
                         simd);
    rec.bit_exact =
        std::memcmp(scalar_out.data(), blocked_out.data(),
                    scalar_out.size() * sizeof(float)) == 0 &&
        std::memcmp(scalar_out.data(), simd_out.data(),
                    scalar_out.size() * sizeof(float)) == 0;

    const int64_t macs = rec.changed * m;
    const int iters = itersFor(macs);
    AlignedVector<float> out = base;
    rec.scalar_ns = timeNs(5, iters, [&] {
        kernels::applyDeltasScalar(changes, weights.data(), m,
                                   out.data());
    });
    out = base;
    rec.blocked_ns = timeNs(5, iters, [&] {
        kernels::applyDeltasBlocked(changes, weights.data(), m,
                                    out.data());
    });
    out = base;
    rec.simd_ns = timeNs(5, iters, [&] {
        kernels::applyDeltas(changes, weights.data(), m, out.data(),
                             simd);
    });
    rec.speedup = rec.blocked_ns > 0.0 ? rec.scalar_ns / rec.blocked_ns
                                       : 0.0;
    rec.simd_vs_blocked =
        rec.simd_ns > 0.0 ? rec.blocked_ns / rec.simd_ns : 0.0;
    rec.ns_per_delta_update = rec.simd_ns;
    // Bytes streamed by the apply kernels: one weight row per change
    // plus one read+write of the output vector.
    const double bytes = static_cast<double>(rec.changed * m) * 4.0 +
                         static_cast<double>(m) * 8.0;
    rec.gbps = rec.simd_ns > 0.0 ? bytes / rec.simd_ns : 0.0;
    rec.roofline_pct =
        peak_gbps > 0.0 ? 100.0 * rec.gbps / peak_gbps : 0.0;
    return rec;
}

KernelRecord
benchFcGemv(int64_t n, int64_t m, Rng &rng, double peak_gbps)
{
    KernelRecord rec;
    rec.kernel = "fc_gemv";
    rec.n = n;
    rec.m = m;
    rec.change_fraction = 1.0;
    rec.changed = n;

    AlignedVector<float> weights(static_cast<size_t>(n * m));
    rng.fillGaussian(weights, 0.0f, 0.1f);
    AlignedVector<float> biases(static_cast<size_t>(m));
    rng.fillGaussian(biases, 0.0f, 1.0f);
    AlignedVector<float> input(static_cast<size_t>(n));
    rng.fillGaussian(input, 0.0f, 1.0f);
    const kernels::DeltaDispatch simd = simdDispatch();

    AlignedVector<float> scalar_out(static_cast<size_t>(m));
    AlignedVector<float> blocked_out(static_cast<size_t>(m));
    AlignedVector<float> simd_out(static_cast<size_t>(m));
    kernels::gemvScalar(input.data(), n, weights.data(), biases.data(),
                        m, scalar_out.data());
    kernels::gemvBlockedRange(input.data(), n, weights.data(),
                              biases.data(), m, 0, m,
                              blocked_out.data());
    kernels::gemv(input.data(), n, weights.data(), biases.data(), m,
                  simd_out.data(), simd);
    rec.bit_exact =
        std::memcmp(scalar_out.data(), blocked_out.data(),
                    scalar_out.size() * sizeof(float)) == 0 &&
        std::memcmp(scalar_out.data(), simd_out.data(),
                    scalar_out.size() * sizeof(float)) == 0;

    const int iters = itersFor(n * m);
    AlignedVector<float> out(static_cast<size_t>(m));
    rec.scalar_ns = timeNs(5, iters, [&] {
        kernels::gemvScalar(input.data(), n, weights.data(),
                            biases.data(), m, out.data());
    });
    rec.blocked_ns = timeNs(5, iters, [&] {
        kernels::gemvBlockedRange(input.data(), n, weights.data(),
                                  biases.data(), m, 0, m, out.data());
    });
    rec.simd_ns = timeNs(5, iters, [&] {
        kernels::gemv(input.data(), n, weights.data(), biases.data(),
                      m, out.data(), simd);
    });
    rec.speedup = rec.blocked_ns > 0.0 ? rec.scalar_ns / rec.blocked_ns
                                       : 0.0;
    rec.simd_vs_blocked =
        rec.simd_ns > 0.0 ? rec.blocked_ns / rec.simd_ns : 0.0;
    rec.ns_per_delta_update = rec.simd_ns;
    const double bytes = static_cast<double>(n * m) * 4.0 +
                         static_cast<double>(m) * 8.0;
    rec.gbps = rec.simd_ns > 0.0 ? bytes / rec.simd_ns : 0.0;
    rec.roofline_pct =
        peak_gbps > 0.0 ? 100.0 * rec.gbps / peak_gbps : 0.0;
    return rec;
}

void
writeJson(const std::string &path,
          const std::vector<KernelRecord> &records, double peak_gbps)
{
    std::ofstream out(path);
    out << "{\n  \"bench\": \"micro_kernels\",\n  \"arch\": \""
        << kernels::archName(kernels::defaultDispatch().arch)
        << "\",\n";
    char peak[64];
    std::snprintf(peak, sizeof(peak),
                  "  \"memory_peak_gbps\": %.3f,\n", peak_gbps);
    out << peak << "  \"records\": [\n";
    for (size_t i = 0; i < records.size(); ++i) {
        const KernelRecord &r = records[i];
        char buf[768];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"kernel\": \"%s\", \"n\": %lld, \"m\": %lld, "
            "\"change_fraction\": %.2f, \"changed\": %lld, "
            "\"scalar_ns\": %.1f, \"blocked_ns\": %.1f, "
            "\"simd_ns\": %.1f, \"ns_per_delta_update\": %.1f, "
            "\"speedup\": %.3f, \"simd_vs_blocked\": %.3f, "
            "\"effective_gbps\": %.3f, \"roofline_pct\": %.1f, "
            "\"bit_exact\": %s}%s\n",
            r.kernel.c_str(), static_cast<long long>(r.n),
            static_cast<long long>(r.m), r.change_fraction,
            static_cast<long long>(r.changed), r.scalar_ns,
            r.blocked_ns, r.simd_ns, r.ns_per_delta_update, r.speedup,
            r.simd_vs_blocked, r.gbps, r.roofline_pct,
            r.bit_exact ? "true" : "false",
            i + 1 < records.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
}

/**
 * Runs the scalar vs blocked vs SIMD comparison, writes `json_path`,
 * and returns the process exit code (non-zero when bit-exactness
 * fails or a gated shape misses `min_speedup` /
 * `min_simd_vs_blocked`).
 */
int
runJsonBench(const std::string &json_path, double min_speedup,
             double min_simd_vs_blocked)
{
    const double peak_gbps = probeMemoryPeakGbps();
    std::printf("arch %s, memory peak %.2f GB/s\n",
                kernels::archName(kernels::defaultDispatch().arch),
                peak_gbps);
    Rng rng(7);
    std::vector<KernelRecord> records;
    const struct {
        int64_t n, m;
    } shapes[] = {{400, 2000}, {1152, 1164}, {1024, 1024}, {512, 4096}};
    for (const auto &s : shapes) {
        for (const double fraction : {0.1, 0.2, 0.4, 1.0})
            records.push_back(
                benchFcDelta(s.n, s.m, fraction, rng, peak_gbps));
        records.push_back(benchFcGemv(s.n, s.m, rng, peak_gbps));
    }

    writeJson(json_path, records, peak_gbps);

    int rc = 0;
    for (const KernelRecord &r : records) {
        std::printf(
            "%-8s n=%5lld m=%5lld changed=%5lld (%3.0f%%)  "
            "scalar %9.1f ns  blocked %9.1f ns  simd %9.1f ns  "
            "blk %5.2fx  simd/blk %5.2fx  %6.2f GB/s  %5.1f%%peak  "
            "%s\n",
            r.kernel.c_str(), static_cast<long long>(r.n),
            static_cast<long long>(r.m),
            static_cast<long long>(r.changed),
            100.0 * r.change_fraction, r.scalar_ns, r.blocked_ns,
            r.simd_ns, r.speedup, r.simd_vs_blocked, r.gbps,
            r.roofline_pct, r.bit_exact ? "bit-exact" : "MISMATCH");
        if (!r.bit_exact) {
            std::printf("FAIL: %s n=%lld m=%lld not bit-exact\n",
                        r.kernel.c_str(), static_cast<long long>(r.n),
                        static_cast<long long>(r.m));
            rc = 1;
        }
        // The perf gates cover the acceptance shape class: FC delta
        // updates with >= 1024 outputs at 10-40% changed inputs.
        const bool gated = r.kernel == "fc_delta" && r.m >= 1024 &&
                           r.change_fraction >= 0.1 - 1e-9 &&
                           r.change_fraction <= 0.4 + 1e-9;
        if (gated && r.speedup < min_speedup) {
            std::printf("FAIL: fc_delta n=%lld m=%lld at %.0f%% "
                        "changed: speedup %.2fx < required %.2fx\n",
                        static_cast<long long>(r.n),
                        static_cast<long long>(r.m),
                        100.0 * r.change_fraction, r.speedup,
                        min_speedup);
            rc = 1;
        }
        if (gated && r.simd_vs_blocked < min_simd_vs_blocked) {
            std::printf("FAIL: fc_delta n=%lld m=%lld at %.0f%% "
                        "changed: simd-vs-blocked %.2fx < required "
                        "%.2fx\n",
                        static_cast<long long>(r.n),
                        static_cast<long long>(r.m),
                        100.0 * r.change_fraction, r.simd_vs_blocked,
                        min_simd_vs_blocked);
            rc = 1;
        }
    }
    std::printf("wrote %s (%zu records)\n", json_path.c_str(),
                records.size());
    return rc;
}

/** Prints the kernel dispatch decision (`--arch`). */
int
printArch()
{
    using kernels::KernelArch;
    const kernels::DeltaDispatch &d = kernels::defaultDispatch();
    std::printf("arch: %s\n", kernels::archName(d.arch));
    std::printf("compiled:");
    for (const KernelArch a :
         {KernelArch::Scalar, KernelArch::Blocked, KernelArch::Neon,
          KernelArch::Avx2, KernelArch::Avx512}) {
        if (kernels::archCompiled(a))
            std::printf(" %s", kernels::archName(a));
    }
    std::printf("\nrunnable:");
    for (const KernelArch a :
         {KernelArch::Scalar, KernelArch::Blocked, KernelArch::Neon,
          KernelArch::Avx2, KernelArch::Avx512}) {
        if (kernels::archCompiled(a) && kernels::archRunnable(a))
            std::printf(" %s", kernels::archName(a));
    }
    const char *env = std::getenv("REUSE_KERNELS");
    std::printf("\nREUSE_KERNELS: %s\n", env ? env : "(unset)");
    std::printf("parallel_mac_threshold: %lld\n",
                static_cast<long long>(d.parallel_mac_threshold));
    std::printf("memory peak: %.2f GB/s\n", probeMemoryPeakGbps());
    return 0;
}

} // namespace
} // namespace reuse

int
main(int argc, char **argv)
{
    std::string json_path;
    double min_speedup = 0.0;
    double min_simd_vs_blocked = 0.0;
    bool print_arch = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg.rfind("--min-speedup=", 0) == 0)
            min_speedup = std::stod(arg.substr(14));
        else if (arg.rfind("--min-simd-vs-blocked=", 0) == 0)
            min_simd_vs_blocked = std::stod(arg.substr(22));
        else if (arg == "--arch")
            print_arch = true;
    }
    if (print_arch)
        return reuse::printArch();
    if (!json_path.empty())
        return reuse::runJsonBench(json_path, min_speedup,
                                   min_simd_vs_blocked);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
