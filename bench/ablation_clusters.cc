/**
 * @file
 * Ablation from Sec. III's methodology: sweep of the cluster count
 * (8 / 12 / 16 / 32) showing the similarity-versus-accuracy trade-off
 * the paper describes — fewer clusters expose more similarity but
 * hurt accuracy; the paper picks 16 for the speech networks and 32
 * for the CNNs.  Also exercises the automatic backwards layer
 * selection at each cluster count.
 */

#include <iostream>

#include "common/table_writer.h"
#include "harness/experiment.h"
#include "harness/workload_setup.h"
#include "quant/layer_selection.h"
#include "quant/range_profiler.h"
#include "workloads/speech_generator.h"

int
main()
{
    using namespace reuse;
    std::cout << "Cluster-count ablation on Kaldi (Sec. III "
                 "methodology)\n";

    WorkloadSetupConfig cfg;
    const size_t frames = 40;

    TableWriter t({"Clusters", "Similarity", "Comp. Reuse",
                   "Top-1 agreement", "Mean rel. error"});
    for (int clusters : {8, 12, 16, 32, 64}) {
        Workload w = setupKaldi(cfg);
        auto gen = std::move(w.generator);
        const auto calib = gen->take(cfg.calibrationFrames);
        const QuantizationPlan plan = calibratePlan(
            *w.bundle.network, calib, clusters,
            w.bundle.quantizedLayers);
        const auto m = measureWorkload(*w.bundle.network, plan,
                                       gen->take(frames));
        t.addRow({std::to_string(clusters),
                  formatPercent(m.stats.meanSimilarity()),
                  formatPercent(m.stats.meanComputationReuse()),
                  formatPercent(m.accuracy.top1Agreement),
                  formatDouble(m.accuracy.meanRelativeError, 4)});
    }
    t.print(std::cout);
    std::cout << "Expected shape (paper): similarity falls as the "
                 "cluster count grows; 8/12 clusters hurt accuracy.\n";

    // Automatic backwards layer selection at the paper's setting.
    std::cout << "\nAutomatic backwards layer selection (budget: 5% "
                 "mean relative output error, 16 clusters):\n"
              << "(synthetic networks show no top-1 loss, so the "
                 "budget uses the stricter relative-error metric)\n";
    Workload w = setupKaldi(cfg);
    auto gen = std::move(w.generator);
    const auto calib = gen->take(cfg.calibrationFrames);
    const auto eval_inputs = gen->take(24);
    const NetworkRanges ranges =
        profileNetworkRanges(*w.bundle.network, calib);
    LayerSelectionConfig sel;
    sel.clusters = 16;
    sel.maxAccuracyLossPct = 5.0;
    const auto result = selectLayersBackwards(
        *w.bundle.network, ranges, sel,
        [&](const QuantizationPlan &plan) {
            const auto m = measureWorkload(*w.bundle.network, plan,
                                           eval_inputs);
            return m.accuracy.meanRelativeError * 100.0;
        });
    std::cout << "Selected layers:";
    for (size_t li : result.selectedLayers)
        std::cout << " " << w.bundle.network->layer(li).name();
    std::cout << " (accuracy loss "
              << formatDouble(result.accuracyLossPct, 2)
              << " pct points)\n";
    std::cout << "Paper selects FC3..FC6 for Kaldi.\n";
    return 0;
}
