/**
 * @file
 * Serving-runtime benchmark (an extension beyond the paper): many
 * concurrent input streams, each carrying its own reuse state, served
 * by a shared immutable engine on a worker pool.
 *
 * Three claims are measured on the Kaldi workload:
 *   1. Throughput scales with worker threads (sessions are
 *      independent, the engine is stateless, so frames of different
 *      sessions execute in parallel).
 *   2. Per-session computation reuse matches a dedicated
 *      single-stream engine (within 2pp): multiplexing sessions does
 *      not dilute the temporal similarity each stream carries.
 *   3. Under a reuse-buffer memory budget, evicted sessions degrade
 *      to from-scratch execution and re-warm with outputs
 *      bit-identical to a reference that resets at the same frames.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "common/table_writer.h"
#include "core/reuse_engine.h"
#include "harness/workload_setup.h"
#include "ir/plan_cache.h"
#include "obs/trace_exporter.h"
#include "obs/trace_recorder.h"
#include "serve/streaming_server.h"
#include "workloads/multi_session_generator.h"

using namespace reuse;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Dedicated single-stream run: reuse ratio of one warm engine. */
double
singleStreamReuse(const ReuseEngine &engine,
                  const std::vector<Tensor> &frames)
{
    ReuseState state = engine.makeState();
    ReuseStatsCollector stats = engine.makeStatsCollector();
    ExecutionTrace trace;
    for (const Tensor &in : frames) {
        engine.execute(state, in, trace);
        stats.addTrace(trace);
    }
    return stats.networkComputationReuse();
}

/**
 * Multi-model phase: Kaldi and AutoPilot served from one process.
 * Engines over both models — plus a second engine per model, as a
 * second tenant of the same model would create — share compiled
 * schedules through the process-wide plan cache; the returned cache
 * counters are deltas over this phase (expected: one miss for the
 * new AutoPilot model, hits for the second tenants).
 */
struct MultiModelStats {
    double fps = 0.0;
    ir::PlanCache::Stats cache;
};

MultiModelStats
runMultiModelPhase(const ReuseEngine &kaldi, const Workload &wk)
{
    WorkloadSetupConfig cfg;
    Workload wa = setupAutopilot(cfg);
    const ir::PlanCache::Stats before =
        ir::PlanCache::instance().stats();
    ReuseEngine autopilot(*wa.bundle.network, wa.plan);
    // Second tenants of both models: cache hits, not recompiles.
    ReuseEngine kaldi2(*wk.bundle.network, wk.plan);
    ReuseEngine autopilot2(*wa.bundle.network, wa.plan);
    (void)kaldi2;
    (void)autopilot2;

    const size_t kKaldiSessions = 8, kKaldiFrames = 16;
    const size_t kAutoSessions = 4, kAutoFrames = 6;
    const uint64_t kBaseSeed = 7100;

    MultiSessionGenerator kstreams(wk.makeGenerator, kKaldiSessions,
                                   kBaseSeed);
    MultiSessionGenerator astreams(wa.makeGenerator, kAutoSessions,
                                   kBaseSeed + 1);
    std::vector<std::vector<Tensor>> kin, ain;
    for (size_t s = 0; s < kKaldiSessions; ++s)
        kin.push_back(kstreams.take(s, kKaldiFrames));
    for (size_t s = 0; s < kAutoSessions; ++s)
        ain.push_back(astreams.take(s, kAutoFrames));

    StreamingServer::Config scfg;
    scfg.workerThreads = 4;
    StreamingServer server(
        {{"kaldi", &kaldi}, {"autopilot", &autopilot}}, scfg);
    std::vector<SessionId> kids, aids;
    for (size_t s = 0; s < kKaldiSessions; ++s)
        kids.push_back(server.openSession(
            "kaldi",
            MultiSessionGenerator::sessionSeed(kBaseSeed, s)));
    for (size_t s = 0; s < kAutoSessions; ++s)
        aids.push_back(server.openSession(
            "autopilot",
            MultiSessionGenerator::sessionSeed(kBaseSeed + 1, s)));

    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kKaldiFrames; ++i) {
        for (size_t s = 0; s < kKaldiSessions; ++s)
            server.submitFrame(kids[s], kin[s][i]);
        if (i < kAutoFrames)
            for (size_t s = 0; s < kAutoSessions; ++s)
                server.submitFrame(aids[s], ain[s][i]);
    }
    server.drain();
    const double secs = secondsSince(t0);

    MultiModelStats out;
    out.fps = double(server.metrics().framesCompleted()) / secs;
    const ir::PlanCache::Stats after =
        ir::PlanCache::instance().stats();
    out.cache.hits = after.hits - before.hits;
    out.cache.misses = after.misses - before.misses;
    out.cache.size = after.size;
    return out;
}

/**
 * CI perf-smoke mode: one focused throughput measurement (64 sessions
 * x 4 workers on Kaldi) plus an overload phase measuring the shed
 * rate and a two-model (Kaldi + AutoPilot) phase through the shared
 * plan cache, written as one machine-readable JSON record.
 * `min_fps` > 0 turns the record into a regression gate (on the
 * single-model measurement only; the multi-model mix is dominated by
 * AutoPilot's much larger per-frame cost).
 */
int
runJsonBench(const std::string &json_path, double min_fps)
{
    WorkloadSetupConfig cfg;
    Workload w = setupKaldi(cfg);
    ReuseEngine engine(*w.bundle.network, w.plan);

    const size_t kFrames = 48;
    const size_t kSessions = 64;
    const size_t kWorkers = 4;
    const uint64_t kBaseSeed = 2024;

    MultiSessionGenerator streams(w.makeGenerator, kSessions,
                                  kBaseSeed);
    std::vector<std::vector<Tensor>> inputs;
    for (size_t s = 0; s < kSessions; ++s)
        inputs.push_back(streams.take(s, kFrames));

    // Throughput phase: every stream's frames through a shared
    // 4-worker server.
    double fps = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    {
        StreamingServer::Config scfg;
        scfg.workerThreads = kWorkers;
        StreamingServer server(engine, scfg);
        std::vector<SessionId> ids;
        for (size_t s = 0; s < kSessions; ++s)
            ids.push_back(server.openSession(
                "default",
                MultiSessionGenerator::sessionSeed(kBaseSeed, s)));
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < kFrames; ++i)
            for (size_t s = 0; s < kSessions; ++s)
                server.submitFrame(ids[s], inputs[s][i]);
        server.drain();
        const double secs = secondsSince(t0);
        const ServeMetrics &m = server.metrics();
        fps = double(m.framesCompleted()) / secs;
        p50 = m.latency().percentile(0.50);
        p95 = m.latency().percentile(0.95);
        p99 = m.latency().percentile(0.99);
    }

    // Overload phase: a deliberately under-provisioned server (one
    // worker, tight per-session pending bound) fed without pacing;
    // the shed rate is the fraction of submits rejected with a
    // backoff hint.
    uint64_t shed_attempts = 0;
    uint64_t shed_count = 0;
    {
        StreamingServer::Config scfg;
        scfg.workerThreads = 1;
        scfg.maxPendingPerSession = 2;
        StreamingServer server(engine, scfg);
        std::vector<SessionId> ids;
        const size_t kShedSessions = 8;
        for (size_t s = 0; s < kShedSessions; ++s)
            ids.push_back(server.openSession(
                "default",
                MultiSessionGenerator::sessionSeed(kBaseSeed, s)));
        std::vector<std::future<Tensor>> accepted;
        for (size_t i = 0; i < kFrames; ++i) {
            for (size_t s = 0; s < kShedSessions; ++s) {
                ++shed_attempts;
                StreamingServer::SubmitOutcome outcome =
                    server.trySubmitFrame(ids[s], inputs[s][i]);
                if (outcome.accepted())
                    accepted.push_back(std::move(outcome.result));
                else
                    ++shed_count;
            }
        }
        server.drain();
        shed_count = server.metrics().framesShed();
    }
    const double shed_rate =
        shed_attempts == 0
            ? 0.0
            : double(shed_count) / double(shed_attempts);

    // Multi-model phase: both zoo models in this one process, their
    // compiled schedules shared through the plan cache.
    const MultiModelStats mm = runMultiModelPhase(engine, w);

    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
        std::cerr << "serve_throughput: cannot write " << json_path
                  << "\n";
        return 1;
    }
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\n  \"bench\": \"serve_throughput\",\n"
        "  \"workload\": \"Kaldi\",\n"
        "  \"sessions\": %zu,\n  \"workers\": %zu,\n"
        "  \"frames\": %zu,\n"
        "  \"frames_per_second\": %.1f,\n"
        "  \"latency_p50_us\": %.1f,\n"
        "  \"latency_p95_us\": %.1f,\n"
        "  \"latency_p99_us\": %.1f,\n"
        "  \"shed_attempts\": %llu,\n"
        "  \"shed_rate\": %.4f,\n"
        "  \"multi_model_fps\": %.1f,\n"
        "  \"plan_cache_hits\": %llu,\n"
        "  \"plan_cache_misses\": %llu\n}\n",
        kSessions, kWorkers, kSessions * kFrames, fps, p50, p95, p99,
        static_cast<unsigned long long>(shed_attempts), shed_rate,
        mm.fps, static_cast<unsigned long long>(mm.cache.hits),
        static_cast<unsigned long long>(mm.cache.misses));
    out << buf;
    std::printf("wrote %s (%.0f frames/s, p99 %.0f us, shed rate "
                "%.2f%%)\n",
                json_path.c_str(), fps, p99, shed_rate * 100.0);
    if (min_fps > 0.0 && fps < min_fps) {
        std::cerr << "serve_throughput: REGRESSION: " << fps
                  << " frames/s < required " << min_fps << "\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string trace_path;
    double min_fps = 0.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg.rfind("--min-fps=", 0) == 0)
            min_fps = std::stod(arg.substr(10));
        else if (arg.rfind("--trace-out=", 0) == 0)
            trace_path = arg.substr(12);
    }
    if (!trace_path.empty() &&
        !obs::TraceRecorder::instance().enabled()) {
        // The flag alone should produce a trace; default to 1/16
        // frame sampling unless REUSE_TRACE_SAMPLE already chose.
        obs::TraceRecorder::instance().setSampleEvery(16);
    }
    if (!json_path.empty()) {
        const int rc = runJsonBench(json_path, min_fps);
        if (!trace_path.empty())
            obs::TraceExporter::exportFile(trace_path);
        return rc;
    }

    std::cout << "Multi-stream serving throughput (Kaldi workload)\n"
              << "Hardware threads available: "
              << std::thread::hardware_concurrency() << "\n\n";

    WorkloadSetupConfig cfg;
    Workload w = setupKaldi(cfg);
    ReuseEngine engine(*w.bundle.network, w.plan);

    const size_t kFrames = 48;
    const size_t kMaxSessions = 64;
    const uint64_t kBaseSeed = 2024;

    // Pre-generate every session's stream so timed regions contain
    // only serving work.
    MultiSessionGenerator streams(w.makeGenerator, kMaxSessions,
                                  kBaseSeed);
    std::vector<std::vector<Tensor>> inputs;
    for (size_t s = 0; s < kMaxSessions; ++s)
        inputs.push_back(streams.take(s, kFrames));

    // Single-stream baseline: a dedicated engine per stream, averaged
    // over a few streams to smooth per-seed variation.
    double baseline = 0.0;
    const size_t kBaselineStreams = 4;
    for (size_t s = 0; s < kBaselineStreams; ++s)
        baseline += singleStreamReuse(engine, inputs[s]);
    baseline /= double(kBaselineStreams);
    std::cout << "Single-stream baseline reuse: "
              << formatPercent(baseline) << " over " << kFrames
              << " frames\n\n";

    // ---- 1+2: thread x session sweep --------------------------------
    TableWriter t({"Sessions", "Workers", "Frames/s", "p50 us",
                   "p95 us", "p99 us", "Mean reuse", "vs baseline"});
    for (size_t sessions : {8ul, 64ul}) {
        for (size_t threads : {1ul, 2ul, 4ul, 8ul}) {
            StreamingServer::Config scfg;
            scfg.workerThreads = threads;
            StreamingServer server(engine, scfg);

            std::vector<SessionId> ids;
            for (size_t s = 0; s < sessions; ++s)
                ids.push_back(server.openSession(
                    "default",
                    MultiSessionGenerator::sessionSeed(kBaseSeed, s)));

            const auto t0 = std::chrono::steady_clock::now();
            for (size_t i = 0; i < kFrames; ++i)
                for (size_t s = 0; s < sessions; ++s)
                    server.submitFrame(ids[s], inputs[s][i]);
            server.drain();
            const double secs = secondsSince(t0);

            double mean_reuse = 0.0;
            for (SessionId id : ids)
                mean_reuse += server.sessionSnapshot(id).reuseRatio;
            mean_reuse /= double(sessions);

            const ServeMetrics &m = server.metrics();
            const double fps = double(m.framesCompleted()) / secs;
            t.addRow({std::to_string(sessions),
                      std::to_string(threads),
                      formatDouble(fps, 0),
                      formatDouble(m.latency().percentile(0.50), 0),
                      formatDouble(m.latency().percentile(0.95), 0),
                      formatDouble(m.latency().percentile(0.99), 0),
                      formatPercent(mean_reuse),
                      formatDouble((mean_reuse - baseline) * 100.0, 2) +
                          "pp"});
        }
    }
    t.print(std::cout);
    std::cout << "Expected shape: frames/s grows with workers (up to "
                 "the hardware threads available); mean per-session "
                 "reuse stays within 2pp of the single-stream "
                 "baseline.\n\n";

    // ---- 3: budget-forced eviction, degradation and re-warm ---------
    // Phased activity: two groups of 8 sessions take turns being
    // active (users come and go) under a budget that holds only one
    // group's reuse buffers.  When group A returns in phase 3 its
    // buffers are long evicted: its first frame back runs cold
    // (degraded), re-warms, and pushes group B out in turn.
    const size_t kEvictSessions = 16;
    const size_t kGroup = kEvictSessions / 2;
    const size_t kPhaseFrames = 16;
    ReuseState probe = engine.makeState();
    ExecutionTrace probe_trace;
    engine.execute(probe, inputs[0][0], probe_trace);
    const int64_t per_session = probe.memoryBytes();

    StreamingServer::Config scfg;
    scfg.workerThreads = 4;
    scfg.memoryBudgetBytes = per_session * int64_t(kGroup) +
                             per_session / 2;
    StreamingServer server(engine, scfg);

    std::vector<SessionId> ids;
    std::vector<std::vector<std::future<Tensor>>> futures(
        kEvictSessions);
    std::vector<std::vector<Tensor>> sent(kEvictSessions);
    for (size_t s = 0; s < kEvictSessions; ++s)
        ids.push_back(server.openSession(
            "default",
            MultiSessionGenerator::sessionSeed(kBaseSeed, s)));

    // Phase 1: group A active.  Phase 2: group B active (its warm-up
    // pushes A's buffers out).  Phase 3: group A returns.
    auto run_phase = [&](size_t first_session, size_t first_frame) {
        for (size_t i = 0; i < kPhaseFrames; ++i) {
            for (size_t s = first_session;
                 s < first_session + kGroup; ++s) {
                const Tensor &in = inputs[s][first_frame + i];
                sent[s].push_back(in);
                futures[s].push_back(server.submitFrame(ids[s], in));
            }
        }
        server.drain();
    };
    run_phase(0, 0);
    run_phase(kGroup, 0);
    run_phase(0, kPhaseFrames);

    // Verify: replay each stream on a dedicated state, resetting at
    // exactly the frames the server executed cold; outputs must be
    // bit-identical.
    size_t mismatches = 0;
    size_t cold_total = 0;
    double returning_reuse = 0.0;
    for (size_t s = 0; s < kEvictSessions; ++s) {
        const auto snap = server.sessionSnapshot(ids[s]);
        cold_total += snap.coldFrames.size();
        if (s < kGroup)
            returning_reuse += snap.reuseRatio;
        ReuseState state = engine.makeState();
        ExecutionTrace trace;
        for (size_t i = 0; i < sent[s].size(); ++i) {
            for (uint64_t cold : snap.coldFrames)
                if (cold == i)
                    state.reset();
            const Tensor want = engine.execute(state, sent[s][i], trace);
            const Tensor got = futures[s][i].get();
            for (int64_t j = 0; j < want.numel(); ++j)
                if (got[j] != want[j])
                    ++mismatches;
        }
    }
    returning_reuse /= double(kGroup);

    std::cout << "Budget-forced eviction (" << kEvictSessions
              << " sessions in two phased groups, budget "
              << formatBytes(double(scfg.memoryBudgetBytes))
              << " holds one group, 4 workers):\n"
              << "  evictions:              "
              << server.sessionManager().evictionCount() << "\n"
              << "  cold (degraded) frames: " << cold_total << " of "
              << kEvictSessions * kPhaseFrames + kGroup * kPhaseFrames
              << "\n"
              << "  returning group's reuse: "
              << formatPercent(returning_reuse) << " over "
              << 2 * kPhaseFrames << " frames (baseline "
              << formatPercent(baseline) << " without eviction)\n"
              << "  outputs vs reset-replay reference: "
              << (mismatches == 0 ? "bit-identical"
                                  : std::to_string(mismatches) +
                                        " MISMATCHES")
              << "\n\n";

    // ---- 4: two models in one process through the plan cache --------
    const MultiModelStats mm = runMultiModelPhase(engine, w);
    std::cout << "Multi-model serving (Kaldi + AutoPilot, one "
                 "process, 4 workers):\n"
              << "  mixed throughput:  " << formatDouble(mm.fps, 0)
              << " frames/s (AutoPilot frames are ~100x a Kaldi "
                 "frame)\n"
              << "  plan cache:        " << mm.cache.misses
              << " compile(s), " << mm.cache.hits
              << " hit(s) for the second tenants, " << mm.cache.size
              << " plans resident\n";
    if (!trace_path.empty() &&
        obs::TraceExporter::exportFile(trace_path)) {
        std::cout << "wrote trace to " << trace_path << "\n";
    }
    return mismatches == 0 ? 0 : 1;
}
