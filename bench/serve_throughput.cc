/**
 * @file
 * Serving-runtime benchmark (an extension beyond the paper): many
 * concurrent input streams, each carrying its own reuse state, served
 * by a shared immutable engine on a worker pool.
 *
 * Three claims are measured on the Kaldi workload:
 *   1. Throughput scales with worker threads (sessions are
 *      independent, the engine is stateless, so frames of different
 *      sessions execute in parallel).
 *   2. Per-session computation reuse matches a dedicated
 *      single-stream engine (within 2pp): multiplexing sessions does
 *      not dilute the temporal similarity each stream carries.
 *   3. Under a reuse-buffer memory budget, evicted sessions degrade
 *      to from-scratch execution and re-warm with outputs
 *      bit-identical to a reference that resets at the same frames.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/table_writer.h"
#include "core/reuse_engine.h"
#include "fault/fault_injector.h"
#include "harness/workload_setup.h"
#include "ir/plan_cache.h"
#include "obs/exemplar.h"
#include "obs/flight_recorder.h"
#include "obs/trace_exporter.h"
#include "obs/trace_recorder.h"
#include "serve/streaming_server.h"
#include "workloads/multi_session_generator.h"

using namespace reuse;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Dedicated single-stream run: reuse ratio of one warm engine. */
double
singleStreamReuse(const ReuseEngine &engine,
                  const std::vector<Tensor> &frames)
{
    ReuseState state = engine.makeState();
    ReuseStatsCollector stats = engine.makeStatsCollector();
    ExecutionTrace trace;
    for (const Tensor &in : frames) {
        engine.execute(state, in, trace);
        stats.addTrace(trace);
    }
    return stats.networkComputationReuse();
}

/**
 * Multi-model phase: Kaldi and AutoPilot served from one process.
 * Engines over both models — plus a second engine per model, as a
 * second tenant of the same model would create — share compiled
 * schedules through the process-wide plan cache; the returned cache
 * counters are deltas over this phase (expected: one miss for the
 * new AutoPilot model, hits for the second tenants).
 */
struct MultiModelStats {
    double fps = 0.0;
    ir::PlanCache::Stats cache;
};

MultiModelStats
runMultiModelPhase(const ReuseEngine &kaldi, const Workload &wk)
{
    WorkloadSetupConfig cfg;
    Workload wa = setupAutopilot(cfg);
    const ir::PlanCache::Stats before =
        ir::PlanCache::instance().stats();
    ReuseEngine autopilot(*wa.bundle.network, wa.plan);
    // Second tenants of both models: cache hits, not recompiles.
    ReuseEngine kaldi2(*wk.bundle.network, wk.plan);
    ReuseEngine autopilot2(*wa.bundle.network, wa.plan);
    (void)kaldi2;
    (void)autopilot2;

    const size_t kKaldiSessions = 8, kKaldiFrames = 16;
    const size_t kAutoSessions = 4, kAutoFrames = 6;
    const uint64_t kBaseSeed = 7100;

    MultiSessionGenerator kstreams(wk.makeGenerator, kKaldiSessions,
                                   kBaseSeed);
    MultiSessionGenerator astreams(wa.makeGenerator, kAutoSessions,
                                   kBaseSeed + 1);
    std::vector<std::vector<Tensor>> kin, ain;
    for (size_t s = 0; s < kKaldiSessions; ++s)
        kin.push_back(kstreams.take(s, kKaldiFrames));
    for (size_t s = 0; s < kAutoSessions; ++s)
        ain.push_back(astreams.take(s, kAutoFrames));

    StreamingServer::Config scfg;
    scfg.workerThreads = 4;
    StreamingServer server(
        {{"kaldi", &kaldi}, {"autopilot", &autopilot}}, scfg);
    std::vector<SessionId> kids, aids;
    for (size_t s = 0; s < kKaldiSessions; ++s)
        kids.push_back(server.openSession(
            "kaldi",
            MultiSessionGenerator::sessionSeed(kBaseSeed, s)));
    for (size_t s = 0; s < kAutoSessions; ++s)
        aids.push_back(server.openSession(
            "autopilot",
            MultiSessionGenerator::sessionSeed(kBaseSeed + 1, s)));

    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kKaldiFrames; ++i) {
        for (size_t s = 0; s < kKaldiSessions; ++s)
            server.submitFrame(kids[s], kin[s][i]);
        if (i < kAutoFrames)
            for (size_t s = 0; s < kAutoSessions; ++s)
                server.submitFrame(aids[s], ain[s][i]);
    }
    server.drain();
    const double secs = secondsSince(t0);

    MultiModelStats out;
    out.fps = double(server.metrics().framesCompleted()) / secs;
    const ir::PlanCache::Stats after =
        ir::PlanCache::instance().stats();
    out.cache.hits = after.hits - before.hits;
    out.cache.misses = after.misses - before.misses;
    out.cache.size = after.size;
    return out;
}

/**
 * Tail-latency phase (`--slo`): open-loop, paced load against the
 * sharded EDF scheduler.  Unlike the closed-loop flood above — which
 * measures saturated throughput and therefore reports queueing delay,
 * not service latency — this phase first calibrates the per-frame
 * service time on this machine, then offers frames at a fixed ~50%
 * utilization of the worker pool, round-robin across >= 1k sessions
 * in an Interactive/Standard/Batch mix.  What is measured is the
 * thing the SLO classes promise: submit-to-completion latency per
 * class and the fraction of frames that missed their class deadline.
 */
struct SloClassStats {
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t misses = 0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double missRate() const
    {
        return completed == 0 ? 0.0
                              : double(misses) / double(completed);
    }
};

struct SloStats {
    size_t sessions = 0;
    size_t workers = 0;
    size_t shards = 0;
    uint64_t offered = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    int64_t service_us = 0;
    double offered_fps = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double miss_rate = 0.0;
    SloClassStats cls[kSloClassCount];
};

/** Exemplar-capture options (see obs/exemplar.h). */
struct ExemplarOptions {
    /** Arm the recorder in every server this process builds. */
    bool enabled = false;
    /** Per-class latency threshold (0 = commit on miss/shed only). */
    int64_t latencyUs = 0;
    /**
     * >0: measure capture overhead — the throughput phase runs twice
     * (disarmed, then armed) and 1 - fps_on/fps_off must not exceed
     * this fraction.
     */
    double overheadGate = 0.0;

    void applyTo(StreamingServer::Config &scfg) const
    {
        if (!enabled)
            return;
        scfg.exemplars.enabled = true;
        for (size_t c = 0; c < kSloClassCount; ++c)
            scfg.exemplars.latencyThresholdMicros[c] = latencyUs;
    }
};

/** Process-wide disarm, for the overhead baseline run. */
void
disarmExemplars()
{
    obs::ExemplarRecorder::Policy off;
    off.armed = false;
    obs::ExemplarRecorder::instance().configure(off);
}

/** Session index -> SLO class: 1/2 Interactive, 1/4 each of rest. */
SloClass
sloClassFor(size_t session)
{
    if (session % 2 == 0)
        return SloClass::Interactive;
    return session % 4 == 1 ? SloClass::Standard : SloClass::Batch;
}

SloStats
runSloPhase(const ReuseEngine &engine, const Workload &w,
            size_t sessions, size_t frames_per_session,
            const ExemplarOptions &ex)
{
    SloStats out;
    out.sessions = sessions;
    out.workers = std::max(
        2u, std::min(4u, std::thread::hardware_concurrency()));

    const uint64_t kBaseSeed = 5200;
    MultiSessionGenerator streams(w.makeGenerator, sessions,
                                  kBaseSeed);
    // Frame 0 of every stream is unpaced warmup (a cold frame costs
    // a multiple of a warm one — reuse has nothing to correct from —
    // and 1k simultaneous colds would be a transient overload that
    // says nothing about steady-state tail latency); frames
    // 1..frames_per_session are the measured, paced load.
    std::vector<std::vector<Tensor>> inputs;
    for (size_t s = 0; s < sessions; ++s)
        inputs.push_back(streams.take(s, frames_per_session + 1));

    // Calibrate the per-frame service time on this machine: one warm
    // stream (cold first frame included, so the mean is slightly
    // conservative) through a dedicated state.
    {
        const size_t kCalib = 24;
        MultiSessionGenerator cal(w.makeGenerator, 1, kBaseSeed + 1);
        const std::vector<Tensor> frames = cal.take(0, kCalib);
        ReuseState state = engine.makeState();
        ExecutionTrace trace;
        const auto t0 = std::chrono::steady_clock::now();
        for (const Tensor &in : frames)
            engine.execute(state, in, trace);
        out.service_us = std::max<int64_t>(
            1, int64_t(secondsSince(t0) * 1e6 / double(kCalib)));
    }

    // Offered rate: 50% utilization of the pool at the calibrated
    // service time.  Open loop: arrival times are fixed up front and
    // do not react to completions.
    const double interval_us =
        double(out.service_us) / (0.5 * double(out.workers));
    out.offered_fps = 1e6 / interval_us;

    StreamingServer::Config scfg;
    scfg.workerThreads = out.workers;
    scfg.initialServiceEstimateMicros = out.service_us;
    ex.applyTo(scfg);
    StreamingServer server(engine, scfg);
    out.shards = server.shardCount();

    std::vector<SessionId> ids;
    for (size_t s = 0; s < sessions; ++s)
        ids.push_back(server.openSession(
            "default", MultiSessionGenerator::sessionSeed(kBaseSeed, s),
            sloClassFor(s), ShardPlacer::inputSketch(inputs[s][0])));

    // Warm every session (frame 0, unpaced), then zero the counters:
    // the measured phase below sees only steady-state frames.
    for (size_t s = 0; s < sessions; ++s)
        server.submitFrame(ids[s], inputs[s][0]);
    server.drain();
    server.metrics().reset();

    const uint64_t total =
        uint64_t(sessions) * uint64_t(frames_per_session);
    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t k = 0; k < total; ++k) {
        const size_t s = size_t(k % sessions);
        const size_t i = 1 + size_t(k / sessions);
        std::this_thread::sleep_until(
            t0 + std::chrono::nanoseconds(
                     int64_t(double(k) * interval_us * 1e3)));
        StreamingServer::SubmitOutcome outcome =
            server.trySubmitFrame(ids[s], inputs[s][i]);
        // Shed frames are dropped, not retried: an open-loop client
        // models callers with their own deadline, and the shed rate
        // is itself reported.
        (void)outcome;
    }
    server.drain();

    const ServeMetrics &m = server.metrics();
    out.offered = total;
    out.completed = m.framesCompleted();
    out.shed = m.framesShed();
    out.p50_us = m.latency().percentile(0.50);
    out.p99_us = m.latency().percentile(0.99);
    out.miss_rate = out.completed == 0
                        ? 0.0
                        : double(m.deadlineMisses()) /
                              double(out.completed);
    for (size_t c = 0; c < kSloClassCount; ++c) {
        const SloClass slo = static_cast<SloClass>(c);
        out.cls[c].completed = m.classCompleted(slo);
        out.cls[c].shed = m.classShed(slo);
        out.cls[c].misses = m.classDeadlineMisses(slo);
        out.cls[c].p50_us = m.latency(slo).percentile(0.50);
        out.cls[c].p99_us = m.latency(slo).percentile(0.99);
    }
    return out;
}

/** The `--slo` record, as an indented JSON object fragment. */
std::string
sloJson(const SloStats &s)
{
    char buf[1024];
    std::string json;
    std::snprintf(
        buf, sizeof(buf),
        "  \"slo\": {\n"
        "    \"sessions\": %zu,\n    \"workers\": %zu,\n"
        "    \"shards\": %zu,\n"
        "    \"service_estimate_us\": %lld,\n"
        "    \"offered_fps\": %.1f,\n"
        "    \"frames_offered\": %llu,\n"
        "    \"frames_completed\": %llu,\n"
        "    \"frames_shed\": %llu,\n"
        "    \"latency_p50_us\": %.1f,\n"
        "    \"latency_p99_us\": %.1f,\n"
        "    \"deadline_miss_rate\": %.4f,\n",
        s.sessions, s.workers, s.shards,
        static_cast<long long>(s.service_us), s.offered_fps,
        static_cast<unsigned long long>(s.offered),
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.shed), s.p50_us, s.p99_us,
        s.miss_rate);
    json += buf;
    for (size_t c = 0; c < kSloClassCount; ++c) {
        const SloClassStats &k = s.cls[c];
        std::snprintf(
            buf, sizeof(buf),
            "    \"%s\": {\n"
            "      \"completed\": %llu,\n      \"shed\": %llu,\n"
            "      \"deadline_misses\": %llu,\n"
            "      \"latency_p50_us\": %.1f,\n"
            "      \"latency_p99_us\": %.1f,\n"
            "      \"deadline_miss_rate\": %.4f\n    }%s\n",
            sloClassName(static_cast<SloClass>(c)),
            static_cast<unsigned long long>(k.completed),
            static_cast<unsigned long long>(k.shed),
            static_cast<unsigned long long>(k.misses), k.p50_us,
            k.p99_us, k.missRate(),
            c + 1 < kSloClassCount ? "," : "");
        json += buf;
    }
    json += "  }";
    return json;
}

/**
 * Applies the SLO regression gates (`--max-p99-us` bounds the
 * *Interactive* class p99 — under EDF the long-budget classes absorb
 * queueing bursts by design, so their tail is load-dependent while
 * the interactive tail is the scheduler's promise; `--max-miss-rate`
 * bounds the all-class deadline-miss fraction; <= 0 disables a
 * gate).  Prints one summary line; returns 0 when every enabled
 * gate passes.
 */
int
gateSlo(const SloStats &s, double max_p99_us, double max_miss_rate)
{
    const SloClassStats &icls =
        s.cls[static_cast<size_t>(SloClass::Interactive)];
    std::printf("slo: %zu sessions, %zu workers/%zu shards, "
                "service ~%lld us, offered %.0f f/s: p50 %.0f us, "
                "interactive p99 %.0f us, miss rate %.2f%%, "
                "shed %llu\n",
                s.sessions, s.workers, s.shards,
                static_cast<long long>(s.service_us), s.offered_fps,
                s.p50_us, icls.p99_us, s.miss_rate * 100.0,
                static_cast<unsigned long long>(s.shed));
    int rc = 0;
    if (max_p99_us > 0.0 && icls.p99_us > max_p99_us) {
        std::cerr << "serve_throughput: REGRESSION: interactive p99 "
                  << icls.p99_us << " us > required " << max_p99_us
                  << " us\n";
        rc = 1;
    }
    if (max_miss_rate > 0.0 && s.miss_rate > max_miss_rate) {
        std::cerr << "serve_throughput: REGRESSION: deadline miss "
                  << "rate " << s.miss_rate << " > required "
                  << max_miss_rate << "\n";
        rc = 1;
    }
    return rc;
}

/**
 * CI perf-smoke mode: one focused throughput measurement (64 sessions
 * x 4 workers on Kaldi) plus an overload phase measuring the shed
 * rate and a two-model (Kaldi + AutoPilot) phase through the shared
 * plan cache, written as one machine-readable JSON record.
 * `min_fps` > 0 turns the record into a regression gate (on the
 * single-model measurement only; the multi-model mix is dominated by
 * AutoPilot's much larger per-frame cost).  With `slo` the paced
 * tail-latency phase runs too, its per-class percentiles and miss
 * rates land in the record under "slo", and the p99/miss-rate gates
 * apply.
 */
struct SloOptions {
    bool enabled = false;
    size_t sessions = 1024;
    size_t framesPerSession = 4;
    double maxP99Us = 0.0;
    double maxMissRate = 0.0;
};

int
runJsonBench(const std::string &json_path, double min_fps,
             const SloOptions &slo, const ExemplarOptions &ex)
{
    WorkloadSetupConfig cfg;
    Workload w = setupKaldi(cfg);
    ReuseEngine engine(*w.bundle.network, w.plan);

    const size_t kFrames = 48;
    const size_t kSessions = 64;
    const size_t kWorkers = 4;
    const uint64_t kBaseSeed = 2024;

    MultiSessionGenerator streams(w.makeGenerator, kSessions,
                                  kBaseSeed);
    std::vector<std::vector<Tensor>> inputs;
    for (size_t s = 0; s < kSessions; ++s)
        inputs.push_back(streams.take(s, kFrames));

    // Throughput phase: every stream's frames through a shared
    // 4-worker server.  Run once by default; twice (disarmed then
    // armed) when measuring exemplar-capture overhead.
    double fps = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
    auto measure_throughput = [&](bool armed) {
        StreamingServer::Config scfg;
        scfg.workerThreads = kWorkers;
        if (armed)
            ex.applyTo(scfg);
        StreamingServer server(engine, scfg);
        std::vector<SessionId> ids;
        for (size_t s = 0; s < kSessions; ++s)
            ids.push_back(server.openSession(
                "default",
                MultiSessionGenerator::sessionSeed(kBaseSeed, s)));
        const auto t0 = std::chrono::steady_clock::now();
        for (size_t i = 0; i < kFrames; ++i)
            for (size_t s = 0; s < kSessions; ++s)
                server.submitFrame(ids[s], inputs[s][i]);
        server.drain();
        const double secs = secondsSince(t0);
        const ServeMetrics &m = server.metrics();
        p50 = m.latency().percentile(0.50);
        p95 = m.latency().percentile(0.95);
        p99 = m.latency().percentile(0.99);
        return double(m.framesCompleted()) / secs;
    };
    double fps_off = 0.0;
    double exemplar_overhead = 0.0;
    if (ex.overheadGate > 0.0) {
        disarmExemplars();
        fps_off = measure_throughput(false);
    }
    fps = measure_throughput(ex.enabled);
    if (ex.overheadGate > 0.0 && fps_off > 0.0)
        exemplar_overhead = 1.0 - fps / fps_off;

    // Overload phase: a deliberately under-provisioned server (one
    // worker, tight per-session pending bound) fed without pacing;
    // the shed rate is the fraction of submits rejected with a
    // backoff hint.
    uint64_t shed_attempts = 0;
    uint64_t shed_count = 0;
    {
        StreamingServer::Config scfg;
        scfg.workerThreads = 1;
        scfg.maxPendingPerSession = 2;
        StreamingServer server(engine, scfg);
        std::vector<SessionId> ids;
        const size_t kShedSessions = 8;
        for (size_t s = 0; s < kShedSessions; ++s)
            ids.push_back(server.openSession(
                "default",
                MultiSessionGenerator::sessionSeed(kBaseSeed, s)));
        std::vector<std::future<Tensor>> accepted;
        for (size_t i = 0; i < kFrames; ++i) {
            for (size_t s = 0; s < kShedSessions; ++s) {
                ++shed_attempts;
                StreamingServer::SubmitOutcome outcome =
                    server.trySubmitFrame(ids[s], inputs[s][i]);
                if (outcome.accepted())
                    accepted.push_back(std::move(outcome.result));
                else
                    ++shed_count;
            }
        }
        server.drain();
        shed_count = server.metrics().framesShed();
    }
    const double shed_rate =
        shed_attempts == 0
            ? 0.0
            : double(shed_count) / double(shed_attempts);

    // Multi-model phase: both zoo models in this one process, their
    // compiled schedules shared through the plan cache.
    const MultiModelStats mm = runMultiModelPhase(engine, w);

    // Optional paced tail-latency phase (gated below, after the
    // record is written, so the numbers always land on disk).
    SloStats slo_stats;
    if (slo.enabled)
        slo_stats = runSloPhase(engine, w, slo.sessions,
                                slo.framesPerSession, ex);

    std::ofstream out(json_path, std::ios::trunc);
    if (!out) {
        std::cerr << "serve_throughput: cannot write " << json_path
                  << "\n";
        return 1;
    }
    char buf[768];
    std::snprintf(
        buf, sizeof(buf),
        "{\n  \"bench\": \"serve_throughput\",\n"
        "  \"workload\": \"Kaldi\",\n"
        "  \"sessions\": %zu,\n  \"workers\": %zu,\n"
        "  \"frames\": %zu,\n"
        "  \"frames_per_second\": %.1f,\n"
        "  \"latency_p50_us\": %.1f,\n"
        "  \"latency_p95_us\": %.1f,\n"
        "  \"latency_p99_us\": %.1f,\n"
        "  \"shed_attempts\": %llu,\n"
        "  \"shed_rate\": %.4f,\n"
        "  \"multi_model_fps\": %.1f,\n"
        "  \"plan_cache_hits\": %llu,\n"
        "  \"plan_cache_misses\": %llu",
        kSessions, kWorkers, kSessions * kFrames, fps, p50, p95, p99,
        static_cast<unsigned long long>(shed_attempts), shed_rate,
        mm.fps, static_cast<unsigned long long>(mm.cache.hits),
        static_cast<unsigned long long>(mm.cache.misses));
    out << buf;
    if (ex.overheadGate > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      ",\n  \"fps_exemplars_off\": %.1f,\n"
                      "  \"exemplar_overhead\": %.4f",
                      fps_off, exemplar_overhead);
        out << buf;
    }
    if (slo.enabled)
        out << ",\n" << sloJson(slo_stats);
    out << "\n}\n";
    std::printf("wrote %s (%.0f frames/s, p99 %.0f us, shed rate "
                "%.2f%%)\n",
                json_path.c_str(), fps, p99, shed_rate * 100.0);
    int rc = 0;
    if (min_fps > 0.0 && fps < min_fps) {
        std::cerr << "serve_throughput: REGRESSION: " << fps
                  << " frames/s < required " << min_fps << "\n";
        rc = 1;
    }
    if (ex.overheadGate > 0.0) {
        std::printf("exemplar overhead: %.2f%% (off %.0f f/s, "
                    "on %.0f f/s, gate %.0f%%)\n",
                    exemplar_overhead * 100.0, fps_off, fps,
                    ex.overheadGate * 100.0);
        if (exemplar_overhead > ex.overheadGate) {
            std::cerr << "serve_throughput: REGRESSION: exemplar "
                      << "capture overhead " << exemplar_overhead
                      << " > allowed " << ex.overheadGate << "\n";
            rc = 1;
        }
    }
    if (slo.enabled &&
        gateSlo(slo_stats, slo.maxP99Us, slo.maxMissRate) != 0)
        rc = 1;
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string trace_path;
    std::string postmortem_path;
    double min_fps = 0.0;
    uint64_t crash_after = 0;
    SloOptions slo;
    ExemplarOptions ex;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--json=", 0) == 0)
            json_path = arg.substr(7);
        else if (arg.rfind("--min-fps=", 0) == 0)
            min_fps = std::stod(arg.substr(10));
        else if (arg.rfind("--trace-out=", 0) == 0)
            trace_path = arg.substr(12);
        else if (arg == "--slo")
            slo.enabled = true;
        else if (arg.rfind("--slo-sessions=", 0) == 0)
            slo.sessions = std::stoul(arg.substr(15));
        else if (arg.rfind("--slo-frames=", 0) == 0)
            slo.framesPerSession = std::stoul(arg.substr(13));
        else if (arg.rfind("--max-p99-us=", 0) == 0)
            slo.maxP99Us = std::stod(arg.substr(13));
        else if (arg.rfind("--max-miss-rate=", 0) == 0)
            slo.maxMissRate = std::stod(arg.substr(16));
        else if (arg == "--exemplars")
            ex.enabled = true;
        else if (arg.rfind("--exemplar-latency-us=", 0) == 0)
            ex.latencyUs = std::stoll(arg.substr(22));
        else if (arg.rfind("--exemplar-overhead-gate=", 0) == 0)
            ex.overheadGate = std::stod(arg.substr(25));
        else if (arg.rfind("--postmortem=", 0) == 0)
            postmortem_path = arg.substr(13);
        else if (arg.rfind("--crash-after=", 0) == 0)
            crash_after = std::stoull(arg.substr(14));
    }
    // The overhead gate compares armed vs disarmed, so its second run
    // is armed by definition.
    if (ex.overheadGate > 0.0)
        ex.enabled = true;
    if (!postmortem_path.empty())
        obs::FlightRecorder::install(postmortem_path);
    if (crash_after > 0) {
        // Deterministic process death inside the engine: exercises
        // the flight recorder's fatal path end-to-end (CI crash leg).
        // Requires a REUSE_FAULT_INJECTION build to actually fire.
        fault::FaultPlan plan;
        plan.kind = fault::FaultKind::EngineFatal;
        plan.fireAtInvocation = crash_after;
        fault::FaultInjector::global().arm(plan);
    }
    if (!trace_path.empty() &&
        !obs::TraceRecorder::instance().enabled()) {
        // The flag alone should produce a trace; default to 1/16
        // frame sampling unless REUSE_TRACE_SAMPLE already chose.
        obs::TraceRecorder::instance().setSampleEvery(16);
    }
    if (!json_path.empty()) {
        const int rc = runJsonBench(json_path, min_fps, slo, ex);
        if (!trace_path.empty())
            obs::TraceExporter::exportFile(trace_path);
        return rc;
    }
    if (slo.enabled) {
        // Standalone `--slo` (no JSON record): run only the paced
        // tail-latency phase and apply the gates.
        WorkloadSetupConfig slo_cfg;
        Workload sw = setupKaldi(slo_cfg);
        ReuseEngine slo_engine(*sw.bundle.network, sw.plan);
        const SloStats s = runSloPhase(slo_engine, sw, slo.sessions,
                                       slo.framesPerSession, ex);
        int rc = gateSlo(s, slo.maxP99Us, slo.maxMissRate);
        if (!trace_path.empty() &&
            obs::TraceExporter::exportFile(trace_path))
            std::cout << "wrote trace to " << trace_path << "\n";
        return rc;
    }

    std::cout << "Multi-stream serving throughput (Kaldi workload)\n"
              << "Hardware threads available: "
              << std::thread::hardware_concurrency() << "\n\n";

    WorkloadSetupConfig cfg;
    Workload w = setupKaldi(cfg);
    ReuseEngine engine(*w.bundle.network, w.plan);

    const size_t kFrames = 48;
    const size_t kMaxSessions = 64;
    const uint64_t kBaseSeed = 2024;

    // Pre-generate every session's stream so timed regions contain
    // only serving work.
    MultiSessionGenerator streams(w.makeGenerator, kMaxSessions,
                                  kBaseSeed);
    std::vector<std::vector<Tensor>> inputs;
    for (size_t s = 0; s < kMaxSessions; ++s)
        inputs.push_back(streams.take(s, kFrames));

    // Single-stream baseline: a dedicated engine per stream, averaged
    // over a few streams to smooth per-seed variation.
    double baseline = 0.0;
    const size_t kBaselineStreams = 4;
    for (size_t s = 0; s < kBaselineStreams; ++s)
        baseline += singleStreamReuse(engine, inputs[s]);
    baseline /= double(kBaselineStreams);
    std::cout << "Single-stream baseline reuse: "
              << formatPercent(baseline) << " over " << kFrames
              << " frames\n\n";

    // ---- 1+2: thread x session sweep --------------------------------
    TableWriter t({"Sessions", "Workers", "Frames/s", "p50 us",
                   "p95 us", "p99 us", "Mean reuse", "vs baseline"});
    for (size_t sessions : {8ul, 64ul}) {
        for (size_t threads : {1ul, 2ul, 4ul, 8ul}) {
            StreamingServer::Config scfg;
            scfg.workerThreads = threads;
            StreamingServer server(engine, scfg);

            std::vector<SessionId> ids;
            for (size_t s = 0; s < sessions; ++s)
                ids.push_back(server.openSession(
                    "default",
                    MultiSessionGenerator::sessionSeed(kBaseSeed, s)));

            const auto t0 = std::chrono::steady_clock::now();
            for (size_t i = 0; i < kFrames; ++i)
                for (size_t s = 0; s < sessions; ++s)
                    server.submitFrame(ids[s], inputs[s][i]);
            server.drain();
            const double secs = secondsSince(t0);

            double mean_reuse = 0.0;
            for (SessionId id : ids)
                mean_reuse += server.sessionSnapshot(id).reuseRatio;
            mean_reuse /= double(sessions);

            const ServeMetrics &m = server.metrics();
            const double fps = double(m.framesCompleted()) / secs;
            t.addRow({std::to_string(sessions),
                      std::to_string(threads),
                      formatDouble(fps, 0),
                      formatDouble(m.latency().percentile(0.50), 0),
                      formatDouble(m.latency().percentile(0.95), 0),
                      formatDouble(m.latency().percentile(0.99), 0),
                      formatPercent(mean_reuse),
                      formatDouble((mean_reuse - baseline) * 100.0, 2) +
                          "pp"});
        }
    }
    t.print(std::cout);
    std::cout << "Expected shape: frames/s grows with workers (up to "
                 "the hardware threads available); mean per-session "
                 "reuse stays within 2pp of the single-stream "
                 "baseline.\n\n";

    // ---- 3: budget-forced eviction, degradation and re-warm ---------
    // Phased activity: two groups of 8 sessions take turns being
    // active (users come and go) under a budget that holds only one
    // group's reuse buffers.  When group A returns in phase 3 its
    // buffers are long evicted: its first frame back runs cold
    // (degraded), re-warms, and pushes group B out in turn.
    const size_t kEvictSessions = 16;
    const size_t kGroup = kEvictSessions / 2;
    const size_t kPhaseFrames = 16;
    ReuseState probe = engine.makeState();
    ExecutionTrace probe_trace;
    engine.execute(probe, inputs[0][0], probe_trace);
    const int64_t per_session = probe.memoryBytes();

    StreamingServer::Config scfg;
    scfg.workerThreads = 4;
    scfg.memoryBudgetBytes = per_session * int64_t(kGroup) +
                             per_session / 2;
    StreamingServer server(engine, scfg);

    std::vector<SessionId> ids;
    std::vector<std::vector<std::future<Tensor>>> futures(
        kEvictSessions);
    std::vector<std::vector<Tensor>> sent(kEvictSessions);
    for (size_t s = 0; s < kEvictSessions; ++s)
        ids.push_back(server.openSession(
            "default",
            MultiSessionGenerator::sessionSeed(kBaseSeed, s)));

    // Phase 1: group A active.  Phase 2: group B active (its warm-up
    // pushes A's buffers out).  Phase 3: group A returns.
    auto run_phase = [&](size_t first_session, size_t first_frame) {
        for (size_t i = 0; i < kPhaseFrames; ++i) {
            for (size_t s = first_session;
                 s < first_session + kGroup; ++s) {
                const Tensor &in = inputs[s][first_frame + i];
                sent[s].push_back(in);
                futures[s].push_back(server.submitFrame(ids[s], in));
            }
        }
        server.drain();
    };
    run_phase(0, 0);
    run_phase(kGroup, 0);
    run_phase(0, kPhaseFrames);

    // Verify: replay each stream on a dedicated state, resetting at
    // exactly the frames the server executed cold; outputs must be
    // bit-identical.
    size_t mismatches = 0;
    size_t cold_total = 0;
    double returning_reuse = 0.0;
    for (size_t s = 0; s < kEvictSessions; ++s) {
        const auto snap = server.sessionSnapshot(ids[s]);
        cold_total += snap.coldFrames.size();
        if (s < kGroup)
            returning_reuse += snap.reuseRatio;
        ReuseState state = engine.makeState();
        ExecutionTrace trace;
        for (size_t i = 0; i < sent[s].size(); ++i) {
            for (uint64_t cold : snap.coldFrames)
                if (cold == i)
                    state.reset();
            const Tensor want = engine.execute(state, sent[s][i], trace);
            const Tensor got = futures[s][i].get();
            for (int64_t j = 0; j < want.numel(); ++j)
                if (got[j] != want[j])
                    ++mismatches;
        }
    }
    returning_reuse /= double(kGroup);

    std::cout << "Budget-forced eviction (" << kEvictSessions
              << " sessions in two phased groups, budget "
              << formatBytes(double(scfg.memoryBudgetBytes))
              << " holds one group, 4 workers):\n"
              << "  evictions:              "
              << server.sessionManager().evictionCount() << "\n"
              << "  cold (degraded) frames: " << cold_total << " of "
              << kEvictSessions * kPhaseFrames + kGroup * kPhaseFrames
              << "\n"
              << "  returning group's reuse: "
              << formatPercent(returning_reuse) << " over "
              << 2 * kPhaseFrames << " frames (baseline "
              << formatPercent(baseline) << " without eviction)\n"
              << "  outputs vs reset-replay reference: "
              << (mismatches == 0 ? "bit-identical"
                                  : std::to_string(mismatches) +
                                        " MISMATCHES")
              << "\n\n";

    // ---- 4: two models in one process through the plan cache --------
    const MultiModelStats mm = runMultiModelPhase(engine, w);
    std::cout << "Multi-model serving (Kaldi + AutoPilot, one "
                 "process, 4 workers):\n"
              << "  mixed throughput:  " << formatDouble(mm.fps, 0)
              << " frames/s (AutoPilot frames are ~100x a Kaldi "
                 "frame)\n"
              << "  plan cache:        " << mm.cache.misses
              << " compile(s), " << mm.cache.hits
              << " hit(s) for the second tenants, " << mm.cache.size
              << " plans resident\n";
    if (!trace_path.empty() &&
        obs::TraceExporter::exportFile(trace_path)) {
        std::cout << "wrote trace to " << trace_path << "\n";
    }
    return mismatches == 0 ? 0 : 1;
}
