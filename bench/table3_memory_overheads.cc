/**
 * @file
 * Reproduces Table III: I/O Buffer and main-memory storage for each
 * DNN, baseline vs. reuse scheme, computed from the networks' shapes
 * and quantization plans by the storage-footprint model.
 */

#include <iostream>

#include "common/table_writer.h"
#include "harness/paper_reference.h"
#include "harness/workload_setup.h"
#include "sim/io_buffer_model.h"
#include "workloads/model_zoo.h"

int
main()
{
    using namespace reuse;
    std::cout << "Table III reproduction: memory overheads of the "
                 "reuse scheme\n";

    TableWriter t({"DNN", "I/O base", "I/O reuse", "Paper I/O",
                   "MainMem base", "MainMem reuse", "Paper MainMem"});
    AcceleratorParams p;
    WorkloadSetupConfig cfg;
    // Table III describes the paper-scale networks; build C3D at full
    // resolution (shape analysis only, no functional execution).
    cfg.c3dSpatialDivisor = 1;
    cfg.calibrationFrames = 8;

    for (const auto &name : modelZooNames()) {
        Workload w = setupWorkload(name, cfg);
        const auto fp = computeStorageFootprint(*w.bundle.network,
                                                w.plan, p);
        const auto &ref = paperReferences().at(name);
        auto kb = [](int64_t b) {
            return formatDouble(static_cast<double>(b) / 1024.0, 0) +
                   " KB";
        };
        auto mb = [](int64_t b) {
            return formatDouble(
                       static_cast<double>(b) / (1024.0 * 1024.0), 1) +
                   " MB";
        };
        t.addRow({name, kb(fp.ioBufferBaselineBytes),
                  kb(fp.ioBufferReuseBytes),
                  formatDouble(ref.ioBufferBaselineKB, 0) + "/" +
                      formatDouble(ref.ioBufferReuseKB, 0) + " KB",
                  mb(fp.mainMemoryBaselineBytes),
                  mb(fp.mainMemoryReuseBytes),
                  formatDouble(ref.mainMemoryBaselineMB, 1) + "/" +
                      formatDouble(ref.mainMemoryReuseMB, 1) + " MB"});
    }
    t.print(std::cout);
    std::cout << "Centroid-table storage: 1.25 KB in the paper; this "
                 "model sizes it per enabled layer.\n";
    return 0;
}
