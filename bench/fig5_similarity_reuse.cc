/**
 * @file
 * Reproduces Figure 5: input similarity and computation reuse for the
 * four DNNs plus the overall averages (paper: 61% similarity, 66%
 * computation reuse on average).
 */

#include <iostream>

#include "common/table_writer.h"
#include "harness/experiment.h"
#include "harness/paper_reference.h"
#include "harness/workload_setup.h"

int
main()
{
    using namespace reuse;
    std::cout << "Figure 5 reproduction: input similarity and "
                 "computation reuse per DNN\n";

    TableWriter t({"DNN", "Similarity", "Comp. Reuse"});
    double sim_sum = 0.0, reuse_sum = 0.0;
    WorkloadSetupConfig cfg;
    MeasureOptions opts;
    opts.withReference = false;

    struct Spec {
        const char *name;
        size_t count;
    };
    const Spec specs[] = {{"Kaldi", 48}, {"EESEN", 40}, {"C3D", 5},
                          {"AutoPilot", 12}};
    for (const auto &spec : specs) {
        Workload w = setupWorkload(spec.name, cfg);
        const auto m = measureWorkload(*w.bundle.network, w.plan,
                                       w.generator->take(spec.count),
                                       opts);
        const double sim = m.stats.meanSimilarity();
        const double reuse = m.stats.meanComputationReuse();
        sim_sum += sim;
        reuse_sum += reuse;
        t.addRow({spec.name, formatPercent(sim),
                  formatPercent(reuse)});
    }
    t.addRow({"Average", formatPercent(sim_sum / 4.0),
              formatPercent(reuse_sum / 4.0)});
    t.print(std::cout);

    const PaperAverages paper;
    std::cout << "Paper averages: similarity "
              << formatPercent(paper.inputSimilarity)
              << ", computation reuse "
              << formatPercent(paper.computationReuse) << "\n";
    return 0;
}
