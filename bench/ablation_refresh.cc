/**
 * @file
 * Refresh-period ablation (drift control, an extension beyond the
 * paper): incremental corrections accumulate floating-point error
 * across executions; recomputing enabled layers from scratch every K
 * executions bounds the drift at the cost of extra work.  This bench
 * sweeps K on Kaldi and reports output drift versus the computation
 * that refreshing gives back.
 */

#include <cmath>
#include <iostream>

#include "common/table_writer.h"
#include "core/reuse_engine.h"
#include "harness/workload_setup.h"
#include "tensor/tensor_ops.h"

int
main()
{
    using namespace reuse;
    std::cout << "Refresh-period ablation on Kaldi (drift control "
                 "extension)\n";

    WorkloadSetupConfig cfg;
    Workload w = setupKaldi(cfg);
    const Network &net = *w.bundle.network;
    const size_t frames = 300;
    const auto inputs = w.generator->take(frames);

    TableWriter t({"Refresh period", "Max drift vs exact", "Mean reuse",
                   "From-scratch execs"});
    for (int period : {0, 10, 50, 100}) {
        ReuseEngineConfig ecfg;
        ecfg.refreshPeriod = period;
        ReuseEngine engine(net, w.plan, ecfg);

        // "Exact" reference: a second engine with the same plan that
        // resets every frame, i.e. from-scratch on quantized inputs
        // (isolates incremental-correction drift from quantization).
        ReuseEngineConfig exact_cfg;
        exact_cfg.refreshPeriod = 1;
        ReuseEngine exact(net, w.plan, exact_cfg);

        double max_drift = 0.0;
        int64_t scratch_execs = 0;
        for (const Tensor &frame : inputs) {
            const Tensor out = engine.execute(frame);
            scratch_execs +=
                engine.lastTrace()[4].firstExecution ? 1 : 0;
            const Tensor ref = exact.execute(frame);
            max_drift =
                std::max(max_drift, maxAbsDifference(out, ref));
        }
        t.addRow({period == 0 ? "never" : std::to_string(period),
                  formatDouble(max_drift, 8),
                  formatPercent(
                      engine.stats().meanComputationReuse()),
                  std::to_string(scratch_execs)});
    }
    t.print(std::cout);
    std::cout << "Expected shape: drift stays tiny even without "
                 "refresh (fp32 corrections are numerically benign), "
                 "and shorter periods trade reuse for exactness.\n";
    return 0;
}
