/**
 * @file
 * Refresh ablation (drift control, an extension beyond the paper):
 * incremental corrections accumulate floating-point error across
 * executions; the engine's DriftGuard bounds it either on a frame
 * budget (recompute every K executions) or on the accumulated error
 * bound itself (sum of macsPerformed * FLT_EPSILON since the last
 * refresh).  This bench sweeps both policies on Kaldi and reports
 * measured output drift versus the computation refreshing gives back.
 */

#include <cfloat>
#include <cmath>
#include <iostream>

#include "common/table_writer.h"
#include "core/reuse_engine.h"
#include "harness/workload_setup.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace reuse;

/** Runs one engine configuration and prints a table row. */
void
runRow(TableWriter &t, const std::string &label, const Network &net,
       const QuantizationPlan &plan, const std::vector<Tensor> &inputs,
       const ReuseEngineConfig &ecfg)
{
    ReuseEngine engine(net, plan, ecfg);

    // "Exact" reference: a second engine with the same plan that
    // resets every frame, i.e. from-scratch on quantized inputs
    // (isolates incremental-correction drift from quantization).
    ReuseEngineConfig exact_cfg;
    exact_cfg.refreshPeriod = 1;
    ReuseEngine exact(net, plan, exact_cfg);

    double max_drift = 0.0;
    for (const Tensor &frame : inputs) {
        const Tensor out = engine.execute(frame);
        const Tensor ref = exact.execute(frame);
        max_drift = std::max(max_drift, maxAbsDifference(out, ref));
    }
    // DriftGuard bookkeeping comes straight from the stats collector:
    // every guard-forced refresh is a firstExecution flagged
    // driftRefresh (the cold first frame is not).
    int64_t refreshes = 0;
    int64_t scratch_execs = 0;
    for (const auto &ls : engine.stats().layers()) {
        if (!ls.reuseEnabled)
            continue;
        refreshes += ls.driftRefreshes;
        scratch_execs += ls.firstExecutions;
    }
    t.addRow({label, formatDouble(max_drift, 8),
              formatPercent(engine.stats().meanComputationReuse()),
              std::to_string(refreshes),
              std::to_string(scratch_execs)});
}

} // namespace

int
main()
{
    std::cout << "Refresh ablation on Kaldi (DriftGuard policies)\n";

    WorkloadSetupConfig cfg;
    Workload w = setupKaldi(cfg);
    const Network &net = *w.bundle.network;
    const size_t frames = 300;
    const auto inputs = w.generator->take(frames);

    TableWriter t({"Policy", "Max drift vs exact", "Mean reuse",
                   "Drift refreshes", "From-scratch execs"});

    // Frame-budget policy: refresh every K executions.
    for (const int period : {0, 10, 50, 100}) {
        ReuseEngineConfig ecfg;
        ecfg.refreshPeriod = period;
        runRow(t,
               period == 0 ? "never"
                           : "period " + std::to_string(period),
               net, w.plan, inputs, ecfg);
    }

    // Error-bound policy: refresh when the per-layer accumulated
    // bound (sum of macsPerformed * eps) exceeds the budget.
    for (const double bound : {0.5, 2.0, 8.0}) {
        ReuseEngineConfig ecfg;
        ecfg.driftBound = bound;
        runRow(t, "bound " + formatDouble(bound, 1), net, w.plan,
               inputs, ecfg);
    }

    t.print(std::cout);
    std::cout << "Expected shape: measured drift stays orders of "
                 "magnitude below the conservative bound (fp32 "
                 "corrections are numerically benign); shorter "
                 "periods / tighter bounds trade reuse for "
                 "exactness.\n";
    return 0;
}
