/**
 * @file
 * Ablation of the conv blocking scheme (Sec. V: 16x16x1 blocks are "a
 * good trade-off between on-chip storage requirements and memory
 * bandwidth usage").  Sweeps the block edge and reports the I/O
 * Buffer capacity each size needs and the DRAM activation traffic
 * (halo overhead) it causes on AutoPilot.
 */

#include <iostream>

#include "common/table_writer.h"
#include "harness/experiment.h"
#include "harness/workload_setup.h"
#include "sim/accelerator.h"
#include "sim/io_buffer_model.h"

int
main()
{
    using namespace reuse;
    std::cout << "Conv block-size ablation (Sec. V): storage vs DRAM "
                 "traffic on AutoPilot\n";

    WorkloadSetupConfig cfg;
    Workload w = setupAutopilot(cfg);
    MeasureOptions opts;
    opts.withReference = false;
    const auto m = measureWorkload(*w.bundle.network, w.plan,
                                   w.generator->take(8), opts);

    TableWriter t({"Block", "I/O buffer (reuse)", "DRAM act. bytes/exec",
                   "Cycles/exec"});
    for (int64_t edge : {4, 8, 16, 32, 64}) {
        AcceleratorParams p;
        p.blockEdge = edge;
        AcceleratorSim sim(p);
        const auto fp =
            computeStorageFootprint(*w.bundle.network, w.plan, p);
        const auto r =
            sim.estimate(*w.bundle.network, AccelMode::Reuse,
                         m.layerSimilarity, 20);
        t.addRow({std::to_string(edge) + "x" + std::to_string(edge) +
                      "x1",
                  formatBytes(static_cast<double>(fp.ioBufferReuseBytes)),
                  formatBytes(static_cast<double>(
                      r.totals.dramActivationBytes / r.executions)),
                  formatDouble(r.cyclesPerExecution(), 0)});
    }
    t.print(std::cout);
    std::cout << "Expected shape: small blocks cut buffer needs but "
                 "inflate halo traffic; large blocks do the "
                 "opposite.  16x16 balances the two (the paper's "
                 "choice).\n";
    return 0;
}
