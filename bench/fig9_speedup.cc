/**
 * @file
 * Reproduces Figure 9: speedup of the reuse-enabled accelerator over
 * the baseline accelerator for each DNN (paper: 1.9x Kaldi to 5.2x
 * AutoPilot, 3.5x average).
 */

#include <iostream>

#include "common/table_writer.h"
#include "harness/headline.h"
#include "harness/paper_reference.h"

int
main()
{
    using namespace reuse;
    std::cout << "Figure 9 reproduction: speedup of the reuse scheme "
                 "over the baseline accelerator\n"
              << "(per-layer similarity measured functionally, "
                 "paper-scale networks costed analytically)\n";

    const auto entries = computeHeadline({});
    TableWriter t({"DNN", "Baseline cyc/exec", "Reuse cyc/exec",
                   "Speedup", "Paper"});
    double geo = 1.0;
    for (const auto &e : entries) {
        t.addRow({e.name,
                  formatDouble(e.baseline.cyclesPerExecution(), 0),
                  formatDouble(e.reuse.cyclesPerExecution(), 0),
                  formatDouble(e.speedup(), 2) + "x",
                  formatDouble(paperReferences().at(e.name).speedup, 1) +
                      "x"});
        geo *= e.speedup();
    }
    t.print(std::cout);
    double mean = 0.0;
    for (const auto &e : entries)
        mean += e.speedup();
    mean /= static_cast<double>(entries.size());
    std::cout << "Average speedup: " << formatDouble(mean, 2)
              << "x (paper: 3.5x)\n";
    return 0;
}
