/**
 * @file
 * Reproduces the Sec. VI-A experiment: the reuse scheme on top of an
 * 8-bit fixed-point accelerator, evaluated on Kaldi.  Paper: input
 * similarity rises from 45% (fp32 baseline) to 52%, computation reuse
 * 58%, 1.8x speedup and 45% energy savings, with negligible accuracy
 * loss.
 */

#include <iostream>

#include "common/table_writer.h"
#include "harness/experiment.h"
#include "harness/workload_setup.h"
#include "energy/energy_model.h"
#include "quant/fixed_point.h"
#include "sim/accelerator.h"

int
main()
{
    using namespace reuse;
    std::cout << "Sec. VI-A reproduction: reuse on a reduced-precision "
                 "(8-bit fixed-point) accelerator, Kaldi\n";

    WorkloadSetupConfig cfg;
    const size_t frames = 48;

    // --- FP32 configuration (reference numbers). ---
    Workload fp32 = setupKaldi(cfg);
    const auto inputs32 = fp32.generator->take(frames);
    const auto m32 =
        measureWorkload(*fp32.bundle.network, fp32.plan, inputs32);

    // --- 8-bit configuration: snap the weights to an 8-bit grid and
    // quantize inputs with 256-level quantizers over the profiled
    // ranges (the fixed-point input path). ---
    Workload fp8 = setupKaldi(cfg);
    quantizeWeightsFixedPoint(*fp8.bundle.network, 8);
    auto gen8 = std::move(fp8.generator);
    const auto calib = gen8->take(cfg.calibrationFrames);
    // The reuse scheme keeps its 16-cluster comparison on top of the
    // 8-bit datapath (the paper reports 58% reuse there); the native
    // similarity of the 8-bit inputs themselves uses 256 levels.
    const QuantizationPlan plan8 =
        calibratePlan(*fp8.bundle.network, calib, 16,
                      fp8.bundle.quantizedLayers);
    const QuantizationPlan plan8_native =
        calibratePlan(*fp8.bundle.network, calib, 256,
                      fp8.bundle.quantizedLayers);
    const auto inputs8 = gen8->take(frames);
    const auto m8 =
        measureWorkload(*fp8.bundle.network, plan8, inputs8);
    MeasureOptions native_opts;
    native_opts.withReference = false;
    const auto m8_native = measureWorkload(
        *fp8.bundle.network, plan8_native, inputs8, native_opts);

    // --- Cost both on their respective accelerators. ---
    AcceleratorSim sim32;
    AcceleratorParams p8;
    p8.weightBytes = 1;
    p8.activationBytes = 1;
    AcceleratorSim sim8(p8);
    const int64_t execs = 50;

    auto run = [&](AcceleratorSim &sim, const Network &net,
                   const std::vector<double> &sims) {
        const auto base = sim.estimate(
            net, AccelMode::Baseline, sims, execs);
        const auto reuse =
            sim.estimate(net, AccelMode::Reuse, sims, execs);
        return std::make_pair(base, reuse);
    };
    const auto [base32, reuse32] =
        run(sim32, *fp32.bundle.network, m32.layerSimilarity);
    const auto [base8, reuse8] =
        run(sim8, *fp8.bundle.network, m8.layerSimilarity);

    const EnergyTable table32;
    const EnergyTable table8 = EnergyTable::fixedPoint8();
    const double sav32 = 1.0 - computeEnergy(reuse32, table32).total() /
                                   computeEnergy(base32, table32).total();
    const double sav8 = 1.0 - computeEnergy(reuse8, table8).total() /
                                  computeEnergy(base8, table8).total();

    TableWriter t({"Config", "Similarity", "Comp. Reuse", "Speedup",
                   "Energy savings", "Top-1 agreement"});
    t.addRow({"fp32 + 16 clusters",
              formatPercent(m32.stats.meanSimilarity()),
              formatPercent(m32.stats.meanComputationReuse()),
              formatDouble(base32.cycles / reuse32.cycles, 2) + "x",
              formatPercent(sav32),
              formatPercent(m32.accuracy.top1Agreement)});
    t.addRow({"8-bit fixed point",
              formatPercent(m8_native.stats.meanSimilarity()),
              formatPercent(m8.stats.meanComputationReuse()),
              formatDouble(base8.cycles / reuse8.cycles, 2) + "x",
              formatPercent(sav8),
              formatPercent(m8.accuracy.top1Agreement)});
    t.print(std::cout);
    std::cout << "(8-bit row: similarity of the native 256-level "
                 "inputs; reuse via the 16-cluster comparison)\n"
              << "Paper: 8-bit config shows 52% similarity, 58% "
                 "reuse, 1.8x speedup, 45% energy savings,\n"
                 "accuracy loss well below 1%.\n";
    return 0;
}
