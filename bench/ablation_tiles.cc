/**
 * @file
 * Tile-count ablation (Sec. IV-E): sweeps the number of accelerator
 * tiles and reports the reuse-mode performance scaling for each DNN,
 * together with the load imbalance of the per-layer work
 * distribution (FC outputs / conv filters / LSTM gates across tiles)
 * and the ring gather traffic.
 */

#include <iostream>

#include "common/table_writer.h"
#include "harness/headline.h"
#include "sim/tile_model.h"

int
main()
{
    using namespace reuse;
    std::cout << "Tile-count ablation: reuse-mode cycles per "
                 "execution as tiles scale\n";

    // Measure similarity once per workload, then sweep tile counts on
    // the analytic side.
    HeadlineConfig base_cfg;
    std::vector<HeadlineEntry> measured;
    for (const auto &name : modelZooNames())
        measured.push_back(computeHeadlineEntry(name, base_cfg));

    TableWriter t({"Tiles", "Kaldi cyc", "EESEN cyc", "C3D cyc",
                   "AutoPilot cyc"});
    for (int tiles : {1, 2, 4, 8, 16}) {
        AcceleratorParams p;
        p.tiles = tiles;
        AcceleratorSim sim(p);
        std::vector<std::string> row{std::to_string(tiles)};
        for (const auto &entry : measured) {
            // Rebuild the workload's network cheaply for costing.
            Rng rng(base_cfg.setup.seed +
                    (entry.name == "Kaldi"
                         ? 0
                         : entry.name == "EESEN"
                               ? 17
                               : entry.name == "C3D" ? 29 : 41));
            std::unique_ptr<Network> net;
            if (entry.name == "Kaldi")
                net = buildKaldi(rng).network;
            else if (entry.name == "EESEN")
                net = buildEesen(rng).network;
            else if (entry.name == "C3D")
                net = buildC3D(rng, 1).network;
            else
                net = buildAutopilot(rng).network;
            const int64_t seq =
                net->isRecurrent() ? base_cfg.simulatedSequenceLength
                                   : 1;
            const int64_t execs =
                net->isRecurrent()
                    ? base_cfg.simulatedExecutions / 10
                    : base_cfg.simulatedExecutions;
            const auto r = sim.estimate(
                *net, AccelMode::Reuse,
                entry.measurement.layerSimilarity, execs, seq,
                entry.measurement.layerReuse);
            row.push_back(formatDouble(r.cyclesPerExecution(), 0));
        }
        t.addRow(row);
    }
    t.print(std::cout);

    // Work-distribution imbalance of representative layers at the
    // paper's 4-tile configuration.
    std::cout << "\nLoad imbalance of the Sec. IV-E distribution at 4 "
                 "tiles:\n";
    TableWriter imb({"Layer", "Units", "Busiest tile", "Imbalance"});
    struct Probe {
        const char *name;
        LayerKind kind;
        int64_t neurons;
        int64_t channels;
    };
    const Probe probes[] = {
        {"Kaldi FC6 (3482 neurons)", LayerKind::FullyConnected, 3482,
         0},
        {"AutoPilot CONV1 (24 filters)", LayerKind::Conv2D,
         24 * 31 * 98, 24},
        {"C3D CONV5 (512 filters)", LayerKind::Conv3D, 0, 512},
        {"EESEN BiLSTM (4 gates)", LayerKind::BiLstm, 640, 0},
    };
    for (const auto &probe : probes) {
        const int64_t units = layerParallelUnits(
            probe.kind, probe.neurons, probe.channels);
        const auto d = distributeUnits(units, 4);
        imb.addRow({probe.name, std::to_string(d.units),
                    std::to_string(d.unitsPerTile),
                    formatDouble(d.imbalance, 3)});
    }
    imb.print(std::cout);
    std::cout << "Expected shape: near-linear scaling until the "
                 "quantize/compare and DRAM stages dominate; FC/conv "
                 "layers distribute almost perfectly, the 4-gate LSTM "
                 "mapping saturates at 4 tiles.\n";
    return 0;
}
