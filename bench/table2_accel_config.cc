/**
 * @file
 * Prints the accelerator configuration (Table II) as derived from the
 * AcceleratorParams defaults, so every simulation run documents the
 * hardware it models.
 */

#include <iostream>

#include "common/table_writer.h"
#include "sim/params.h"

int
main()
{
    using namespace reuse;
    const AcceleratorParams p;

    std::cout << "Table II reproduction: accelerator parameters\n";
    TableWriter t({"Parameter", "Value", "Paper"});
    t.addRow({"Technology", "32 nm (energy table)", "32 nm"});
    t.addRow({"Frequency",
              formatDouble(p.frequencyHz / 1e6, 0) + " MHz",
              "500 MHz"});
    t.addRow({"# of Tiles", std::to_string(p.tiles), "4"});
    t.addRow({"# of 32-bit multipliers",
              std::to_string(p.lanes()), "128"});
    t.addRow({"# of 32-bit adders",
              std::to_string(p.tiles * p.addersPerTile), "128"});
    t.addRow({"Weights Buffer",
              formatBytes(static_cast<double>(p.weightsBufferBytes)),
              "36 MB"});
    t.addRow({"I/O Buffer (baseline)",
              formatBytes(static_cast<double>(p.ioBufferBaselineBytes)),
              "1152 KB"});
    t.addRow({"I/O Buffer (reuse)",
              formatBytes(static_cast<double>(p.ioBufferReuseBytes)),
              "1280 KB"});
    t.addRow({"Centroid table",
              formatBytes(static_cast<double>(p.centroidTableBytes)),
              "1.25 KB"});
    t.addRow({"Main memory",
              formatBytes(static_cast<double>(p.dramBytes)) + " @ " +
                  formatDouble(p.dramBandwidthBytesPerSec / 1e9, 0) +
                  " GB/s",
              "4 GB LPDDR4, 16 GB/s"});
    t.addRow({"Conv block size",
              std::to_string(p.blockEdge) + "x" +
                  std::to_string(p.blockEdge) + "x1",
              "16x16x1"});
    t.print(std::cout);
    return 0;
}
