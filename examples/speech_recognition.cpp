/**
 * @file
 * Speech-recognition scenario (Fig. 1 of the paper): the Kaldi
 * acoustic-scoring MLP classifies a sliding window of speech frames
 * into senone likelihoods, once per 10 ms frame.  The example runs a
 * synthetic utterance through the reuse engine, costs it on the
 * modelled accelerator, and reports real-time headroom and energy.
 *
 * Build & run:  ./build/examples/speech_recognition
 */

#include <iostream>

#include "common/table_writer.h"
#include "energy/energy_model.h"
#include "harness/experiment.h"
#include "harness/workload_setup.h"
#include "sim/accelerator.h"

using namespace reuse;

int
main()
{
    std::cout << "Speech recognition with computation reuse\n"
              << "=========================================\n";

    // Assemble the Kaldi workload: network, calibrated quantizers and
    // a synthetic feature stream (9-frame windows of 40 features).
    Workload w = setupKaldi({});
    const Network &net = *w.bundle.network;
    std::cout << net.summary() << "\n\n";

    // One synthetic utterance: 200 frames = 2 s of audio at the
    // paper's 10 ms frame rate.
    const size_t frames = 200;
    const auto inputs = w.generator->take(frames);
    const auto m = measureWorkload(net, w.plan, inputs);

    TableWriter t({"Layer", "Similarity", "Comp. Reuse"});
    for (const auto &ls : m.stats.layers()) {
        if (!ls.reuseEnabled)
            continue;
        t.addRow({ls.layerName, formatPercent(ls.similarity()),
                  formatPercent(ls.computationReuse())});
    }
    t.print(std::cout);
    std::cout << "Senone agreement with FP32 scoring: "
              << formatPercent(m.accuracy.top1Agreement) << "\n\n";

    // Cost the utterance on the accelerator, with and without reuse.
    AcceleratorSim sim;
    const auto reuse_run =
        sim.simulate(net, AccelMode::Reuse, m.traces);
    const auto baseline_run = sim.estimate(
        net, AccelMode::Baseline,
        std::vector<double>(net.layerCount(), -1.0),
        static_cast<int64_t>(frames));

    const auto e_reuse = computeEnergy(reuse_run);
    const auto e_base = computeEnergy(baseline_run);
    const double frame_budget_s = 0.010;   // one DNN run per 10 ms
    auto report = [&](const char *name, const SimResult &r,
                      double joules) {
        const double per_frame =
            r.seconds / static_cast<double>(frames);
        std::cout << name << ": " << formatDouble(per_frame * 1e6, 1)
                  << " us/frame ("
                  << formatDouble(frame_budget_s / per_frame, 0)
                  << "x real time), "
                  << formatDouble(joules * 1e3 / frames, 4)
                  << " mJ/frame\n";
    };
    report("Baseline accelerator", baseline_run, e_base.total());
    report("Reuse accelerator   ", reuse_run, e_reuse.total());
    std::cout << "Speedup: "
              << formatDouble(baseline_run.cycles / reuse_run.cycles, 2)
              << "x, energy savings: "
              << formatPercent(1.0 -
                               e_reuse.total() / e_base.total())
              << "\n";
    return 0;
}
