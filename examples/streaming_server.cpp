/**
 * @file
 * Streaming server demo: several concurrent input streams served by
 * one shared reuse engine.
 *
 * Each session is a user whose sensor samples a slowly changing
 * world; the session carries the per-stream reuse state (previous
 * quantized inputs + previous outputs per layer) between its frames.
 * A memory budget covering only some of the sessions forces the
 * server to evict the least-recently-used session's buffers; evicted
 * sessions transparently re-warm on their next frame.
 *
 * Build & run:  ./build/examples/streaming_server
 *               [--trace-out=trace.json]  (chrome://tracing/Perfetto)
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/table_writer.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "obs/metrics_exporter.h"
#include "obs/trace_exporter.h"
#include "obs/trace_recorder.h"
#include "quant/range_profiler.h"
#include "serve/streaming_server.h"

using namespace reuse;

int
main(int argc, char **argv)
{
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace-out=", 0) == 0)
            trace_path = arg.substr(12);
    }
    if (!trace_path.empty() &&
        !obs::TraceRecorder::instance().enabled()) {
        // Trace every frame: the demo is small and the point is to
        // see the whole submit -> queue -> per-layer picture.
        obs::TraceRecorder::instance().setSampleEvery(1);
    }

    // 1. Build and calibrate a small MLP (as in examples/quickstart).
    Rng rng(42);
    Network net("demo", Shape({64}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 64, 256));
    net.addLayer(
        std::make_unique<ActivationLayer>("RELU", ActivationKind::ReLU));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 256, 10));
    initNetwork(net, rng);

    auto make_stream = [](uint64_t seed, size_t frames) {
        Rng r(seed);
        std::vector<Tensor> stream;
        Tensor x(Shape({64}));
        r.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 64; ++j)
                x[j] += r.gaussian(0.0f, 0.03f);
            stream.push_back(x);
        }
        return stream;
    };

    const std::vector<Tensor> calibration = make_stream(7, 32);
    const NetworkRanges ranges = profileNetworkRanges(net, calibration);
    const QuantizationPlan plan = makePlan(net, ranges, 16, {0, 2});

    // 2. One immutable engine, shared by every session.
    ReuseEngine engine(net, plan);

    // 3. Size a memory budget that fits 4 of the 6 sessions so the
    // demo shows eviction and re-warming.
    ReuseState probe = engine.makeState();
    ExecutionTrace probe_trace;
    engine.execute(probe, calibration[0], probe_trace);
    const int64_t per_session = probe.memoryBytes();

    StreamingServer::Config cfg;
    cfg.workerThreads = 4;
    cfg.memoryBudgetBytes = per_session * 4 + per_session / 2;
    StreamingServer server(engine, cfg);
    std::cout << "Serving " << net.name() << " on "
              << server.workerCount() << " workers, reuse-state budget "
              << formatBytes(double(cfg.memoryBudgetBytes)) << " ("
              << formatBytes(double(per_session)) << "/session)\n\n";

    // 4. Six sessions whose activity overlaps in phases, like users
    // coming and going: sessions 0-3 stream first (they fit the
    // budget), then 4-5 join and push the least recently used ones
    // out, then 0 returns — its first frame back runs cold and
    // re-warms the buffers, with outputs unaffected.
    const size_t kSessions = 6;
    const size_t kFrames = 20;
    std::vector<SessionId> ids;
    std::vector<std::vector<Tensor>> streams;
    for (size_t s = 0; s < kSessions; ++s) {
        ids.push_back(server.openSession("default", 100 + s));
        streams.push_back(make_stream(100 + s, 2 * kFrames));
    }
    auto stream_phase = [&](std::vector<size_t> active,
                            size_t first_frame) {
        for (size_t i = 0; i < kFrames; ++i)
            for (size_t s : active)
                server.submitFrame(ids[s],
                                   streams[s][first_frame + i]);
        server.drain();
    };
    stream_phase({0, 1, 2, 3}, 0);  // group fits the budget
    stream_phase({4, 5}, 0);        // newcomers evict the LRU pair
    stream_phase({0}, kFrames);     // returning user re-warms

    // 5. Report per-session reuse health and the server's metrics.
    TableWriter t({"Session", "Frames", "Reuse", "Similarity",
                   "Evictions", "Cold frames", "State"});
    for (size_t s = 0; s < kSessions; ++s) {
        const auto snap = server.sessionSnapshot(ids[s]);
        t.addRow({std::to_string(ids[s]),
                  std::to_string(snap.framesCompleted),
                  formatPercent(snap.reuseRatio),
                  formatPercent(snap.similarity),
                  std::to_string(snap.evictions),
                  std::to_string(snap.coldFrames.size()),
                  snap.warm ? "warm" : "evicted"});
    }
    t.print(std::cout);

    const ServeMetrics &m = server.metrics();
    std::cout << "\nLatency (submit to completion): " << m.latency().summary()
              << "\nEvictions under the budget:     " << m.evictions()
              << "\n\n";

    StatRegistry registry;
    server.publishStats(registry);
    std::cout << "Published counters:\n" << registry.dump();

    // 6. Metrics exposition: the same registry rendered as a
    // Prometheus text scrape (what an operations stack would pull).
    obs::MetricsExporter exporter;
    exporter.scrape(registry);
    std::cout << "\nPrometheus exposition (excerpt):\n";
    const std::string prom = exporter.prometheusText(registry);
    size_t lines = 0;
    for (size_t pos = 0; pos < prom.size() && lines < 12;) {
        const size_t nl = prom.find('\n', pos);
        if (nl == std::string::npos)
            break;
        std::cout << "  " << prom.substr(pos, nl - pos) << "\n";
        pos = nl + 1;
        ++lines;
    }

    for (SessionId id : ids)
        server.closeSession(id);
    server.stop();

    if (!trace_path.empty() &&
        obs::TraceExporter::exportFile(trace_path)) {
        std::cout << "\nwrote trace to " << trace_path
                  << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
    return 0;
}
