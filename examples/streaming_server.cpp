/**
 * @file
 * Streaming server demo: two models served from one process, several
 * concurrent input streams per model.
 *
 * Each session is a user whose sensor samples a slowly changing
 * world; the session carries the per-stream reuse state (previous
 * quantized inputs + previous outputs per layer) between its frames.
 * The two models ("acoustic" and "vision") share nothing but the
 * process: each compiles once into an immutable CompiledPlan held by
 * the process-wide plan cache, and every session of a model executes
 * that one schedule.  A memory budget covering only some of the
 * sessions forces the server to evict the least-recently-used
 * session's buffers; evicted sessions transparently re-warm on their
 * next frame.
 *
 * Build & run:  ./build/examples/streaming_server
 *               [--trace-out=trace.json]  (chrome://tracing/Perfetto)
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/table_writer.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "obs/metrics_exporter.h"
#include "obs/trace_exporter.h"
#include "obs/trace_recorder.h"
#include "quant/range_profiler.h"
#include "serve/streaming_server.h"

using namespace reuse;

namespace {

/** Slowly drifting Gaussian stream, the demo's "sensor". */
std::vector<Tensor>
makeStream(int64_t dim, uint64_t seed, size_t frames)
{
    Rng r(seed);
    std::vector<Tensor> stream;
    Tensor x(Shape({dim}));
    r.fillGaussian(x.data(), 0.0f, 1.0f);
    for (size_t i = 0; i < frames; ++i) {
        for (int64_t j = 0; j < dim; ++j)
            x[j] += r.gaussian(0.0f, 0.03f);
        stream.push_back(x);
    }
    return stream;
}

/** Small calibrated MLP: network + plan ready for an engine. */
struct DemoModel {
    Network net;
    QuantizationPlan plan;
    Tensor probeFrame;

    DemoModel(const std::string &name, int64_t in, int64_t hidden,
              int64_t out, uint64_t seed)
        : net(name, Shape({in}))
    {
        Rng rng(seed);
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", in, hidden));
        net.addLayer(std::make_unique<ActivationLayer>(
            "RELU", ActivationKind::ReLU));
        net.addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", hidden, out));
        initNetwork(net, rng);
        const std::vector<Tensor> calibration =
            makeStream(in, seed + 7, 32);
        const NetworkRanges ranges =
            profileNetworkRanges(net, calibration);
        plan = makePlan(net, ranges, 16, {0, 2});
        probeFrame = calibration[0];
    }
};

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace-out=", 0) == 0)
            trace_path = arg.substr(12);
    }
    if (!trace_path.empty() &&
        !obs::TraceRecorder::instance().enabled()) {
        // Trace every frame: the demo is small and the point is to
        // see the whole submit -> queue -> per-layer picture.
        obs::TraceRecorder::instance().setSampleEvery(1);
    }

    // 1. Build and calibrate two independent models.
    DemoModel acoustic("acoustic", 64, 256, 10, 42);
    DemoModel vision("vision", 32, 128, 4, 43);

    // 2. One immutable engine per model; each compiles its schedule
    // once into the process-wide plan cache, shared by every session
    // (a second engine over the same model would be a cache hit).
    ReuseEngine acoustic_engine(acoustic.net, acoustic.plan);
    ReuseEngine vision_engine(vision.net, vision.plan);

    // 3. Size a memory budget that fits 4 of the 6 acoustic sessions
    // (plus the vision sessions) so the demo shows eviction and
    // re-warming.
    ReuseState probe = acoustic_engine.makeState();
    ExecutionTrace probe_trace;
    acoustic_engine.execute(probe, acoustic.probeFrame, probe_trace);
    const int64_t per_session = probe.memoryBytes();
    ReuseState vprobe = vision_engine.makeState();
    vision_engine.execute(vprobe, vision.probeFrame, probe_trace);
    const int64_t per_vision = vprobe.memoryBytes();

    StreamingServer::Config cfg;
    cfg.workerThreads = 4;
    cfg.memoryBudgetBytes =
        per_session * 4 + per_session / 2 + per_vision * 2;
    StreamingServer server({{"acoustic", &acoustic_engine},
                            {"vision", &vision_engine}},
                           cfg);
    std::cout << "Serving " << acoustic.net.name() << " + "
              << vision.net.name() << " on " << server.workerCount()
              << " workers, reuse-state budget "
              << formatBytes(double(cfg.memoryBudgetBytes)) << " ("
              << formatBytes(double(per_session)) << "/acoustic, "
              << formatBytes(double(per_vision))
              << "/vision session)\n\n";

    // 4. Six acoustic sessions whose activity overlaps in phases,
    // like users coming and going, plus two vision sessions streaming
    // alongside: acoustic 0-3 stream first (they fit the budget),
    // then 4-5 join with the vision pair and push the least recently
    // used ones out, then 0 returns — its first frame back runs cold
    // and re-warms the buffers, with outputs unaffected.
    const size_t kSessions = 6;
    const size_t kVisionSessions = 2;
    const size_t kFrames = 20;
    std::vector<SessionId> ids;
    std::vector<std::vector<Tensor>> streams;
    for (size_t s = 0; s < kSessions; ++s) {
        ids.push_back(server.openSession("acoustic", 100 + s));
        streams.push_back(makeStream(64, 100 + s, 2 * kFrames));
    }
    std::vector<SessionId> vids;
    std::vector<std::vector<Tensor>> vstreams;
    for (size_t s = 0; s < kVisionSessions; ++s) {
        vids.push_back(server.openSession("vision", 200 + s));
        vstreams.push_back(makeStream(32, 200 + s, kFrames));
    }
    auto stream_phase = [&](std::vector<size_t> active,
                            size_t first_frame) {
        for (size_t i = 0; i < kFrames; ++i)
            for (size_t s : active)
                server.submitFrame(ids[s],
                                   streams[s][first_frame + i]);
        server.drain();
    };
    stream_phase({0, 1, 2, 3}, 0);  // group fits the budget
    // Newcomers (acoustic 4-5 plus both vision users) evict the LRU
    // acoustic pair.
    for (size_t i = 0; i < kFrames; ++i) {
        for (size_t s : {4ul, 5ul})
            server.submitFrame(ids[s], streams[s][i]);
        for (size_t s = 0; s < kVisionSessions; ++s)
            server.submitFrame(vids[s], vstreams[s][i]);
    }
    server.drain();
    stream_phase({0}, kFrames);     // returning user re-warms

    // 5. Report per-session reuse health and the server's metrics.
    TableWriter t({"Session", "Model", "Frames", "Reuse",
                   "Similarity", "Evictions", "Cold frames", "State"});
    auto add_row = [&](SessionId id, const std::string &model) {
        const auto snap = server.sessionSnapshot(id);
        t.addRow({std::to_string(id), model,
                  std::to_string(snap.framesCompleted),
                  formatPercent(snap.reuseRatio),
                  formatPercent(snap.similarity),
                  std::to_string(snap.evictions),
                  std::to_string(snap.coldFrames.size()),
                  snap.warm ? "warm" : "evicted"});
    };
    for (size_t s = 0; s < kSessions; ++s)
        add_row(ids[s], "acoustic");
    for (size_t s = 0; s < kVisionSessions; ++s)
        add_row(vids[s], "vision");
    t.print(std::cout);

    const ServeMetrics &m = server.metrics();
    std::cout << "\nLatency (submit to completion): " << m.latency().summary()
              << "\nEvictions under the budget:     " << m.evictions()
              << "\n\n";

    StatRegistry registry;
    server.publishStats(registry);
    std::cout << "Published counters:\n" << registry.dump();

    // 6. Metrics exposition: the same registry rendered as a
    // Prometheus text scrape (what an operations stack would pull).
    // serve.plan_cache.* shows both models' schedules resident in
    // the process-wide compiled-plan cache.
    obs::MetricsExporter exporter;
    exporter.scrape(registry);
    std::cout << "\nPrometheus exposition (excerpt):\n";
    const std::string prom = exporter.prometheusText(registry);
    size_t lines = 0;
    for (size_t pos = 0; pos < prom.size() && lines < 12;) {
        const size_t nl = prom.find('\n', pos);
        if (nl == std::string::npos)
            break;
        std::cout << "  " << prom.substr(pos, nl - pos) << "\n";
        pos = nl + 1;
        ++lines;
    }

    for (SessionId id : ids)
        server.closeSession(id);
    for (SessionId id : vids)
        server.closeSession(id);
    server.stop();

    if (!trace_path.empty() &&
        obs::TraceExporter::exportFile(trace_path)) {
        std::cout << "\nwrote trace to " << trace_path
                  << " (load in chrome://tracing or ui.perfetto.dev)\n";
    }
    return 0;
}
