/**
 * @file
 * Keyword-spotting scenario using the unidirectional LSTM extension:
 * a small always-on model scores every 10 ms audio frame for a
 * handful of wake words.  Always-on workloads are exactly where the
 * paper's technique matters most — the audio is silence or steady
 * background most of the time, so almost every frame can be reused.
 *
 * Build & run:  ./build/examples/keyword_spotting
 */

#include <iostream>

#include "common/table_writer.h"
#include "energy/energy_model.h"
#include "harness/experiment.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "sim/accelerator.h"
#include "workloads/speech_generator.h"

using namespace reuse;

int
main()
{
    std::cout << "Always-on keyword spotting with computation reuse\n"
              << "=================================================\n";

    // A compact streaming model: two unidirectional LSTM layers and a
    // 12-way classifier (10 keywords + silence + unknown).
    Rng rng(7);
    Network net("kws", Shape({40}));
    net.addLayer(std::make_unique<LstmLayer>("LSTM1", 40, 96));
    net.addLayer(std::make_unique<LstmLayer>("LSTM2", 96, 96));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC", 96, 12));
    net.addLayer(std::make_unique<ActivationLayer>(
        "SOFTMAX", ActivationKind::Softmax));
    initNetwork(net, rng);
    std::cout << net.summary() << "\n\n";

    // Mostly silence / steady background: long quasi-stationary
    // segments with small wander.
    SpeechParams sp;
    sp.featureDim = 40;
    sp.segmentMeanFrames = 40.0;
    sp.wanderSigma = 0.02f;
    sp.frameNoise = 0.008f;
    SpeechFrameGenerator gen(sp, 99);

    // Calibrate and run one 3-second utterance (300 frames).
    const auto calibration = gen.take(48);
    const NetworkRanges ranges =
        profileNetworkRanges(net, calibration);
    const QuantizationPlan plan =
        makePlan(net, ranges, 16, {0, 1, 2});
    gen.reset(1234);
    const auto stream = gen.take(300);
    const auto m = measureWorkload(net, plan, stream);

    TableWriter t({"Layer", "Similarity", "Comp. Reuse"});
    for (const auto &ls : m.stats.layers()) {
        if (!ls.reuseEnabled)
            continue;
        t.addRow({ls.layerName, formatPercent(ls.similarity()),
                  formatPercent(ls.computationReuse())});
    }
    t.print(std::cout);
    std::cout << "Keyword-decision agreement with FP32: "
              << formatPercent(m.accuracy.top1Agreement) << "\n\n";

    // Always-on energy: the interesting number is joules per hour.
    AcceleratorSim sim;
    const auto reuse_run =
        sim.simulate(net, AccelMode::Reuse, m.traces);
    const auto baseline = sim.estimate(
        net, AccelMode::Baseline,
        std::vector<double>(net.layerCount(), -1.0), 1,
        static_cast<int64_t>(stream.size()));
    const auto e_reuse = computeEnergy(reuse_run);
    const auto e_base = computeEnergy(baseline);
    const double frames_per_hour = 3600.0 / 0.010;
    const double scale = frames_per_hour /
                         static_cast<double>(stream.size());
    std::cout << "Dynamic+static energy per hour of always-on "
                 "listening:\n"
              << "  baseline: "
              << formatDouble(e_base.total() * scale, 2) << " J/h\n"
              << "  reuse:    "
              << formatDouble(e_reuse.total() * scale, 2) << " J/h ("
              << formatPercent(1.0 -
                               e_reuse.total() / e_base.total())
              << " saved)\n";
    return 0;
}
