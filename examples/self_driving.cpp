/**
 * @file
 * Self-driving scenario: the AutoPilot network maps every camera
 * frame to a steering command.  Consecutive dash-cam frames are
 * nearly identical, so almost all per-frame computation can be reused
 * from the previous frame — the paper's strongest case (5.2x).
 *
 * Build & run:  ./build/examples/self_driving
 */

#include <iostream>

#include "common/table_writer.h"
#include "energy/energy_model.h"
#include "harness/experiment.h"
#include "harness/workload_setup.h"
#include "sim/accelerator.h"

using namespace reuse;

int
main()
{
    std::cout << "Self-driving steering with computation reuse\n"
              << "============================================\n";

    Workload w = setupAutopilot({});
    const Network &net = *w.bundle.network;
    std::cout << net.summary() << "\n\n";

    // Drive for 30 frames (one second of 30 fps video).
    const size_t frames = 30;
    const auto inputs = w.generator->take(frames);

    // Run both engines frame by frame and show the steering stream.
    ReuseEngine engine(net, w.plan);
    std::cout << "frame  steering(reuse)  steering(fp32)   changed "
                 "inputs\n";
    std::vector<Tensor> outputs;
    std::vector<Tensor> reference;
    for (size_t f = 0; f < frames; ++f) {
        const Tensor out = engine.execute(inputs[f]);
        const Tensor ref = net.forward(inputs[f]);
        outputs.push_back(out);
        reference.push_back(ref);
        int64_t changed = 0;
        int64_t checked = 0;
        for (const auto &rec : engine.lastTrace()) {
            changed += rec.inputsChanged;
            checked += rec.inputsChecked;
        }
        if (f % 5 == 0) {
            std::cout << "  " << f << "      "
                      << formatDouble(out[0], 5) << "        "
                      << formatDouble(ref[0], 5) << "        "
                      << (checked
                              ? formatPercent(
                                    static_cast<double>(changed) /
                                    static_cast<double>(checked))
                              : std::string("-"))
                      << "\n";
        }
    }

    const auto &stats = engine.stats();
    std::cout << "\nMean input similarity over quantized layers: "
              << formatPercent(stats.meanSimilarity()) << "\n"
              << "Network-wide MACs avoided: "
              << formatPercent(stats.networkComputationReuse()) << "\n";

    // Latency/energy on the accelerator: a steering command must be
    // ready well within the 33 ms frame budget.
    std::vector<ExecutionTrace> traces;
    ReuseEngine engine2(net, w.plan);
    for (const Tensor &in : inputs) {
        engine2.execute(in);
        traces.push_back(engine2.lastTrace());
    }
    AcceleratorSim sim;
    const auto reuse_run = sim.simulate(net, AccelMode::Reuse, traces);
    const auto baseline = sim.estimate(
        net, AccelMode::Baseline,
        std::vector<double>(net.layerCount(), -1.0),
        static_cast<int64_t>(frames));
    const auto e_base = computeEnergy(baseline);
    const auto e_reuse = computeEnergy(reuse_run);
    std::cout << "Per-frame latency: baseline "
              << formatDouble(baseline.seconds / frames * 1e6, 0)
              << " us -> reuse "
              << formatDouble(reuse_run.seconds / frames * 1e6, 0)
              << " us (speedup "
              << formatDouble(baseline.cycles / reuse_run.cycles, 2)
              << "x)\n"
              << "Per-frame energy: baseline "
              << formatDouble(e_base.total() / frames * 1e6, 1)
              << " uJ -> reuse "
              << formatDouble(e_reuse.total() / frames * 1e6, 1)
              << " uJ (savings "
              << formatPercent(1.0 - e_reuse.total() / e_base.total())
              << ")\n";
    return 0;
}
