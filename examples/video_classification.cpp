/**
 * @file
 * Video-classification scenario: the C3D network labels actions in
 * disjoint 16-frame windows of a video.  Consecutive windows share
 * the static parts of the scene, which the reuse engine converts into
 * skipped computation.  The functional network runs at reduced
 * spatial resolution for tractability; paper-scale cost comes from
 * the analytic estimator fed with the measured similarity.
 *
 * Build & run:  ./build/examples/video_classification
 */

#include <iostream>

#include "common/table_writer.h"
#include "energy/energy_model.h"
#include "harness/experiment.h"
#include "harness/workload_setup.h"
#include "sim/accelerator.h"
#include "workloads/model_zoo.h"

using namespace reuse;

int
main()
{
    std::cout << "Video classification with computation reuse\n"
              << "===========================================\n";

    WorkloadSetupConfig cfg;
    cfg.c3dSpatialDivisor = 8;   // 14x14 functional frames
    Workload w = setupC3D(cfg);
    const Network &net = *w.bundle.network;
    std::cout << net.summary() << "\n"
              << "(functional model at 1/" << cfg.c3dSpatialDivisor
              << " spatial scale; costing uses the full 112x112 "
                 "network)\n\n";

    // Classify five consecutive windows (80 video frames).
    const size_t windows = 5;
    const auto inputs = w.generator->take(windows);
    const auto m = measureWorkload(net, w.plan, inputs);

    std::cout << "Per-window top-1 class vs FP32 agreement: "
              << formatPercent(m.accuracy.top1Agreement) << "\n";
    TableWriter t({"Layer", "Similarity", "Comp. Reuse"});
    for (const auto &ls : m.stats.layers()) {
        if (!ls.reuseEnabled)
            continue;
        t.addRow({ls.layerName, formatPercent(ls.similarity()),
                  formatPercent(ls.computationReuse())});
    }
    t.print(std::cout);

    // Paper-scale costing with the measured per-layer similarity.
    Rng rng(cfg.seed + 29);
    ModelBundle full = buildC3D(rng, 1);
    AcceleratorSim sim;
    const auto baseline = sim.estimate(
        *full.network, AccelMode::Baseline, m.layerSimilarity, 16);
    const auto reuse_run = sim.estimate(
        *full.network, AccelMode::Reuse, m.layerSimilarity, 16);
    const auto e_base = computeEnergy(baseline);
    const auto e_reuse = computeEnergy(reuse_run);

    std::cout << "\nPaper-scale C3D on the accelerator (per 16-frame "
                 "window):\n"
              << "  baseline: "
              << formatDouble(baseline.cyclesPerExecution() /
                                  sim.params().frequencyHz * 1e3,
                              1)
              << " ms,  reuse: "
              << formatDouble(reuse_run.cyclesPerExecution() /
                                  sim.params().frequencyHz * 1e3,
                              1)
              << " ms  (speedup "
              << formatDouble(baseline.cycles / reuse_run.cycles, 2)
              << "x)\n"
              << "  energy savings: "
              << formatPercent(1.0 - e_reuse.total() / e_base.total())
              << "\n";
    return 0;
}
