/**
 * @file
 * Quickstart: the smallest end-to-end use of the library.
 *
 * Builds a two-layer MLP, calibrates input quantizers on a short
 * stream, then runs reuse-based inference over a correlated input
 * stream and prints how much computation was avoided and how close
 * the outputs stay to plain FP32 inference.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <iostream>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "nn/activations.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "quant/accuracy.h"
#include "quant/range_profiler.h"

using namespace reuse;

int
main()
{
    // 1. Build a small network: 64 -> 256 -> 10 with a ReLU.
    Rng rng(42);
    Network net("demo", Shape({64}));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC1", 64, 256));
    net.addLayer(
        std::make_unique<ActivationLayer>("RELU", ActivationKind::ReLU));
    net.addLayer(std::make_unique<FullyConnectedLayer>("FC2", 256, 10));
    initNetwork(net, rng);
    std::cout << net.summary() << "\n";

    // 2. Make a temporally correlated input stream (random walk), as
    // produced by any sensor sampling a slowly changing world.
    auto make_stream = [&](size_t frames) {
        std::vector<Tensor> stream;
        Tensor x(Shape({64}));
        rng.fillGaussian(x.data(), 0.0f, 1.0f);
        for (size_t i = 0; i < frames; ++i) {
            for (int64_t j = 0; j < 64; ++j)
                x[j] += rng.gaussian(0.0f, 0.03f);
            stream.push_back(x);
        }
        return stream;
    };

    // 3. Calibrate per-layer quantizers on a "training" stream
    // (16 clusters, the paper's speech setting).
    const std::vector<Tensor> calibration = make_stream(32);
    const NetworkRanges ranges = profileNetworkRanges(net, calibration);
    const QuantizationPlan plan = makePlan(net, ranges, 16, {0, 2});

    // 4. Run reuse-based inference over a fresh stream.
    ReuseEngine engine(net, plan);
    const std::vector<Tensor> stream = make_stream(100);
    std::vector<Tensor> outputs;
    std::vector<Tensor> reference;
    for (const Tensor &frame : stream) {
        outputs.push_back(engine.execute(frame));
        reference.push_back(net.forward(frame));
    }

    // 5. Report: how much work was avoided, and at what accuracy.
    const auto &stats = engine.stats();
    std::cout << "\nPer-layer results over " << stream.size()
              << " frames:\n";
    for (const auto &ls : stats.layers()) {
        if (!ls.reuseEnabled)
            continue;
        std::cout << "  " << ls.layerName << ": input similarity "
                  << ls.similarity() * 100.0 << "%, computation reuse "
                  << ls.computationReuse() * 100.0 << "%\n";
    }
    const AccuracyReport acc = compareOutputs(reference, outputs);
    std::cout << "Network-wide MACs avoided: "
              << stats.networkComputationReuse() * 100.0 << "%\n"
              << "Top-1 agreement with FP32 inference: "
              << acc.top1Agreement * 100.0 << "%\n"
              << "Mean relative output error: "
              << acc.meanRelativeError << "\n";
    return 0;
}
