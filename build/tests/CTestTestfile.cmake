# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
