file(REMOVE_RECURSE
  "CMakeFiles/test_quant.dir/quant/test_accuracy.cc.o"
  "CMakeFiles/test_quant.dir/quant/test_accuracy.cc.o.d"
  "CMakeFiles/test_quant.dir/quant/test_fixed_point.cc.o"
  "CMakeFiles/test_quant.dir/quant/test_fixed_point.cc.o.d"
  "CMakeFiles/test_quant.dir/quant/test_layer_selection.cc.o"
  "CMakeFiles/test_quant.dir/quant/test_layer_selection.cc.o.d"
  "CMakeFiles/test_quant.dir/quant/test_linear_quantizer.cc.o"
  "CMakeFiles/test_quant.dir/quant/test_linear_quantizer.cc.o.d"
  "CMakeFiles/test_quant.dir/quant/test_quantization_plan.cc.o"
  "CMakeFiles/test_quant.dir/quant/test_quantization_plan.cc.o.d"
  "CMakeFiles/test_quant.dir/quant/test_range_profiler.cc.o"
  "CMakeFiles/test_quant.dir/quant/test_range_profiler.cc.o.d"
  "test_quant"
  "test_quant.pdb"
  "test_quant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
