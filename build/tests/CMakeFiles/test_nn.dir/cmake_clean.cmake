file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_activations.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_activations.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_conv2d.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_conv2d.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_conv3d.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_conv3d.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_fully_connected.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_fully_connected.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_lstm.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_lstm.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_lstm_uni.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_lstm_uni.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_network.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_network.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_pnorm.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_pnorm.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_pooling.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_pooling.cc.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
