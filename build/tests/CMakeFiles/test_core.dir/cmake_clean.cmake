file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_conv_reuse.cc.o"
  "CMakeFiles/test_core.dir/core/test_conv_reuse.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_fc_reuse.cc.o"
  "CMakeFiles/test_core.dir/core/test_fc_reuse.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_lstm_layer_reuse.cc.o"
  "CMakeFiles/test_core.dir/core/test_lstm_layer_reuse.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_lstm_reuse.cc.o"
  "CMakeFiles/test_core.dir/core/test_lstm_reuse.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_reuse_engine.cc.o"
  "CMakeFiles/test_core.dir/core/test_reuse_engine.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_reuse_stats.cc.o"
  "CMakeFiles/test_core.dir/core/test_reuse_stats.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
