# Empty compiler generated dependencies file for video_classification.
# This may be replaced when dependencies are built.
