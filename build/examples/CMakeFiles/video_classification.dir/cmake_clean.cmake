file(REMOVE_RECURSE
  "CMakeFiles/video_classification.dir/video_classification.cpp.o"
  "CMakeFiles/video_classification.dir/video_classification.cpp.o.d"
  "video_classification"
  "video_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
