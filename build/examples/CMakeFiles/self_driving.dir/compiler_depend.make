# Empty compiler generated dependencies file for self_driving.
# This may be replaced when dependencies are built.
