file(REMOVE_RECURSE
  "CMakeFiles/self_driving.dir/self_driving.cpp.o"
  "CMakeFiles/self_driving.dir/self_driving.cpp.o.d"
  "self_driving"
  "self_driving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_driving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
