file(REMOVE_RECURSE
  "CMakeFiles/speech_recognition.dir/speech_recognition.cpp.o"
  "CMakeFiles/speech_recognition.dir/speech_recognition.cpp.o.d"
  "speech_recognition"
  "speech_recognition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speech_recognition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
