# Empty compiler generated dependencies file for keyword_spotting.
# This may be replaced when dependencies are built.
