
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table3_memory_overheads.cc" "bench/CMakeFiles/table3_memory_overheads.dir/table3_memory_overheads.cc.o" "gcc" "bench/CMakeFiles/table3_memory_overheads.dir/table3_memory_overheads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/reuse_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/reuse_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/reuse_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reuse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/reuse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/reuse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/reuse_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/reuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/reuse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
