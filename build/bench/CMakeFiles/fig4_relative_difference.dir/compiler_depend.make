# Empty compiler generated dependencies file for fig4_relative_difference.
# This may be replaced when dependencies are built.
