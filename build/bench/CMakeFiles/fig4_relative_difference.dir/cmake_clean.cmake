file(REMOVE_RECURSE
  "CMakeFiles/fig4_relative_difference.dir/fig4_relative_difference.cc.o"
  "CMakeFiles/fig4_relative_difference.dir/fig4_relative_difference.cc.o.d"
  "fig4_relative_difference"
  "fig4_relative_difference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_relative_difference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
