# Empty compiler generated dependencies file for table1_reuse_per_layer.
# This may be replaced when dependencies are built.
