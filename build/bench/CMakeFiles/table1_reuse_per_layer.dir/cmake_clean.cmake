file(REMOVE_RECURSE
  "CMakeFiles/table1_reuse_per_layer.dir/table1_reuse_per_layer.cc.o"
  "CMakeFiles/table1_reuse_per_layer.dir/table1_reuse_per_layer.cc.o.d"
  "table1_reuse_per_layer"
  "table1_reuse_per_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_reuse_per_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
