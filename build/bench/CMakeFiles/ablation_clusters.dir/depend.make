# Empty dependencies file for ablation_clusters.
# This may be replaced when dependencies are built.
