file(REMOVE_RECURSE
  "CMakeFiles/ablation_clusters.dir/ablation_clusters.cc.o"
  "CMakeFiles/ablation_clusters.dir/ablation_clusters.cc.o.d"
  "ablation_clusters"
  "ablation_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
