file(REMOVE_RECURSE
  "CMakeFiles/sec6a_fixed_point.dir/sec6a_fixed_point.cc.o"
  "CMakeFiles/sec6a_fixed_point.dir/sec6a_fixed_point.cc.o.d"
  "sec6a_fixed_point"
  "sec6a_fixed_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec6a_fixed_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
