# Empty compiler generated dependencies file for sec6a_fixed_point.
# This may be replaced when dependencies are built.
