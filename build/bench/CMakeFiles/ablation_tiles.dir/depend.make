# Empty dependencies file for ablation_tiles.
# This may be replaced when dependencies are built.
