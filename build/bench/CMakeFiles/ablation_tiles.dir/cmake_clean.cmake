file(REMOVE_RECURSE
  "CMakeFiles/ablation_tiles.dir/ablation_tiles.cc.o"
  "CMakeFiles/ablation_tiles.dir/ablation_tiles.cc.o.d"
  "ablation_tiles"
  "ablation_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
