file(REMOVE_RECURSE
  "CMakeFiles/fig5_similarity_reuse.dir/fig5_similarity_reuse.cc.o"
  "CMakeFiles/fig5_similarity_reuse.dir/fig5_similarity_reuse.cc.o.d"
  "fig5_similarity_reuse"
  "fig5_similarity_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_similarity_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
