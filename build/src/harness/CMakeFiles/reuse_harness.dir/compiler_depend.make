# Empty compiler generated dependencies file for reuse_harness.
# This may be replaced when dependencies are built.
