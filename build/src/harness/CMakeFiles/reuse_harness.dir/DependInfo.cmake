
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/reuse_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/reuse_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/headline.cc" "src/harness/CMakeFiles/reuse_harness.dir/headline.cc.o" "gcc" "src/harness/CMakeFiles/reuse_harness.dir/headline.cc.o.d"
  "/root/repo/src/harness/paper_reference.cc" "src/harness/CMakeFiles/reuse_harness.dir/paper_reference.cc.o" "gcc" "src/harness/CMakeFiles/reuse_harness.dir/paper_reference.cc.o.d"
  "/root/repo/src/harness/trace_dump.cc" "src/harness/CMakeFiles/reuse_harness.dir/trace_dump.cc.o" "gcc" "src/harness/CMakeFiles/reuse_harness.dir/trace_dump.cc.o.d"
  "/root/repo/src/harness/workload_setup.cc" "src/harness/CMakeFiles/reuse_harness.dir/workload_setup.cc.o" "gcc" "src/harness/CMakeFiles/reuse_harness.dir/workload_setup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/reuse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/reuse_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/reuse_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/reuse_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/reuse_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/reuse_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/reuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/reuse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
