file(REMOVE_RECURSE
  "libreuse_harness.a"
)
