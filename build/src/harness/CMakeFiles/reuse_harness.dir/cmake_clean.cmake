file(REMOVE_RECURSE
  "CMakeFiles/reuse_harness.dir/experiment.cc.o"
  "CMakeFiles/reuse_harness.dir/experiment.cc.o.d"
  "CMakeFiles/reuse_harness.dir/headline.cc.o"
  "CMakeFiles/reuse_harness.dir/headline.cc.o.d"
  "CMakeFiles/reuse_harness.dir/paper_reference.cc.o"
  "CMakeFiles/reuse_harness.dir/paper_reference.cc.o.d"
  "CMakeFiles/reuse_harness.dir/trace_dump.cc.o"
  "CMakeFiles/reuse_harness.dir/trace_dump.cc.o.d"
  "CMakeFiles/reuse_harness.dir/workload_setup.cc.o"
  "CMakeFiles/reuse_harness.dir/workload_setup.cc.o.d"
  "libreuse_harness.a"
  "libreuse_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
