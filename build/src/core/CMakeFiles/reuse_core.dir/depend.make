# Empty dependencies file for reuse_core.
# This may be replaced when dependencies are built.
