file(REMOVE_RECURSE
  "libreuse_core.a"
)
