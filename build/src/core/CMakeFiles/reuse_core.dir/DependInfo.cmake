
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conv_reuse.cc" "src/core/CMakeFiles/reuse_core.dir/conv_reuse.cc.o" "gcc" "src/core/CMakeFiles/reuse_core.dir/conv_reuse.cc.o.d"
  "/root/repo/src/core/fc_reuse.cc" "src/core/CMakeFiles/reuse_core.dir/fc_reuse.cc.o" "gcc" "src/core/CMakeFiles/reuse_core.dir/fc_reuse.cc.o.d"
  "/root/repo/src/core/lstm_reuse.cc" "src/core/CMakeFiles/reuse_core.dir/lstm_reuse.cc.o" "gcc" "src/core/CMakeFiles/reuse_core.dir/lstm_reuse.cc.o.d"
  "/root/repo/src/core/reuse_engine.cc" "src/core/CMakeFiles/reuse_core.dir/reuse_engine.cc.o" "gcc" "src/core/CMakeFiles/reuse_core.dir/reuse_engine.cc.o.d"
  "/root/repo/src/core/reuse_stats.cc" "src/core/CMakeFiles/reuse_core.dir/reuse_stats.cc.o" "gcc" "src/core/CMakeFiles/reuse_core.dir/reuse_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/reuse_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/reuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/reuse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
