file(REMOVE_RECURSE
  "CMakeFiles/reuse_core.dir/conv_reuse.cc.o"
  "CMakeFiles/reuse_core.dir/conv_reuse.cc.o.d"
  "CMakeFiles/reuse_core.dir/fc_reuse.cc.o"
  "CMakeFiles/reuse_core.dir/fc_reuse.cc.o.d"
  "CMakeFiles/reuse_core.dir/lstm_reuse.cc.o"
  "CMakeFiles/reuse_core.dir/lstm_reuse.cc.o.d"
  "CMakeFiles/reuse_core.dir/reuse_engine.cc.o"
  "CMakeFiles/reuse_core.dir/reuse_engine.cc.o.d"
  "CMakeFiles/reuse_core.dir/reuse_stats.cc.o"
  "CMakeFiles/reuse_core.dir/reuse_stats.cc.o.d"
  "libreuse_core.a"
  "libreuse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
