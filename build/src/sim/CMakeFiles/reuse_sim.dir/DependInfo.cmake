
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/accelerator.cc" "src/sim/CMakeFiles/reuse_sim.dir/accelerator.cc.o" "gcc" "src/sim/CMakeFiles/reuse_sim.dir/accelerator.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/sim/CMakeFiles/reuse_sim.dir/cost_model.cc.o" "gcc" "src/sim/CMakeFiles/reuse_sim.dir/cost_model.cc.o.d"
  "/root/repo/src/sim/io_buffer_model.cc" "src/sim/CMakeFiles/reuse_sim.dir/io_buffer_model.cc.o" "gcc" "src/sim/CMakeFiles/reuse_sim.dir/io_buffer_model.cc.o.d"
  "/root/repo/src/sim/tile_model.cc" "src/sim/CMakeFiles/reuse_sim.dir/tile_model.cc.o" "gcc" "src/sim/CMakeFiles/reuse_sim.dir/tile_model.cc.o.d"
  "/root/repo/src/sim/weights_residency.cc" "src/sim/CMakeFiles/reuse_sim.dir/weights_residency.cc.o" "gcc" "src/sim/CMakeFiles/reuse_sim.dir/weights_residency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/reuse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/reuse_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/reuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/reuse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
