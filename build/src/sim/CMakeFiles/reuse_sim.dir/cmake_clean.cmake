file(REMOVE_RECURSE
  "CMakeFiles/reuse_sim.dir/accelerator.cc.o"
  "CMakeFiles/reuse_sim.dir/accelerator.cc.o.d"
  "CMakeFiles/reuse_sim.dir/cost_model.cc.o"
  "CMakeFiles/reuse_sim.dir/cost_model.cc.o.d"
  "CMakeFiles/reuse_sim.dir/io_buffer_model.cc.o"
  "CMakeFiles/reuse_sim.dir/io_buffer_model.cc.o.d"
  "CMakeFiles/reuse_sim.dir/tile_model.cc.o"
  "CMakeFiles/reuse_sim.dir/tile_model.cc.o.d"
  "CMakeFiles/reuse_sim.dir/weights_residency.cc.o"
  "CMakeFiles/reuse_sim.dir/weights_residency.cc.o.d"
  "libreuse_sim.a"
  "libreuse_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
