file(REMOVE_RECURSE
  "libreuse_sim.a"
)
