# Empty dependencies file for reuse_sim.
# This may be replaced when dependencies are built.
