
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/nn/CMakeFiles/reuse_nn.dir/activations.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/activations.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/nn/CMakeFiles/reuse_nn.dir/conv2d.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/conv2d.cc.o.d"
  "/root/repo/src/nn/conv3d.cc" "src/nn/CMakeFiles/reuse_nn.dir/conv3d.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/conv3d.cc.o.d"
  "/root/repo/src/nn/fully_connected.cc" "src/nn/CMakeFiles/reuse_nn.dir/fully_connected.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/fully_connected.cc.o.d"
  "/root/repo/src/nn/initializers.cc" "src/nn/CMakeFiles/reuse_nn.dir/initializers.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/initializers.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/reuse_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/nn/CMakeFiles/reuse_nn.dir/lstm.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/lstm.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/nn/CMakeFiles/reuse_nn.dir/network.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/network.cc.o.d"
  "/root/repo/src/nn/pnorm.cc" "src/nn/CMakeFiles/reuse_nn.dir/pnorm.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/pnorm.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/nn/CMakeFiles/reuse_nn.dir/pooling.cc.o" "gcc" "src/nn/CMakeFiles/reuse_nn.dir/pooling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/reuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/reuse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
