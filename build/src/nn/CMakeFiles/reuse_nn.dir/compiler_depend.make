# Empty compiler generated dependencies file for reuse_nn.
# This may be replaced when dependencies are built.
