file(REMOVE_RECURSE
  "libreuse_nn.a"
)
