file(REMOVE_RECURSE
  "CMakeFiles/reuse_nn.dir/activations.cc.o"
  "CMakeFiles/reuse_nn.dir/activations.cc.o.d"
  "CMakeFiles/reuse_nn.dir/conv2d.cc.o"
  "CMakeFiles/reuse_nn.dir/conv2d.cc.o.d"
  "CMakeFiles/reuse_nn.dir/conv3d.cc.o"
  "CMakeFiles/reuse_nn.dir/conv3d.cc.o.d"
  "CMakeFiles/reuse_nn.dir/fully_connected.cc.o"
  "CMakeFiles/reuse_nn.dir/fully_connected.cc.o.d"
  "CMakeFiles/reuse_nn.dir/initializers.cc.o"
  "CMakeFiles/reuse_nn.dir/initializers.cc.o.d"
  "CMakeFiles/reuse_nn.dir/layer.cc.o"
  "CMakeFiles/reuse_nn.dir/layer.cc.o.d"
  "CMakeFiles/reuse_nn.dir/lstm.cc.o"
  "CMakeFiles/reuse_nn.dir/lstm.cc.o.d"
  "CMakeFiles/reuse_nn.dir/network.cc.o"
  "CMakeFiles/reuse_nn.dir/network.cc.o.d"
  "CMakeFiles/reuse_nn.dir/pnorm.cc.o"
  "CMakeFiles/reuse_nn.dir/pnorm.cc.o.d"
  "CMakeFiles/reuse_nn.dir/pooling.cc.o"
  "CMakeFiles/reuse_nn.dir/pooling.cc.o.d"
  "libreuse_nn.a"
  "libreuse_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
