file(REMOVE_RECURSE
  "libreuse_tensor.a"
)
