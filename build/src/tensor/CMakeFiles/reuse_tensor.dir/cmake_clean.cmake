file(REMOVE_RECURSE
  "CMakeFiles/reuse_tensor.dir/shape.cc.o"
  "CMakeFiles/reuse_tensor.dir/shape.cc.o.d"
  "CMakeFiles/reuse_tensor.dir/tensor.cc.o"
  "CMakeFiles/reuse_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/reuse_tensor.dir/tensor_ops.cc.o"
  "CMakeFiles/reuse_tensor.dir/tensor_ops.cc.o.d"
  "libreuse_tensor.a"
  "libreuse_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
