# Empty compiler generated dependencies file for reuse_tensor.
# This may be replaced when dependencies are built.
