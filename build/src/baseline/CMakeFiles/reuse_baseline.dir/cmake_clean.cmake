file(REMOVE_RECURSE
  "CMakeFiles/reuse_baseline.dir/platform_model.cc.o"
  "CMakeFiles/reuse_baseline.dir/platform_model.cc.o.d"
  "libreuse_baseline.a"
  "libreuse_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
