file(REMOVE_RECURSE
  "libreuse_baseline.a"
)
