# Empty dependencies file for reuse_baseline.
# This may be replaced when dependencies are built.
