file(REMOVE_RECURSE
  "libreuse_energy.a"
)
