file(REMOVE_RECURSE
  "CMakeFiles/reuse_energy.dir/energy_model.cc.o"
  "CMakeFiles/reuse_energy.dir/energy_model.cc.o.d"
  "libreuse_energy.a"
  "libreuse_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
