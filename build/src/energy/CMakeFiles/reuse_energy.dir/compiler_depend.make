# Empty compiler generated dependencies file for reuse_energy.
# This may be replaced when dependencies are built.
