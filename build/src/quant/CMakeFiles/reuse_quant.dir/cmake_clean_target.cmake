file(REMOVE_RECURSE
  "libreuse_quant.a"
)
