# Empty compiler generated dependencies file for reuse_quant.
# This may be replaced when dependencies are built.
