file(REMOVE_RECURSE
  "CMakeFiles/reuse_quant.dir/accuracy.cc.o"
  "CMakeFiles/reuse_quant.dir/accuracy.cc.o.d"
  "CMakeFiles/reuse_quant.dir/fixed_point.cc.o"
  "CMakeFiles/reuse_quant.dir/fixed_point.cc.o.d"
  "CMakeFiles/reuse_quant.dir/layer_selection.cc.o"
  "CMakeFiles/reuse_quant.dir/layer_selection.cc.o.d"
  "CMakeFiles/reuse_quant.dir/linear_quantizer.cc.o"
  "CMakeFiles/reuse_quant.dir/linear_quantizer.cc.o.d"
  "CMakeFiles/reuse_quant.dir/quantization_plan.cc.o"
  "CMakeFiles/reuse_quant.dir/quantization_plan.cc.o.d"
  "CMakeFiles/reuse_quant.dir/range_profiler.cc.o"
  "CMakeFiles/reuse_quant.dir/range_profiler.cc.o.d"
  "libreuse_quant.a"
  "libreuse_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
