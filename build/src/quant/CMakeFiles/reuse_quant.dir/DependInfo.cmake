
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/accuracy.cc" "src/quant/CMakeFiles/reuse_quant.dir/accuracy.cc.o" "gcc" "src/quant/CMakeFiles/reuse_quant.dir/accuracy.cc.o.d"
  "/root/repo/src/quant/fixed_point.cc" "src/quant/CMakeFiles/reuse_quant.dir/fixed_point.cc.o" "gcc" "src/quant/CMakeFiles/reuse_quant.dir/fixed_point.cc.o.d"
  "/root/repo/src/quant/layer_selection.cc" "src/quant/CMakeFiles/reuse_quant.dir/layer_selection.cc.o" "gcc" "src/quant/CMakeFiles/reuse_quant.dir/layer_selection.cc.o.d"
  "/root/repo/src/quant/linear_quantizer.cc" "src/quant/CMakeFiles/reuse_quant.dir/linear_quantizer.cc.o" "gcc" "src/quant/CMakeFiles/reuse_quant.dir/linear_quantizer.cc.o.d"
  "/root/repo/src/quant/quantization_plan.cc" "src/quant/CMakeFiles/reuse_quant.dir/quantization_plan.cc.o" "gcc" "src/quant/CMakeFiles/reuse_quant.dir/quantization_plan.cc.o.d"
  "/root/repo/src/quant/range_profiler.cc" "src/quant/CMakeFiles/reuse_quant.dir/range_profiler.cc.o" "gcc" "src/quant/CMakeFiles/reuse_quant.dir/range_profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/reuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/reuse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
