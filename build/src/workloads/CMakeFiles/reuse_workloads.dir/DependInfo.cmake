
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/model_zoo.cc" "src/workloads/CMakeFiles/reuse_workloads.dir/model_zoo.cc.o" "gcc" "src/workloads/CMakeFiles/reuse_workloads.dir/model_zoo.cc.o.d"
  "/root/repo/src/workloads/speech_generator.cc" "src/workloads/CMakeFiles/reuse_workloads.dir/speech_generator.cc.o" "gcc" "src/workloads/CMakeFiles/reuse_workloads.dir/speech_generator.cc.o.d"
  "/root/repo/src/workloads/video_generator.cc" "src/workloads/CMakeFiles/reuse_workloads.dir/video_generator.cc.o" "gcc" "src/workloads/CMakeFiles/reuse_workloads.dir/video_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/reuse_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/reuse_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/reuse_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
