# Empty compiler generated dependencies file for reuse_workloads.
# This may be replaced when dependencies are built.
