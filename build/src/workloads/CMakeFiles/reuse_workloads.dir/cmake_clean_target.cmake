file(REMOVE_RECURSE
  "libreuse_workloads.a"
)
