file(REMOVE_RECURSE
  "CMakeFiles/reuse_workloads.dir/model_zoo.cc.o"
  "CMakeFiles/reuse_workloads.dir/model_zoo.cc.o.d"
  "CMakeFiles/reuse_workloads.dir/speech_generator.cc.o"
  "CMakeFiles/reuse_workloads.dir/speech_generator.cc.o.d"
  "CMakeFiles/reuse_workloads.dir/video_generator.cc.o"
  "CMakeFiles/reuse_workloads.dir/video_generator.cc.o.d"
  "libreuse_workloads.a"
  "libreuse_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
