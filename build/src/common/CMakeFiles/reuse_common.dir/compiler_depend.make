# Empty compiler generated dependencies file for reuse_common.
# This may be replaced when dependencies are built.
