file(REMOVE_RECURSE
  "libreuse_common.a"
)
