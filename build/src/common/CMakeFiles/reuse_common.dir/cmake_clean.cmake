file(REMOVE_RECURSE
  "CMakeFiles/reuse_common.dir/logging.cc.o"
  "CMakeFiles/reuse_common.dir/logging.cc.o.d"
  "CMakeFiles/reuse_common.dir/random.cc.o"
  "CMakeFiles/reuse_common.dir/random.cc.o.d"
  "CMakeFiles/reuse_common.dir/stats.cc.o"
  "CMakeFiles/reuse_common.dir/stats.cc.o.d"
  "CMakeFiles/reuse_common.dir/table_writer.cc.o"
  "CMakeFiles/reuse_common.dir/table_writer.cc.o.d"
  "libreuse_common.a"
  "libreuse_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reuse_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
