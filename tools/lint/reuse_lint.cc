/**
 * @file
 * Project lint: mechanical rules the compiler cannot express, run
 * over the CMake compilation database (compile_commands.json) plus
 * every header under src/.  Exit status is the number of findings
 * (0 = clean), so CI can gate on it directly.
 *
 * Rules (suppress a line with a NOLINT(reuse-lint) comment):
 *
 *  raw-sync       std::mutex & friends (lock_guard, unique_lock,
 *                 condition_variable, shared_mutex, ...) and their
 *                 headers are forbidden in src/ outside
 *                 common/sync.h: all locking goes through the
 *                 annotated wrappers so Clang's thread-safety
 *                 analysis sees every acquisition.
 *
 *  banned-call    rand()/srand()/time() are forbidden in src/: all
 *                 randomness derives from seeded SplitMix streams
 *                 (common/random.h) and all timing from
 *                 std::chrono, or runs stop being reproducible.
 *
 *  trace-event    The raw TraceEvent record type is obs-internal;
 *                 code outside src/obs must emit spans through the
 *                 RAII TraceSpan/FrameTraceScope or the
 *                 recordInstant/recordSpanAt helpers, which honor
 *                 sampling and never leak an unclosed span.
 *
 *  float-format   Floating-point formatting (%f/%g/%e specs,
 *                 setprecision) is forbidden in ir/compiled_plan.cc:
 *                 the plan dump is a golden artifact diffed in CI,
 *                 and float text is locale/libc-rounding dependent
 *                 (integers only; scale fixed-point instead).
 *
 *  raw-simd       Vector intrinsics (_mm/NEON tokens and the
 *                 <immintrin.h>/<arm_neon.h> headers) are forbidden
 *                 in src/ outside src/kernels/: all SIMD lives
 *                 behind the dispatched kernel entry points
 *                 (kernels/delta_kernels.h, kernels/change_list.h)
 *                 so the scalar reference stays the single
 *                 correctness contract and dispatch stays in one
 *                 place.
 *
 *  serve-clock    Direct std::chrono clock reads (steady_clock,
 *                 system_clock, high_resolution_clock) are forbidden
 *                 in src/serve outside serve/clock.{h,cc}: all
 *                 serving-layer timestamps flow through the Clock
 *                 seam so the deterministic scheduler tests can
 *                 substitute a virtual clock.  An unseamed now()
 *                 re-introduces wall-clock nondeterminism the
 *                 whole harness is built to exclude.
 *
 * Comments and string literals are stripped before token matching
 * (except float-format, which inspects string literals), so prose
 * mentioning std::mutex does not count.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace {

namespace fs = std::filesystem;

struct Finding {
    std::string file;
    size_t line = 0;
    std::string rule;
    std::string message;
};

/** One physical line split into lint-relevant channels. */
struct Line {
    /** Code with comments and string/char literals blanked out. */
    std::string code;
    /** Concatenated string-literal contents on this line. */
    std::string strings;
    /** True when a comment on this line contains NOLINT. */
    bool suppressed = false;
};

/**
 * Splits a source file into per-line code/string/comment channels.
 * Handles //, yes-really-nested-looking /<*>...<*>/ blocks, string
 * and char literals with escapes.  Raw strings are rare in this
 * codebase and treated as plain strings (good enough for linting).
 */
std::vector<Line>
splitChannels(const std::string &text)
{
    std::vector<Line> lines(1);
    enum class State { Code, LineComment, BlockComment, Str, Chr };
    State state = State::Code;
    std::string comment;

    auto endLine = [&](Line &line) {
        if (comment.find("NOLINT") != std::string::npos)
            line.suppressed = true;
        comment.clear();
    };

    for (size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        Line &line = lines.back();
        if (c == '\n') {
            endLine(line);
            if (state == State::LineComment)
                state = State::Code;
            lines.emplace_back();
            continue;
        }
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                ++i;
            } else if (c == '"') {
                state = State::Str;
                line.code.push_back(' ');
            } else if (c == '\'') {
                state = State::Chr;
                line.code.push_back(' ');
            } else {
                line.code.push_back(c);
            }
            break;
          case State::LineComment:
            comment.push_back(c);
            break;
          case State::BlockComment:
            comment.push_back(c);
            if (c == '*' && next == '/') {
                state = State::Code;
                ++i;
            }
            break;
          case State::Str:
            if (c == '\\') {
                line.strings.push_back(c);
                if (next != '\0') {
                    line.strings.push_back(next);
                    ++i;
                }
            } else if (c == '"') {
                state = State::Code;
            } else {
                line.strings.push_back(c);
            }
            break;
          case State::Chr:
            if (c == '\\' && next != '\0') {
                ++i;
            } else if (c == '\'') {
                state = State::Code;
            }
            break;
        }
    }
    endLine(lines.back());
    return lines;
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** True when `code` contains `ident` as a whole identifier. */
bool
hasIdentifier(const std::string &code, const std::string &ident)
{
    size_t pos = 0;
    while ((pos = code.find(ident, pos)) != std::string::npos) {
        const bool bounded_left =
            pos == 0 || !isIdentChar(code[pos - 1]);
        const size_t end = pos + ident.size();
        const bool bounded_right =
            end >= code.size() || !isIdentChar(code[end]);
        if (bounded_left && bounded_right)
            return true;
        pos = end;
    }
    return false;
}

/** True when `ident` appears as an identifier followed by '('. */
bool
hasCall(const std::string &code, const std::string &ident)
{
    size_t pos = 0;
    while ((pos = code.find(ident, pos)) != std::string::npos) {
        const bool bounded_left =
            pos == 0 || !isIdentChar(code[pos - 1]);
        size_t end = pos + ident.size();
        const bool bounded_right =
            end >= code.size() || !isIdentChar(code[end]);
        if (bounded_left && bounded_right) {
            while (end < code.size() && code[end] == ' ')
                ++end;
            if (end < code.size() && code[end] == '(')
                return true;
        }
        pos = pos + ident.size();
    }
    return false;
}

/** True when a string literal carries a float printf spec. */
bool
hasFloatFormatSpec(const std::string &strings)
{
    for (size_t i = 0; i + 1 < strings.size(); ++i) {
        if (strings[i] != '%')
            continue;
        size_t j = i + 1;
        while (j < strings.size() &&
               (std::isdigit(static_cast<unsigned char>(strings[j])) ||
                strings[j] == '.' || strings[j] == '-' ||
                strings[j] == '+' || strings[j] == ' ' ||
                strings[j] == '#' || strings[j] == '*' ||
                strings[j] == 'l' || strings[j] == 'L'))
            ++j;
        if (j < strings.size() &&
            std::string("fFeEgGaA").find(strings[j]) !=
                std::string::npos)
            return true;
    }
    return false;
}

/**
 * True when `code` carries an x86 intrinsic token: "_mm" bounded on
 * the left by a non-identifier character (so "foo_mm" is fine) and
 * continued by identifier characters ("_mm_add_ps", "_mm256_...",
 * "__m512" is caught via the type check below).
 */
bool
hasX86Intrinsic(const std::string &code)
{
    size_t pos = 0;
    while ((pos = code.find("_mm", pos)) != std::string::npos) {
        const bool bounded_left =
            pos == 0 || !isIdentChar(code[pos - 1]);
        if (bounded_left && pos + 3 < code.size() &&
            isIdentChar(code[pos + 3]))
            return true;
        pos += 3;
    }
    // Vector register types (__m128/__m256/__m512 and variants).
    for (const char *type : {"__m128", "__m256", "__m512"}) {
        if (code.find(type) != std::string::npos)
            return true;
    }
    return false;
}

/** True when `code` carries a NEON vector type or load/store. */
bool
hasNeonIntrinsic(const std::string &code)
{
    for (const char *tok :
         {"float32x4_t", "int32x4_t", "uint32x4_t", "vld1q", "vst1q"}) {
        if (hasIdentifier(code, tok))
            return true;
    }
    return false;
}

const char *const kRawSyncTypes[] = {
    "mutex",          "timed_mutex",
    "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex",   "shared_timed_mutex",
    "lock_guard",     "unique_lock",
    "shared_lock",    "scoped_lock",
    "condition_variable", "condition_variable_any",
};

void
lintFile(const fs::path &path, const fs::path &src_root,
         std::vector<Finding> &findings)
{
    std::ifstream in(path);
    if (!in) {
        findings.push_back({path.string(), 0, "io",
                            "cannot open file"});
        return;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::vector<Line> lines = splitChannels(buf.str());

    const std::string rel =
        fs::relative(path, src_root).generic_string();
    const bool is_sync_header = rel == "common/sync.h";
    const bool in_obs = rel.rfind("obs/", 0) == 0;
    const bool is_plan_dump = rel == "ir/compiled_plan.cc";
    const bool in_kernels = rel.rfind("kernels/", 0) == 0;
    const bool in_serve = rel.rfind("serve/", 0) == 0;
    const bool is_clock_impl =
        rel == "serve/clock.h" || rel == "serve/clock.cc";

    for (size_t ln = 0; ln < lines.size(); ++ln) {
        const Line &line = lines[ln];
        if (line.suppressed)
            continue;
        const std::string &code = line.code;
        auto report = [&](const char *rule, std::string msg) {
            findings.push_back(
                {path.string(), ln + 1, rule, std::move(msg)});
        };

        if (!is_sync_header) {
            for (const char *type : kRawSyncTypes) {
                const std::string qualified =
                    std::string("std::") + type;
                if (code.find(qualified) != std::string::npos &&
                    hasIdentifier(code, type)) {
                    report("raw-sync",
                           qualified +
                               " is forbidden outside common/sync.h;"
                               " use the annotated wrappers");
                    break;
                }
            }
            const size_t inc = code.find("#include");
            if (inc != std::string::npos) {
                for (const char *header :
                     {"<mutex>", "<shared_mutex>",
                      "<condition_variable>"}) {
                    if (code.find(header, inc) != std::string::npos)
                        report("raw-sync",
                               std::string("#include ") + header +
                                   " is forbidden outside "
                                   "common/sync.h");
                }
            }
        }

        for (const char *fn : {"rand", "srand", "time"}) {
            if (hasCall(code, fn))
                report("banned-call",
                       std::string(fn) +
                           "() breaks run reproducibility; use "
                           "common/random.h streams / std::chrono");
        }

        if (!in_obs && hasIdentifier(code, "TraceEvent"))
            report("trace-event",
                   "raw TraceEvent is obs-internal; emit spans via "
                   "TraceSpan/FrameTraceScope or recordInstant");

        if (!in_kernels) {
            const size_t inc = code.find("#include");
            if (inc != std::string::npos) {
                for (const char *header :
                     {"<immintrin.h>", "<x86intrin.h>",
                      "<arm_neon.h>"}) {
                    if (code.find(header, inc) != std::string::npos)
                        report("raw-simd",
                               std::string("#include ") + header +
                                   " is forbidden outside "
                                   "src/kernels/; call the "
                                   "dispatched kernels instead");
                }
            }
            if (hasX86Intrinsic(code) || hasNeonIntrinsic(code))
                report("raw-simd",
                       "vector intrinsics are forbidden outside "
                       "src/kernels/; call the dispatched kernels "
                       "instead");
        }

        if (in_serve && !is_clock_impl) {
            for (const char *clk :
                 {"steady_clock", "system_clock",
                  "high_resolution_clock"}) {
                if (hasIdentifier(code, clk)) {
                    report("serve-clock",
                           std::string("std::chrono::") + clk +
                               " bypasses the Clock seam "
                               "(serve/clock.h); take timestamps "
                               "from Config::clock");
                    break;
                }
            }
        }

        if (is_plan_dump) {
            if (hasFloatFormatSpec(line.strings))
                report("float-format",
                       "float printf spec in the golden plan dump; "
                       "emit integers only");
            if (hasIdentifier(code, "setprecision"))
                report("float-format",
                       "setprecision in the golden plan dump; emit "
                       "integers only");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    fs::path db_path = argc > 1 ? argv[1] : "build";
    if (fs::is_directory(db_path))
        db_path /= "compile_commands.json";
    if (!fs::exists(db_path)) {
        std::cerr << "reuse_lint: no compilation database at "
                  << db_path
                  << " (configure with CMAKE_EXPORT_COMPILE_COMMANDS)"
                  << "\n";
        return 2;
    }

    const reuse::JsonParseResult db =
        reuse::parseJsonFile(db_path.string());
    if (!db.ok || !db.value.isArray()) {
        std::cerr << "reuse_lint: cannot parse " << db_path << ": "
                  << db.error << "\n";
        return 2;
    }

    // Lint every TU under src/ that the build actually compiles ...
    std::set<fs::path> files;
    fs::path src_root;
    for (const reuse::JsonValue &entry : db.value.asArray()) {
        if (!entry.isObject() || !entry.has("file"))
            continue;
        fs::path file(entry.at("file").asString());
        if (file.is_relative() && entry.has("directory"))
            file = fs::path(entry.at("directory").asString()) / file;
        file = file.lexically_normal();
        // Find the .../src/ component that owns this TU.
        for (fs::path p = file.parent_path(); p.has_parent_path();
             p = p.parent_path()) {
            if (p.filename() == "src") {
                files.insert(file);
                if (src_root.empty())
                    src_root = p;
                break;
            }
            if (p == p.parent_path())
                break;
        }
    }
    if (src_root.empty()) {
        std::cerr << "reuse_lint: no src/ TUs in " << db_path << "\n";
        return 2;
    }
    // ... plus every header under src/ (headers never appear in the
    // compile DB but carry most of the locking declarations).
    for (const auto &e : fs::recursive_directory_iterator(src_root)) {
        if (e.is_regular_file() && e.path().extension() == ".h")
            files.insert(e.path().lexically_normal());
    }

    std::vector<Finding> findings;
    for (const fs::path &file : files)
        lintFile(file, src_root, findings);

    for (const Finding &f : findings)
        std::cerr << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
    std::cerr << "reuse_lint: " << files.size() << " files, "
              << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << "\n";
    return findings.empty() ? 0
                            : static_cast<int>(
                                  std::min<size_t>(findings.size(), 125));
}
