/**
 * @file
 * Trace inspection CLI: aggregates an exported trace file
 * (obs::TraceExporter's Chrome trace-event JSON) back into per-layer
 * reuse tables, and validates traces against the checked-in schema
 * for the CI trace-smoke job.
 *
 * Usage:
 *   trace_report TRACE.json                 # per-layer report
 *   trace_report TRACE.json --csv           # same, CSV
 *   trace_report TRACE.json --validate=SCHEMA.json
 *
 * Exit codes: 0 success, 1 parse/validation failure, 2 usage error.
 */

#include <iostream>
#include <string>

#include "common/json.h"
#include "common/table_writer.h"
#include "obs/trace_aggregate.h"

using namespace reuse;

namespace {

int
usage()
{
    std::cerr << "usage: trace_report TRACE.json [--csv] "
                 "[--validate=SCHEMA.json]\n";
    return 2;
}

void
printKindLine(std::ostream &os, const obs::TraceAggregate &agg,
              const char *name, const char *label)
{
    auto it = agg.kinds.find(name);
    if (it == agg.kinds.end())
        return;
    const obs::KindTraceAgg &k = it->second;
    os << "  " << label << ": " << k.count;
    if (!k.durUs.empty()) {
        os << " (p50 "
           << formatDouble(obs::tracePercentile(k.durUs, 0.50), 1)
           << " us, p99 "
           << formatDouble(obs::tracePercentile(k.durUs, 0.99), 1)
           << " us)";
    }
    os << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string schema_path;
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--validate=", 0) == 0) {
            schema_path = arg.substr(std::string("--validate=").size());
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "trace_report: unknown option " << arg << "\n";
            return usage();
        } else if (trace_path.empty()) {
            trace_path = arg;
        } else {
            return usage();
        }
    }
    if (trace_path.empty())
        return usage();

    JsonParseResult trace = parseJsonFile(trace_path);
    if (!trace.ok) {
        std::cerr << "trace_report: " << trace.error << "\n";
        return 1;
    }

    if (!schema_path.empty()) {
        JsonParseResult schema = parseJsonFile(schema_path);
        if (!schema.ok) {
            std::cerr << "trace_report: " << schema.error << "\n";
            return 1;
        }
        std::string why;
        if (!obs::validateTrace(trace.value, schema.value, &why)) {
            std::cerr << "trace_report: " << trace_path
                      << " FAILED schema validation: " << why << "\n";
            return 1;
        }
        std::cout
            << trace_path << ": valid ("
            << trace.value.at("traceEvents").asArray().size()
            << " events)\n";
    }

    obs::TraceAggregate agg;
    std::string why;
    if (!obs::aggregateTrace(trace.value, &agg, &why)) {
        std::cerr << "trace_report: " << why << "\n";
        return 1;
    }

    std::cout << "Trace: " << trace_path << " (" << agg.events
              << " events, 1/" << agg.sampleEvery
              << " frame sampling, " << agg.droppedEvents
              << " dropped)\n";

    if (!agg.layers.empty()) {
        TableWriter t({"Layer", "Spans", "Similarity", "Comp. Reuse",
                       "p50 us", "p99 us"});
        for (const auto &[li, layer] : agg.layers) {
            t.addRow({std::to_string(li),
                      std::to_string(layer.spans),
                      formatPercent(layer.similarity()),
                      formatPercent(layer.computationReuse()),
                      formatDouble(
                          obs::tracePercentile(layer.durUs, 0.50), 1),
                      formatDouble(
                          obs::tracePercentile(layer.durUs, 0.99), 1)});
        }
        std::cout << "\nPer-layer steady-state reuse (first "
                     "executions excluded):\n";
        if (csv)
            t.printCsv(std::cout);
        else
            t.print(std::cout);
    } else {
        std::cout << "No steady-state layer_exec spans in trace.\n";
    }

    std::cout << "\nEvent summary:\n";
    printKindLine(std::cout, agg, "frame_exec", "frames traced");
    printKindLine(std::cout, agg, "queue_wait", "queue waits");
    printKindLine(std::cout, agg, "first_exec", "first executions");
    printKindLine(std::cout, agg, "layer_scan", "change scans");
    printKindLine(std::cout, agg, "layer_apply", "delta applies");
    printKindLine(std::cout, agg, "pool_dispatch", "pool dispatches");
    printKindLine(std::cout, agg, "drift_refresh", "drift refreshes");
    printKindLine(std::cout, agg, "eviction", "evictions");
    printKindLine(std::cout, agg, "frame_shed", "shed frames");
    printKindLine(std::cout, agg, "corruption_recovery",
                  "corruption recoveries");
    printKindLine(std::cout, agg, "frame_submit", "submit instants");
    printKindLine(std::cout, agg, "steal", "work steals");
    printKindLine(std::cout, agg, "migration", "session migrations");

    if (agg.hasExemplars) {
        std::cout << "\nTail-latency exemplars: " << agg.exemplarCount
                  << " in file (" << agg.exemplarsCommitted
                  << " committed, " << agg.exemplarsDropped
                  << " dropped, " << agg.exemplarStagingOverflows
                  << " staging overflows)\n";
        if (agg.exemplarsDropped > 0) {
            std::cout << "WARNING: exemplar ring overflowed — "
                      << agg.exemplarsDropped
                      << " exemplars lost; raise "
                         "exemplars.ringCapacity or export more "
                         "often\n";
        }
        if (agg.exemplarStagingOverflows > 0) {
            std::cout << "WARNING: per-frame staging overflowed "
                      << agg.exemplarStagingOverflows
                      << " times — attribution of truncated "
                         "exemplars undercounts layer time\n";
        }
    }
    return 0;
}
