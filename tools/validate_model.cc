/**
 * @file
 * validate_model: runs the static model validator (shape inference,
 * reuse-safety analysis, memory-footprint estimation) over the model
 * zoo — or deliberately broken models with --broken — and prints the
 * resulting diagnostics.
 *
 * Exit status is 0 when no validated model produced an error
 * diagnostic, 1 otherwise, so the tool can gate CI and model drops.
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/model_validator.h"
#include "harness/workload_setup.h"
#include "nn/fully_connected.h"
#include "nn/pooling.h"
#include "workloads/model_zoo.h"

namespace {

using namespace reuse;

void
usage(std::ostream &os)
{
    os << "usage: validate_model [options]\n"
          "\n"
          "Statically validates networks + quantization plans and\n"
          "prints a diagnostic report per model.\n"
          "\n"
          "options:\n"
          "  --model NAME     validate one zoo model (default: all)\n"
          "  --budget BYTES   per-session reuse-state budget to check\n"
          "                   the footprint against (default: none)\n"
          "  --broken         validate three deliberately broken\n"
          "                   models instead, demonstrating the\n"
          "                   diagnostic IDs they trigger\n"
          "  --dump-plan      print each model's compiled execution\n"
          "                   schedule (op, shapes, kernel mode,\n"
          "                   fusion and reuse-safety flags) instead\n"
          "                   of validating; the output is stable and\n"
          "                   golden-tested (tools/golden_plans.txt)\n"
          "  --help           print this message\n";
}

/** Prints one model's report under a header; returns its error count. */
size_t
printReport(const std::string &name, const DiagnosticReport &report)
{
    std::cout << "== " << name << " ==\n";
    if (report.diagnostics().empty()) {
        std::cout << "  (no diagnostics)\n";
    } else {
        for (const Diagnostic &d : report.diagnostics())
            std::cout << "  " << d.str() << "\n";
    }
    const size_t errors = report.count(Severity::Error);
    std::cout << "  " << errors << " error(s), "
              << report.count(Severity::Warning) << " warning(s)\n\n";
    return errors;
}

/** Validates one zoo workload; returns its error count. */
size_t
validateZooModel(const std::string &name, int64_t budget_bytes)
{
    WorkloadSetupConfig cfg;
    // Calibration only sets quantizer ranges; a short stream is
    // plenty for static validation and keeps the tool fast.
    cfg.calibrationFrames = 16;
    Workload w = setupWorkload(name, cfg);
    ValidatorOptions options;
    options.memoryBudgetBytes = budget_bytes;
    const DiagnosticReport report =
        validateModel(*w.bundle.network, w.plan, options);
    return printReport(name, report);
}

/**
 * Builds and validates three broken models, one per analyzer pass,
 * and checks each produces its documented diagnostic ID.  Returns
 * true when every expected ID appeared.
 */
bool
demoBrokenModels()
{
    bool all_found = true;
    auto expect = [&](const DiagnosticReport &report,
                      const std::string &name, const char *id) {
        printReport(name, report);
        if (!report.has(id)) {
            std::cout << "  MISSING expected diagnostic " << id
                      << "\n\n";
            all_found = false;
        }
    };

    // 1. Mismatched layer chain: FC expecting 32 inputs fed 16
    //    outputs (SH002, shape pass).
    {
        Network net("broken-shapes", Shape({64}));
        net.addLayer(std::make_unique<FullyConnectedLayer>(
            "FC0", 64, 16));
        net.addLayer(std::make_unique<FullyConnectedLayer>(
            "FC1", 32, 8));
        QuantizationPlan plan(net);
        expect(validateModel(net, plan), "broken-shapes",
               diag::kShapeMismatch);
    }

    // 2. Reuse enabled on a non-linear layer: pooling cannot take
    //    the incremental update of Eq. 10 (RS001, safety pass).
    {
        Network net("broken-reuse", Shape({4, 8, 8}));
        net.addLayer(
            std::make_unique<MaxPool2DLayer>("Pool", 2));
        QuantizationPlan plan(net);
        plan.layer(0).input = LinearQuantizer(16, -1.0f, 1.0f);
        expect(validateModel(net, plan), "broken-reuse",
               diag::kReuseOnUnsafeLayer);
    }

    // 3. Session footprint larger than the whole serving budget
    //    (MF001, memory pass).
    {
        Network net("broken-budget", Shape({256}));
        net.addLayer(std::make_unique<FullyConnectedLayer>(
            "FC0", 256, 256));
        QuantizationPlan plan(net);
        plan.layer(0).input = LinearQuantizer(16, -1.0f, 1.0f);
        ValidatorOptions options;
        options.memoryBudgetBytes = 64;
        expect(validateModel(net, plan, options), "broken-budget",
               diag::kFootprintOverBudget);
    }

    return all_found;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string model;
    int64_t budget_bytes = -1;
    bool broken = false;
    bool dump_plan = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--broken") {
            broken = true;
        } else if (arg == "--dump-plan") {
            dump_plan = true;
        } else if (arg == "--model" && i + 1 < argc) {
            model = argv[++i];
        } else if (arg == "--budget" && i + 1 < argc) {
            budget_bytes = std::strtoll(argv[++i], nullptr, 10);
        } else {
            std::cerr << "unknown option: " << arg << "\n";
            usage(std::cerr);
            return 2;
        }
    }

    if (broken) {
        std::cout << "Validating deliberately broken models; each "
                     "must produce its documented diagnostic.\n\n";
        const bool ok = demoBrokenModels();
        std::cout << (ok ? "all expected diagnostics produced\n"
                         : "expected diagnostics missing\n");
        return ok ? 0 : 1;
    }

    const std::vector<std::string> names =
        model.empty() ? modelZooNames()
                      : std::vector<std::string>{model};

    if (dump_plan) {
        for (const std::string &name : names)
            std::cout << dumpWorkloadPlan(name) << "\n";
        return 0;
    }

    size_t errors = 0;
    for (const std::string &name : names)
        errors += validateZooModel(name, budget_bytes);

    if (errors > 0) {
        std::cout << errors << " validation error(s)\n";
        return 1;
    }
    std::cout << "all models validated clean\n";
    return 0;
}
