/**
 * @file
 * fault_campaign: sweeps every fault kind across every reuse-enabled
 * layer kind and asserts, via the differential oracle, that the
 * runtime recovers — post-refresh frames (feed-forward) and
 * post-fault sequences (recurrent) must match a golden replay
 * bit-exactly, and benign faults (stall, drop, duplicate) must leave
 * the stream bit-exact throughout.
 *
 * Run by the fault-campaign CI job as
 *   fault_campaign --all --seeds 8
 * Exit status is 0 only when every seeded run recovered.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/reuse_engine.h"
#include "fault/fault_injector.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "quant/range_profiler.h"
#include "support/diff_oracle.h"

namespace {

using namespace reuse;
using testing::OracleReport;

/** Refresh period of the feed-forward campaign engines: the fault is
 *  always fired inside the first window, so frames from this index on
 *  must be bit-exact again. */
constexpr uint64_t kRefreshPeriod = 8;
constexpr size_t kDefaultFrames = 16;

struct BuiltCase {
    std::unique_ptr<Network> net;
    QuantizationPlan plan;
    LayerKind kind = LayerKind::FullyConnected;
    bool recurrent = false;
};

QuantizationPlan
profiledPlan(Network &net, Rng &rng,
             const std::vector<size_t> &reusable)
{
    std::vector<Tensor> calib;
    for (int i = 0; i < 12; ++i) {
        Tensor t(net.inputShape());
        rng.fillGaussian(t.data(), 0.0f, 1.0f);
        calib.push_back(t);
    }
    return makePlan(net, profileNetworkRanges(net, calib), 64,
                    reusable);
}

BuiltCase
buildNet(const std::string &name)
{
    Rng rng(17);
    BuiltCase c;
    if (name == "fc") {
        c.kind = LayerKind::FullyConnected;
        c.net = std::make_unique<Network>("fc", Shape({23}));
        c.net->addLayer(
            std::make_unique<FullyConnectedLayer>("FC1", 23, 37));
        c.net->addLayer(std::make_unique<ActivationLayer>(
            "RELU1", ActivationKind::ReLU));
        c.net->addLayer(
            std::make_unique<FullyConnectedLayer>("FC2", 37, 19));
        initNetwork(*c.net, rng);
        c.plan = profiledPlan(*c.net, rng, {0, 2});
    } else if (name == "conv2d") {
        c.kind = LayerKind::Conv2D;
        c.net = std::make_unique<Network>("conv2d", Shape({3, 13, 11}));
        c.net->addLayer(
            std::make_unique<Conv2DLayer>("CONV1", 3, 5, 3, 1));
        c.net->addLayer(std::make_unique<ActivationLayer>(
            "RELU1", ActivationKind::ReLU));
        c.net->addLayer(std::make_unique<FullyConnectedLayer>(
            "FC1", 5 * 11 * 9, 13));
        initNetwork(*c.net, rng);
        c.plan = profiledPlan(*c.net, rng, {0, 2});
    } else if (name == "conv3d") {
        c.kind = LayerKind::Conv3D;
        c.net =
            std::make_unique<Network>("conv3d", Shape({2, 5, 7, 7}));
        c.net->addLayer(
            std::make_unique<Conv3DLayer>("CONV1", 2, 4, 3, 1));
        c.net->addLayer(std::make_unique<FullyConnectedLayer>(
            "FC1", 4 * 5 * 7 * 7, 9));
        initNetwork(*c.net, rng);
        c.plan = profiledPlan(*c.net, rng, {0, 1});
    } else if (name == "lstm") {
        c.kind = LayerKind::Lstm;
        c.recurrent = true;
        c.net = std::make_unique<Network>("lstm", Shape({11}));
        c.net->addLayer(
            std::make_unique<LstmLayer>("LSTM1", 11, 13));
        initNetwork(*c.net, rng);
        c.plan = QuantizationPlan(*c.net);
        c.plan.layer(0).input = LinearQuantizer(64, -4.0f, 4.0f);
        c.plan.layer(0).recurrent = LinearQuantizer(64, -1.0f, 1.0f);
    } else if (name == "bilstm") {
        c.kind = LayerKind::BiLstm;
        c.recurrent = true;
        c.net = std::make_unique<Network>("bilstm", Shape({9}));
        c.net->addLayer(
            std::make_unique<BiLstmLayer>("BLSTM1", 9, 10));
        initNetwork(*c.net, rng);
        c.plan = QuantizationPlan(*c.net);
        c.plan.layer(0).input = LinearQuantizer(64, -4.0f, 4.0f);
        c.plan.layer(0).recurrent = LinearQuantizer(64, -1.0f, 1.0f);
    } else {
        std::cerr << "fault_campaign: unknown net '" << name << "'\n";
        std::exit(2);
    }
    return c;
}

std::vector<Tensor>
makeStream(const Shape &shape, size_t frames, uint64_t seed,
           float sigma)
{
    Rng rng(seed);
    std::vector<Tensor> s;
    Tensor x(shape);
    rng.fillGaussian(x.data(), 0.0f, 1.0f);
    for (size_t i = 0; i < frames; ++i) {
        for (int64_t j = 0; j < x.numel(); ++j)
            x[j] += rng.gaussian(0.0f, sigma);
        s.push_back(x);
    }
    return s;
}

bool
isFrameFault(fault::FaultKind kind)
{
    return kind == fault::FaultKind::DroppedFrame ||
           kind == fault::FaultKind::DuplicatedFrame;
}

bool
isBenign(fault::FaultKind kind)
{
    return isFrameFault(kind) ||
           kind == fault::FaultKind::WorkerStall;
}

/**
 * One feed-forward seeded run: arm the fault inside the first refresh
 * window, drive the stream through a session the way the serving
 * runtime would (drops answered from the last output, duplicates
 * executed twice), then replay the effective stream on a fresh state
 * and demand bit-exactness from the first post-fault refresh on.
 */
bool
runFeedForward(const BuiltCase &c, fault::FaultKind kind,
               uint64_t seed, size_t frames, std::string &why)
{
    ReuseEngineConfig cfg;
    cfg.refreshPeriod = kRefreshPeriod;
    ReuseEngine engine(*c.net, c.plan, cfg);
    const auto inputs =
        makeStream(c.net->inputShape(), frames, 1000 + seed, 0.2f);

    fault::FaultPlan plan;
    plan.kind = kind;
    // Frame faults and stalls are layer-agnostic hooks; filtering
    // them by layer kind would suppress them entirely.
    if (!isBenign(kind))
        plan.layerKind = c.kind;
    plan.fireAtInvocation = 2 + seed % 5;
    plan.seed = 100 + seed;
    fault::FaultInjector::global().arm(plan);

    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    // Effective stream: the inputs the reuse state actually consumed
    // (drops removed, duplicates doubled), plus aligned outputs.
    std::vector<Tensor> effective;
    std::vector<Tensor> outputs;
    bool has_last = false;
    Tensor last;
    for (const Tensor &in : inputs) {
        if (fault::frameFaultsArmed() && fault::shouldDropFrame() &&
            has_last)
            continue;    // serve answers with the previous output
        const bool dup =
            fault::frameFaultsArmed() && fault::shouldDuplicateFrame();
        Tensor out = engine.execute(state, in, trace);
        if (dup)
            out = engine.execute(state, in, trace);
        effective.push_back(in);
        outputs.push_back(out);
        if (dup) {
            effective.push_back(in);
            outputs.push_back(out);
        }
        last = out;
        has_last = true;
    }
    const uint64_t fires = fault::FaultInjector::global().fires();
    fault::FaultInjector::global().disarm();

    if (fires == 0) {
        why = "fault never fired";
        return false;
    }
    const OracleReport report =
        testing::diffAgainstReplay(engine, effective, outputs);
    if (isBenign(kind)) {
        if (!report.allBitExact()) {
            why = "benign fault diverged at frame " +
                  std::to_string(report.firstMismatchFrame);
            return false;
        }
        return true;
    }
    if (!report.bitExactFrom(kRefreshPeriod)) {
        why = "not bit-exact after refresh (first mismatch frame " +
              std::to_string(report.firstMismatchFrame) + ", max diff " +
              std::to_string(report.maxAbsDiff) + ")";
        return false;
    }
    return true;
}

/**
 * One recurrent seeded run: executeSequence resets reuse state at
 * every sequence boundary, so a fault fired in sequence k must leave
 * every later sequence bit-exact against the golden replay.
 */
bool
runRecurrent(const BuiltCase &c, fault::FaultKind kind, uint64_t seed,
             std::string &why)
{
    ReuseEngine engine(*c.net, c.plan);
    constexpr size_t kSequences = 4;
    std::vector<std::vector<Tensor>> sequences;
    for (size_t s = 0; s < kSequences; ++s)
        sequences.push_back(makeStream(c.net->inputShape(), 8,
                                       2000 + 13 * seed + s, 0.15f));

    fault::FaultPlan plan;
    plan.kind = kind;
    if (kind != fault::FaultKind::WorkerStall)
        plan.layerKind = c.kind;    // stalls are layer-agnostic
    plan.fireAtInvocation = 1 + seed % 4;
    plan.seed = 300 + seed;
    fault::FaultInjector::global().arm(plan);

    ReuseState state = engine.makeState();
    ExecutionTrace trace;
    std::vector<std::vector<Tensor>> outputs;
    size_t fired_in_sequence = kSequences;
    for (size_t s = 0; s < kSequences; ++s) {
        outputs.push_back(
            engine.executeSequence(state, sequences[s], trace));
        if (fired_in_sequence == kSequences &&
            fault::FaultInjector::global().fires() > 0)
            fired_in_sequence = s;
    }
    const uint64_t fires = fault::FaultInjector::global().fires();
    fault::FaultInjector::global().disarm();

    if (fires == 0) {
        why = "fault never fired";
        return false;
    }
    const OracleReport report =
        testing::diffSequencesAgainstReplay(engine, sequences,
                                            outputs);
    const size_t contained_from =
        kind == fault::FaultKind::WorkerStall
            ? 0    // stalls never corrupt
            : fired_in_sequence + 1;
    if (!report.bitExactFrom(contained_from)) {
        why = "sequence after fault diverged (fired in sequence " +
              std::to_string(fired_in_sequence) +
              ", first mismatch " +
              std::to_string(report.firstMismatchFrame) + ")";
        return false;
    }
    // Sequences before the fault must have been untouched too.
    for (size_t s = 0; s < fired_in_sequence && s < kSequences; ++s) {
        if (!report.frameBitExact[s]) {
            why = "sequence " + std::to_string(s) +
                  " diverged before the fault fired";
            return false;
        }
    }
    return true;
}

void
usage(std::ostream &os)
{
    os << "usage: fault_campaign [options]\n"
          "\n"
          "Sweeps fault kinds x layer kinds and asserts, via the\n"
          "differential oracle, bit-exact recovery in every seeded\n"
          "run.\n"
          "\n"
          "options:\n"
          "  --all            sweep every net and fault kind (default\n"
          "                   when no --net/--kind filter is given)\n"
          "  --net NAME       only this net: fc, conv2d, conv3d,\n"
          "                   lstm, bilstm\n"
          "  --kind NAME      only this fault kind (e.g.\n"
          "                   output-bit-flip)\n"
          "  --seeds N        seeded runs per combination (default 4)\n"
          "  --frames N       frames per feed-forward run (default "
       << kDefaultFrames << ")\n"
          "  --help           print this message\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string only_net;
    std::string only_kind;
    uint64_t seeds = 4;
    size_t frames = kDefaultFrames;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "fault_campaign: " << flag
                          << " needs a value\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--all") {
            // Default behaviour; kept explicit for CI readability.
        } else if (arg == "--net") {
            only_net = next("--net");
        } else if (arg == "--kind") {
            only_kind = next("--kind");
        } else if (arg == "--seeds") {
            seeds = std::strtoull(next("--seeds").c_str(), nullptr, 10);
        } else if (arg == "--frames") {
            frames = std::strtoull(next("--frames").c_str(), nullptr,
                                   10);
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "fault_campaign: unknown option " << arg
                      << "\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (seeds == 0 || frames < 2 * kRefreshPeriod) {
        std::cerr << "fault_campaign: need --seeds >= 1 and --frames"
                     " >= "
                  << 2 * kRefreshPeriod << "\n";
        return 2;
    }
    if (!fault::injectionCompiledIn()) {
        std::cerr << "fault_campaign: build with"
                     " -DREUSE_FAULT_INJECTION=ON\n";
        return 2;
    }
    if (only_kind.size() &&
        !fault::parseFaultKind(only_kind).has_value()) {
        std::cerr << "fault_campaign: unknown fault kind '"
                  << only_kind << "'\n";
        return 2;
    }

    // Small pool + low threshold so the chunk-hook (stall) path and
    // the pooled kernels are exercised even on tiny campaign nets.
    setenv("REUSE_KERNEL_THREADS", "2", 1);
    setenv("REUSE_KERNEL_PAR_THRESHOLD", "1", 1);

    const std::vector<std::string> nets = {"fc", "conv2d", "conv3d",
                                           "lstm", "bilstm"};
    size_t runs = 0;
    size_t failures = 0;
    for (const std::string &net_name : nets) {
        if (only_net.size() && net_name != only_net)
            continue;
        const BuiltCase c = buildNet(net_name);
        // Recoverable kinds only: EngineFatal kills the process by
        // design (it exists for the postmortem flight recorder) and
        // has no recovery invariant for a campaign to check.
        for (int k = 0; k < fault::kNumRecoverableFaultKinds; ++k) {
            const auto kind = static_cast<fault::FaultKind>(k);
            if (only_kind.size() &&
                only_kind != fault::faultKindName(kind))
                continue;
            // Frame faults model the serving dequeue path, which is
            // feed-forward only.
            if (c.recurrent && isFrameFault(kind))
                continue;
            size_t combo_failures = 0;
            for (uint64_t seed = 1; seed <= seeds; ++seed) {
                ++runs;
                std::string why;
                const bool ok =
                    c.recurrent
                        ? runRecurrent(c, kind, seed, why)
                        : runFeedForward(c, kind, seed, frames, why);
                if (!ok) {
                    ++combo_failures;
                    ++failures;
                    std::cout << "FAIL " << net_name << " x "
                              << fault::faultKindName(kind)
                              << " seed=" << seed << ": " << why
                              << "\n";
                }
            }
            std::cout << (combo_failures ? "FAIL " : "ok   ")
                      << net_name << " x "
                      << fault::faultKindName(kind) << " ("
                      << seeds - combo_failures << "/" << seeds
                      << " seeds recovered)\n";
        }
    }
    std::cout << "\nfault_campaign: " << runs - failures << "/"
              << runs << " runs recovered bit-exactly\n";
    return failures == 0 ? 0 : 1;
}
