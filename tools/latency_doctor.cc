/**
 * @file
 * Tail-latency doctor: decomposes the exemplars captured in a trace
 * file or postmortem dump into named causes and prints a per-class
 * attribution table, so "p99 regressed" turns into "queue wait under
 * steals grew 4x" without re-running the workload.
 *
 * Usage:
 *   latency_doctor FILE.json                # per-class cause tables
 *   latency_doctor FILE.json --csv          # same, CSV
 *   latency_doctor FILE.json --json         # machine-readable report
 *   latency_doctor FILE.json --min-attribution=0.95 --class=interactive
 *
 * FILE.json is either a TraceExporter trace (exemplars section
 * present when capture was armed) or a flight-recorder postmortem
 * dump — the doctor detects which.  --min-attribution gates CI: exit
 * 1 when the named class explains a smaller fraction of its exemplar
 * wall time than required.
 *
 * Exit codes: 0 success, 1 parse failure or failed gate, 2 usage.
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "common/json.h"
#include "common/table_writer.h"
#include "obs/latency_attribution.h"
#include "obs/trace_aggregate.h"

using namespace reuse;

namespace {

int
usage()
{
    std::cerr << "usage: latency_doctor FILE.json [--csv] [--json] "
                 "[--min-attribution=F --class=NAME]\n";
    return 2;
}

/** Wall samples of one class, reduced to a nearest-rank percentile. */
double
classPercentile(const obs::ClassAttribution &cls, double p)
{
    return obs::tracePercentile(cls.wallSamples, p);
}

void
printJson(const obs::AttributionReport &report)
{
    std::cout << "{\"postmortem\":"
              << (report.postmortem ? "true" : "false");
    if (report.postmortem)
        std::cout << ",\"reason\":\"" << jsonEscape(report.reason)
                  << "\"";
    std::cout << ",\"committed\":" << report.committed
              << ",\"dropped\":" << report.dropped
              << ",\"staging_overflows\":" << report.stagingOverflows
              << ",\"classes\":{";
    bool first_cls = true;
    for (const auto &[name, cls] : report.classes) {
        if (!first_cls)
            std::cout << ",";
        first_cls = false;
        std::cout << "\"" << jsonEscape(name)
                  << "\":{\"exemplars\":" << cls.exemplars
                  << ",\"shed\":" << cls.shed
                  << ",\"truncated\":" << cls.truncated
                  << ",\"wall_us_total\":"
                  << formatDouble(cls.wallUsTotal, 1)
                  << ",\"p99_wall_us\":"
                  << formatDouble(classPercentile(cls, 0.99), 1)
                  << ",\"attributed_fraction\":"
                  << formatDouble(cls.attributedFraction(), 6)
                  << ",\"causes_us\":{";
        for (size_t c = 0; c < obs::kAttrCauseCount; ++c) {
            if (c)
                std::cout << ",";
            std::cout << "\""
                      << obs::attrCauseName(
                             static_cast<obs::AttrCause>(c))
                      << "\":" << formatDouble(cls.causeUsTotal[c], 1);
        }
        std::cout << "}}";
    }
    std::cout << "}}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path;
    std::string gate_class;
    double min_attribution = -1.0;
    bool csv = false;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--min-attribution=", 0) == 0) {
            min_attribution = std::stod(
                arg.substr(std::string("--min-attribution=").size()));
        } else if (arg.rfind("--class=", 0) == 0) {
            gate_class = arg.substr(std::string("--class=").size());
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "latency_doctor: unknown option " << arg
                      << "\n";
            return usage();
        } else if (path.empty()) {
            path = arg;
        } else {
            return usage();
        }
    }
    if (path.empty())
        return usage();
    if (min_attribution >= 0.0 && gate_class.empty()) {
        std::cerr << "latency_doctor: --min-attribution requires "
                     "--class=NAME\n";
        return usage();
    }

    JsonParseResult doc = parseJsonFile(path);
    if (!doc.ok) {
        std::cerr << "latency_doctor: " << doc.error << "\n";
        return 1;
    }
    obs::AttributionReport report;
    std::string why;
    if (!obs::attributeExemplars(doc.value, &report, &why)) {
        std::cerr << "latency_doctor: " << path << ": " << why
                  << "\n";
        return 1;
    }

    if (json) {
        printJson(report);
    } else {
        std::cout << (report.postmortem ? "Postmortem: " : "Trace: ")
                  << path;
        if (report.postmortem)
            std::cout << " (reason: " << report.reason << ")";
        std::cout << "\nExemplars: " << report.exemplars.size()
                  << " in file (" << report.committed
                  << " committed, " << report.dropped << " dropped, "
                  << report.stagingOverflows
                  << " staging overflows)\n";
        for (const auto &[name, cls] : report.classes) {
            std::cout << "\nClass " << name << ": " << cls.exemplars
                      << " exemplars";
            if (cls.shed > 0)
                std::cout << " + " << cls.shed << " shed";
            if (cls.truncated > 0)
                std::cout << " (" << cls.truncated << " truncated)";
            std::cout << ", p50 wall "
                      << formatDouble(classPercentile(cls, 0.50), 1)
                      << " us, p99 wall "
                      << formatDouble(classPercentile(cls, 0.99), 1)
                      << " us, attributed "
                      << formatPercent(cls.attributedFraction())
                      << "\n";
            if (cls.wallUsTotal <= 0.0)
                continue;
            TableWriter t({"Cause", "Total us", "Share"});
            for (size_t c = 0; c < obs::kAttrCauseCount; ++c) {
                const double us = cls.causeUsTotal[c];
                if (us <= 0.0)
                    continue;
                t.addRow({obs::attrCauseName(
                              static_cast<obs::AttrCause>(c)),
                          formatDouble(us, 1),
                          formatPercent(us / cls.wallUsTotal)});
            }
            if (csv)
                t.printCsv(std::cout);
            else
                t.print(std::cout);
        }
    }

    if (min_attribution >= 0.0) {
        auto it = report.classes.find(gate_class);
        if (it == report.classes.end() ||
            it->second.exemplars == 0) {
            std::cerr << "latency_doctor: gate FAILED — no "
                         "attributable exemplars of class \""
                      << gate_class << "\" in " << path << "\n";
            return 1;
        }
        const double got = it->second.attributedFraction();
        if (got < min_attribution) {
            std::cerr << "latency_doctor: gate FAILED — class \""
                      << gate_class << "\" attributed "
                      << formatPercent(got) << " < required "
                      << formatPercent(min_attribution) << "\n";
            return 1;
        }
        std::cerr << "latency_doctor: gate ok — class \""
                  << gate_class << "\" attributed "
                  << formatPercent(got) << " >= "
                  << formatPercent(min_attribution) << "\n";
    }
    return 0;
}
