/**
 * @file
 * Small numeric helpers shared across the project.
 */

#ifndef REUSE_DNN_COMMON_MATH_UTILS_H
#define REUSE_DNN_COMMON_MATH_UTILS_H

#include <cstdint>
#include <cmath>

namespace reuse {

/** Integer ceiling division; denominator must be positive. */
constexpr int64_t
ceilDiv(int64_t num, int64_t den)
{
    return (num + den - 1) / den;
}

/** Rounds `v` up to the next multiple of `m` (m > 0). */
constexpr int64_t
roundUp(int64_t v, int64_t m)
{
    return ceilDiv(v, m) * m;
}

/** Clamps `v` into [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** True when two doubles agree within a relative-or-absolute tolerance. */
inline bool
almostEqual(double a, double b, double rel_tol = 1e-6,
            double abs_tol = 1e-9)
{
    const double diff = std::fabs(a - b);
    if (diff <= abs_tol)
        return true;
    const double scale = std::fmax(std::fabs(a), std::fabs(b));
    return diff <= rel_tol * scale;
}

/** Numerically-stable logistic sigmoid. */
inline float
sigmoid(float x)
{
    if (x >= 0.0f) {
        const float z = std::exp(-x);
        return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
}

} // namespace reuse

#endif // REUSE_DNN_COMMON_MATH_UTILS_H
