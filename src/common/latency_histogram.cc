#include "latency_histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/stats.h"

namespace reuse {

int
LatencyHistogram::bucketIndex(double micros)
{
    if (!(micros > 1.0))
        return 0;
    // Position on the log2 axis, scaled to kSubBuckets per octave.
    const double pos = std::log2(micros) * kSubBuckets;
    const int idx = static_cast<int>(pos);
    return std::min(idx, kBuckets - 1);
}

double
LatencyHistogram::bucketLowerBound(int index)
{
    return std::exp2(static_cast<double>(index) / kSubBuckets);
}

double
LatencyHistogram::bucketUpperBound(int index)
{
    return std::exp2(static_cast<double>(index + 1) / kSubBuckets);
}

void
LatencyHistogram::record(double micros)
{
    buckets_[static_cast<size_t>(bucketIndex(micros))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAddDouble(sum_, micros);
}

uint64_t
LatencyHistogram::count() const
{
    return count_.load(std::memory_order_relaxed);
}

double
LatencyHistogram::sum() const
{
    return sum_.load(std::memory_order_relaxed);
}

double
LatencyHistogram::mean() const
{
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double
LatencyHistogram::percentile(double p) const
{
    const uint64_t n = count();
    if (n == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(n);
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
        const uint64_t in_bucket =
            buckets_[static_cast<size_t>(i)].load(
                std::memory_order_relaxed);
        if (in_bucket == 0)
            continue;
        if (static_cast<double>(seen + in_bucket) >= target) {
            const double frac =
                in_bucket == 0
                    ? 0.0
                    : (target - static_cast<double>(seen)) /
                          static_cast<double>(in_bucket);
            const double lo = bucketLowerBound(i);
            const double hi = bucketUpperBound(i);
            return lo + frac * (hi - lo);
        }
        seen += in_bucket;
    }
    return bucketUpperBound(kBuckets - 1);
}

uint64_t
LatencyHistogram::countAtOrBelow(double micros) const
{
    if (!(micros > 0.0))
        return 0;
    const int boundary = bucketIndex(micros);
    uint64_t below = 0;
    for (int i = 0; i < boundary; ++i)
        below +=
            buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    const uint64_t in_boundary =
        buckets_[static_cast<size_t>(boundary)].load(
            std::memory_order_relaxed);
    if (in_boundary == 0)
        return below;
    const double lo = bucketLowerBound(boundary);
    const double hi = bucketUpperBound(boundary);
    const double frac =
        std::clamp((micros - lo) / (hi - lo), 0.0, 1.0);
    return below + static_cast<uint64_t>(
                       frac * static_cast<double>(in_boundary) + 0.5);
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (size_t i = 0; i < buckets_.size(); ++i) {
        const uint64_t n =
            other.buckets_[i].load(std::memory_order_relaxed);
        if (n != 0)
            buckets_[i].fetch_add(n, std::memory_order_relaxed);
    }
    count_.fetch_add(other.count(), std::memory_order_relaxed);
    atomicAddDouble(sum_, other.sum());
}

void
LatencyHistogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
}

std::string
LatencyHistogram::summary() const
{
    std::ostringstream oss;
    oss << count() << " samples, mean " << mean() << " us, p50 "
        << percentile(0.50) << " us, p95 " << percentile(0.95)
        << " us, p99 " << percentile(0.99) << " us";
    return oss.str();
}

} // namespace reuse
