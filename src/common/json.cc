#include "json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace reuse {

bool
JsonValue::asBool() const
{
    REUSE_ASSERT(isBool(), "JSON value is not a bool");
    return bool_;
}

double
JsonValue::asNumber() const
{
    REUSE_ASSERT(isNumber(), "JSON value is not a number");
    return num_;
}

int64_t
JsonValue::asInt() const
{
    return static_cast<int64_t>(std::llround(asNumber()));
}

const std::string &
JsonValue::asString() const
{
    REUSE_ASSERT(isString(), "JSON value is not a string");
    return str_;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    REUSE_ASSERT(isArray(), "JSON value is not an array");
    return arr_;
}

JsonValue::Array &
JsonValue::asArray()
{
    REUSE_ASSERT(isArray(), "JSON value is not an array");
    return arr_;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    REUSE_ASSERT(isObject(), "JSON value is not an object");
    return obj_;
}

JsonValue::Object &
JsonValue::asObject()
{
    REUSE_ASSERT(isObject(), "JSON value is not an object");
    return obj_;
}

bool
JsonValue::has(const std::string &key) const
{
    return isObject() && obj_.count(key) > 0;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    REUSE_ASSERT(isObject(), "JSON value is not an object");
    auto it = obj_.find(key);
    REUSE_ASSERT(it != obj_.end(), "missing JSON key " << key);
    return it->second;
}

namespace {

/** Recursive-descent parser over a flat character buffer. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    JsonParseResult run()
    {
        JsonParseResult result;
        JsonValue v;
        if (!parseValue(v)) {
            result.error = error_;
            return result;
        }
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing characters after document");
            result.error = error_;
            return result;
        }
        result.ok = true;
        result.value = std::move(v);
        return result;
    }

  private:
    bool fail(const std::string &what)
    {
        std::ostringstream oss;
        oss << what << " at offset " << pos_;
        error_ = oss.str();
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool literal(const char *word, JsonValue v, JsonValue &out)
    {
        const size_t len = std::char_traits<char>::length(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid literal");
        pos_ += len;
        out = std::move(v);
        return true;
    }

    bool parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
          }
          case 't':
            return literal("true", JsonValue(true), out);
          case 'f':
            return literal("false", JsonValue(false), out);
          case 'n':
            return literal("null", JsonValue(), out);
          default:
            return parseNumber(out);
        }
    }

    bool parseObject(JsonValue &out)
    {
        ++pos_; // '{'
        JsonValue obj = JsonValue::makeObject();
        skipWs();
        if (consume('}')) {
            out = std::move(obj);
            return true;
        }
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' in object");
            JsonValue v;
            if (!parseValue(v))
                return false;
            obj.asObject()[std::move(key)] = std::move(v);
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            return fail("expected ',' or '}' in object");
        }
        out = std::move(obj);
        return true;
    }

    bool parseArray(JsonValue &out)
    {
        ++pos_; // '['
        JsonValue arr = JsonValue::makeArray();
        skipWs();
        if (consume(']')) {
            out = std::move(arr);
            return true;
        }
        while (true) {
            JsonValue v;
            if (!parseValue(v))
                return false;
            arr.asArray().push_back(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            return fail("expected ',' or ']' in array");
        }
        out = std::move(arr);
        return true;
    }

    bool parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("invalid \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs in
                // machine-generated traces never occur; pass them
                // through as replacement-free raw encodings).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                return fail("invalid escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            pos_ = start;
            return fail("invalid number");
        }
        out = JsonValue(v);
        return true;
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

JsonParseResult
parseJson(const std::string &text)
{
    return Parser(text).run();
}

JsonParseResult
parseJsonFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        JsonParseResult r;
        r.error = "cannot open " + path;
        return r;
    }
    std::ostringstream oss;
    oss << in.rdbuf();
    JsonParseResult r = parseJson(oss.str());
    if (!r.ok)
        r.error = path + ": " + r.error;
    return r;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

} // namespace reuse
