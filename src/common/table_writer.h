/**
 * @file
 * Plain-text table and CSV emitters used by the benchmark harness to
 * print paper-style tables and figure series.
 */

#ifndef REUSE_DNN_COMMON_TABLE_WRITER_H
#define REUSE_DNN_COMMON_TABLE_WRITER_H

#include <ostream>
#include <string>
#include <vector>

namespace reuse {

/**
 * Accumulates rows of strings and renders an aligned ASCII table.
 */
class TableWriter
{
  public:
    /** Creates a table with the given column headers. */
    explicit TableWriter(std::vector<std::string> headers);

    /** Appends one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> row);

    /** Renders the table with aligned columns to `os`. */
    void print(std::ostream &os) const;

    /** Renders the table as CSV to `os`. */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Formats a double with the given number of decimals. */
std::string formatDouble(double v, int decimals = 2);

/** Formats a ratio as a percentage string, e.g. 0.631 -> "63.1%". */
std::string formatPercent(double ratio, int decimals = 1);

/** Formats a byte count with a human-readable unit (KB/MB/GB). */
std::string formatBytes(double bytes);

} // namespace reuse

#endif // REUSE_DNN_COMMON_TABLE_WRITER_H
