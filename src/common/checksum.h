/**
 * @file
 * FNV-1a checksumming of raw buffers.
 *
 * The serving runtime checksums each session's ReuseState between
 * frames so silently corrupted reuse buffers (the failure mode Eq. 10
 * state is exposed to) are detected on dequeue and recovered by a
 * reset instead of poisoning every subsequent frame.  FNV-1a is not
 * cryptographic — it is a cheap integrity check against random
 * corruption, chosen for its trivial, dependency-free inner loop.
 */

#ifndef REUSE_DNN_COMMON_CHECKSUM_H
#define REUSE_DNN_COMMON_CHECKSUM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace reuse {

/** Initial FNV-1a state (offset basis). */
inline uint64_t
checksumInit()
{
    return 1469598103934665603ull;
}

/** Folds `n` raw bytes into checksum state `h`. */
inline void
checksumBytes(uint64_t &h, const void *data, size_t n)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ull;
    }
}

/** Folds one trivially-copyable value into `h`. */
template <typename T>
inline void
checksumValue(uint64_t &h, const T &value)
{
    checksumBytes(h, &value, sizeof(T));
}

/** Folds a whole vector's elements into `h` (size included). */
template <typename T, typename Alloc>
inline void
checksumVector(uint64_t &h, const std::vector<T, Alloc> &values)
{
    checksumValue(h, values.size());
    checksumBytes(h, values.data(), values.size() * sizeof(T));
}

} // namespace reuse

#endif // REUSE_DNN_COMMON_CHECKSUM_H
