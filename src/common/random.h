/**
 * @file
 * Deterministic, seedable random number generation.
 *
 * Every stochastic component in the project (weight initialization,
 * workload generators, noise injection) draws from an explicitly seeded
 * Rng so experiments are exactly reproducible run-to-run.
 */

#ifndef REUSE_DNN_COMMON_RANDOM_H
#define REUSE_DNN_COMMON_RANDOM_H

#include <cstddef>
#include <cstdint>
#include <random>

namespace reuse {

/**
 * Seedable random source wrapping a 64-bit Mersenne Twister.
 *
 * The wrapper exists so that (a) all call sites share one set of
 * convenience distributions and (b) the underlying engine can be
 * swapped without touching callers.
 */
class Rng
{
  public:
    /** Constructs an Rng with the given seed. */
    explicit Rng(uint64_t seed = 0x5eed5eed) : engine_(seed) {}

    /** Re-seeds the generator, restarting its stream. */
    void seed(uint64_t s) { engine_.seed(s); }

    /** Uniform float in [lo, hi). */
    float uniform(float lo = 0.0f, float hi = 1.0f);

    /** Gaussian sample with the given mean and standard deviation. */
    float gaussian(float mean = 0.0f, float stddev = 1.0f);

    /** Uniform integer in [lo, hi] (both inclusive). */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /** Fills `out[0..n)` with gaussian samples. */
    void fillGaussian(float *out, size_t n, float mean, float stddev);

    /** Fills `out[0..n)` with uniform samples in [lo, hi). */
    void fillUniform(float *out, size_t n, float lo, float hi);

    /** Fills a float container (any allocator) with gaussian samples. */
    template <typename Vec>
    void
    fillGaussian(Vec &out, float mean, float stddev)
    {
        fillGaussian(out.data(), out.size(), mean, stddev);
    }

    /** Fills a float container (any allocator) with uniform samples. */
    template <typename Vec>
    void
    fillUniform(Vec &out, float lo, float hi)
    {
        fillUniform(out.data(), out.size(), lo, hi);
    }

    /** Derives an independent child generator (for parallel streams). */
    Rng fork();

    /** Access to the raw engine for std distributions. */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace reuse

#endif // REUSE_DNN_COMMON_RANDOM_H
