/**
 * @file
 * Lock-free latency histogram with percentile queries.
 *
 * Fixed geometric buckets (8 sub-buckets per power of two, ~9%
 * relative resolution) spanning 1 microsecond to ~1 hour.  record()
 * is a single relaxed atomic increment, so worker threads can log
 * every frame's latency without contending; percentile() scans the
 * buckets and interpolates inside the winning bucket.
 */

#ifndef REUSE_DNN_COMMON_LATENCY_HISTOGRAM_H
#define REUSE_DNN_COMMON_LATENCY_HISTOGRAM_H

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace reuse {

/**
 * Thread-safe histogram of latency samples in microseconds.
 */
class LatencyHistogram
{
  public:
    LatencyHistogram() = default;

    /** Records one latency sample (microseconds; clamped to range). */
    void record(double micros);

    /** Number of samples recorded. */
    uint64_t count() const;

    /** Sum of all recorded samples (microseconds). */
    double sum() const;

    /** Mean latency in microseconds (0 when empty). */
    double mean() const;

    /**
     * Approximate p-quantile in microseconds, p in [0, 1]; linear
     * interpolation within the selected bucket.  0 when empty.
     */
    double percentile(double p) const;

    /**
     * Samples at or below `micros` (Prometheus cumulative-bucket
     * semantics): every bucket entirely below the boundary plus a
     * linear share of the bucket containing it.
     */
    uint64_t countAtOrBelow(double micros) const;

    /**
     * Adds every sample of `other` into this histogram (bucket-wise;
     * exact, since both use the same fixed bucket geometry).  Safe
     * concurrently with record() on either side; a merge overlapping
     * a record() may or may not include that sample.
     */
    void merge(const LatencyHistogram &other);

    /** Clears all buckets. */
    void reset();

    /** One-line summary: count, mean, p50/p95/p99. */
    std::string summary() const;

  private:
    // log2(1h in us) ~ 31.7; 32 octaves * 8 sub-buckets.
    static constexpr int kSubBuckets = 8;
    static constexpr int kOctaves = 32;
    static constexpr int kBuckets = kOctaves * kSubBuckets;

    static int bucketIndex(double micros);
    static double bucketLowerBound(int index);
    static double bucketUpperBound(int index);

    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

} // namespace reuse

#endif // REUSE_DNN_COMMON_LATENCY_HISTOGRAM_H
