#include "stats.h"

#include <cmath>
#include <sstream>

namespace reuse {

std::map<std::string, Counter>
StatRegistry::all() const
{
    ReaderMutexLock lock(mu_);
    return counters_;
}

void
StatRegistry::resetAll()
{
    WriterMutexLock lock(mu_);
    for (auto &kv : counters_)
        kv.second.reset();
}

double
StatRegistry::sumWithPrefix(const std::string &prefix) const
{
    ReaderMutexLock lock(mu_);
    double total = 0.0;
    for (const auto &kv : counters_) {
        if (kv.first.rfind(prefix, 0) == 0)
            total += kv.second.value();
    }
    return total;
}

std::string
StatRegistry::dump() const
{
    ReaderMutexLock lock(mu_);
    std::ostringstream oss;
    for (const auto &kv : counters_)
        oss << kv.first << " " << kv.second.value() << "\n";
    return oss.str();
}

void
RunningStats::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_)
        min_ = x;
    if (x > max_)
        max_ = x;
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace reuse
