/**
 * @file
 * Annotated synchronization primitives: the only place in src/ that
 * may touch raw std::mutex & friends (enforced by tools/lint).
 *
 * Every wrapper carries Clang thread-safety capability attributes, so
 * a Clang build with -Wthread-safety machine-checks the repo's
 * locking discipline on every compile: members declare which mutex
 * guards them (GUARDED_BY), functions declare which locks they need
 * (REQUIRES) or must not hold (EXCLUDES), and the analysis proves the
 * invariants statically — including the lock orders the serving
 * runtime documents (manager lock before session state lock, never
 * the reverse).  TSan then only has to catch what the type system
 * cannot express (see DESIGN.md §13).
 *
 * On non-Clang compilers the attribute macros expand to nothing and
 * the wrappers are zero-cost shims over the std primitives, so GCC
 * builds are unaffected.
 *
 * Conventions:
 *  - Guarded members:   `int v_ GUARDED_BY(mu_);`
 *  - Locked helpers:    `void fooLocked() REQUIRES(mu_);`
 *  - Condvar waits are open-coded `while (!pred) cv.wait(lock);`
 *    loops so the predicate is analyzed in the enclosing function
 *    (lambda predicates are opaque to the analysis).
 *  - Conditional locking uses `if (!mu.tryLock()) ...` with an
 *    explicit `mu.unlock()`, which the analysis tracks per branch.
 */

#ifndef REUSE_DNN_COMMON_SYNC_H
#define REUSE_DNN_COMMON_SYNC_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ----------------------------------------------------------------------
// Clang thread-safety annotation macros.  Expand to nothing on
// compilers without the attributes (GCC, MSVC), so annotated code
// builds everywhere and is *checked* wherever Clang builds it.
// ----------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define REUSE_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef REUSE_TS_ATTR
#define REUSE_TS_ATTR(x) // no-op outside Clang
#endif

/** Marks a type as a lockable capability ("mutex", "shared_mutex"). */
#define CAPABILITY(x) REUSE_TS_ATTR(capability(x))

/** Marks an RAII type that acquires in its ctor / releases in dtor. */
#define SCOPED_CAPABILITY REUSE_TS_ATTR(scoped_lockable)

/** Declares that a member is protected by the given mutex. */
#define GUARDED_BY(x) REUSE_TS_ATTR(guarded_by(x))

/** Declares that the pointee of a pointer member is protected. */
#define PT_GUARDED_BY(x) REUSE_TS_ATTR(pt_guarded_by(x))

/** Documents (and checks) lock-ordering between two mutexes. */
#define ACQUIRED_BEFORE(...) REUSE_TS_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) REUSE_TS_ATTR(acquired_after(__VA_ARGS__))

/** The function must be called with the given locks held. */
#define REQUIRES(...) REUSE_TS_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...)                                             \
    REUSE_TS_ATTR(requires_shared_capability(__VA_ARGS__))

/** The function acquires the lock and does not release it. */
#define ACQUIRE(...) REUSE_TS_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...)                                              \
    REUSE_TS_ATTR(acquire_shared_capability(__VA_ARGS__))

/** The function releases a lock the caller holds. */
#define RELEASE(...) REUSE_TS_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...)                                              \
    REUSE_TS_ATTR(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...)                                             \
    REUSE_TS_ATTR(release_generic_capability(__VA_ARGS__))

/** The function acquires the lock iff it returns the given value. */
#define TRY_ACQUIRE(...) REUSE_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...)                                          \
    REUSE_TS_ATTR(try_acquire_shared_capability(__VA_ARGS__))

/** The function must NOT be called with the given locks held. */
#define EXCLUDES(...) REUSE_TS_ATTR(locks_excluded(__VA_ARGS__))

/** Runtime assertion that the lock is held (checked fatally). */
#define ASSERT_CAPABILITY(x) REUSE_TS_ATTR(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x)                                      \
    REUSE_TS_ATTR(assert_shared_capability(x))

/** The function returns a reference to the given capability. */
#define RETURN_CAPABILITY(x) REUSE_TS_ATTR(lock_returned(x))

/** Escape hatch; use sparingly and justify in a comment. */
#define NO_THREAD_SAFETY_ANALYSIS                                        \
    REUSE_TS_ATTR(no_thread_safety_analysis)

namespace reuse {

class CondVar;
class MutexLock;

/**
 * Annotated exclusive mutex.  Prefer MutexLock (RAII); explicit
 * lock()/unlock() are for conditional-locking patterns the scoped
 * form cannot express.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }

    /** Non-blocking acquire; true when the lock was taken. */
    bool tryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  private:
    friend class MutexLock;
    std::mutex mu_;
};

/**
 * RAII lock over a Mutex.  Supports the unlock()/lock() window the
 * kernel thread pool's worker loop needs (run a chunk outside the
 * lock, re-acquire to update signalling state).
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) ACQUIRE(mu) : lock_(mu.mu_) {}
    ~MutexLock() RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /** Releases early (the destructor then does nothing). */
    void unlock() RELEASE() { lock_.unlock(); }

    /** Re-acquires after an unlock(). */
    void lock() ACQUIRE() { lock_.lock(); }

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Annotated reader/writer mutex.  Readers share (snapshot walks,
 * stat lookups); writers exclude (registration, clearing).
 */
class CAPABILITY("shared_mutex") SharedMutex
{
  public:
    SharedMutex() = default;
    SharedMutex(const SharedMutex &) = delete;
    SharedMutex &operator=(const SharedMutex &) = delete;

    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }
    bool tryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

    void lockShared() ACQUIRE_SHARED() { mu_.lock_shared(); }
    void unlockShared() RELEASE_SHARED() { mu_.unlock_shared(); }
    bool tryLockShared() TRY_ACQUIRE_SHARED(true)
    {
        return mu_.try_lock_shared();
    }

  private:
    friend class ReaderMutexLock;
    friend class WriterMutexLock;
    std::shared_mutex mu_;
};

/** RAII shared (reader) lock over a SharedMutex. */
class SCOPED_CAPABILITY ReaderMutexLock
{
  public:
    explicit ReaderMutexLock(SharedMutex &mu) ACQUIRE_SHARED(mu)
        : mu_(mu.mu_)
    {
        mu_.lock_shared();
    }
    ~ReaderMutexLock() RELEASE_SHARED() { mu_.unlock_shared(); }

    ReaderMutexLock(const ReaderMutexLock &) = delete;
    ReaderMutexLock &operator=(const ReaderMutexLock &) = delete;

  private:
    std::shared_mutex &mu_;
};

/** RAII exclusive (writer) lock over a SharedMutex. */
class SCOPED_CAPABILITY WriterMutexLock
{
  public:
    explicit WriterMutexLock(SharedMutex &mu) ACQUIRE(mu) : mu_(mu.mu_)
    {
        mu_.lock();
    }
    ~WriterMutexLock() RELEASE() { mu_.unlock(); }

    WriterMutexLock(const WriterMutexLock &) = delete;
    WriterMutexLock &operator=(const WriterMutexLock &) = delete;

  private:
    std::shared_mutex &mu_;
};

/**
 * Condition variable over a Mutex.  wait() takes the MutexLock so
 * the capability stays (logically) held across the wait; callers
 * open-code the predicate loop:
 *
 *     MutexLock lock(mu_);
 *     while (!ready_)
 *         cv_.wait(lock);
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** Atomically releases `lock`, waits, re-acquires. */
    void wait(MutexLock &lock) { cv_.wait(lock.lock_); }

    /** Timed wait; std::cv_status::timeout when the deadline passed. */
    template <typename Rep, typename Period>
    std::cv_status waitFor(MutexLock &lock,
                           std::chrono::duration<Rep, Period> dur)
    {
        return cv_.wait_for(lock.lock_, dur);
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace reuse

#endif // REUSE_DNN_COMMON_SYNC_H
