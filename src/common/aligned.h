/**
 * @file
 * Cache-line-aligned storage for the reuse hot-path buffers.
 *
 * The SIMD kernels (src/kernels) stream the previous-output, weight
 * and index buffers with 256/512-bit vector loads.  Alignment is not
 * a correctness requirement — every kernel uses unaligned load/store
 * forms — but 64-byte alignment keeps each vector access inside one
 * cache line and lets the hardware prefetchers run at full stride,
 * and it makes AVX-512 aligned stores possible where the compiler
 * can prove them.  std::vector's default allocator only guarantees
 * alignof(std::max_align_t) (16 on x86-64), so every reuse-state
 * buffer allocates through AlignedAllocator instead.
 */

#ifndef REUSE_DNN_COMMON_ALIGNED_H
#define REUSE_DNN_COMMON_ALIGNED_H

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace reuse {

/** Alignment of all reuse hot-path buffers: one cache line. */
constexpr std::size_t kBufferAlignment = 64;

/**
 * Minimal C++17 allocator returning kBufferAlignment-aligned blocks
 * via operator new(align_val_t).  Interchangeable with the default
 * allocator for every vector operation; only the storage alignment
 * differs.
 */
template <typename T>
class AlignedAllocator
{
  public:
    using value_type = T;

    AlignedAllocator() noexcept = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U> &) noexcept
    {
    }

    T *
    allocate(std::size_t n)
    {
        if (n > static_cast<std::size_t>(-1) / sizeof(T))
            throw std::bad_alloc();
        return static_cast<T *>(::operator new(
            n * sizeof(T), std::align_val_t(kBufferAlignment)));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(kBufferAlignment));
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U> &) const noexcept
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const AlignedAllocator<U> &) const noexcept
    {
        return false;
    }
};

/** std::vector with cache-line-aligned storage. */
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/** True when `p` is aligned to the hot-path buffer alignment. */
inline bool
isBufferAligned(const void *p)
{
    return (reinterpret_cast<std::uintptr_t>(p) %
            kBufferAlignment) == 0;
}

} // namespace reuse

#endif // REUSE_DNN_COMMON_ALIGNED_H

