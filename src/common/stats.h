/**
 * @file
 * Named statistic counters, in the spirit of gem5's stats package.
 *
 * Components register Counter objects in a StatRegistry; the harness
 * dumps all counters at the end of an experiment.  Counters are plain
 * doubles so they can also carry derived quantities (ratios, averages).
 */

#ifndef REUSE_DNN_COMMON_STATS_H
#define REUSE_DNN_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace reuse {

/**
 * Accumulating scalar statistic.
 */
class Counter
{
  public:
    Counter() = default;

    /** Adds `v` to the counter. */
    void add(double v) { value_ += v; ++samples_; }

    /** Increments the counter by one. */
    void inc() { add(1.0); }

    /** Resets the counter to zero. */
    void reset() { value_ = 0.0; samples_ = 0; }

    /** Accumulated value. */
    double value() const { return value_; }

    /** Number of add() calls, for computing means. */
    uint64_t samples() const { return samples_; }

    /** Mean of the added values (0 when empty). */
    double mean() const
    {
        return samples_ == 0 ? 0.0
                             : value_ / static_cast<double>(samples_);
    }

  private:
    double value_ = 0.0;
    uint64_t samples_ = 0;
};

/**
 * Flat registry of named counters.
 *
 * Names use '.'-separated hierarchies ("sim.tile0.weight_fetches").
 */
class StatRegistry
{
  public:
    /** Returns (creating on first use) the counter with this name. */
    Counter &get(const std::string &name) { return counters_[name]; }

    /** True when a counter with this name has been created. */
    bool has(const std::string &name) const
    {
        return counters_.count(name) > 0;
    }

    /** Read-only view of all counters, sorted by name. */
    const std::map<std::string, Counter> &all() const { return counters_; }

    /** Resets every registered counter. */
    void resetAll();

    /** Sum of all counters whose name starts with `prefix`. */
    double sumWithPrefix(const std::string &prefix) const;

    /** Formats all counters as "name value" lines. */
    std::string dump() const;

  private:
    std::map<std::string, Counter> counters_;
};

/**
 * Online accumulator for mean / min / max / stddev of a sample stream.
 */
class RunningStats
{
  public:
    /** Adds one sample. */
    void add(double x);

    /** Number of samples added. */
    uint64_t count() const { return n_; }

    /** Mean of the samples (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance of the samples (0 when fewer than 2). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample seen (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample seen (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

} // namespace reuse

#endif // REUSE_DNN_COMMON_STATS_H
