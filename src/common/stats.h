/**
 * @file
 * Named statistic counters, in the spirit of gem5's stats package.
 *
 * Components register Counter objects in a StatRegistry; the harness
 * dumps all counters at the end of an experiment.  Counters are plain
 * doubles so they can also carry derived quantities (ratios, averages).
 *
 * Counters are safe for concurrent add()/inc() from many threads (the
 * serving runtime's worker pool increments them on every frame), and
 * StatRegistry::get() is safe for concurrent first-use registration.
 * Reads concurrent with writes see atomically-updated values but no
 * cross-counter snapshot consistency.
 */

#ifndef REUSE_DNN_COMMON_STATS_H
#define REUSE_DNN_COMMON_STATS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sync.h"

namespace reuse {

/** Atomically adds `v` to `target` (CAS loop; pre-C++20-fetch_add). */
inline void
atomicAddDouble(std::atomic<double> &target, double v)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
}

/**
 * Accumulating scalar statistic; concurrent add()/inc() are safe.
 */
class Counter
{
  public:
    Counter() = default;

    Counter(const Counter &other)
        : value_(other.value_.load(std::memory_order_relaxed)),
          samples_(other.samples_.load(std::memory_order_relaxed))
    {
    }

    Counter &operator=(const Counter &other)
    {
        value_.store(other.value_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
        samples_.store(other.samples_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
        return *this;
    }

    /** Adds `v` to the counter. */
    void add(double v)
    {
        atomicAddDouble(value_, v);
        samples_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Increments the counter by one. */
    void inc() { add(1.0); }

    /**
     * Replaces the value (gauge semantics, one sample).  Unlike a
     * reset()+add() pair this cannot interleave with a concurrent
     * set() into a doubled value: each store is a plain overwrite,
     * so concurrent setters leave one writer's value, never a sum.
     */
    void set(double v)
    {
        value_.store(v, std::memory_order_relaxed);
        samples_.store(1, std::memory_order_relaxed);
    }

    /** Resets the counter to zero. */
    void reset()
    {
        value_.store(0.0, std::memory_order_relaxed);
        samples_.store(0, std::memory_order_relaxed);
    }

    /** Accumulated value. */
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    /** Number of add() calls, for computing means. */
    uint64_t samples() const
    {
        return samples_.load(std::memory_order_relaxed);
    }

    /** Mean of the added values (0 when empty). */
    double mean() const
    {
        const uint64_t n = samples();
        return n == 0 ? 0.0 : value() / static_cast<double>(n);
    }

  private:
    std::atomic<double> value_{0.0};
    std::atomic<uint64_t> samples_{0};
};

/**
 * Flat registry of named counters.
 *
 * Names use '.'-separated hierarchies ("sim.tile0.weight_fetches").
 * get() may be called concurrently; returned references stay valid
 * for the registry's lifetime (std::map nodes are stable).  The map
 * itself is under a reader/writer lock: registration (get) is the
 * only writer, exposition walks (dump, sumWithPrefix, all) share.
 */
class StatRegistry
{
  public:
    /** Returns (creating on first use) the counter with this name. */
    Counter &get(const std::string &name)
    {
        WriterMutexLock lock(mu_);
        return counters_[name];
    }

    /** True when a counter with this name has been created. */
    bool has(const std::string &name) const
    {
        ReaderMutexLock lock(mu_);
        return counters_.count(name) > 0;
    }

    /**
     * Snapshot of all counters, sorted by name, taken under the
     * registry lock — safe against concurrent registration of new
     * counters (which a by-reference view was not).  Counter values
     * keep updating concurrently; each copied value is atomic.
     */
    std::map<std::string, Counter> all() const;

    /** Resets every registered counter. */
    void resetAll();

    /** Sum of all counters whose name starts with `prefix`. */
    double sumWithPrefix(const std::string &prefix) const;

    /** Formats all counters as "name value" lines. */
    std::string dump() const;

  private:
    mutable SharedMutex mu_;
    std::map<std::string, Counter> counters_ GUARDED_BY(mu_);
};

/**
 * Online accumulator for mean / min / max / stddev of a sample stream.
 * Single-writer; use one instance per thread or guard externally.
 */
class RunningStats
{
  public:
    /** Adds one sample. */
    void add(double x);

    /** Number of samples added. */
    uint64_t count() const { return n_; }

    /** Mean of the samples (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance of the samples (0 when fewer than 2). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest sample seen (+inf when empty). */
    double min() const { return min_; }

    /** Largest sample seen (-inf when empty). */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

} // namespace reuse

#endif // REUSE_DNN_COMMON_STATS_H
