/**
 * @file
 * Minimal JSON value, recursive-descent parser and string escaping.
 *
 * Dependency-free by design: the tracing exporter writes Chrome
 * trace-event files and tools/trace_report + the CI trace-smoke job
 * read them back, so the repo needs to parse its own output without
 * pulling a third-party JSON library into the image.  The parser
 * accepts strict JSON (RFC 8259) and is intended for trusted,
 * machine-generated inputs (traces, bench records, schemas) — not for
 * hostile data.
 */

#ifndef REUSE_DNN_COMMON_JSON_H
#define REUSE_DNN_COMMON_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace reuse {

/**
 * One JSON value: null, bool, number (double), string, array or
 * object.  Object member order is not preserved (std::map).
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(double d) : kind_(Kind::Number), num_(d) {}
    JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

    static JsonValue makeArray() { return JsonValue(Kind::Array); }
    static JsonValue makeObject() { return JsonValue(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; fatal on kind mismatch. */
    bool asBool() const;
    double asNumber() const;
    int64_t asInt() const;
    const std::string &asString() const;
    const Array &asArray() const;
    Array &asArray();
    const Object &asObject() const;
    Object &asObject();

    /** True when this is an object with member `key`. */
    bool has(const std::string &key) const;

    /**
     * Member lookup; fatal when this is not an object or the key is
     * missing.  Use has() to probe.
     */
    const JsonValue &at(const std::string &key) const;

  private:
    explicit JsonValue(Kind kind) : kind_(kind) {}

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    Array arr_;
    Object obj_;
};

/** Outcome of parseJson(). */
struct JsonParseResult {
    bool ok = false;
    /** Human-readable error with byte offset ("" on success). */
    std::string error;
    JsonValue value;
};

/** Parses one JSON document (trailing whitespace allowed). */
JsonParseResult parseJson(const std::string &text);

/** Reads and parses a JSON file; error mentions the path. */
JsonParseResult parseJsonFile(const std::string &path);

/** Escapes `s` for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace reuse

#endif // REUSE_DNN_COMMON_JSON_H
