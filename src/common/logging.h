/**
 * @file
 * Lightweight logging and error-reporting facilities.
 *
 * Modelled after gem5's logging.hh: fatal() is for user errors (bad
 * configuration), panic() is for internal invariant violations.  Both
 * terminate the process; inform()/warn() only print.
 */

#ifndef REUSE_DNN_COMMON_LOGGING_H
#define REUSE_DNN_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace reuse {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Quiet = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
};

/**
 * Process-wide logger.  Thread-compatible (not thread-safe): the
 * simulator is single-threaded by design, mirroring the deterministic
 * execution of the modelled accelerator.
 */
class Logger
{
  public:
    /** Returns the process-wide logger instance. */
    static Logger &instance();

    /** Sets the verbosity threshold below which messages are dropped. */
    void setLevel(LogLevel level) { level_ = level; }

    /** Current verbosity threshold. */
    LogLevel level() const { return level_; }

    /** Emits a message at the given level to stderr. */
    void log(LogLevel level, const std::string &msg);

  private:
    Logger() = default;

    LogLevel level_ = LogLevel::Warn;
};

/** Prints an informational message (suppressed below LogLevel::Info). */
void inform(const std::string &msg);

/** Prints a warning (suppressed below LogLevel::Warn). */
void warn(const std::string &msg);

/** Prints a debug message (suppressed below LogLevel::Debug). */
void debugLog(const std::string &msg);

/**
 * Hook invoked (once, with the failure message) before fatal() or
 * panic() terminates the process.  Lets higher layers flush
 * diagnostics — the obs flight recorder registers its postmortem dump
 * here — without common depending on them.  nullptr disables.
 */
void setCrashHook(void (*hook)(const char *msg));

/**
 * Terminates the process because of a user-level error (bad
 * configuration, invalid arguments).  Never returns.
 */
[[noreturn]] void fatal(const std::string &msg);

/**
 * Terminates the process because of an internal logic error.  Never
 * returns.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Checks a runtime condition that reflects an internal invariant and
 * panics with location information when it does not hold.
 */
#define REUSE_ASSERT(cond, msg)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream reuse_assert_oss_;                          \
            reuse_assert_oss_ << __FILE__ << ":" << __LINE__               \
                              << ": assertion `" #cond "` failed: "        \
                              << msg;                                      \
            ::reuse::panic(reuse_assert_oss_.str());                       \
        }                                                                  \
    } while (false)

} // namespace reuse

#endif // REUSE_DNN_COMMON_LOGGING_H
