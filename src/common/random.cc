#include "random.h"

namespace reuse {

float
Rng::uniform(float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
}

float
Rng::gaussian(float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

void
Rng::fillGaussian(float *out, size_t n, float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    for (size_t i = 0; i < n; ++i)
        out[i] = dist(engine_);
}

void
Rng::fillUniform(float *out, size_t n, float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    for (size_t i = 0; i < n; ++i)
        out[i] = dist(engine_);
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream; consuming one value
    // keeps successive forks independent.
    return Rng(engine_());
}

} // namespace reuse
