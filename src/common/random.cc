#include "random.h"

namespace reuse {

float
Rng::uniform(float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    return dist(engine_);
}

float
Rng::gaussian(float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    return dist(engine_);
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution dist(p);
    return dist(engine_);
}

void
Rng::fillGaussian(std::vector<float> &out, float mean, float stddev)
{
    std::normal_distribution<float> dist(mean, stddev);
    for (auto &v : out)
        v = dist(engine_);
}

void
Rng::fillUniform(std::vector<float> &out, float lo, float hi)
{
    std::uniform_real_distribution<float> dist(lo, hi);
    for (auto &v : out)
        v = dist(engine_);
}

Rng
Rng::fork()
{
    // Derive a child seed from the parent stream; consuming one value
    // keeps successive forks independent.
    return Rng(engine_());
}

} // namespace reuse
