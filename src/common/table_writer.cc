#include "table_writer.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "logging.h"

namespace reuse {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TableWriter::addRow(std::vector<std::string> row)
{
    REUSE_ASSERT(row.size() == headers_.size(),
                 "row has " << row.size() << " cells, expected "
                            << headers_.size());
    rows_.push_back(std::move(row));
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        os << "|";
        for (size_t c = 0; c < row.size(); ++c)
            os << " " << std::setw(static_cast<int>(widths[c]))
               << std::left << row[c] << " |";
        os << "\n";
    };
    auto print_sep = [&]() {
        os << "+";
        for (size_t c = 0; c < widths.size(); ++c)
            os << std::string(widths[c] + 2, '-') << "+";
        os << "\n";
    };

    print_sep();
    print_row(headers_);
    print_sep();
    for (const auto &row : rows_)
        print_row(row);
    print_sep();
}

void
TableWriter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << row[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
formatDouble(double v, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << v;
    return oss.str();
}

std::string
formatPercent(double ratio, int decimals)
{
    return formatDouble(ratio * 100.0, decimals) + "%";
}

std::string
formatBytes(double bytes)
{
    const char *unit = "B";
    double v = bytes;
    if (v >= 1024.0 * 1024.0 * 1024.0) {
        v /= 1024.0 * 1024.0 * 1024.0;
        unit = "GB";
    } else if (v >= 1024.0 * 1024.0) {
        v /= 1024.0 * 1024.0;
        unit = "MB";
    } else if (v >= 1024.0) {
        v /= 1024.0;
        unit = "KB";
    }
    return formatDouble(v, v < 10 ? 2 : 1) + " " + unit;
}

} // namespace reuse
