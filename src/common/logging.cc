#include "logging.h"

#include <cstdlib>
#include <iostream>

namespace reuse {

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    if (level > level_)
        return;

    const char *prefix = "";
    switch (level) {
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Info:
        prefix = "info: ";
        break;
      case LogLevel::Debug:
        prefix = "debug: ";
        break;
      default:
        break;
    }
    std::cerr << prefix << msg << "\n";
}

void
inform(const std::string &msg)
{
    Logger::instance().log(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::instance().log(LogLevel::Warn, msg);
}

void
debugLog(const std::string &msg)
{
    Logger::instance().log(LogLevel::Debug, msg);
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n";
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n";
    std::abort();
}

} // namespace reuse
