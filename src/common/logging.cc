#include "logging.h"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace reuse {

namespace {

std::atomic<void (*)(const char *)> crash_hook{nullptr};

/** Runs the crash hook at most once per process. */
void
runCrashHook(const char *msg)
{
    void (*hook)(const char *) =
        crash_hook.exchange(nullptr, std::memory_order_acq_rel);
    if (hook != nullptr)
        hook(msg);
}

} // namespace

void
setCrashHook(void (*hook)(const char *))
{
    crash_hook.store(hook, std::memory_order_release);
}

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, const std::string &msg)
{
    if (level > level_)
        return;

    const char *prefix = "";
    switch (level) {
      case LogLevel::Warn:
        prefix = "warn: ";
        break;
      case LogLevel::Info:
        prefix = "info: ";
        break;
      case LogLevel::Debug:
        prefix = "debug: ";
        break;
      default:
        break;
    }
    std::cerr << prefix << msg << "\n";
}

void
inform(const std::string &msg)
{
    Logger::instance().log(LogLevel::Info, msg);
}

void
warn(const std::string &msg)
{
    Logger::instance().log(LogLevel::Warn, msg);
}

void
debugLog(const std::string &msg)
{
    Logger::instance().log(LogLevel::Debug, msg);
}

void
fatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n";
    runCrashHook(msg.c_str());
    std::exit(1);
}

void
panic(const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n";
    runCrashHook(msg.c_str());
    std::abort();
}

} // namespace reuse
