#include "energy_model.h"

namespace reuse {

EnergyTable
EnergyTable::fixedPoint8()
{
    EnergyTable t;
    // 8-bit fixed-point multiply/add are roughly 10-15x cheaper than
    // FP32 at the same node; memories move 4x fewer bytes per value,
    // which the byte-based accounting already captures.
    t.fpMulPJ = 0.25;
    t.fpAddPJ = 0.08;
    t.quantPJ = 0.3;
    t.ceStaticW = 0.03;
    return t;
}

std::vector<std::pair<std::string, double>>
EnergyBreakdown::named() const
{
    return {
        {"WeightsBuffer(eDRAM)", weightsBuffer},
        {"IOBuffer(SRAM)", ioBuffer},
        {"ComputeEngine", computeEngine},
        {"MainMemory(LPDDR4)", mainMemory},
        {"Interconnect", interconnect},
        {"Static", staticEnergy},
    };
}

EnergyBreakdown
computeEnergy(const SimEvents &events, double seconds,
              const EnergyTable &table)
{
    constexpr double pj = 1e-12;
    EnergyBreakdown e;
    e.weightsBuffer =
        events.edramWeightBytes * table.edramReadPJPerByte * pj;
    e.ioBuffer = (events.ioReadBytes + events.ioWriteBytes) *
                 table.sramPJPerByte * pj;
    e.computeEngine =
        (events.fpMul * table.fpMulPJ + events.fpAdd * table.fpAddPJ +
         events.quantOps * table.quantPJ + events.cmpOps * table.cmpPJ) *
        pj;
    e.mainMemory = events.dramBytes() * table.dramPJPerByte * pj;
    e.interconnect = (events.ringBytes * table.ringPJPerByte +
                      events.centroidBytes * table.centroidPJPerByte) *
                     pj;
    e.staticEnergy = table.totalStaticW() * seconds;
    return e;
}

EnergyBreakdown
computeEnergy(const SimResult &result, const EnergyTable &table)
{
    return computeEnergy(result.totals, result.seconds, table);
}

double
energyDelay(const EnergyBreakdown &energy, double seconds)
{
    return energy.total() * seconds;
}

} // namespace reuse
