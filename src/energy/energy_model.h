/**
 * @file
 * Energy accounting: combines simulator event counts with the energy
 * table to produce total energy and the per-component breakdown of
 * Figure 11.
 */

#ifndef REUSE_DNN_ENERGY_ENERGY_MODEL_H
#define REUSE_DNN_ENERGY_ENERGY_MODEL_H

#include <string>
#include <vector>

#include "energy/energy_table.h"
#include "sim/accelerator.h"
#include "sim/events.h"

namespace reuse {

/** Energy of one configuration, split by hardware component (joules). */
struct EnergyBreakdown {
    double weightsBuffer = 0.0;   ///< eDRAM dynamic energy.
    double ioBuffer = 0.0;        ///< SRAM I/O Buffer dynamic energy.
    double computeEngine = 0.0;   ///< FP ops + quantization + compares.
    double mainMemory = 0.0;      ///< LPDDR4 transfer energy.
    double interconnect = 0.0;    ///< Ring + centroid-table energy.
    double staticEnergy = 0.0;    ///< Leakage over the execution time.

    /** Total energy in joules. */
    double total() const
    {
        return weightsBuffer + ioBuffer + computeEngine + mainMemory +
               interconnect + staticEnergy;
    }

    /** Named (component, joules) pairs for reports. */
    std::vector<std::pair<std::string, double>> named() const;
};

/**
 * Computes the energy breakdown of a simulation result.
 *
 * @param events Aggregated event counts.
 * @param seconds Execution time (for static energy).
 * @param table Energy constants.
 */
EnergyBreakdown computeEnergy(const SimEvents &events, double seconds,
                              const EnergyTable &table);

/** Convenience overload taking a whole SimResult. */
EnergyBreakdown computeEnergy(const SimResult &result,
                              const EnergyTable &table = {});

/** Energy-delay product in joule-seconds. */
double energyDelay(const EnergyBreakdown &energy, double seconds);

} // namespace reuse

#endif // REUSE_DNN_ENERGY_ENERGY_MODEL_H
