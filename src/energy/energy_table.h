/**
 * @file
 * Per-event energy table and per-component static power for the
 * modelled accelerator.
 *
 * The paper characterizes combinational logic with Synopsys DC at
 * 28/32 nm (0.78 V low-power libraries), memories with CACTI-P and
 * main memory with the Micron LPDDR4 power model.  None of those
 * tools are available offline, so this table carries representative
 * 32 nm-class numbers from the public literature (energy-per-op
 * surveys and CACTI-style scaling), chosen to preserve the orderings
 * that drive the paper's relative results:
 *
 *   DRAM byte  >>  eDRAM byte  >  SRAM byte  >  FP op  >  int compare
 *
 * All reported results are relative (normalized energy, breakdown
 * shares), which are robust to the exact constants; see DESIGN.md.
 */

#ifndef REUSE_DNN_ENERGY_ENERGY_TABLE_H
#define REUSE_DNN_ENERGY_ENERGY_TABLE_H

namespace reuse {

/** Dynamic energy per event (picojoules) and static power (watts). */
struct EnergyTable {
    // --- Dynamic energy, pJ per event. ---
    /** 32-bit FP multiply. */
    double fpMulPJ = 3.1;
    /** 32-bit FP add. */
    double fpAddPJ = 0.9;
    /** Input quantization (scale multiply + round), per input. */
    double quantPJ = 1.2;
    /** Integer index comparison. */
    double cmpPJ = 0.05;
    /** eDRAM Weights Buffer read, per byte (36 MB, multi-banked). */
    double edramReadPJPerByte = 1.5;
    /** SRAM I/O Buffer access, per byte (~1.2 MB). */
    double sramPJPerByte = 0.7;
    /** Centroid-table access, per byte (1.25 KB register file). */
    double centroidPJPerByte = 0.05;
    /** Inter-tile ring transfer, per byte. */
    double ringPJPerByte = 0.2;
    /** LPDDR4 main-memory transfer, per byte. */
    double dramPJPerByte = 20.0;

    // --- Static (leakage + clock) power, watts per component. ---
    // A 52 mm^2 low-power 32 nm design at 0.78 V; values chosen so
    // static energy is a visible-but-minor share, as in Fig. 11.
    /** eDRAM Weights Buffer (dominant array). */
    double edramStaticW = 0.08;
    /** SRAM I/O Buffer. */
    double sramStaticW = 0.015;
    /** Compute Engine (128 mul + 128 add + special units). */
    double ceStaticW = 0.05;
    /** Control unit, data master, router. */
    double otherStaticW = 0.02;

    /** Total static power. */
    double totalStaticW() const
    {
        return edramStaticW + sramStaticW + ceStaticW + otherStaticW;
    }

    /**
     * Table scaled for the 8-bit fixed-point configuration of
     * Sec. VI-A: fixed-point arithmetic is roughly an order of
     * magnitude cheaper than FP32 and the datapaths narrow by 4x.
     */
    static EnergyTable fixedPoint8();
};

} // namespace reuse

#endif // REUSE_DNN_ENERGY_ENERGY_TABLE_H
