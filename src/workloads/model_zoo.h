/**
 * @file
 * Builders for the four evaluated DNNs with the exact layer
 * topologies of Table I: Kaldi (MLP, acoustic scoring), EESEN
 * (bidirectional-LSTM RNN, speech recognition), C3D (3D CNN, video
 * classification) and AutoPilot (2D CNN, self-driving).
 *
 * Weights are randomly initialized (see DESIGN.md substitutions); the
 * reuse statistics depend on input similarity and layer shapes, not
 * on trained weight values.
 */

#ifndef REUSE_DNN_WORKLOADS_MODEL_ZOO_H
#define REUSE_DNN_WORKLOADS_MODEL_ZOO_H

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "nn/network.h"

namespace reuse {

/** A network plus the paper's per-network evaluation settings. */
struct ModelBundle {
    std::unique_ptr<Network> network;
    /**
     * Layer indices where the paper applies input quantization
     * (Table I rows with a reuse percentage).
     */
    std::vector<size_t> quantizedLayers;
    /** Cluster count the paper found optimal (16 or 32; Sec. III). */
    int clusters = 16;
};

/**
 * Kaldi acoustic-scoring MLP: six FC layers (360-360, 360-2000, then
 * 400-2000 p-norm blocks, 400-3482 output).  Quantization applies to
 * FC3..FC6.
 */
ModelBundle buildKaldi(Rng &rng);

/**
 * EESEN speech-recognition RNN: five bidirectional LSTM layers
 * (120/640 inputs, 320 cells) and a 640-50 FC output.  Quantization
 * applies to all BiLSTM layers (the tiny FC is skipped).
 */
ModelBundle buildEesen(Rng &rng);

/**
 * C3D video-classification CNN: eight 3x3x3 conv layers with pooling
 * and a 8192-4096-4096-101 FC head.  Quantization applies to
 * CONV2..CONV8 and all FCs (CONV1 excluded; Sec. III).
 *
 * @param spatial_divisor Divides the 112x112 frame resolution for
 *   tractable functional simulation (1 = paper scale).  Reuse
 *   statistics are resolution-invariant; paper-scale costing uses
 *   AcceleratorSim::estimate() with the measured similarities.
 */
ModelBundle buildC3D(Rng &rng, int spatial_divisor = 1);

/**
 * AutoPilot self-driving CNN: five conv layers (5x5 stride-2 and 3x3
 * stride-1) and a 1152-1164-100-50-10-1 FC head with atan steering
 * output.  Quantization applies to CONV1..FC4 (FC5 skipped).
 */
ModelBundle buildAutopilot(Rng &rng);

/** Names of the four models, in the paper's order. */
std::vector<std::string> modelZooNames();

} // namespace reuse

#endif // REUSE_DNN_WORKLOADS_MODEL_ZOO_H
