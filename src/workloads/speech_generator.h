/**
 * @file
 * Synthetic speech-feature generators.
 *
 * Speech features are quasi-stationary over phoneme-scale segments:
 * within a segment the feature vector wanders slowly around a target;
 * at segment boundaries it jumps to a new target.  The Kaldi
 * generator additionally assembles the sliding 9-frame context window
 * the MLP consumes (Fig. 1 of the paper), so consecutive network
 * inputs differ by one frame plus per-frame wander.
 */

#ifndef REUSE_DNN_WORKLOADS_SPEECH_GENERATOR_H
#define REUSE_DNN_WORKLOADS_SPEECH_GENERATOR_H

#include <deque>

#include "common/aligned.h"
#include "common/random.h"
#include "workloads/sequence_generator.h"

namespace reuse {

/** Tunables of the synthetic speech-feature process. */
struct SpeechParams {
    /** Features per frame (40 for Kaldi, 120 for EESEN). */
    int64_t featureDim = 40;
    /** Mean phoneme-segment length in frames (geometric). */
    double segmentMeanFrames = 12.0;
    /** Std-dev of the per-segment target features. */
    float targetScale = 1.0f;
    /** AR(1) coefficient of the within-segment wander. */
    float wanderRho = 0.995f;
    /** Innovation std-dev of the within-segment wander. */
    float wanderSigma = 0.02f;
    /** Per-frame observation noise std-dev. */
    float frameNoise = 0.01f;
};

/**
 * Stream of single speech frames (featureDim values each); the EESEN
 * RNN consumes these directly.
 */
class SpeechFrameGenerator : public SequenceGenerator
{
  public:
    SpeechFrameGenerator(SpeechParams params, uint64_t seed);

    Shape inputShape() const override;
    Tensor next() override;
    void reset(uint64_t seed) override;

  private:
    void startSegment();

    SpeechParams params_;
    Rng rng_;
    AlignedVector<float> target_;
    AlignedVector<float> wander_;
    int64_t frames_left_ = 0;
};

/**
 * Sliding window of `windowFrames` speech frames, flattened; the
 * Kaldi MLP consumes one window per execution, advanced by one frame.
 */
class SpeechWindowGenerator : public SequenceGenerator
{
  public:
    SpeechWindowGenerator(SpeechParams params, int64_t window_frames,
                          uint64_t seed);

    Shape inputShape() const override;
    Tensor next() override;
    void reset(uint64_t seed) override;

  private:
    SpeechParams params_;
    int64_t window_frames_;
    SpeechFrameGenerator frames_;
    std::deque<Tensor> window_;
};

} // namespace reuse

#endif // REUSE_DNN_WORKLOADS_SPEECH_GENERATOR_H
