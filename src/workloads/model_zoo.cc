#include "model_zoo.h"

#include <cmath>

#include "common/logging.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/fully_connected.h"
#include "nn/initializers.h"
#include "nn/lstm.h"
#include "nn/pnorm.h"
#include "nn/pooling.h"

namespace reuse {

namespace {

/**
 * RMS of ReLU(z - c) for z ~ N(0, 1): sqrt((1 + c^2) Phi(-c) -
 * c phi(c)).  Used to propagate activation scale through shifted
 * ReLU layers analytically.
 */
double
postReluRms(double c)
{
    const double phi =
        std::exp(-0.5 * c * c) / std::sqrt(2.0 * M_PI);
    const double cdf = 0.5 * std::erfc(c / std::sqrt(2.0));
    const double second_moment = (1.0 + c * c) * cdf - c * phi;
    return std::sqrt(std::max(second_moment, 1e-12));
}

/**
 * Re-initializes every ReLU-followed conv/FC layer with a bias of
 * -shift_sigmas standard deviations of its pre-activation, so that
 * activations show the confident sparsity of trained ReLU networks
 * (most units off with a stable margin).  Without this, random
 * symmetric weights leave half the units exactly at the ReLU
 * boundary and deep-layer input similarity collapses -- trained
 * feature detectors are invariant to small input changes, random
 * projections are not (DESIGN.md substitutions).
 *
 * The pre-activation scale of each layer is propagated analytically:
 * sigma_pre = w_sd * sqrt(fan_in) * rms_in, and the post-ReLU RMS
 * follows from postReluRms().  The last `skip_tail` parameterized
 * layers (network heads without ReLU) keep a zero shift.
 */
void
applyCnnSparsity(Network &net, Rng &rng, float shift_sigmas,
                 size_t skip_tail, double input_rms = 0.5)
{
    std::vector<size_t> params;
    for (size_t li = 0; li < net.layerCount(); ++li) {
        const LayerKind kind = net.layer(li).kind();
        if (kind == LayerKind::FullyConnected ||
            kind == LayerKind::Conv2D || kind == LayerKind::Conv3D)
            params.push_back(li);
    }
    const size_t shifted =
        params.size() > skip_tail ? params.size() - skip_tail : 0;

    double rms = input_rms;
    for (size_t k = 0; k < shifted; ++k) {
        Layer &layer = net.layer(params[k]);
        double fan_in = 0.0;
        double fan_out = 0.0;
        AlignedVector<float> *biases = nullptr;
        switch (layer.kind()) {
          case LayerKind::FullyConnected: {
            auto &fc = static_cast<FullyConnectedLayer &>(layer);
            initGlorot(fc, rng);
            fan_in = static_cast<double>(fc.inputs());
            fan_out = static_cast<double>(fc.outputs());
            biases = &fc.biases();
            break;
          }
          case LayerKind::Conv2D: {
            auto &conv = static_cast<Conv2DLayer &>(layer);
            initGlorot(conv, rng);
            const double rf = static_cast<double>(conv.kernel() *
                                                  conv.kernel());
            fan_in = static_cast<double>(conv.inChannels()) * rf;
            fan_out = static_cast<double>(conv.outChannels()) * rf;
            biases = &conv.biases();
            break;
          }
          case LayerKind::Conv3D: {
            auto &conv = static_cast<Conv3DLayer &>(layer);
            initGlorot(conv, rng);
            const double rf = static_cast<double>(
                conv.kernel() * conv.kernel() * conv.kernel());
            fan_in = static_cast<double>(conv.inChannels()) * rf;
            fan_out = static_cast<double>(conv.outChannels()) * rf;
            biases = &conv.biases();
            break;
          }
          default:
            continue;
        }
        const double w_sd = std::sqrt(2.0 / (fan_in + fan_out));
        const double sigma = w_sd * std::sqrt(fan_in) * rms;
        std::fill(biases->begin(), biases->end(),
                  static_cast<float>(-shift_sigmas * sigma));
        rms = sigma * postReluRms(shift_sigmas);
    }
}

} // namespace

ModelBundle
buildKaldi(Rng &rng)
{
    ModelBundle bundle;
    auto net = std::make_unique<Network>("Kaldi", Shape({360}));

    // 9-frame window x 40 features = 360 inputs.  The hidden blocks
    // follow the generalized-maxout pattern: a 2000-wide FC followed
    // by group-5 p-norm pooling back to 400.
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC1", 360, 360));
    net->addLayer(
        std::make_unique<ActivationLayer>("ACT1", ActivationKind::ReLU));
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC2", 360, 2000));
    net->addLayer(std::make_unique<PNormLayer>("PNORM2", 5));
    size_t fc3 = net->layerCount();
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC3", 400, 2000));
    net->addLayer(std::make_unique<PNormLayer>("PNORM3", 5));
    size_t fc4 = net->layerCount();
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC4", 400, 2000));
    net->addLayer(std::make_unique<PNormLayer>("PNORM4", 5));
    size_t fc5 = net->layerCount();
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC5", 400, 2000));
    net->addLayer(std::make_unique<PNormLayer>("PNORM5", 5));
    size_t fc6 = net->layerCount();
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC6", 400, 3482));
    net->addLayer(std::make_unique<ActivationLayer>(
        "SOFTMAX", ActivationKind::Softmax));

    initNetwork(*net, rng);
    bundle.network = std::move(net);
    bundle.quantizedLayers = {fc3, fc4, fc5, fc6};
    bundle.clusters = 16;
    return bundle;
}

ModelBundle
buildEesen(Rng &rng)
{
    ModelBundle bundle;
    auto net = std::make_unique<Network>("EESEN", Shape({120}));

    size_t l1 = net->layerCount();
    net->addLayer(std::make_unique<BiLstmLayer>("BiLSTM1", 120, 320));
    size_t l2 = net->layerCount();
    net->addLayer(std::make_unique<BiLstmLayer>("BiLSTM2", 640, 320));
    size_t l3 = net->layerCount();
    net->addLayer(std::make_unique<BiLstmLayer>("BiLSTM3", 640, 320));
    size_t l4 = net->layerCount();
    net->addLayer(std::make_unique<BiLstmLayer>("BiLSTM4", 640, 320));
    size_t l5 = net->layerCount();
    net->addLayer(std::make_unique<BiLstmLayer>("BiLSTM5", 640, 320));
    net->addLayer(std::make_unique<FullyConnectedLayer>("FC1", 640, 50));
    net->addLayer(std::make_unique<ActivationLayer>(
        "SOFTMAX", ActivationKind::Softmax));

    initNetwork(*net, rng);
    bundle.network = std::move(net);
    bundle.quantizedLayers = {l1, l2, l3, l4, l5};
    bundle.clusters = 16;
    return bundle;
}

ModelBundle
buildC3D(Rng &rng, int spatial_divisor)
{
    REUSE_ASSERT(spatial_divisor >= 1 && 112 % spatial_divisor == 0,
                 "C3D spatial divisor must divide 112");
    const int64_t s = 112 / spatial_divisor;

    ModelBundle bundle;
    auto net = std::make_unique<Network>("C3D", Shape({3, 16, s, s}));

    auto conv = [&](const char *name, int64_t ci, int64_t co) {
        return std::make_unique<Conv3DLayer>(name, ci, co, 3, 1);
    };
    auto relu = [&](const char *name) {
        return std::make_unique<ActivationLayer>(name,
                                                 ActivationKind::ReLU);
    };

    std::vector<size_t> quantized;
    net->addLayer(conv("CONV1", 3, 64));
    net->addLayer(relu("RELU1"));
    // pool1: spatial only, preserving the 16-frame depth.
    net->addLayer(
        std::make_unique<MaxPool3DLayer>("POOL1", 1, 2, true));
    quantized.push_back(net->layerCount());
    net->addLayer(conv("CONV2", 64, 128));
    net->addLayer(relu("RELU2"));
    net->addLayer(
        std::make_unique<MaxPool3DLayer>("POOL2", 2, 2, true));
    quantized.push_back(net->layerCount());
    net->addLayer(conv("CONV3", 128, 256));
    net->addLayer(relu("RELU3"));
    quantized.push_back(net->layerCount());
    net->addLayer(conv("CONV4", 256, 256));
    net->addLayer(relu("RELU4"));
    net->addLayer(
        std::make_unique<MaxPool3DLayer>("POOL4", 2, 2, true));
    quantized.push_back(net->layerCount());
    net->addLayer(conv("CONV5", 256, 512));
    net->addLayer(relu("RELU5"));
    quantized.push_back(net->layerCount());
    net->addLayer(conv("CONV6", 512, 512));
    net->addLayer(relu("RELU6"));
    net->addLayer(
        std::make_unique<MaxPool3DLayer>("POOL6", 2, 2, true));
    quantized.push_back(net->layerCount());
    net->addLayer(conv("CONV7", 512, 512));
    net->addLayer(relu("RELU7"));
    quantized.push_back(net->layerCount());
    net->addLayer(conv("CONV8", 512, 512));
    net->addLayer(relu("RELU8"));
    net->addLayer(
        std::make_unique<MaxPool3DLayer>("POOL8", 2, 2, true));
    net->addLayer(std::make_unique<FlattenLayer>("FLAT"));

    const int64_t fc_in = net->outputShape().numel();
    quantized.push_back(net->layerCount());
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC1", fc_in, 4096));
    net->addLayer(relu("RELU_FC1"));
    quantized.push_back(net->layerCount());
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC2", 4096, 4096));
    net->addLayer(relu("RELU_FC2"));
    quantized.push_back(net->layerCount());
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC3", 4096, 101));
    net->addLayer(std::make_unique<ActivationLayer>(
        "SOFTMAX", ActivationKind::Softmax));

    initNetwork(*net, rng);
    applyCnnSparsity(*net, rng, 0.5f, 1);
    bundle.network = std::move(net);
    bundle.quantizedLayers = std::move(quantized);
    bundle.clusters = 32;
    return bundle;
}

ModelBundle
buildAutopilot(Rng &rng)
{
    ModelBundle bundle;
    auto net =
        std::make_unique<Network>("AutoPilot", Shape({3, 66, 200}));

    auto relu = [&](const char *name) {
        return std::make_unique<ActivationLayer>(name,
                                                 ActivationKind::ReLU);
    };

    std::vector<size_t> quantized;
    quantized.push_back(net->layerCount());
    net->addLayer(std::make_unique<Conv2DLayer>("CONV1", 3, 24, 5, 2));
    net->addLayer(relu("RELU1"));
    quantized.push_back(net->layerCount());
    net->addLayer(std::make_unique<Conv2DLayer>("CONV2", 24, 36, 5, 2));
    net->addLayer(relu("RELU2"));
    quantized.push_back(net->layerCount());
    net->addLayer(std::make_unique<Conv2DLayer>("CONV3", 36, 48, 5, 2));
    net->addLayer(relu("RELU3"));
    quantized.push_back(net->layerCount());
    net->addLayer(std::make_unique<Conv2DLayer>("CONV4", 48, 64, 3, 1));
    net->addLayer(relu("RELU4"));
    quantized.push_back(net->layerCount());
    net->addLayer(std::make_unique<Conv2DLayer>("CONV5", 64, 64, 3, 1));
    net->addLayer(relu("RELU5"));
    net->addLayer(std::make_unique<FlattenLayer>("FLAT"));
    quantized.push_back(net->layerCount());
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC1", 1152, 1164));
    net->addLayer(relu("RELU_FC1"));
    quantized.push_back(net->layerCount());
    net->addLayer(
        std::make_unique<FullyConnectedLayer>("FC2", 1164, 100));
    net->addLayer(relu("RELU_FC2"));
    quantized.push_back(net->layerCount());
    net->addLayer(std::make_unique<FullyConnectedLayer>("FC3", 100, 50));
    net->addLayer(relu("RELU_FC3"));
    quantized.push_back(net->layerCount());
    net->addLayer(std::make_unique<FullyConnectedLayer>("FC4", 50, 10));
    net->addLayer(relu("RELU_FC4"));
    net->addLayer(std::make_unique<FullyConnectedLayer>("FC5", 10, 1));
    net->addLayer(
        std::make_unique<ActivationLayer>("ATAN", ActivationKind::Atan));

    initNetwork(*net, rng);
    applyCnnSparsity(*net, rng, 0.5f, 1);
    bundle.network = std::move(net);
    bundle.quantizedLayers = std::move(quantized);
    bundle.clusters = 32;
    return bundle;
}

std::vector<std::string>
modelZooNames()
{
    return {"Kaldi", "EESEN", "C3D", "AutoPilot"};
}

} // namespace reuse
