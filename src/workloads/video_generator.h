/**
 * @file
 * Synthetic video generators for the two CNN workloads.
 *
 * VideoWindowGenerator feeds C3D: non-overlapping windows of 16
 * consecutive frames of a scene with a static background and a few
 * moving objects, plus sensor noise — consecutive windows share the
 * static pixels, which is exactly the similarity the paper exploits.
 *
 * DrivingFrameGenerator feeds AutoPilot: a single front-camera frame
 * per execution of a slowly evolving road scene (drifting lane
 * markers, small camera jitter, gradual illumination change).
 */

#ifndef REUSE_DNN_WORKLOADS_VIDEO_GENERATOR_H
#define REUSE_DNN_WORKLOADS_VIDEO_GENERATOR_H

#include "common/aligned.h"
#include "common/random.h"
#include "workloads/sequence_generator.h"

namespace reuse {

/** Tunables of the synthetic video scene. */
struct VideoParams {
    int64_t height = 112;
    int64_t width = 112;
    int64_t framesPerWindow = 16;
    /** Number of moving rectangular objects. */
    int objects = 3;
    /** Object edge length as a fraction of the frame edge. */
    double objectScale = 0.2;
    /** Object speed in pixels per frame. */
    double objectSpeed = 1.5;
    /** Per-pixel per-frame sensor noise std-dev. */
    float pixelNoise = 0.004f;
    /** Probability of a scene cut at a window boundary. */
    double sceneCutProb = 0.02;
};

/**
 * C3D input stream: tensors of shape [3, frames, H, W]; consecutive
 * windows cover disjoint frame ranges of the same evolving scene.
 */
class VideoWindowGenerator : public SequenceGenerator
{
  public:
    VideoWindowGenerator(VideoParams params, uint64_t seed);

    Shape inputShape() const override;
    Tensor next() override;
    void reset(uint64_t seed) override;

  private:
    struct MovingObject {
        double x, y, vx, vy;
        int64_t w, h;
        float value[3];
    };

    void newScene();
    void renderFrame(Tensor &window, int64_t frame_idx);
    void stepScene();

    VideoParams params_;
    Rng rng_;
    AlignedVector<float> background_;   // [3, H, W]
    std::vector<MovingObject> objects_;
};

/** Tunables of the synthetic driving scene. */
struct DrivingParams {
    int64_t height = 66;
    int64_t width = 200;
    /** Lane-marker drift in pixels per frame (road curvature). */
    double laneDrift = 0.15;
    /** Camera jitter amplitude in pixels. */
    double jitterAmp = 0.08;
    /** Illumination drift per frame (multiplicative AR(1) wander). */
    float lightRho = 0.995f;
    float lightSigma = 0.002f;
    /** Per-pixel sensor noise std-dev. */
    float pixelNoise = 0.004f;
};

/**
 * AutoPilot input stream: tensors of shape [3, H, W], one camera
 * frame per execution.
 */
class DrivingFrameGenerator : public SequenceGenerator
{
  public:
    DrivingFrameGenerator(DrivingParams params, uint64_t seed);

    Shape inputShape() const override;
    Tensor next() override;
    void reset(uint64_t seed) override;

    /** Current lane-center offset (ground truth for steering). */
    double laneOffset() const { return lane_offset_; }

  private:
    DrivingParams params_;
    Rng rng_;
    double lane_offset_ = 0.0;
    double lane_velocity_ = 0.0;
    double jitter_phase_ = 0.0;
    float light_ = 1.0f;
    int64_t frame_counter_ = 0;
};

} // namespace reuse

#endif // REUSE_DNN_WORKLOADS_VIDEO_GENERATOR_H
