#include "multi_session_generator.h"

#include "common/logging.h"

namespace reuse {

MultiSessionGenerator::MultiSessionGenerator(Factory factory,
                                             size_t sessions,
                                             uint64_t base_seed)
    : factory_(std::move(factory))
{
    REUSE_ASSERT(factory_ != nullptr, "null stream factory");
    streams_.reserve(sessions);
    for (size_t i = 0; i < sessions; ++i)
        streams_.push_back(factory_(sessionSeed(base_seed, i)));
}

void
MultiSessionGenerator::resetAll(uint64_t base_seed)
{
    for (size_t i = 0; i < streams_.size(); ++i)
        streams_[i]->reset(sessionSeed(base_seed, i));
}

} // namespace reuse
