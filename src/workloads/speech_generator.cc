#include "speech_generator.h"

#include <cmath>

#include "common/logging.h"

namespace reuse {

std::vector<Tensor>
SequenceGenerator::take(size_t count)
{
    std::vector<Tensor> out;
    out.reserve(count);
    for (size_t i = 0; i < count; ++i)
        out.push_back(next());
    return out;
}

SpeechFrameGenerator::SpeechFrameGenerator(SpeechParams params,
                                           uint64_t seed)
    : params_(params), rng_(seed)
{
    REUSE_ASSERT(params_.featureDim > 0, "featureDim must be positive");
    reset(seed);
}

void
SpeechFrameGenerator::reset(uint64_t seed)
{
    rng_.seed(seed);
    target_.assign(static_cast<size_t>(params_.featureDim), 0.0f);
    wander_.assign(static_cast<size_t>(params_.featureDim), 0.0f);
    frames_left_ = 0;
    startSegment();
}

void
SpeechFrameGenerator::startSegment()
{
    for (auto &t : target_)
        t = rng_.gaussian(0.0f, params_.targetScale);
    std::fill(wander_.begin(), wander_.end(), 0.0f);
    // Geometric segment length with the configured mean, at least one
    // frame.
    frames_left_ = 1;
    const double p = 1.0 / params_.segmentMeanFrames;
    while (!rng_.bernoulli(p))
        ++frames_left_;
}

Tensor
SpeechFrameGenerator::next()
{
    if (frames_left_ <= 0)
        startSegment();
    --frames_left_;

    Tensor frame(Shape({params_.featureDim}));
    const float rho = params_.wanderRho;
    const float innov =
        params_.wanderSigma * std::sqrt(1.0f - rho * rho);
    for (int64_t i = 0; i < params_.featureDim; ++i) {
        auto &w = wander_[static_cast<size_t>(i)];
        w = rho * w + rng_.gaussian(0.0f, innov);
        frame[i] = target_[static_cast<size_t>(i)] + w +
                   rng_.gaussian(0.0f, params_.frameNoise);
    }
    return frame;
}

Shape
SpeechFrameGenerator::inputShape() const
{
    return Shape({params_.featureDim});
}

SpeechWindowGenerator::SpeechWindowGenerator(SpeechParams params,
                                             int64_t window_frames,
                                             uint64_t seed)
    : params_(params),
      window_frames_(window_frames),
      frames_(params, seed)
{
    REUSE_ASSERT(window_frames > 0, "window must be positive");
    reset(seed);
}

void
SpeechWindowGenerator::reset(uint64_t seed)
{
    frames_.reset(seed);
    window_.clear();
    while (static_cast<int64_t>(window_.size()) < window_frames_)
        window_.push_back(frames_.next());
}

Shape
SpeechWindowGenerator::inputShape() const
{
    return Shape({window_frames_ * params_.featureDim});
}

Tensor
SpeechWindowGenerator::next()
{
    Tensor out(inputShape());
    int64_t off = 0;
    for (const Tensor &frame : window_) {
        for (int64_t i = 0; i < frame.numel(); ++i)
            out[off + i] = frame[i];
        off += frame.numel();
    }
    // Slide by one frame for the next execution.
    window_.pop_front();
    window_.push_back(frames_.next());
    return out;
}

} // namespace reuse
