#include "video_generator.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"

namespace reuse {

VideoWindowGenerator::VideoWindowGenerator(VideoParams params,
                                           uint64_t seed)
    : params_(params), rng_(seed)
{
    reset(seed);
}

void
VideoWindowGenerator::reset(uint64_t seed)
{
    rng_.seed(seed);
    newScene();
}

void
VideoWindowGenerator::newScene()
{
    const int64_t h = params_.height;
    const int64_t w = params_.width;
    background_.assign(static_cast<size_t>(3 * h * w), 0.0f);

    // Smooth background: sum of a few low-frequency sinusoids per
    // channel, normalized into [0.2, 0.8].
    for (int c = 0; c < 3; ++c) {
        const float fx = rng_.uniform(0.5f, 2.5f);
        const float fy = rng_.uniform(0.5f, 2.5f);
        const float phase = rng_.uniform(0.0f, 6.28f);
        const float base = rng_.uniform(0.35f, 0.65f);
        for (int64_t y = 0; y < h; ++y) {
            for (int64_t x = 0; x < w; ++x) {
                const float v =
                    base +
                    0.15f * std::sin(fx * 6.28f * x / w + phase) *
                        std::cos(fy * 6.28f * y / h);
                background_[static_cast<size_t>((c * h + y) * w + x)] =
                    clamp(v, 0.0f, 1.0f);
            }
        }
    }

    objects_.clear();
    const int64_t edge = std::max<int64_t>(
        2, static_cast<int64_t>(params_.objectScale * w));
    for (int i = 0; i < params_.objects; ++i) {
        MovingObject obj;
        obj.w = edge;
        obj.h = edge;
        obj.x = rng_.uniform(0.0f, static_cast<float>(w - edge));
        obj.y = rng_.uniform(0.0f, static_cast<float>(h - edge));
        const double angle = rng_.uniform(0.0f, 6.28f);
        obj.vx = params_.objectSpeed * std::cos(angle);
        obj.vy = params_.objectSpeed * std::sin(angle);
        for (int c = 0; c < 3; ++c)
            obj.value[c] = rng_.uniform(0.0f, 1.0f);
        objects_.push_back(obj);
    }
}

void
VideoWindowGenerator::stepScene()
{
    const int64_t h = params_.height;
    const int64_t w = params_.width;
    for (auto &obj : objects_) {
        obj.x += obj.vx;
        obj.y += obj.vy;
        // Bounce off the frame borders.
        if (obj.x < 0.0 || obj.x > static_cast<double>(w - obj.w)) {
            obj.vx = -obj.vx;
            obj.x = clamp(obj.x, 0.0, static_cast<double>(w - obj.w));
        }
        if (obj.y < 0.0 || obj.y > static_cast<double>(h - obj.h)) {
            obj.vy = -obj.vy;
            obj.y = clamp(obj.y, 0.0, static_cast<double>(h - obj.h));
        }
    }
}

void
VideoWindowGenerator::renderFrame(Tensor &window, int64_t frame_idx)
{
    const int64_t h = params_.height;
    const int64_t w = params_.width;
    const int64_t d = params_.framesPerWindow;
    for (int c = 0; c < 3; ++c) {
        for (int64_t y = 0; y < h; ++y) {
            for (int64_t x = 0; x < w; ++x) {
                float v = background_[static_cast<size_t>(
                    (c * h + y) * w + x)];
                for (const auto &obj : objects_) {
                    if (x >= static_cast<int64_t>(obj.x) &&
                        x < static_cast<int64_t>(obj.x) + obj.w &&
                        y >= static_cast<int64_t>(obj.y) &&
                        y < static_cast<int64_t>(obj.y) + obj.h) {
                        v = obj.value[c];
                    }
                }
                if (params_.pixelNoise > 0.0f)
                    v += rng_.gaussian(0.0f, params_.pixelNoise);
                window.data()[static_cast<size_t>(
                    ((c * d + frame_idx) * h + y) * w + x)] =
                    clamp(v, 0.0f, 1.0f);
            }
        }
    }
}

Shape
VideoWindowGenerator::inputShape() const
{
    return Shape(
        {3, params_.framesPerWindow, params_.height, params_.width});
}

Tensor
VideoWindowGenerator::next()
{
    if (rng_.bernoulli(params_.sceneCutProb))
        newScene();
    Tensor window(inputShape());
    for (int64_t f = 0; f < params_.framesPerWindow; ++f) {
        renderFrame(window, f);
        stepScene();
    }
    return window;
}

DrivingFrameGenerator::DrivingFrameGenerator(DrivingParams params,
                                             uint64_t seed)
    : params_(params), rng_(seed)
{
    reset(seed);
}

void
DrivingFrameGenerator::reset(uint64_t seed)
{
    rng_.seed(seed);
    lane_offset_ = 0.0;
    lane_velocity_ = 0.0;
    jitter_phase_ = rng_.uniform(0.0f, 6.28f);
    light_ = 1.0f;
    frame_counter_ = 0;
}

Shape
DrivingFrameGenerator::inputShape() const
{
    return Shape({3, params_.height, params_.width});
}

Tensor
DrivingFrameGenerator::next()
{
    const int64_t h = params_.height;
    const int64_t w = params_.width;

    // Evolve the scene: lane curvature as a random walk on the lane
    // velocity, bounded offset; smooth camera jitter; illumination
    // wander.
    lane_velocity_ =
        clamp(lane_velocity_ + rng_.gaussian(0.0f, 0.02f), -0.5, 0.5);
    lane_offset_ = clamp(lane_offset_ +
                             params_.laneDrift * lane_velocity_,
                         -8.0, 8.0);
    jitter_phase_ += 0.7;
    const double jitter = params_.jitterAmp * std::sin(jitter_phase_);
    light_ = params_.lightRho * light_ +
             (1.0f - params_.lightRho) * 1.0f +
             rng_.gaussian(0.0f, params_.lightSigma);
    ++frame_counter_;

    Tensor frame(inputShape());
    const double horizon = 0.35 * static_cast<double>(h);
    for (int64_t y = 0; y < h; ++y) {
        const bool sky = static_cast<double>(y) < horizon;
        // Road widens towards the bottom of the image.
        const double depth =
            sky ? 0.0
                : (static_cast<double>(y) - horizon) /
                      (static_cast<double>(h) - horizon);
        const double center =
            0.5 * static_cast<double>(w) + lane_offset_ * depth + jitter;
        const double half_road = (0.15 + 0.35 * depth) *
                                 static_cast<double>(w);
        for (int64_t x = 0; x < w; ++x) {
            float r, g, b;
            if (sky) {
                const float t = static_cast<float>(y) /
                                static_cast<float>(h);
                r = 0.45f + 0.2f * t;
                g = 0.60f + 0.15f * t;
                b = 0.85f;
            } else {
                const double dx =
                    std::fabs(static_cast<double>(x) - center);
                if (dx < half_road) {
                    // Road surface with dashed center line.  The dash
                    // phase is static: a trained network is invariant
                    // to texture phase, but the random-weight
                    // substitute is not, so animating it would
                    // artificially destroy deep-layer similarity
                    // (DESIGN.md substitution notes).
                    const bool marker =
                        dx < 0.015 * static_cast<double>(w) &&
                        (y / 6) % 2 == 0;
                    const float shade =
                        0.30f + 0.10f * static_cast<float>(depth);
                    r = g = b = marker ? 0.9f : shade;
                } else {
                    // Grass shoulder.
                    r = 0.25f;
                    g = 0.55f - 0.1f * static_cast<float>(depth);
                    b = 0.2f;
                }
            }
            const float noise =
                params_.pixelNoise > 0.0f
                    ? rng_.gaussian(0.0f, params_.pixelNoise)
                    : 0.0f;
            const float vals[3] = {r, g, b};
            for (int c = 0; c < 3; ++c) {
                frame.data()[static_cast<size_t>((c * h + y) * w + x)] =
                    clamp(vals[c] * light_ + noise, 0.0f, 1.0f);
            }
        }
    }
    return frame;
}

} // namespace reuse
