/**
 * @file
 * Interface of the synthetic input-sequence generators.
 *
 * The paper's workloads are streams of speech frames, video windows
 * and dash-cam images; the generators reproduce the structural
 * sources of temporal similarity those streams exhibit (quasi-
 * stationary segments, static backgrounds, slow scene evolution) with
 * tunable parameters.  See DESIGN.md for the substitution rationale.
 */

#ifndef REUSE_DNN_WORKLOADS_SEQUENCE_GENERATOR_H
#define REUSE_DNN_WORKLOADS_SEQUENCE_GENERATOR_H

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace reuse {

/**
 * Produces a stream of network inputs with realistic temporal
 * correlation.
 */
class SequenceGenerator
{
  public:
    virtual ~SequenceGenerator() = default;

    /** Shape of one generated input. */
    virtual Shape inputShape() const = 0;

    /** Next input in the stream. */
    virtual Tensor next() = 0;

    /** Restarts the stream (a new utterance / video / drive). */
    virtual void reset(uint64_t seed) = 0;

    /** Convenience: the next `count` inputs as a vector. */
    std::vector<Tensor> take(size_t count);
};

} // namespace reuse

#endif // REUSE_DNN_WORKLOADS_SEQUENCE_GENERATOR_H
