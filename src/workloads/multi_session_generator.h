/**
 * @file
 * N correlated-but-independent input streams for multi-session
 * serving experiments.
 *
 * Each stream is produced by its own SequenceGenerator instance
 * (same process parameters, distinct seed), modelling N users whose
 * sensors sample N different slowly-changing worlds: every stream
 * exhibits the temporal similarity the paper exploits, but streams
 * are mutually uncorrelated, so cross-session reuse is (correctly)
 * impossible and each session must carry its own state.
 */

#ifndef REUSE_DNN_WORKLOADS_MULTI_SESSION_GENERATOR_H
#define REUSE_DNN_WORKLOADS_MULTI_SESSION_GENERATOR_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "workloads/sequence_generator.h"

namespace reuse {

/**
 * A bundle of per-session input streams.
 */
class MultiSessionGenerator
{
  public:
    /** Builds one stream from a seed. */
    using Factory =
        std::function<std::unique_ptr<SequenceGenerator>(uint64_t)>;

    /**
     * @param factory Stream builder (one call per session).
     * @param sessions Number of streams.
     * @param base_seed Seed of stream 0; stream i uses
     *   sessionSeed(base_seed, i).
     */
    MultiSessionGenerator(Factory factory, size_t sessions,
                          uint64_t base_seed);

    /** The seed assigned to stream `i` (decorrelated from i-1). */
    static uint64_t sessionSeed(uint64_t base_seed, size_t i)
    {
        // Large odd stride keeps per-session RNG streams apart even
        // for generators that fold the seed into small state.
        return base_seed + 0x9e3779b97f4a7c15ULL * (i + 1);
    }

    size_t sessionCount() const { return streams_.size(); }

    /** Stream of session `i`. */
    SequenceGenerator &stream(size_t i) { return *streams_.at(i); }

    /** Next frame of session `i`. */
    Tensor next(size_t i) { return stream(i).next(); }

    /** The next `count` frames of session `i`. */
    std::vector<Tensor> take(size_t i, size_t count)
    {
        return stream(i).take(count);
    }

    /** Restarts every stream from a new base seed. */
    void resetAll(uint64_t base_seed);

  private:
    Factory factory_;
    std::vector<std::unique_ptr<SequenceGenerator>> streams_;
};

} // namespace reuse

#endif // REUSE_DNN_WORKLOADS_MULTI_SESSION_GENERATOR_H
