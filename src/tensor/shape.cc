#include "shape.h"

#include <sstream>

#include "common/logging.h"

namespace reuse {

Shape::Shape(std::initializer_list<int64_t> dims) : dims_(dims)
{
    for (int64_t d : dims_)
        REUSE_ASSERT(d >= 0, "negative dimension " << d);
}

Shape::Shape(std::vector<int64_t> dims) : dims_(std::move(dims))
{
    for (int64_t d : dims_)
        REUSE_ASSERT(d >= 0, "negative dimension " << d);
}

int64_t
Shape::dim(size_t i) const
{
    REUSE_ASSERT(i < dims_.size(),
                 "dim index " << i << " out of range for rank "
                              << dims_.size());
    return dims_[i];
}

int64_t
Shape::numel() const
{
    int64_t n = 1;
    for (int64_t d : dims_)
        n *= d;
    return n;
}

std::vector<int64_t>
Shape::strides() const
{
    std::vector<int64_t> s(dims_.size(), 1);
    for (size_t i = dims_.size(); i-- > 1;)
        s[i - 1] = s[i] * dims_[i];
    return s;
}

int64_t
Shape::offset(const std::vector<int64_t> &index) const
{
    REUSE_ASSERT(index.size() == dims_.size(),
                 "index rank " << index.size() << " vs shape rank "
                               << dims_.size());
    int64_t off = 0;
    int64_t stride = 1;
    for (size_t i = dims_.size(); i-- > 0;) {
        REUSE_ASSERT(index[i] >= 0 && index[i] < dims_[i],
                     "index " << index[i] << " out of range for dim "
                              << i << " of size " << dims_[i]);
        off += index[i] * stride;
        stride *= dims_[i];
    }
    return off;
}

std::string
Shape::str() const
{
    if (dims_.empty())
        return "scalar";
    std::ostringstream oss;
    for (size_t i = 0; i < dims_.size(); ++i) {
        if (i)
            oss << "x";
        oss << dims_[i];
    }
    return oss.str();
}

} // namespace reuse
