#include "tensor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace reuse {

Tensor::Tensor() : shape_(), data_(1, 0.0f) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.numel()), 0.0f)
{
}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_.numel()), fill)
{
}

Tensor::Tensor(Shape shape, AlignedVector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    REUSE_ASSERT(static_cast<int64_t>(data_.size()) == shape_.numel(),
                 "data size " << data_.size() << " != shape numel "
                              << shape_.numel());
}

Tensor::Tensor(Shape shape, const std::vector<float> &data)
    : shape_(std::move(shape)), data_(data.begin(), data.end())
{
    REUSE_ASSERT(static_cast<int64_t>(data_.size()) == shape_.numel(),
                 "data size " << data_.size() << " != shape numel "
                              << shape_.numel());
}

float &
Tensor::at(int64_t i)
{
    REUSE_ASSERT(i >= 0 && i < numel(), "flat index " << i
                     << " out of range for " << numel() << " elements");
    return data_[static_cast<size_t>(i)];
}

float
Tensor::at(int64_t i) const
{
    REUSE_ASSERT(i >= 0 && i < numel(), "flat index " << i
                     << " out of range for " << numel() << " elements");
    return data_[static_cast<size_t>(i)];
}

float
Tensor::at(const std::vector<int64_t> &index) const
{
    return data_[static_cast<size_t>(shape_.offset(index))];
}

float &
Tensor::at(const std::vector<int64_t> &index)
{
    return data_[static_cast<size_t>(shape_.offset(index))];
}

void
Tensor::fill(float v)
{
    std::fill(data_.begin(), data_.end(), v);
}

Tensor
Tensor::reshaped(Shape shape) const
{
    REUSE_ASSERT(shape.numel() == numel(),
                 "reshape " << shape_.str() << " -> " << shape.str()
                            << " changes element count");
    return Tensor(std::move(shape), data_);
}

int64_t
Tensor::argmax() const
{
    return static_cast<int64_t>(
        std::max_element(data_.begin(), data_.end()) - data_.begin());
}

double
Tensor::sum() const
{
    double s = 0.0;
    for (float v : data_)
        s += v;
    return s;
}

double
Tensor::norm() const
{
    double s = 0.0;
    for (float v : data_)
        s += static_cast<double>(v) * v;
    return std::sqrt(s);
}

float
Tensor::minValue() const
{
    return *std::min_element(data_.begin(), data_.end());
}

float
Tensor::maxValue() const
{
    return *std::max_element(data_.begin(), data_.end());
}

} // namespace reuse
