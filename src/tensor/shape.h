/**
 * @file
 * N-dimensional shape descriptor for dense tensors.
 */

#ifndef REUSE_DNN_TENSOR_SHAPE_H
#define REUSE_DNN_TENSOR_SHAPE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace reuse {

/**
 * Shape of a dense row-major tensor.
 *
 * Dimensions are stored outermost-first.  A rank-0 shape denotes a
 * scalar with one element.
 */
class Shape
{
  public:
    Shape() = default;

    /** Constructs a shape from a dimension list, e.g. {3, 66, 200}. */
    Shape(std::initializer_list<int64_t> dims);

    /** Constructs a shape from a vector of dimensions. */
    explicit Shape(std::vector<int64_t> dims);

    /** Number of dimensions. */
    size_t rank() const { return dims_.size(); }

    /** Size of dimension `i` (0 <= i < rank). */
    int64_t dim(size_t i) const;

    /** All dimensions, outermost first. */
    const std::vector<int64_t> &dims() const { return dims_; }

    /** Total number of elements (1 for scalars). */
    int64_t numel() const;

    /** Row-major strides, in elements. */
    std::vector<int64_t> strides() const;

    /** Flattens a multi-index into a row-major linear offset. */
    int64_t offset(const std::vector<int64_t> &index) const;

    /** Human-readable form, e.g. "3x66x200". */
    std::string str() const;

    bool operator==(const Shape &other) const
    {
        return dims_ == other.dims_;
    }
    bool operator!=(const Shape &other) const { return !(*this == other); }

  private:
    std::vector<int64_t> dims_;
};

} // namespace reuse

#endif // REUSE_DNN_TENSOR_SHAPE_H
