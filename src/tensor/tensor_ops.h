/**
 * @file
 * Elementwise and reduction operations on tensors, including the
 * relative-difference metric used by Figure 4 of the paper.
 */

#ifndef REUSE_DNN_TENSOR_TENSOR_OPS_H
#define REUSE_DNN_TENSOR_TENSOR_OPS_H

#include "tensor/tensor.h"

namespace reuse {

/** Elementwise a + b; shapes must match. */
Tensor add(const Tensor &a, const Tensor &b);

/** Elementwise a - b; shapes must match. */
Tensor sub(const Tensor &a, const Tensor &b);

/** Elementwise a * s. */
Tensor scale(const Tensor &a, float s);

/** Euclidean distance between the flattened tensors. */
double euclideanDistance(const Tensor &a, const Tensor &b);

/**
 * Relative difference between consecutive input vectors, as defined in
 * the paper's Figure 4: ||current - previous||_2 / ||previous||_2.
 * Returns 0 when the previous vector has zero magnitude.
 */
double relativeDifference(const Tensor &current, const Tensor &previous);

/** Largest absolute elementwise difference. */
double maxAbsDifference(const Tensor &a, const Tensor &b);

/**
 * Fraction of elements that are bitwise-equal between the tensors;
 * this is the paper's strict "input similarity" before quantization.
 */
double exactMatchFraction(const Tensor &a, const Tensor &b);

/** In-place y += alpha * x (axpy); shapes must match. */
void axpy(float alpha, const Tensor &x, Tensor &y);

/** Mean of all elements. */
double mean(const Tensor &a);

} // namespace reuse

#endif // REUSE_DNN_TENSOR_TENSOR_OPS_H
