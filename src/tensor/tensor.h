/**
 * @file
 * Dense row-major float tensor, the common data type of the NN
 * substrate, quantizer and reuse engine.
 */

#ifndef REUSE_DNN_TENSOR_TENSOR_H
#define REUSE_DNN_TENSOR_TENSOR_H

#include <cstdint>
#include <vector>

#include "common/aligned.h"
#include "tensor/shape.h"

namespace reuse {

/**
 * Dense float tensor with value semantics.
 *
 * Storage is a contiguous row-major buffer.  The class deliberately
 * stays small: layers index the flat buffer directly for speed, and
 * the accelerator simulator only cares about element counts and raw
 * data, never about fancy views.
 */
class Tensor
{
  public:
    /** Creates an empty (rank-0, one-element) tensor. */
    Tensor();

    /** Creates a zero-filled tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** Creates a tensor of the given shape filled with `fill`. */
    Tensor(Shape shape, float fill);

    /** Creates a tensor adopting `data`; size must match the shape. */
    Tensor(Shape shape, AlignedVector<float> data);

    /** Creates a tensor copying `data`; size must match the shape. */
    Tensor(Shape shape, const std::vector<float> &data);

    /** Shape of the tensor. */
    const Shape &shape() const { return shape_; }

    /** Total number of elements. */
    int64_t numel() const { return static_cast<int64_t>(data_.size()); }

    /** Mutable flat element access. */
    float &operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }

    /** Read-only flat element access. */
    float operator[](int64_t i) const
    {
        return data_[static_cast<size_t>(i)];
    }

    /** Bounds-checked flat access (mutable). */
    float &at(int64_t i);

    /** Bounds-checked flat access (read-only). */
    float at(int64_t i) const;

    /** Multi-index access (read-only). */
    float at(const std::vector<int64_t> &index) const;

    /** Multi-index access (mutable). */
    float &at(const std::vector<int64_t> &index);

    /** Raw storage (read-only), 64-byte aligned. */
    const AlignedVector<float> &data() const { return data_; }

    /** Raw storage (mutable), 64-byte aligned. */
    AlignedVector<float> &data() { return data_; }

    /** Sets every element to `v`. */
    void fill(float v);

    /** Sets every element to zero. */
    void zero() { fill(0.0f); }

    /** Returns a copy reshaped to `shape` (numel must match). */
    Tensor reshaped(Shape shape) const;

    /** Index of the largest element (ties break to lowest index). */
    int64_t argmax() const;

    /** Sum of all elements (double accumulation). */
    double sum() const;

    /** L2 norm of the flattened tensor. */
    double norm() const;

    /** Smallest element. */
    float minValue() const;

    /** Largest element. */
    float maxValue() const;

  private:
    Shape shape_;
    AlignedVector<float> data_;
};

} // namespace reuse

#endif // REUSE_DNN_TENSOR_TENSOR_H
