#include "tensor_ops.h"

#include <cmath>

#include "common/logging.h"

namespace reuse {

namespace {

void
checkSameShape(const Tensor &a, const Tensor &b, const char *op)
{
    REUSE_ASSERT(a.shape() == b.shape(),
                 op << ": shape mismatch " << a.shape().str() << " vs "
                    << b.shape().str());
}

} // namespace

Tensor
add(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "add");
    Tensor out(a.shape());
    for (int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

Tensor
sub(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "sub");
    Tensor out(a.shape());
    for (int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] - b[i];
    return out;
}

Tensor
scale(const Tensor &a, float s)
{
    Tensor out(a.shape());
    for (int64_t i = 0; i < a.numel(); ++i)
        out[i] = a[i] * s;
    return out;
}

double
euclideanDistance(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "euclideanDistance");
    double s = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i) {
        const double d = static_cast<double>(a[i]) - b[i];
        s += d * d;
    }
    return std::sqrt(s);
}

double
relativeDifference(const Tensor &current, const Tensor &previous)
{
    const double prev_norm = previous.norm();
    if (prev_norm == 0.0)
        return 0.0;
    return euclideanDistance(current, previous) / prev_norm;
}

double
maxAbsDifference(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "maxAbsDifference");
    double m = 0.0;
    for (int64_t i = 0; i < a.numel(); ++i)
        m = std::fmax(m, std::fabs(static_cast<double>(a[i]) - b[i]));
    return m;
}

double
exactMatchFraction(const Tensor &a, const Tensor &b)
{
    checkSameShape(a, b, "exactMatchFraction");
    if (a.numel() == 0)
        return 1.0;
    int64_t same = 0;
    for (int64_t i = 0; i < a.numel(); ++i)
        same += (a[i] == b[i]) ? 1 : 0;
    return static_cast<double>(same) / static_cast<double>(a.numel());
}

void
axpy(float alpha, const Tensor &x, Tensor &y)
{
    checkSameShape(x, y, "axpy");
    for (int64_t i = 0; i < x.numel(); ++i)
        y[i] += alpha * x[i];
}

double
mean(const Tensor &a)
{
    if (a.numel() == 0)
        return 0.0;
    return a.sum() / static_cast<double>(a.numel());
}

} // namespace reuse
