#include "reuse_stats.h"

#include "common/logging.h"

namespace reuse {

ReuseStatsCollector::ReuseStatsCollector(
    std::vector<std::string> layer_names)
{
    layers_.resize(layer_names.size());
    for (size_t i = 0; i < layer_names.size(); ++i)
        layers_[i].layerName = std::move(layer_names[i]);
}

void
ReuseStatsCollector::addTrace(const ExecutionTrace &trace)
{
    for (const LayerExecRecord &rec : trace) {
        if (rec.layerIndex >= layers_.size())
            layers_.resize(rec.layerIndex + 1);
        LayerReuseStats &s = layers_[rec.layerIndex];
        s.kind = rec.kind;
        s.reuseEnabled = s.reuseEnabled || rec.reuseEnabled;
        s.macsFullAll += rec.macsFull;
        s.macsPerformedAll += rec.macsPerformed;
        if (rec.firstExecution) {
            ++s.firstExecutions;
            if (rec.driftRefresh)
                ++s.driftRefreshes;
            continue;
        }
        ++s.executions;
        s.inputsChecked += rec.inputsChecked;
        s.inputsChanged += rec.inputsChanged;
        s.inputsNearMatched += rec.inputsNearMatched;
        s.macsFull += rec.macsFull;
        s.macsPerformed += rec.macsPerformed;
    }
}

double
ReuseStatsCollector::meanSimilarity() const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &s : layers_) {
        if (s.reuseEnabled && s.inputsChecked > 0) {
            sum += s.similarity();
            ++n;
        }
    }
    return n == 0 ? 0.0 : sum / n;
}

double
ReuseStatsCollector::meanComputationReuse() const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &s : layers_) {
        if (s.reuseEnabled && s.macsFull > 0) {
            sum += s.computationReuse();
            ++n;
        }
    }
    return n == 0 ? 0.0 : sum / n;
}

double
ReuseStatsCollector::networkComputationReuse() const
{
    int64_t full = 0;
    int64_t performed = 0;
    for (const auto &s : layers_) {
        full += s.macsFull;
        performed += s.macsPerformed;
    }
    return full == 0
               ? 0.0
               : 1.0 - static_cast<double>(performed) /
                           static_cast<double>(full);
}

void
ReuseStatsCollector::reset()
{
    for (auto &s : layers_) {
        const std::string name = s.layerName;
        s = LayerReuseStats{};
        s.layerName = name;
    }
}

} // namespace reuse
