/**
 * @file
 * Reuse-based inference engine: drives a whole network over a stream
 * of inputs, executing quantization-enabled layers incrementally and
 * the remaining layers from scratch, while recording per-layer
 * execution traces for the statistics collector and the accelerator
 * simulator.
 */

#ifndef REUSE_DNN_CORE_REUSE_ENGINE_H
#define REUSE_DNN_CORE_REUSE_ENGINE_H

#include <memory>
#include <vector>

#include "core/conv_reuse.h"
#include "core/exec_record.h"
#include "core/fc_reuse.h"
#include "core/lstm_reuse.h"
#include "core/reuse_stats.h"
#include "nn/network.h"
#include "quant/quantization_plan.h"

namespace reuse {

/** Tunables of the reuse engine. */
struct ReuseEngineConfig {
    /**
     * Recompute enabled layers from scratch every `refreshPeriod`
     * executions to bound floating-point drift of the incremental
     * corrections; 0 disables refresh (the paper's configuration).
     */
    int refreshPeriod = 0;
};

/**
 * Stateful engine implementing the paper's reuse-based inference.
 *
 * For feed-forward networks, call execute() once per frame; the
 * engine compares each enabled layer's quantized inputs against the
 * previous frame.  For recurrent networks, call executeSequence()
 * once per sequence (utterance); BiLSTM layers reuse across
 * timesteps.  resetState() emulates the accelerator being power gated
 * between input streams.
 */
class ReuseEngine
{
  public:
    /**
     * @param network Network to execute; must outlive the engine.
     * @param plan Per-layer quantization plan (copied).
     * @param config Engine tunables.
     */
    ReuseEngine(const Network &network, QuantizationPlan plan,
                ReuseEngineConfig config = {});

    /** Executes one frame (feed-forward networks only). */
    Tensor execute(const Tensor &input);

    /**
     * Executes an input sequence.  For recurrent networks the whole
     * sequence flows layer-by-layer; for feed-forward networks this
     * maps execute() over the elements.
     */
    std::vector<Tensor> executeSequence(const std::vector<Tensor> &inputs);

    /** Drops all buffered state (new stream / utterance / video). */
    void resetState();

    /** Trace of the most recent execute()/executeSequence() call. */
    const ExecutionTrace &lastTrace() const { return last_trace_; }

    /** Accumulated similarity/reuse statistics. */
    const ReuseStatsCollector &stats() const { return stats_; }

    /** Mutable statistics (e.g. to reset between phases). */
    ReuseStatsCollector &stats() { return stats_; }

    /** The network being executed. */
    const Network &network() const { return network_; }

    /** The active quantization plan. */
    const QuantizationPlan &plan() const { return plan_; }

  private:
    /** Executes one feed-forward layer with or without reuse. */
    Tensor executeLayer(size_t li, const Tensor &input,
                        LayerExecRecord &rec);

    /** Fills a record for a from-scratch (non-reuse) execution. */
    void recordFromScratch(size_t li, const Shape &in_shape,
                           LayerExecRecord &rec) const;

    const Network &network_;
    QuantizationPlan plan_;
    ReuseEngineConfig config_;
    std::vector<Shape> layer_input_shapes_;

    // Per-layer reuse states; index aligned with network layers, null
    // where reuse is disabled or the kind does not match.
    std::vector<std::unique_ptr<FcReuseState>> fc_states_;
    std::vector<std::unique_ptr<ConvReuseState>> conv_states_;
    std::vector<std::unique_ptr<BiLstmReuseState>> lstm_states_;
    std::vector<std::unique_ptr<LstmLayerReuseState>> uni_lstm_states_;

    int64_t executions_since_refresh_ = 0;
    ExecutionTrace last_trace_;
    ReuseStatsCollector stats_;
};

} // namespace reuse

#endif // REUSE_DNN_CORE_REUSE_ENGINE_H
