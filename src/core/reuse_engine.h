/**
 * @file
 * Reuse-based inference engine: drives a whole network over a stream
 * of inputs, executing quantization-enabled layers incrementally and
 * the remaining layers from scratch, while recording per-layer
 * execution traces for the statistics collector and the accelerator
 * simulator.
 *
 * The engine itself is immutable once constructed (network, plan,
 * config); all per-stream mutable state lives in a ReuseState.  The
 * stateless execute(ReuseState&, ...) const overloads are safe to
 * call from many threads concurrently as long as each ReuseState is
 * used by one thread at a time — this is what the serving runtime
 * (src/serve) builds on.  The legacy stateful execute(input) API
 * drives an internal ReuseState for single-stream use.
 */

#ifndef REUSE_DNN_CORE_REUSE_ENGINE_H
#define REUSE_DNN_CORE_REUSE_ENGINE_H

#include <memory>
#include <vector>

#include "core/drift_guard.h"
#include "core/exec_record.h"
#include "core/reuse_state.h"
#include "core/reuse_stats.h"
#include "ir/compiled_plan.h"
#include "nn/network.h"
#include "quant/quantization_plan.h"

namespace reuse {

/** Tunables of the reuse engine. */
struct ReuseEngineConfig {
    /**
     * Recompute enabled layers from scratch every `refreshPeriod`
     * executions to bound floating-point drift of the incremental
     * corrections; 0 disables refresh (the paper's configuration).
     */
    int refreshPeriod = 0;
    /**
     * Accumulated relative drift estimate (incremental MACs since the
     * last refresh times FLT_EPSILON; see DriftGuard) at which any
     * layer forces a full refresh; 0 disables the bound.
     */
    double driftBound = 0.0;
    /**
     * IR compilation options (pass selection and pinning policy); the
     * defaults are behavior-preserving.  Engines sharing options and
     * a model share one cached CompiledPlan (see ir/plan_cache.h).
     *
     * compileOptions.clusterRadius selects near-match reuse; when it
     * is left at 0 the engine constructor honors the
     * REUSE_CLUSTER_RADIUS environment variable as a process-wide
     * default.
     */
    ir::CompileOptions compileOptions;
};

/**
 * Engine implementing the paper's reuse-based inference.
 *
 * For feed-forward networks, call execute() once per frame; the
 * engine compares each enabled layer's quantized inputs against the
 * previous frame.  For recurrent networks, call executeSequence()
 * once per sequence (utterance); BiLSTM layers reuse across
 * timesteps.  resetState() emulates the accelerator being power gated
 * between input streams.
 */
class ReuseEngine
{
  public:
    /**
     * @param network Network to execute; must outlive the engine.
     * @param plan Per-layer quantization plan (copied).
     * @param config Engine tunables.
     */
    ReuseEngine(const Network &network, QuantizationPlan plan,
                ReuseEngineConfig config = {});

    // ------------------------------------------------------------------
    // Stateless API: per-stream state owned by the caller.  Thread-safe
    // for concurrent calls with distinct states.
    // ------------------------------------------------------------------

    /** Builds a fresh (cold) per-stream state for this engine. */
    ReuseState makeState() const;

    /** Builds a stats collector labelled with this network's layers. */
    ReuseStatsCollector makeStatsCollector() const;

    /**
     * Executes one frame of the stream owned by `state` (feed-forward
     * networks only), filling `trace` with per-layer records.
     */
    Tensor execute(ReuseState &state, const Tensor &input,
                   ExecutionTrace &trace) const;

    /**
     * Executes an input sequence against `state`.  For recurrent
     * networks the whole sequence flows layer-by-layer (state is
     * reset at the sequence boundary); for feed-forward networks this
     * maps execute() over the elements and concatenates the traces.
     */
    std::vector<Tensor> executeSequence(ReuseState &state,
                                        const std::vector<Tensor> &inputs,
                                        ExecutionTrace &trace) const;

    // ------------------------------------------------------------------
    // Legacy single-stream API, driving an internal state.
    // ------------------------------------------------------------------

    /** Executes one frame (feed-forward networks only). */
    Tensor execute(const Tensor &input);

    /**
     * Executes an input sequence.  For recurrent networks the whole
     * sequence flows layer-by-layer; for feed-forward networks this
     * maps execute() over the elements.
     */
    std::vector<Tensor> executeSequence(const std::vector<Tensor> &inputs);

    /** Drops all buffered state (new stream / utterance / video). */
    void resetState();

    /** The internal single-stream state. */
    const ReuseState &state() const { return state_; }

    /** Trace of the most recent execute()/executeSequence() call. */
    const ExecutionTrace &lastTrace() const { return last_trace_; }

    /** Accumulated similarity/reuse statistics. */
    const ReuseStatsCollector &stats() const { return stats_; }

    /** Mutable statistics (e.g. to reset between phases). */
    ReuseStatsCollector &stats() { return stats_; }

    /** The network being executed. */
    const Network &network() const { return network_; }

    /** The active quantization plan. */
    const QuantizationPlan &plan() const { return plan_; }

    /** The engine tunables. */
    const ReuseEngineConfig &config() const { return config_; }

    /** The refresh policy derived from the config. */
    const DriftGuard &driftGuard() const { return drift_guard_; }

    /** The compiled execution schedule the engine runs. */
    const ir::CompiledPlan &compiledPlan() const { return *compiled_; }

    /** Shared handle to the schedule (for cache/introspection). */
    std::shared_ptr<const ir::CompiledPlan> compiledPlanPtr() const
    {
        return compiled_;
    }

  private:
    /** Executes one feed-forward plan step with or without reuse. */
    Tensor executeStep(ReuseState &state, const ir::PlanStep &step,
                       const Tensor &input, LayerExecRecord &rec) const;

    /**
     * Applies `step`'s fused activation to `t` in place, filling the
     * activation's own trace record and span exactly as an unfused
     * from-scratch execution would.
     */
    void runFusedActivation(const ir::PlanStep &step, Tensor &t,
                            ExecutionTrace &trace,
                            uint32_t base_flags) const;

    /** Fills a record for a from-scratch (non-reuse) execution. */
    void recordFromScratch(size_t li, const Shape &in_shape,
                           LayerExecRecord &rec) const;

    /** Panics when `state` was not created by this engine's makeState. */
    void checkState(const ReuseState &state) const;

    const Network &network_;
    QuantizationPlan plan_;
    ReuseEngineConfig config_;
    DriftGuard drift_guard_;
    std::shared_ptr<const ir::CompiledPlan> compiled_;

    ReuseState state_;
    ExecutionTrace last_trace_;
    ReuseStatsCollector stats_;
};

} // namespace reuse

#endif // REUSE_DNN_CORE_REUSE_ENGINE_H
