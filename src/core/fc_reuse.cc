#include "fc_reuse.h"

#include "common/logging.h"

namespace reuse {

FcReuseState::FcReuseState(const FullyConnectedLayer &layer,
                           LinearQuantizer quantizer)
    : layer_(layer), quantizer_(std::move(quantizer))
{
    // Buffers are allocated lazily by the first execute(): a state
    // that never runs (or was evicted) holds no memory.
}

void
FcReuseState::releaseBuffers()
{
    has_prev_ = false;
    std::vector<int32_t>().swap(prev_indices_);
    std::vector<float>().swap(prev_outputs_);
}

int64_t
FcReuseState::memoryBytes() const
{
    return static_cast<int64_t>(
        prev_indices_.capacity() * sizeof(int32_t) +
        prev_outputs_.capacity() * sizeof(float));
}

Tensor
FcReuseState::execute(const Tensor &input, LayerExecRecord &rec)
{
    REUSE_ASSERT(input.numel() == layer_.inputs(),
                 layer_.name() << ": reuse input size mismatch");
    const int64_t n = layer_.inputs();
    const int64_t m = layer_.outputs();

    rec.kind = LayerKind::FullyConnected;
    rec.reuseEnabled = true;
    rec.inputsTotal = n;
    rec.outputsTotal = m;
    rec.macsFull = n * m;
    rec.steps = 1;

    if (!has_prev_) {
        // First execution: quantize every input, store the indices,
        // and compute from scratch on the centroids (Fig. 7, top
        // path).  Buffers may have been released by an eviction.
        prev_indices_.resize(static_cast<size_t>(n));
        prev_outputs_.resize(static_cast<size_t>(m));
        Tensor quantized(input.shape());
        for (int64_t i = 0; i < n; ++i) {
            const int32_t idx = quantizer_.index(input[i]);
            prev_indices_[static_cast<size_t>(i)] = idx;
            quantized[i] = quantizer_.centroid(idx);
        }
        const Tensor out = layer_.forward(quantized);
        for (int64_t o = 0; o < m; ++o)
            prev_outputs_[static_cast<size_t>(o)] = out[o];
        has_prev_ = true;

        rec.firstExecution = true;
        rec.inputsChecked = 0;
        rec.inputsChanged = 0;
        rec.macsPerformed = rec.macsFull;
        return out;
    }

    // Subsequent executions: compare indices, correct only changes.
    rec.firstExecution = false;
    rec.inputsChecked = n;
    int64_t changed = 0;
    for (int64_t i = 0; i < n; ++i) {
        const int32_t idx = quantizer_.index(input[i]);
        const int32_t prev = prev_indices_[static_cast<size_t>(i)];
        if (idx == prev)
            continue;
        const float delta =
            quantizer_.centroid(idx) - quantizer_.centroid(prev);
        layer_.applyDelta(i, delta, prev_outputs_);
        prev_indices_[static_cast<size_t>(i)] = idx;
        ++changed;
    }
    rec.inputsChanged = changed;
    rec.macsPerformed = changed * m;

    Tensor out(Shape({m}));
    for (int64_t o = 0; o < m; ++o)
        out[o] = prev_outputs_[static_cast<size_t>(o)];
    return out;
}

} // namespace reuse
