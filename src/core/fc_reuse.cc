#include "fc_reuse.h"

#include <cstring>

#include "common/checksum.h"
#include "common/logging.h"
#include "fault/fault_injector.h"
#include "kernels/delta_kernels.h"
#include "obs/trace_recorder.h"

namespace reuse {

FcReuseState::FcReuseState(const FullyConnectedLayer &layer,
                           LinearQuantizer quantizer,
                           int32_t cluster_radius)
    : layer_(layer),
      quantizer_(std::move(quantizer)),
      cluster_radius_(cluster_radius)
{
    // Buffers are allocated lazily by the first execute(): a state
    // that never runs (or was evicted) holds no memory.
}

void
FcReuseState::releaseBuffers()
{
    has_prev_ = false;
    AlignedVector<int32_t>().swap(prev_indices_);
    AlignedVector<float>().swap(prev_outputs_);
    changes_.releaseStorage();
}

void
FcReuseState::hashInto(uint64_t &h) const
{
    checksumValue(h, has_prev_);
    if (!has_prev_)
        return;
    checksumVector(h, prev_indices_);
    checksumVector(h, prev_outputs_);
}

bool
FcReuseState::debugCorruptBuffer(uint64_t seed)
{
    if (!has_prev_ || prev_outputs_.empty())
        return false;
    const size_t victim = seed % prev_outputs_.size();
    const uint32_t bit = static_cast<uint32_t>((seed >> 16) % 23);
    uint32_t raw = 0;
    std::memcpy(&raw, &prev_outputs_[victim], sizeof(raw));
    raw ^= (1u << bit);
    std::memcpy(&prev_outputs_[victim], &raw, sizeof(raw));
    return true;
}

int64_t
FcReuseState::memoryBytes() const
{
    // The change-list scratch is deliberately excluded: it is
    // transient per-frame storage (bounded by ~3 ints per input),
    // and the static footprint estimator (analysis/) mirrors this
    // accounting exactly.
    return static_cast<int64_t>(
        prev_indices_.capacity() * sizeof(int32_t) +
        prev_outputs_.capacity() * sizeof(float));
}

Tensor
FcReuseState::execute(const Tensor &input, LayerExecRecord &rec)
{
    REUSE_ASSERT(input.numel() == layer_.inputs(),
                 layer_.name() << ": reuse input size mismatch");
    const int64_t n = layer_.inputs();
    const int64_t m = layer_.outputs();
    kernels::QuantScanParams q = quantizer_.scanParams();
    q.radius = cluster_radius_;

    rec.kind = LayerKind::FullyConnected;
    rec.reuseEnabled = true;
    rec.inputsTotal = n;
    rec.outputsTotal = m;
    rec.macsFull = n * m;
    rec.steps = 1;

    if (!has_prev_) {
        // First execution: quantize every input, store the indices,
        // and compute from scratch on the centroids (Fig. 7, top
        // path).  Buffers may have been released by an eviction.
        obs::TraceSpan span(obs::SpanKind::FirstExec);
        span.args(0, 0, rec.macsFull, rec.macsFull,
                  obs::kFlagFirstExecution | obs::kFlagReuseEnabled);
        prev_indices_.resize(static_cast<size_t>(n));
        prev_outputs_.resize(static_cast<size_t>(m));
        Tensor quantized(input.shape());
        kernels::quantizeWithIndices(input.data().data(), n, q,
                                     prev_indices_.data(),
                                     quantized.data().data());
        const Tensor out = layer_.forward(quantized);
        for (int64_t o = 0; o < m; ++o)
            prev_outputs_[static_cast<size_t>(o)] = out[o];
        has_prev_ = true;

        rec.firstExecution = true;
        rec.inputsChecked = 0;
        rec.inputsChanged = 0;
        rec.macsPerformed = rec.macsFull;
        return out;
    }

    // Subsequent executions: scan changed indices into a compact
    // change list, then apply the whole list one output block at a
    // time (blocked Eq. 10).
    rec.firstExecution = false;
    rec.inputsChecked = n;
    kernels::QuantScanParams scan = q;
    fault::perturbScanParams(LayerKind::FullyConnected, scan);
    fault::corruptIndices(LayerKind::FullyConnected,
                          prev_indices_.data(), n);
    fault::corruptFloats(LayerKind::FullyConnected,
                         prev_outputs_.data(), m);
    kernels::ScanResult scanned;
    {
        obs::TraceSpan span(obs::SpanKind::LayerScan);
        scanned = kernels::scanChanges(input.data().data(), n, scan,
                                       prev_indices_.data(), changes_);
        span.args(n, scanned.changed);
    }
    fault::truncateChanges(LayerKind::FullyConnected, changes_);
    if (!changes_.empty()) {
        obs::TraceSpan span(obs::SpanKind::LayerApply);
        span.args(static_cast<int64_t>(changes_.size()), m);
        kernels::applyDeltas(changes_, layer_.weights().data(), m,
                             prev_outputs_.data());
    }
    rec.inputsChanged = scanned.changed;
    rec.inputsNearMatched = scanned.near_matched;
    rec.nearMatchDrift =
        kernels::nearMatchDriftShare(scan, scanned.near_matched);
    rec.macsPerformed = scanned.changed * m;

    return Tensor(Shape({m}), prev_outputs_);
}

} // namespace reuse
