/**
 * @file
 * Incremental (reuse-based) execution of convolutional layers
 * (Sec. IV-C of the paper).
 *
 * The state buffers the previous execution's quantized input indices
 * and the full previous output volume.  For every changed input
 * element, all output neurons whose receptive field covers it are
 * corrected by delta * weight; unchanged inputs are skipped entirely.
 */

#ifndef REUSE_DNN_CORE_CONV_REUSE_H
#define REUSE_DNN_CORE_CONV_REUSE_H

#include <vector>

#include "common/aligned.h"
#include "core/exec_record.h"
#include "kernels/change_list.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "quant/linear_quantizer.h"

namespace reuse {

/**
 * Reuse state and incremental executor for a Conv2D or Conv3D layer.
 * Exactly one of the layer pointers is non-null.
 */
class ConvReuseState
{
  public:
    /** Builds reuse state for a 2D convolution. */
    ConvReuseState(const Conv2DLayer &layer, Shape input_shape,
                   LinearQuantizer quantizer,
                   int32_t cluster_radius = 0);

    /** Builds reuse state for a 3D convolution. */
    ConvReuseState(const Conv3DLayer &layer, Shape input_shape,
                   LinearQuantizer quantizer,
                   int32_t cluster_radius = 0);

    /**
     * Executes the convolution on `input` with reuse; same contract
     * as FcReuseState::execute().
     */
    Tensor execute(const Tensor &input, LayerExecRecord &rec);

    /** Drops the buffered execution (stream boundary). */
    void reset() { has_prev_ = false; }

    /**
     * Drops the buffered execution AND frees the buffer storage
     * (session eviction).  The next execute() re-allocates lazily.
     */
    void releaseBuffers();

    /** Bytes currently held by the prev-indices/output buffers. */
    int64_t memoryBytes() const;

    /** True when a previous execution is buffered. */
    bool hasPrev() const { return has_prev_; }

    /** The input quantizer in use. */
    const LinearQuantizer &quantizer() const { return quantizer_; }

    /** The near-match cluster radius (0 = exact matching). */
    int32_t clusterRadius() const { return cluster_radius_; }

    /** Folds the buffered state into checksum state `h`. */
    void hashInto(uint64_t &h) const;

    /**
     * Testing hook: flips one seed-selected mantissa bit in the
     * buffered output volume (between-frame corruption).  Returns
     * false when nothing is buffered.
     */
    bool debugCorruptBuffer(uint64_t seed);

  private:
    Tensor executeConv2d(const Tensor &input, LayerExecRecord &rec);
    Tensor executeConv3d(const Tensor &input, LayerExecRecord &rec);

    /**
     * Runs the shared from-scratch path when no previous execution
     * is buffered; returns true when it did (output in
     * prev_output_).
     */
    bool firstExecution(const Tensor &input, LayerExecRecord &rec,
                        const Layer &layer);

    const Conv2DLayer *conv2d_ = nullptr;
    const Conv3DLayer *conv3d_ = nullptr;
    Shape input_shape_;
    LinearQuantizer quantizer_;
    int32_t cluster_radius_ = 0;
    bool has_prev_ = false;
    AlignedVector<int32_t> prev_indices_;
    Tensor prev_output_;
    /** Per-frame (position, delta) scratch, reused across frames. */
    kernels::ChangeList changes_;
};

} // namespace reuse

#endif // REUSE_DNN_CORE_CONV_REUSE_H
