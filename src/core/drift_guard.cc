#include "drift_guard.h"

#include <cfloat>

namespace reuse {

double
DriftGuard::driftIncrement(const LayerExecRecord &rec)
{
    if (!rec.reuseEnabled || rec.firstExecution)
        return 0.0;
    // fp32 rounding of the incremental MACs, plus the standing input
    // error left by near-match reuse (suppressed sub-radius changes);
    // both are relative-error estimates, so they share one budget.
    return static_cast<double>(rec.macsPerformed) *
               static_cast<double>(FLT_EPSILON) +
           rec.nearMatchDrift;
}

bool
DriftGuard::shouldRefresh(const ReuseState &state) const
{
    if (refresh_period_ > 0 &&
        state.executions_since_refresh_ >= refresh_period_)
        return true;
    if (drift_bound_ > 0.0) {
        for (const double d : state.accumulated_drift_) {
            if (d >= drift_bound_)
                return true;
        }
    }
    return false;
}

void
DriftGuard::accumulate(ReuseState &state,
                       const ExecutionTrace &trace) const
{
    if (drift_bound_ <= 0.0)
        return;
    for (const LayerExecRecord &rec : trace) {
        if (!rec.reuseEnabled ||
            rec.layerIndex >= state.accumulated_drift_.size())
            continue;
        double &drift = state.accumulated_drift_[rec.layerIndex];
        if (rec.firstExecution)
            drift = 0.0;
        else
            drift += driftIncrement(rec);
    }
}

} // namespace reuse
