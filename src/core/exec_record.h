/**
 * @file
 * Per-layer execution records produced by the reuse engine.
 *
 * A record captures exactly what one execution of one layer did:
 * how many inputs were checked, how many had changed, and how many
 * MACs were actually performed versus what a from-scratch execution
 * would have needed.  The accelerator simulator (src/sim) converts
 * these records into cycles and memory events, so the timing/energy
 * model is driven by *measured* similarity, never by assumptions.
 */

#ifndef REUSE_DNN_CORE_EXEC_RECORD_H
#define REUSE_DNN_CORE_EXEC_RECORD_H

#include <cstdint>
#include <vector>

#include "nn/layer.h"

namespace reuse {

/** What one execution of one layer did. */
struct LayerExecRecord {
    /** Index of the layer within the network. */
    size_t layerIndex = 0;
    /** Concrete layer type. */
    LayerKind kind = LayerKind::Activation;
    /** True when input quantization / reuse applies to this layer. */
    bool reuseEnabled = false;
    /**
     * True when the layer executed from scratch because there was no
     * buffered previous execution (first frame of a stream, sequence
     * start, or a periodic refresh).
     */
    bool firstExecution = false;
    /**
     * True when this from-scratch execution was forced by the drift
     * guard (accumulated-delta bound or frame-count budget exceeded),
     * as opposed to a stream's natural first frame.
     */
    bool driftRefresh = false;
    /** Inputs quantized and compared against the previous indices. */
    int64_t inputsChecked = 0;
    /** Inputs whose quantized index differed (corrections needed). */
    int64_t inputsChanged = 0;
    /**
     * Inputs whose quantized index moved but stayed within the
     * layer's cluster radius, so the buffered representative was
     * kept instead of emitting a correction (near-match reuse).
     * Zero when the layer runs at radius 0 (exact matching).
     */
    int64_t inputsNearMatched = 0;
    /**
     * Drift-estimate contribution of this execution's near-matches:
     * each suppressed change leaves up to radius quantization steps
     * of input error standing, expressed here relative to the
     * quantizer range so the DriftGuard can fold it into the same
     * accumulated relative-error budget as fp32 rounding.
     */
    double nearMatchDrift = 0.0;
    /** Total inputs consumed by the layer this execution. */
    int64_t inputsTotal = 0;
    /** Output neurons produced. */
    int64_t outputsTotal = 0;
    /** MACs a from-scratch execution would perform. */
    int64_t macsFull = 0;
    /** MACs actually performed (full or corrections). */
    int64_t macsPerformed = 0;
    /**
     * Sequence steps aggregated into this record: 1 for feed-forward
     * layers, the sequence length for recurrent layers.
     */
    int64_t steps = 1;
    /**
     * Kernel edge length for convolutional layers (drives the halo
     * overhead of blocked DRAM streaming); 1 elsewhere.
     */
    int64_t kernelExtent = 1;

    /** Fraction of checked inputs that were unchanged. */
    double similarity() const
    {
        return inputsChecked == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(inputsChanged) /
                               static_cast<double>(inputsChecked);
    }

    /** Fraction of full MACs avoided this execution. */
    double reuseFraction() const
    {
        return macsFull == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(macsPerformed) /
                               static_cast<double>(macsFull);
    }
};

/** Records of one whole-network execution, one entry per layer. */
using ExecutionTrace = std::vector<LayerExecRecord>;

} // namespace reuse

#endif // REUSE_DNN_CORE_EXEC_RECORD_H
