#include "reuse_engine.h"

#include <cstdlib>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "ir/plan_cache.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "obs/trace_recorder.h"

namespace reuse {

namespace {

/**
 * Process-wide default near-match radius: REUSE_CLUSTER_RADIUS
 * applies when the config leaves compileOptions.clusterRadius at 0,
 * so existing call sites can opt streams into near-match reuse
 * without code changes.  Invalid or negative values are ignored
 * with a warning (radius 0 = exact matching).
 */
int32_t
envClusterRadius()
{
    const char *env = std::getenv("REUSE_CLUSTER_RADIUS");
    if (env == nullptr || *env == '\0')
        return 0;
    char *end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 0 || v > (1 << 20)) {
        warn(std::string("REUSE_CLUSTER_RADIUS='") + env +
             "' is not a valid radius; using exact matching");
        return 0;
    }
    return static_cast<int32_t>(v);
}

std::vector<std::string>
layerNames(const Network &network)
{
    std::vector<std::string> names;
    names.reserve(network.layerCount());
    for (size_t i = 0; i < network.layerCount(); ++i)
        names.push_back(network.layer(i).name());
    return names;
}

} // namespace

ReuseEngine::ReuseEngine(const Network &network, QuantizationPlan plan,
                         ReuseEngineConfig config)
    : network_(network),
      plan_(std::move(plan)),
      config_(config),
      drift_guard_(config.refreshPeriod, config.driftBound),
      stats_(layerNames(network))
{
    if (config_.compileOptions.clusterRadius == 0)
        config_.compileOptions.clusterRadius = envClusterRadius();
    // Compile (or fetch from the process-wide cache) the execution
    // schedule.  Compilation subsumes static validation: the shape
    // and safety passes run over the IR before any rewrite, so an
    // engine over an inconsistent network/plan still fails here
    // instead of deep in execution.
    compiled_ = ir::PlanCache::instance().getOrCompile(
        network_, plan_, config_.compileOptions);
    const DiagnosticReport &report = compiled_->report();
    for (const Diagnostic &d : report.diagnostics()) {
        if (d.severity == Severity::Warning)
            warn(d.str());
    }
    if (report.hasErrors()) {
        fatal(network_.name() + ": model validation failed\n" +
              report.str());
    }
    state_ = makeState();
}

ReuseState
ReuseEngine::makeState() const
{
    // State vectors stay sized and indexed by the ORIGINAL layer
    // index, not the step position: traces, drift accounting and the
    // stats collector all speak layer indices.
    ReuseState state;
    state.fc_.resize(network_.layerCount());
    state.conv_.resize(network_.layerCount());
    state.lstm_.resize(network_.layerCount());
    state.uni_lstm_.resize(network_.layerCount());
    for (const ir::PlanStep &step : compiled_->steps()) {
        const size_t li = step.layerIndex;
        const LayerQuantization &lq = step.quant;
        switch (step.mode) {
          case ir::ExecMode::FromScratch:
            break;
          case ir::ExecMode::FcReuse:
            state.fc_[li] = std::make_unique<FcReuseState>(
                static_cast<const FullyConnectedLayer &>(*step.layer),
                *lq.input, step.clusterRadius);
            break;
          case ir::ExecMode::ConvReuse:
            if (step.layer->kind() == LayerKind::Conv2D) {
                state.conv_[li] = std::make_unique<ConvReuseState>(
                    static_cast<const Conv2DLayer &>(*step.layer),
                    step.inShape, *lq.input, step.clusterRadius);
            } else {
                state.conv_[li] = std::make_unique<ConvReuseState>(
                    static_cast<const Conv3DLayer &>(*step.layer),
                    step.inShape, *lq.input, step.clusterRadius);
            }
            break;
          case ir::ExecMode::BiLstmReuse:
            REUSE_ASSERT(lq.recurrent.has_value(),
                         "BiLSTM layer " << step.layer->name()
                             << " needs a recurrent quantizer");
            state.lstm_[li] = std::make_unique<BiLstmReuseState>(
                static_cast<const BiLstmLayer &>(*step.layer),
                *lq.input, *lq.recurrent, step.clusterRadius);
            break;
          case ir::ExecMode::LstmReuse:
            REUSE_ASSERT(lq.recurrent.has_value(),
                         "LSTM layer " << step.layer->name()
                             << " needs a recurrent quantizer");
            state.uni_lstm_[li] =
                std::make_unique<LstmLayerReuseState>(
                    static_cast<const LstmLayer &>(*step.layer),
                    *lq.input, *lq.recurrent, step.clusterRadius);
            break;
        }
    }
    state.accumulated_drift_.assign(network_.layerCount(), 0.0);
    return state;
}

ReuseStatsCollector
ReuseEngine::makeStatsCollector() const
{
    return ReuseStatsCollector(layerNames(network_));
}

void
ReuseEngine::checkState(const ReuseState &state) const
{
    REUSE_ASSERT(state.layerCount() == network_.layerCount(),
                 "ReuseState not created by this engine's makeState()");
}

void
ReuseEngine::resetState()
{
    state_.reset();
}

void
ReuseEngine::recordFromScratch(size_t li, const Shape &in_shape,
                               LayerExecRecord &rec) const
{
    const Layer &layer = network_.layer(li);
    rec.layerIndex = li;
    rec.kind = layer.kind();
    rec.reuseEnabled = false;
    rec.firstExecution = false;
    rec.inputsTotal = in_shape.numel();
    rec.outputsTotal = layer.outputShape(in_shape).numel();
    rec.macsFull = layer.macCount(in_shape);
    rec.macsPerformed = rec.macsFull;
    rec.steps = 1;
    if (layer.kind() == LayerKind::Conv2D) {
        rec.kernelExtent =
            static_cast<const Conv2DLayer &>(layer).kernel();
    } else if (layer.kind() == LayerKind::Conv3D) {
        rec.kernelExtent =
            static_cast<const Conv3DLayer &>(layer).kernel();
    }
}

Tensor
ReuseEngine::executeStep(ReuseState &state, const ir::PlanStep &step,
                         const Tensor &input, LayerExecRecord &rec) const
{
    const size_t li = step.layerIndex;
    rec.layerIndex = li;
    switch (step.mode) {
      case ir::ExecMode::FcReuse:
        return state.fc_[li]->execute(input, rec);
      case ir::ExecMode::ConvReuse:
        return state.conv_[li]->execute(input, rec);
      default:
        recordFromScratch(li, input.shape(), rec);
        return step.layer->forward(input);
    }
}

void
ReuseEngine::runFusedActivation(const ir::PlanStep &step, Tensor &t,
                                ExecutionTrace &trace,
                                uint32_t base_flags) const
{
    const size_t ai = step.fusedActivationIndex;
    LayerExecRecord &rec = trace[ai];
    obs::TraceSpan span(obs::SpanKind::LayerExec,
                        static_cast<int32_t>(ai));
    const auto &act =
        static_cast<const ActivationLayer &>(*step.fusedActivation);
    applyActivation(act.activation(), t);
    // The activation's trace record is exactly what an unfused
    // from-scratch execution would have produced (shape-preserving,
    // zero MACs), so fused and unfused traces are indistinguishable.
    recordFromScratch(ai, t.shape(), rec);
    if (span.active())
        span.args(rec.inputsChecked, rec.inputsChanged, rec.macsFull,
                  rec.macsPerformed, base_flags);
}

Tensor
ReuseEngine::execute(ReuseState &state, const Tensor &input,
                     ExecutionTrace &trace) const
{
    REUSE_ASSERT(!network_.isRecurrent(),
                 "use executeSequence() for recurrent networks");
    checkState(state);
    fault::maybeStall();
    fault::maybeFatal();

    // Outermost scope on this thread decides frame sampling; under
    // the serving runtime the server's scope (which knows the session
    // and frame ids) already decided and this one is a pass-through.
    obs::FrameTraceScope frame_scope(0, obs::kAutoFrame);

    const bool refreshed = drift_guard_.shouldRefresh(state);
    if (refreshed) {
        obs::recordInstant(obs::SpanKind::DriftRefresh, -1,
                           state.executions_since_refresh_);
        state.reset();
    }
    ++state.executions_since_refresh_;

    trace.clear();
    trace.resize(network_.layerCount());
    if (network_.layerCount() == 0)
        return input;
    // Walk the compiled schedule, chaining step outputs through a
    // pointer so the input tensor is never copied: the first step
    // reads `input` directly, later steps read the previous step's
    // output in place.
    const uint32_t refresh_flag =
        refreshed ? obs::kFlagDriftRefresh : 0u;
    const Tensor *current = &input;
    Tensor next;
    for (const ir::PlanStep &step : compiled_->steps()) {
        LayerExecRecord &rec = trace[step.layerIndex];
        {
            obs::TraceSpan span(
                obs::SpanKind::LayerExec,
                static_cast<int32_t>(step.layerIndex));
            next = executeStep(state, step, *current, rec);
            if (span.active()) {
                uint32_t flags = refresh_flag;
                if (rec.firstExecution)
                    flags |= obs::kFlagFirstExecution;
                if (rec.reuseEnabled)
                    flags |= obs::kFlagReuseEnabled;
                span.args(rec.inputsChecked, rec.inputsChanged,
                          rec.macsFull, rec.macsPerformed, flags);
            }
        }
        if (step.fusedActivation != nullptr)
            runFusedActivation(step, next, trace, refresh_flag);
        current = &next;
    }
    if (refreshed) {
        for (LayerExecRecord &rec : trace) {
            if (rec.reuseEnabled && rec.firstExecution)
                rec.driftRefresh = true;
        }
    }
    drift_guard_.accumulate(state, trace);
    return next;
}

Tensor
ReuseEngine::execute(const Tensor &input)
{
    Tensor out = execute(state_, input, last_trace_);
    stats_.addTrace(last_trace_);
    return out;
}

std::vector<Tensor>
ReuseEngine::executeSequence(ReuseState &state,
                             const std::vector<Tensor> &inputs,
                             ExecutionTrace &trace) const
{
    checkState(state);
    fault::maybeStall();
    fault::maybeFatal();

    if (!network_.isRecurrent()) {
        // Feed-forward: the sequence is a stream of frames.
        std::vector<Tensor> outputs;
        outputs.reserve(inputs.size());
        ExecutionTrace combined;
        ExecutionTrace frame_trace;
        for (const Tensor &in : inputs) {
            outputs.push_back(execute(state, in, frame_trace));
            combined.insert(combined.end(), frame_trace.begin(),
                            frame_trace.end());
        }
        trace = std::move(combined);
        return outputs;
    }

    // Recurrent: the whole sequence flows layer-by-layer (Sec. IV-D);
    // each call is a fresh utterance, so reuse state starts clean.
    // For tracing, the utterance counts as one frame.
    obs::FrameTraceScope frame_scope(0, obs::kAutoFrame);
    state.reset();
    trace.clear();
    trace.resize(network_.layerCount());
    std::vector<Tensor> current = inputs;
    for (const ir::PlanStep &step : compiled_->steps()) {
        const size_t li = step.layerIndex;
        LayerExecRecord &rec = trace[li];
        rec.layerIndex = li;
        obs::TraceSpan layer_span(obs::SpanKind::LayerExec,
                                  static_cast<int32_t>(li));
        const Layer &layer = *step.layer;
        if (step.mode == ir::ExecMode::BiLstmReuse) {
            current = state.lstm_[li]->executeSequence(current, rec);
        } else if (step.mode == ir::ExecMode::LstmReuse) {
            current =
                state.uni_lstm_[li]->executeSequence(current, rec);
        } else if (step.mode == ir::ExecMode::FcReuse) {
            // Per-timestep reuse for FC layers inside an RNN: the
            // previous execution is the previous sequence element.
            std::vector<Tensor> outputs;
            outputs.reserve(current.size());
            LayerExecRecord step_rec;
            bool first = true;
            for (const Tensor &in : current) {
                step_rec = LayerExecRecord{};
                outputs.push_back(
                    state.fc_[li]->execute(in, step_rec));
                rec.kind = step_rec.kind;
                rec.reuseEnabled = true;
                rec.firstExecution = first && step_rec.firstExecution;
                rec.inputsChecked += step_rec.inputsChecked;
                rec.inputsChanged += step_rec.inputsChanged;
                rec.inputsTotal += step_rec.inputsTotal;
                rec.outputsTotal += step_rec.outputsTotal;
                rec.macsFull += step_rec.macsFull;
                rec.macsPerformed += step_rec.macsPerformed;
                first = false;
            }
            rec.steps = static_cast<int64_t>(current.size());
            current = std::move(outputs);
        } else {
            // From-scratch layer, applied per sequence element.
            rec.kind = layer.kind();
            rec.reuseEnabled = false;
            rec.firstExecution = false;
            rec.steps = static_cast<int64_t>(current.size());
            std::vector<Tensor> outputs;
            outputs.reserve(current.size());
            for (const Tensor &in : current) {
                rec.inputsTotal += in.numel();
                const int64_t macs = layer.macCount(in.shape());
                rec.macsFull += macs;
                rec.macsPerformed += macs;
                Tensor out = layer.forward(in);
                rec.outputsTotal += out.numel();
                outputs.push_back(std::move(out));
            }
            current = std::move(outputs);
        }
        if (layer_span.active()) {
            uint32_t flags = 0;
            if (rec.firstExecution)
                flags |= obs::kFlagFirstExecution;
            if (rec.reuseEnabled)
                flags |= obs::kFlagReuseEnabled;
            layer_span.args(rec.inputsChecked, rec.inputsChanged,
                            rec.macsFull, rec.macsPerformed, flags);
        }
    }
    return current;
}

std::vector<Tensor>
ReuseEngine::executeSequence(const std::vector<Tensor> &inputs)
{
    if (!network_.isRecurrent()) {
        // Feed-forward: per-frame stats accumulation, as if the caller
        // had invoked execute() frame by frame.
        std::vector<Tensor> outputs;
        outputs.reserve(inputs.size());
        ExecutionTrace combined;
        for (const Tensor &in : inputs) {
            outputs.push_back(execute(in));
            combined.insert(combined.end(), last_trace_.begin(),
                            last_trace_.end());
        }
        last_trace_ = std::move(combined);
        return outputs;
    }

    std::vector<Tensor> outputs =
        executeSequence(state_, inputs, last_trace_);
    stats_.addTrace(last_trace_);
    return outputs;
}

} // namespace reuse
