#include "lstm_reuse.h"

#include "common/checksum.h"
#include "common/logging.h"
#include "fault/fault_injector.h"
#include "kernels/delta_kernels.h"
#include "obs/trace_recorder.h"

namespace reuse {

LstmCellReuseState::LstmCellReuseState(const LstmCell &cell,
                                       LinearQuantizer x_quantizer,
                                       LinearQuantizer h_quantizer,
                                       LayerKind owner_kind,
                                       int32_t cluster_radius)
    : cell_(cell),
      x_quant_(std::move(x_quantizer)),
      h_quant_(std::move(h_quantizer)),
      owner_kind_(owner_kind),
      cluster_radius_(cluster_radius)
{
    // Index buffers are allocated lazily by the first step().
    reset();
}

void
LstmCellReuseState::reset()
{
    has_prev_ = false;
    h_.assign(static_cast<size_t>(cell_.cellDim()), 0.0f);
    c_.assign(static_cast<size_t>(cell_.cellDim()), 0.0f);
}

void
LstmCellReuseState::releaseBuffers()
{
    AlignedVector<int32_t>().swap(prev_x_indices_);
    AlignedVector<int32_t>().swap(prev_h_indices_);
    for (auto &gate : preacts_)
        AlignedVector<float>().swap(gate);
    x_changes_.releaseStorage();
    h_changes_.releaseStorage();
    reset();
}

void
LstmCellReuseState::hashInto(uint64_t &h) const
{
    checksumValue(h, has_prev_);
    if (!has_prev_)
        return;
    checksumVector(h, prev_x_indices_);
    checksumVector(h, prev_h_indices_);
    for (const auto &gate : preacts_)
        checksumVector(h, gate);
    checksumVector(h, h_);
    checksumVector(h, c_);
}

int64_t
LstmCellReuseState::memoryBytes() const
{
    int64_t bytes = static_cast<int64_t>(
        prev_x_indices_.capacity() * sizeof(int32_t) +
        prev_h_indices_.capacity() * sizeof(int32_t) +
        (h_.capacity() + c_.capacity()) * sizeof(float));
    for (const auto &gate : preacts_)
        bytes += static_cast<int64_t>(gate.capacity() * sizeof(float));
    return bytes;
}

AlignedVector<float>
LstmCellReuseState::step(const AlignedVector<float> &x,
                         LayerExecRecord &rec)
{
    REUSE_ASSERT(static_cast<int64_t>(x.size()) == cell_.inputDim(),
                 "LSTM reuse x size mismatch");
    const int64_t in_dim = cell_.inputDim();
    const int64_t cell_dim = cell_.cellDim();
    const int64_t full_macs = cell_.macCountPerStep();

    rec.macsFull += full_macs;
    rec.inputsTotal += in_dim + cell_dim;
    rec.outputsTotal += NumLstmGates * cell_dim;

    if (!has_prev_) {
        // Sequence start: quantize x and the (zero) initial h, and
        // compute the gate pre-activations from scratch on centroids.
        // Buffers may have been released by an eviction.
        prev_x_indices_.resize(static_cast<size_t>(in_dim));
        prev_h_indices_.resize(static_cast<size_t>(cell_dim));
        AlignedVector<float> qx(static_cast<size_t>(in_dim));
        kernels::quantizeWithIndices(x.data(), in_dim,
                                     x_quant_.scanParams(),
                                     prev_x_indices_.data(), qx.data());
        AlignedVector<float> qh(static_cast<size_t>(cell_dim));
        kernels::quantizeWithIndices(h_.data(), cell_dim,
                                     h_quant_.scanParams(),
                                     prev_h_indices_.data(), qh.data());
        preacts_ = cell_.computePreacts(qx, qh);
        has_prev_ = true;
        rec.macsPerformed += full_macs;
    } else {
        // Steady state: one comparison per input.  Each change list
        // is scanned once and then applied to all four gates (the
        // gates share their inputs; Sec. IV-D), one gate matrix at a
        // time so each blocked sweep streams a single weight matrix.
        rec.inputsChecked += in_dim + cell_dim;
        kernels::QuantScanParams x_scan = x_quant_.scanParams();
        x_scan.radius = cluster_radius_;
        fault::perturbScanParams(owner_kind_, x_scan);
        fault::corruptIndices(owner_kind_, prev_x_indices_.data(),
                              in_dim);
        if (!preacts_[0].empty()) {
            fault::corruptFloats(
                owner_kind_, preacts_[0].data(),
                static_cast<int64_t>(preacts_[0].size()));
        }
        kernels::ScanResult scanned_x;
        {
            obs::TraceSpan span(obs::SpanKind::LayerScan);
            scanned_x = kernels::scanChanges(x.data(), in_dim, x_scan,
                                             prev_x_indices_.data(),
                                             x_changes_);
            span.args(in_dim, scanned_x.changed);
        }
        fault::truncateChanges(owner_kind_, x_changes_);
        if (!x_changes_.empty()) {
            obs::TraceSpan span(obs::SpanKind::LayerApply);
            span.args(static_cast<int64_t>(x_changes_.size()),
                      NumLstmGates * cell_dim);
            for (int g = 0; g < NumLstmGates; ++g) {
                kernels::applyDeltas(
                    x_changes_,
                    cell_.feedForward(g).weights().data(), cell_dim,
                    preacts_[static_cast<size_t>(g)].data());
            }
        }
        kernels::QuantScanParams h_scan = h_quant_.scanParams();
        h_scan.radius = cluster_radius_;
        kernels::ScanResult scanned_h;
        {
            obs::TraceSpan span(obs::SpanKind::LayerScan);
            scanned_h = kernels::scanChanges(h_.data(), cell_dim,
                                             h_scan,
                                             prev_h_indices_.data(),
                                             h_changes_);
            span.args(cell_dim, scanned_h.changed);
        }
        if (scanned_h.changed > 0) {
            obs::TraceSpan span(obs::SpanKind::LayerApply);
            span.args(static_cast<int64_t>(h_changes_.size()),
                      NumLstmGates * cell_dim);
            for (int g = 0; g < NumLstmGates; ++g) {
                kernels::applyDeltas(
                    h_changes_, cell_.recurrent(g).weights().data(),
                    cell_dim,
                    preacts_[static_cast<size_t>(g)].data());
            }
        }
        rec.inputsChanged += scanned_x.changed + scanned_h.changed;
        rec.inputsNearMatched +=
            scanned_x.near_matched + scanned_h.near_matched;
        rec.nearMatchDrift +=
            kernels::nearMatchDriftShare(x_scan,
                                         scanned_x.near_matched) +
            kernels::nearMatchDriftShare(h_scan,
                                         scanned_h.near_matched);
        rec.macsPerformed += (scanned_x.changed + scanned_h.changed) *
                             NumLstmGates * cell_dim;
    }

    // Elementwise tail (Eqs. 7-8) is always computed.
    LstmCell::State next = cell_.finishStep(preacts_, c_);
    h_ = next.h;
    c_ = std::move(next.c);
    return h_;
}

LstmLayerReuseState::LstmLayerReuseState(const LstmLayer &layer,
                                         LinearQuantizer x_quantizer,
                                         LinearQuantizer h_quantizer,
                                         int32_t cluster_radius)
    : layer_(layer),
      cell_(layer.cell(), std::move(x_quantizer),
            std::move(h_quantizer), LayerKind::Lstm, cluster_radius)
{
}

void
LstmLayerReuseState::reset()
{
    cell_.reset();
}

std::vector<Tensor>
LstmLayerReuseState::executeSequence(const std::vector<Tensor> &inputs,
                                     LayerExecRecord &rec)
{
    const int64_t cell_dim = layer_.cellDim();
    std::vector<Tensor> outputs;
    outputs.reserve(inputs.size());

    rec.kind = LayerKind::Lstm;
    rec.reuseEnabled = true;
    rec.steps = static_cast<int64_t>(inputs.size());
    rec.firstExecution = (inputs.size() <= 1);

    for (const Tensor &in : inputs) {
        const AlignedVector<float> h = cell_.step(in.data(), rec);
        Tensor out(Shape({cell_dim}));
        for (int64_t j = 0; j < cell_dim; ++j)
            out[j] = h[static_cast<size_t>(j)];
        outputs.push_back(std::move(out));
    }
    return outputs;
}

BiLstmReuseState::BiLstmReuseState(const BiLstmLayer &layer,
                                   LinearQuantizer x_quantizer,
                                   LinearQuantizer h_quantizer,
                                   int32_t cluster_radius)
    : layer_(layer),
      forward_(layer.forwardCell(), x_quantizer, h_quantizer,
               LayerKind::BiLstm, cluster_radius),
      backward_(layer.backwardCell(), x_quantizer, h_quantizer,
                LayerKind::BiLstm, cluster_radius)
{
}

void
BiLstmReuseState::reset()
{
    forward_.reset();
    backward_.reset();
}

std::vector<Tensor>
BiLstmReuseState::executeSequence(const std::vector<Tensor> &inputs,
                                  LayerExecRecord &rec)
{
    const size_t t_len = inputs.size();
    const int64_t cell_dim = layer_.cellDim();
    std::vector<Tensor> outputs(t_len,
                                Tensor(Shape({layer_.outputDim()})));

    rec.kind = LayerKind::BiLstm;
    rec.reuseEnabled = true;
    rec.steps = static_cast<int64_t>(t_len);
    // The first timestep of each direction is a from-scratch
    // execution; per-record bookkeeping marks the record as a
    // steady-state one because subsequent steps dominate, and the
    // from-scratch share is visible via macsPerformed.
    rec.firstExecution = (t_len <= 1);

    for (size_t t = 0; t < t_len; ++t) {
        const AlignedVector<float> h =
            forward_.step(inputs[t].data(), rec);
        for (int64_t j = 0; j < cell_dim; ++j)
            outputs[t][j] = h[static_cast<size_t>(j)];
    }
    for (size_t t = t_len; t-- > 0;) {
        const AlignedVector<float> h =
            backward_.step(inputs[t].data(), rec);
        for (int64_t j = 0; j < cell_dim; ++j)
            outputs[t][cell_dim + j] = h[static_cast<size_t>(j)];
    }
    return outputs;
}

} // namespace reuse
