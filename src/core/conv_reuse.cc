#include "conv_reuse.h"

#include <cstring>

#include "common/checksum.h"
#include "common/logging.h"
#include "fault/fault_injector.h"
#include "kernels/delta_kernels.h"
#include "obs/trace_recorder.h"

namespace reuse {

ConvReuseState::ConvReuseState(const Conv2DLayer &layer,
                               Shape input_shape,
                               LinearQuantizer quantizer,
                               int32_t cluster_radius)
    : conv2d_(&layer),
      input_shape_(std::move(input_shape)),
      quantizer_(std::move(quantizer)),
      cluster_radius_(cluster_radius)
{
    // Buffers are allocated lazily by the first execute(): a state
    // that never runs (or was evicted) holds no memory.
}

ConvReuseState::ConvReuseState(const Conv3DLayer &layer,
                               Shape input_shape,
                               LinearQuantizer quantizer,
                               int32_t cluster_radius)
    : conv3d_(&layer),
      input_shape_(std::move(input_shape)),
      quantizer_(std::move(quantizer)),
      cluster_radius_(cluster_radius)
{
}

void
ConvReuseState::releaseBuffers()
{
    has_prev_ = false;
    AlignedVector<int32_t>().swap(prev_indices_);
    prev_output_ = Tensor();
    changes_.releaseStorage();
}

void
ConvReuseState::hashInto(uint64_t &h) const
{
    checksumValue(h, has_prev_);
    if (!has_prev_)
        return;
    checksumVector(h, prev_indices_);
    checksumValue(h, prev_output_.numel());
    checksumBytes(h, prev_output_.data().data(),
                  static_cast<size_t>(prev_output_.numel()) *
                      sizeof(float));
}

bool
ConvReuseState::debugCorruptBuffer(uint64_t seed)
{
    if (!has_prev_ || prev_output_.numel() <= 0)
        return false;
    float *data = prev_output_.data().data();
    const size_t victim =
        seed % static_cast<size_t>(prev_output_.numel());
    const uint32_t bit = static_cast<uint32_t>((seed >> 16) % 23);
    uint32_t raw = 0;
    std::memcpy(&raw, &data[victim], sizeof(raw));
    raw ^= (1u << bit);
    std::memcpy(&data[victim], &raw, sizeof(raw));
    return true;
}

int64_t
ConvReuseState::memoryBytes() const
{
    // Change-list scratch excluded: transient per-frame storage the
    // static footprint estimator (analysis/) mirrors exactly.
    return static_cast<int64_t>(prev_indices_.capacity() *
                                sizeof(int32_t)) +
           (prev_output_.numel() > 1
                ? prev_output_.numel() *
                      static_cast<int64_t>(sizeof(float))
                : 0);
}

Tensor
ConvReuseState::execute(const Tensor &input, LayerExecRecord &rec)
{
    REUSE_ASSERT(input.shape() == input_shape_,
                 "conv reuse input shape mismatch: " << input.shape().str()
                     << " vs " << input_shape_.str());
    if (conv2d_ != nullptr)
        return executeConv2d(input, rec);
    return executeConv3d(input, rec);
}

bool
ConvReuseState::firstExecution(const Tensor &input, LayerExecRecord &rec,
                               const Layer &layer)
{
    if (has_prev_)
        return false;
    obs::TraceSpan span(obs::SpanKind::FirstExec);
    span.args(0, 0, rec.macsFull, rec.macsFull,
              obs::kFlagFirstExecution | obs::kFlagReuseEnabled);
    const int64_t n = input.numel();
    prev_indices_.resize(static_cast<size_t>(n));
    Tensor quantized(input.shape());
    kernels::quantizeWithIndices(input.data().data(), n,
                                 quantizer_.scanParams(),
                                 prev_indices_.data(),
                                 quantized.data().data());
    prev_output_ = layer.forward(quantized);
    has_prev_ = true;
    rec.firstExecution = true;
    rec.macsPerformed = rec.macsFull;
    return true;
}

Tensor
ConvReuseState::executeConv2d(const Tensor &input, LayerExecRecord &rec)
{
    const Conv2DLayer &layer = *conv2d_;
    const int64_t n = input.numel();
    const int64_t h = input_shape_.dim(1);
    const int64_t w = input_shape_.dim(2);
    const Shape out_shape = layer.outputShape(input_shape_);

    rec.kind = LayerKind::Conv2D;
    rec.kernelExtent = layer.kernel();
    rec.reuseEnabled = true;
    rec.inputsTotal = n;
    rec.outputsTotal = out_shape.numel();
    rec.macsFull = layer.macCount(input_shape_);
    rec.steps = 1;

    if (firstExecution(input, rec, layer))
        return prev_output_;

    rec.firstExecution = false;
    rec.inputsChecked = n;
    kernels::QuantScanParams scan = quantizer_.scanParams();
    scan.radius = cluster_radius_;
    fault::perturbScanParams(LayerKind::Conv2D, scan);
    fault::corruptIndices(LayerKind::Conv2D, prev_indices_.data(), n);
    fault::corruptFloats(LayerKind::Conv2D,
                         prev_output_.data().data(),
                         prev_output_.numel());
    kernels::ScanResult scanned;
    {
        obs::TraceSpan span(obs::SpanKind::LayerScan);
        scanned = kernels::scanChanges(input.data().data(), n, scan,
                                       prev_indices_.data(), changes_);
        span.args(n, scanned.changed);
    }
    fault::truncateChanges(LayerKind::Conv2D, changes_);
    int64_t macs = 0;
    if (!changes_.empty()) {
        obs::TraceSpan span(obs::SpanKind::LayerApply);
        span.args(static_cast<int64_t>(changes_.size()),
                  rec.outputsTotal);
        kernels::Conv2dGeometry geom;
        geom.in_h = h;
        geom.in_w = w;
        geom.out_channels = layer.outChannels();
        geom.out_h = out_shape.dim(1);
        geom.out_w = out_shape.dim(2);
        geom.kernel = layer.kernel();
        geom.stride = layer.stride();
        kernels::applyConvDeltas2d(changes_, geom,
                                   layer.weights().data(),
                                   prev_output_.data().data());
        for (size_t c = 0; c < changes_.size(); ++c) {
            const int32_t i = changes_.position(c);
            macs += layer.affectedOutputs(input_shape_, (i / w) % h,
                                          i % w);
        }
    }
    rec.inputsChanged = scanned.changed;
    rec.inputsNearMatched = scanned.near_matched;
    rec.nearMatchDrift =
        kernels::nearMatchDriftShare(scan, scanned.near_matched);
    rec.macsPerformed = macs;
    return prev_output_;
}

Tensor
ConvReuseState::executeConv3d(const Tensor &input, LayerExecRecord &rec)
{
    const Conv3DLayer &layer = *conv3d_;
    const int64_t n = input.numel();
    const int64_t d = input_shape_.dim(1);
    const int64_t h = input_shape_.dim(2);
    const int64_t w = input_shape_.dim(3);
    const Shape out_shape = layer.outputShape(input_shape_);

    rec.kind = LayerKind::Conv3D;
    rec.kernelExtent = layer.kernel();
    rec.reuseEnabled = true;
    rec.inputsTotal = n;
    rec.outputsTotal = out_shape.numel();
    rec.macsFull = layer.macCount(input_shape_);
    rec.steps = 1;

    if (firstExecution(input, rec, layer))
        return prev_output_;

    rec.firstExecution = false;
    rec.inputsChecked = n;
    kernels::QuantScanParams scan = quantizer_.scanParams();
    scan.radius = cluster_radius_;
    fault::perturbScanParams(LayerKind::Conv3D, scan);
    fault::corruptIndices(LayerKind::Conv3D, prev_indices_.data(), n);
    fault::corruptFloats(LayerKind::Conv3D,
                         prev_output_.data().data(),
                         prev_output_.numel());
    kernels::ScanResult scanned;
    {
        obs::TraceSpan span(obs::SpanKind::LayerScan);
        scanned = kernels::scanChanges(input.data().data(), n, scan,
                                       prev_indices_.data(), changes_);
        span.args(n, scanned.changed);
    }
    fault::truncateChanges(LayerKind::Conv3D, changes_);
    int64_t macs = 0;
    if (!changes_.empty()) {
        obs::TraceSpan span(obs::SpanKind::LayerApply);
        span.args(static_cast<int64_t>(changes_.size()),
                  rec.outputsTotal);
        kernels::Conv3dGeometry geom;
        geom.in_d = d;
        geom.in_h = h;
        geom.in_w = w;
        geom.out_channels = layer.outChannels();
        geom.out_d = out_shape.dim(1);
        geom.out_h = out_shape.dim(2);
        geom.out_w = out_shape.dim(3);
        geom.kernel = layer.kernel();
        geom.pad = layer.pad();
        kernels::applyConvDeltas3d(changes_, geom,
                                   layer.weights().data(),
                                   prev_output_.data().data());
        for (size_t c = 0; c < changes_.size(); ++c) {
            const int32_t i = changes_.position(c);
            macs += layer.affectedOutputs(input_shape_,
                                          (i / (h * w)) % d,
                                          (i / w) % h, i % w);
        }
    }
    rec.inputsChanged = scanned.changed;
    rec.inputsNearMatched = scanned.near_matched;
    rec.nearMatchDrift =
        kernels::nearMatchDriftShare(scan, scanned.near_matched);
    rec.macsPerformed = macs;
    return prev_output_;
}

} // namespace reuse
