#include "conv_reuse.h"

#include "common/logging.h"

namespace reuse {

ConvReuseState::ConvReuseState(const Conv2DLayer &layer,
                               Shape input_shape,
                               LinearQuantizer quantizer)
    : conv2d_(&layer),
      input_shape_(std::move(input_shape)),
      quantizer_(std::move(quantizer))
{
    // Buffers are allocated lazily by the first execute(): a state
    // that never runs (or was evicted) holds no memory.
}

ConvReuseState::ConvReuseState(const Conv3DLayer &layer,
                               Shape input_shape,
                               LinearQuantizer quantizer)
    : conv3d_(&layer),
      input_shape_(std::move(input_shape)),
      quantizer_(std::move(quantizer))
{
}

void
ConvReuseState::releaseBuffers()
{
    has_prev_ = false;
    std::vector<int32_t>().swap(prev_indices_);
    prev_output_ = Tensor();
}

int64_t
ConvReuseState::memoryBytes() const
{
    return static_cast<int64_t>(prev_indices_.capacity() *
                                sizeof(int32_t)) +
           (prev_output_.numel() > 1
                ? prev_output_.numel() *
                      static_cast<int64_t>(sizeof(float))
                : 0);
}

Tensor
ConvReuseState::execute(const Tensor &input, LayerExecRecord &rec)
{
    REUSE_ASSERT(input.shape() == input_shape_,
                 "conv reuse input shape mismatch: " << input.shape().str()
                     << " vs " << input_shape_.str());
    if (conv2d_ != nullptr)
        return executeConv2d(input, rec);
    return executeConv3d(input, rec);
}

Tensor
ConvReuseState::executeConv2d(const Tensor &input, LayerExecRecord &rec)
{
    const Conv2DLayer &layer = *conv2d_;
    const int64_t n = input.numel();
    const int64_t h = input_shape_.dim(1);
    const int64_t w = input_shape_.dim(2);

    rec.kind = LayerKind::Conv2D;
    rec.kernelExtent = layer.kernel();
    rec.reuseEnabled = true;
    rec.inputsTotal = n;
    rec.outputsTotal = layer.outputShape(input_shape_).numel();
    rec.macsFull = layer.macCount(input_shape_);
    rec.steps = 1;

    if (!has_prev_) {
        prev_indices_.resize(static_cast<size_t>(n));
        Tensor quantized(input.shape());
        for (int64_t i = 0; i < n; ++i) {
            const int32_t idx = quantizer_.index(input[i]);
            prev_indices_[static_cast<size_t>(i)] = idx;
            quantized[i] = quantizer_.centroid(idx);
        }
        prev_output_ = layer.forward(quantized);
        has_prev_ = true;
        rec.firstExecution = true;
        rec.macsPerformed = rec.macsFull;
        return prev_output_;
    }

    rec.firstExecution = false;
    rec.inputsChecked = n;
    int64_t changed = 0;
    int64_t macs = 0;
    for (int64_t i = 0; i < n; ++i) {
        const int32_t idx = quantizer_.index(input[i]);
        const int32_t prev = prev_indices_[static_cast<size_t>(i)];
        if (idx == prev)
            continue;
        const float delta =
            quantizer_.centroid(idx) - quantizer_.centroid(prev);
        const int64_t ci = i / (h * w);
        const int64_t y = (i / w) % h;
        const int64_t x = i % w;
        layer.applyDelta(input_shape_, ci, y, x, delta, prev_output_);
        macs += layer.affectedOutputs(input_shape_, y, x);
        prev_indices_[static_cast<size_t>(i)] = idx;
        ++changed;
    }
    rec.inputsChanged = changed;
    rec.macsPerformed = macs;
    return prev_output_;
}

Tensor
ConvReuseState::executeConv3d(const Tensor &input, LayerExecRecord &rec)
{
    const Conv3DLayer &layer = *conv3d_;
    const int64_t n = input.numel();
    const int64_t d = input_shape_.dim(1);
    const int64_t h = input_shape_.dim(2);
    const int64_t w = input_shape_.dim(3);

    rec.kind = LayerKind::Conv3D;
    rec.kernelExtent = layer.kernel();
    rec.reuseEnabled = true;
    rec.inputsTotal = n;
    rec.outputsTotal = layer.outputShape(input_shape_).numel();
    rec.macsFull = layer.macCount(input_shape_);
    rec.steps = 1;

    if (!has_prev_) {
        prev_indices_.resize(static_cast<size_t>(n));
        Tensor quantized(input.shape());
        for (int64_t i = 0; i < n; ++i) {
            const int32_t idx = quantizer_.index(input[i]);
            prev_indices_[static_cast<size_t>(i)] = idx;
            quantized[i] = quantizer_.centroid(idx);
        }
        prev_output_ = layer.forward(quantized);
        has_prev_ = true;
        rec.firstExecution = true;
        rec.macsPerformed = rec.macsFull;
        return prev_output_;
    }

    rec.firstExecution = false;
    rec.inputsChecked = n;
    int64_t changed = 0;
    int64_t macs = 0;
    for (int64_t i = 0; i < n; ++i) {
        const int32_t idx = quantizer_.index(input[i]);
        const int32_t prev = prev_indices_[static_cast<size_t>(i)];
        if (idx == prev)
            continue;
        const float delta =
            quantizer_.centroid(idx) - quantizer_.centroid(prev);
        const int64_t ci = i / (d * h * w);
        const int64_t z = (i / (h * w)) % d;
        const int64_t y = (i / w) % h;
        const int64_t x = i % w;
        layer.applyDelta(input_shape_, ci, z, y, x, delta,
                         prev_output_);
        macs += layer.affectedOutputs(input_shape_, z, y, x);
        prev_indices_[static_cast<size_t>(i)] = idx;
        ++changed;
    }
    rec.inputsChanged = changed;
    rec.macsPerformed = macs;
    return prev_output_;
}

} // namespace reuse
