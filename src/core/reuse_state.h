/**
 * @file
 * Per-stream reuse state, factored out of the reuse engine so that
 * many concurrent streams (serving sessions) can share one immutable
 * engine.  A ReuseState owns every buffer the paper's technique needs
 * to carry between consecutive executions of one input stream: the
 * previous quantized input indices and previous outputs of every
 * enabled layer, plus the refresh counter.
 */

#ifndef REUSE_DNN_CORE_REUSE_STATE_H
#define REUSE_DNN_CORE_REUSE_STATE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/conv_reuse.h"
#include "core/fc_reuse.h"
#include "core/lstm_reuse.h"

namespace reuse {

/**
 * The mutable, per-stream half of reuse-based inference.
 *
 * Created by ReuseEngine::makeState(); one instance per concurrent
 * input stream.  Movable (hand a session its state), cloneable (fork
 * a warmed stream), and evictable: releaseBuffers() frees the buffer
 * memory so a serving runtime can reclaim it under a budget, after
 * which the next execution simply runs from scratch and re-warms.
 *
 * A default-constructed ReuseState is empty and only valid for an
 * engine whose network it was sized for via ReuseEngine::makeState().
 */
class ReuseState
{
  public:
    ReuseState() = default;
    ReuseState(ReuseState &&) = default;
    ReuseState &operator=(ReuseState &&) = default;
    ReuseState(const ReuseState &) = delete;
    ReuseState &operator=(const ReuseState &) = delete;

    /** Deep copy (buffers and history included). */
    ReuseState clone() const;

    /**
     * Drops all buffered history (stream boundary / refresh); buffer
     * storage stays allocated for the next frame.
     */
    void reset();

    /**
     * Drops all buffered history AND frees the buffer storage
     * (session eviction).  The stream degrades to a from-scratch
     * execution on its next frame and re-warms automatically.
     */
    void releaseBuffers();

    /** Bytes currently held by all per-layer reuse buffers. */
    int64_t memoryBytes() const;

    /** True when any layer has a buffered previous execution. */
    bool warm() const;

    /** Number of layers this state was sized for (0 when empty). */
    size_t layerCount() const { return fc_.size(); }

    /** Executions since the last refresh/reset (drift control). */
    int64_t executionsSinceRefresh() const
    {
        return executions_since_refresh_;
    }

    /**
     * Per-layer accumulated drift estimate (incremental MACs since
     * the layer's last from-scratch execution, times FLT_EPSILON);
     * maintained by the engine's DriftGuard, empty when the engine
     * has no drift bound configured.
     */
    const std::vector<double> &accumulatedDrift() const
    {
        return accumulated_drift_;
    }

    /**
     * Order-stable FNV-1a checksum over every buffered byte this
     * state carries between frames (previous indices, previous
     * outputs / pre-activations, counters).  The serving runtime
     * validates it on dequeue to detect between-frame corruption.
     */
    uint64_t checksum() const;

    /**
     * Testing hook (active only when the build compiles fault
     * injection in): flips one seed-selected mantissa bit in the
     * first warm layer's buffered outputs, simulating between-frame
     * state corruption.  Returns false when nothing is warm or the
     * hooks are compiled out.
     */
    bool debugCorruptBuffer(uint64_t seed);

  private:
    friend class ReuseEngine;
    friend class DriftGuard;

    // Index aligned with network layers; null where reuse is disabled
    // or the layer kind does not match.
    std::vector<std::unique_ptr<FcReuseState>> fc_;
    std::vector<std::unique_ptr<ConvReuseState>> conv_;
    std::vector<std::unique_ptr<BiLstmReuseState>> lstm_;
    std::vector<std::unique_ptr<LstmLayerReuseState>> uni_lstm_;

    int64_t executions_since_refresh_ = 0;
    /** Per-layer drift accumulators (see accumulatedDrift()). */
    std::vector<double> accumulated_drift_;
};

} // namespace reuse

#endif // REUSE_DNN_CORE_REUSE_STATE_H
