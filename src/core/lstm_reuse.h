/**
 * @file
 * Incremental (reuse-based) execution of bidirectional LSTM layers
 * (Sec. IV-D of the paper).
 *
 * Recurrent layers run back-to-back over every element of the input
 * sequence, so "the previous execution" is the previous timestep of
 * the same cell.  Both the feed-forward input x_t and the recurrent
 * input h_{t-1} are quantized and compared to the values of the
 * previous step; corrections update the buffered gate pre-activations
 * of all four gates at once, since the gates share their inputs.
 */

#ifndef REUSE_DNN_CORE_LSTM_REUSE_H
#define REUSE_DNN_CORE_LSTM_REUSE_H

#include <vector>

#include "common/aligned.h"
#include "core/exec_record.h"
#include "kernels/change_list.h"
#include "nn/lstm.h"
#include "quant/linear_quantizer.h"

namespace reuse {

/**
 * Reuse state for one LSTM cell direction.
 *
 * The state persists across the timesteps of one sequence and is
 * reset at sequence boundaries (the accelerator is power gated
 * between utterances; Sec. IV-A).
 */
class LstmCellReuseState
{
  public:
    /**
     * @param cell The LSTM cell; must outlive this state.
     * @param x_quantizer Quantizer for feed-forward inputs.
     * @param h_quantizer Quantizer for recurrent inputs.
     * @param owner_kind Layer kind of the owning layer, used to
     *        target fault-injection at uni- vs bidirectional LSTMs.
     */
    LstmCellReuseState(const LstmCell &cell, LinearQuantizer x_quantizer,
                       LinearQuantizer h_quantizer,
                       LayerKind owner_kind = LayerKind::BiLstm,
                       int32_t cluster_radius = 0);

    /**
     * Advances the cell one timestep with reuse.  Accumulates what
     * happened into `rec` (so the caller can aggregate steps and
     * directions into a single layer record).  Returns h_t.
     */
    AlignedVector<float> step(const AlignedVector<float> &x,
                              LayerExecRecord &rec);

    /** Resets to the initial (h=0, c=0, no history) state. */
    void reset();

    /** reset() + frees index/pre-activation storage (eviction). */
    void releaseBuffers();

    /** Bytes currently held by the buffered indices/pre-activations. */
    int64_t memoryBytes() const;

    /** Folds the buffered step state into checksum state `h`. */
    void hashInto(uint64_t &h) const;

  private:
    const LstmCell &cell_;
    LinearQuantizer x_quant_;
    LinearQuantizer h_quant_;
    LayerKind owner_kind_;
    int32_t cluster_radius_ = 0;
    bool has_prev_ = false;
    AlignedVector<int32_t> prev_x_indices_;
    AlignedVector<int32_t> prev_h_indices_;
    LstmCell::Preacts preacts_;
    AlignedVector<float> h_;
    AlignedVector<float> c_;
    /** Per-step (position, delta) scratch, reused across steps. */
    kernels::ChangeList x_changes_;
    kernels::ChangeList h_changes_;
};

/**
 * Reuse state for a unidirectional LSTM layer: a single cell advanced
 * forward over the sequence, emitting one aggregated LayerExecRecord.
 */
class LstmLayerReuseState
{
  public:
    LstmLayerReuseState(const LstmLayer &layer,
                        LinearQuantizer x_quantizer,
                        LinearQuantizer h_quantizer,
                        int32_t cluster_radius = 0);

    /** Processes a whole sequence with reuse across timesteps. */
    std::vector<Tensor> executeSequence(const std::vector<Tensor> &inputs,
                                        LayerExecRecord &rec);

    /** Resets the cell (sequence boundary). */
    void reset();

    /** reset() + frees buffer storage (eviction). */
    void releaseBuffers() { cell_.releaseBuffers(); }

    /** Bytes currently held by the cell's reuse buffers. */
    int64_t memoryBytes() const { return cell_.memoryBytes(); }

    /** Folds the cell's buffered state into checksum state `h`. */
    void hashInto(uint64_t &h) const { cell_.hashInto(h); }

  private:
    const LstmLayer &layer_;
    LstmCellReuseState cell_;
};

/**
 * Reuse state for a bidirectional LSTM layer: one cell state per
 * direction; executeSequence() runs both directions over the sequence
 * and emits one aggregated LayerExecRecord.
 */
class BiLstmReuseState
{
  public:
    BiLstmReuseState(const BiLstmLayer &layer, LinearQuantizer x_quantizer,
                     LinearQuantizer h_quantizer,
                     int32_t cluster_radius = 0);

    /**
     * Processes a whole sequence with reuse across timesteps; fills
     * `rec` with totals aggregated over steps, directions and gates.
     */
    std::vector<Tensor> executeSequence(const std::vector<Tensor> &inputs,
                                        LayerExecRecord &rec);

    /** Resets both directions (sequence boundary). */
    void reset();

    /** reset() + frees buffer storage in both directions (eviction). */
    void releaseBuffers()
    {
        forward_.releaseBuffers();
        backward_.releaseBuffers();
    }

    /** Bytes currently held by both directions' reuse buffers. */
    int64_t memoryBytes() const
    {
        return forward_.memoryBytes() + backward_.memoryBytes();
    }

    /** Folds both directions' buffered state into checksum state. */
    void hashInto(uint64_t &h) const
    {
        forward_.hashInto(h);
        backward_.hashInto(h);
    }

  private:
    const BiLstmLayer &layer_;
    LstmCellReuseState forward_;
    LstmCellReuseState backward_;
};

} // namespace reuse

#endif // REUSE_DNN_CORE_LSTM_REUSE_H
