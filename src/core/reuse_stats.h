/**
 * @file
 * Aggregation of execution records into the paper's two headline
 * metrics: input similarity and degree of computation reuse
 * (Sec. III), per layer and network-wide.
 */

#ifndef REUSE_DNN_CORE_REUSE_STATS_H
#define REUSE_DNN_CORE_REUSE_STATS_H

#include <string>
#include <vector>

#include "core/exec_record.h"

namespace reuse {

/** Accumulated reuse metrics of one layer. */
struct LayerReuseStats {
    std::string layerName;
    LayerKind kind = LayerKind::Activation;
    bool reuseEnabled = false;

    /** Executions aggregated (excluding first/refresh executions). */
    int64_t executions = 0;
    /** First/refresh (from-scratch) executions seen. */
    int64_t firstExecutions = 0;
    /** Subset of firstExecutions forced by the DriftGuard. */
    int64_t driftRefreshes = 0;

    int64_t inputsChecked = 0;
    int64_t inputsChanged = 0;
    /** Sub-radius index moves absorbed by near-match reuse. */
    int64_t inputsNearMatched = 0;
    int64_t macsFull = 0;
    int64_t macsPerformed = 0;
    /** Full MACs including first executions (for whole-net shares). */
    int64_t macsFullAll = 0;
    /** Performed MACs including first executions. */
    int64_t macsPerformedAll = 0;

    /** Input similarity: unchanged / checked (steady-state only). */
    double similarity() const
    {
        return inputsChecked == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(inputsChanged) /
                               static_cast<double>(inputsChecked);
    }

    /**
     * Fraction of checked inputs whose change was absorbed by the
     * cluster radius (zero at radius 0): the extra similarity
     * near-match reuse buys on top of exact matching.
     */
    double nearMatchRate() const
    {
        return inputsChecked == 0
                   ? 0.0
                   : static_cast<double>(inputsNearMatched) /
                         static_cast<double>(inputsChecked);
    }

    /** Computation reuse: avoided / full MACs (steady-state only). */
    double computationReuse() const
    {
        return macsFull == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(macsPerformed) /
                               static_cast<double>(macsFull);
    }
};

/**
 * Collects execution traces and reduces them to per-layer and
 * network-level similarity/reuse numbers.
 *
 * Steady-state metrics exclude first executions: the paper defines
 * similarity with respect to "the previous execution", which does not
 * exist for the first frame.
 */
class ReuseStatsCollector
{
  public:
    /** Prepares slots for `layer_names.size()` layers. */
    explicit ReuseStatsCollector(
        std::vector<std::string> layer_names = {});

    /** Ingests one whole-network execution trace. */
    void addTrace(const ExecutionTrace &trace);

    /** Per-layer accumulated stats. */
    const std::vector<LayerReuseStats> &layers() const { return layers_; }

    /**
     * Unweighted mean input similarity over reuse-enabled layers,
     * matching how Fig. 5 summarizes per-layer numbers.
     */
    double meanSimilarity() const;

    /** Unweighted mean computation reuse over reuse-enabled layers. */
    double meanComputationReuse() const;

    /**
     * MAC-weighted computation reuse over the *whole* network
     * (disabled layers contribute zero reuse), i.e. the fraction of
     * all steady-state network MACs avoided.
     */
    double networkComputationReuse() const;

    /** Resets all accumulated numbers. */
    void reset();

  private:
    std::vector<LayerReuseStats> layers_;
};

} // namespace reuse

#endif // REUSE_DNN_CORE_REUSE_STATS_H
