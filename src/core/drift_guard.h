/**
 * @file
 * Accumulated-delta drift guard for incremental (Eq. 10) execution.
 *
 * Every incremental correction z' = z + (c' - c) * W rounds once in
 * fp32, and the buffered output carries the rounded value into the
 * next frame — so the deviation from a from-scratch execution on the
 * same quantized inputs grows with the number of incremental MACs
 * applied since the last full recompute.  Per correction MAC the
 * rounding error is bounded by eps * |z| (eps = FLT_EPSILON), giving
 * the accumulated relative bound
 *
 *     |z_reuse - z_scratch| / |z| <= N_inc * eps
 *
 * where N_inc is the incremental MACs applied to the layer since its
 * last from-scratch execution (DESIGN.md section 10 derives this from
 * Eq. 10).  The guard tracks N_inc * eps per layer and triggers a
 * bounded full refresh — graceful degradation to the existing
 * from-scratch path — when either the bound or a frame-count budget
 * is exceeded.  Refreshes it forces are marked driftRefresh on the
 * execution records and surface through ReuseStats.
 */

#ifndef REUSE_DNN_CORE_DRIFT_GUARD_H
#define REUSE_DNN_CORE_DRIFT_GUARD_H

#include "core/exec_record.h"
#include "core/reuse_state.h"

namespace reuse {

/**
 * Stateless refresh policy; per-stream accumulators live in the
 * ReuseState so one guard serves all concurrent streams.
 */
class DriftGuard
{
  public:
    /**
     * @param refresh_period Frame-count budget: refresh after this
     *   many executions since the last reset (0 disables).
     * @param drift_bound Accumulated relative drift estimate at which
     *   a layer forces a refresh (0 disables).
     */
    DriftGuard(int refresh_period, double drift_bound)
        : refresh_period_(refresh_period), drift_bound_(drift_bound)
    {
    }

    /** True when either trigger is configured. */
    bool enabled() const
    {
        return refresh_period_ > 0 || drift_bound_ > 0.0;
    }

    /** True when `state` must be refreshed before its next frame. */
    bool shouldRefresh(const ReuseState &state) const;

    /** Folds one executed frame's records into `state`'s drift. */
    void accumulate(ReuseState &state, const ExecutionTrace &trace) const;

    /**
     * Drift-estimate increment of one steady-state layer execution:
     * incremental MACs times the fp32 rounding unit.
     */
    static double driftIncrement(const LayerExecRecord &rec);

    /** The configured frame-count budget (0 = disabled). */
    int refreshPeriod() const { return refresh_period_; }

    /** The configured accumulated-drift bound (0 = disabled). */
    double driftBound() const { return drift_bound_; }

  private:
    int refresh_period_;
    double drift_bound_;
};

} // namespace reuse

#endif // REUSE_DNN_CORE_DRIFT_GUARD_H
