#include "reuse_state.h"

#include <algorithm>

#include "common/checksum.h"

namespace reuse {

namespace {

template <typename T>
std::vector<std::unique_ptr<T>>
cloneStates(const std::vector<std::unique_ptr<T>> &src)
{
    std::vector<std::unique_ptr<T>> out(src.size());
    for (size_t i = 0; i < src.size(); ++i) {
        if (src[i])
            out[i] = std::make_unique<T>(*src[i]);
    }
    return out;
}

template <typename T>
void
forEach(std::vector<std::unique_ptr<T>> &states, void (T::*fn)())
{
    for (auto &s : states) {
        if (s)
            (s.get()->*fn)();
    }
}

} // namespace

ReuseState
ReuseState::clone() const
{
    ReuseState copy;
    copy.fc_ = cloneStates(fc_);
    copy.conv_ = cloneStates(conv_);
    copy.lstm_ = cloneStates(lstm_);
    copy.uni_lstm_ = cloneStates(uni_lstm_);
    copy.executions_since_refresh_ = executions_since_refresh_;
    copy.accumulated_drift_ = accumulated_drift_;
    return copy;
}

void
ReuseState::reset()
{
    forEach(fc_, &FcReuseState::reset);
    forEach(conv_, &ConvReuseState::reset);
    forEach(lstm_, &BiLstmReuseState::reset);
    forEach(uni_lstm_, &LstmLayerReuseState::reset);
    executions_since_refresh_ = 0;
    std::fill(accumulated_drift_.begin(), accumulated_drift_.end(),
              0.0);
}

void
ReuseState::releaseBuffers()
{
    forEach(fc_, &FcReuseState::releaseBuffers);
    forEach(conv_, &ConvReuseState::releaseBuffers);
    forEach(lstm_, &BiLstmReuseState::releaseBuffers);
    forEach(uni_lstm_, &LstmLayerReuseState::releaseBuffers);
    executions_since_refresh_ = 0;
    std::fill(accumulated_drift_.begin(), accumulated_drift_.end(),
              0.0);
}

int64_t
ReuseState::memoryBytes() const
{
    int64_t bytes = 0;
    for (const auto &s : fc_) {
        if (s)
            bytes += s->memoryBytes();
    }
    for (const auto &s : conv_) {
        if (s)
            bytes += s->memoryBytes();
    }
    for (const auto &s : lstm_) {
        if (s)
            bytes += s->memoryBytes();
    }
    for (const auto &s : uni_lstm_) {
        if (s)
            bytes += s->memoryBytes();
    }
    return bytes;
}

uint64_t
ReuseState::checksum() const
{
    uint64_t h = checksumInit();
    checksumValue(h, executions_since_refresh_);
    for (size_t li = 0; li < fc_.size(); ++li) {
        // Layer index + which-kind tags keep equal buffer contents at
        // different positions from colliding.
        if (fc_[li]) {
            checksumValue(h, li);
            fc_[li]->hashInto(h);
        }
        if (conv_[li]) {
            checksumValue(h, ~li);
            conv_[li]->hashInto(h);
        }
        if (lstm_[li]) {
            checksumValue(h, li * 2 + 1);
            lstm_[li]->hashInto(h);
        }
        if (uni_lstm_[li]) {
            checksumValue(h, li * 2);
            uni_lstm_[li]->hashInto(h);
        }
    }
    return h;
}

bool
ReuseState::debugCorruptBuffer(uint64_t seed)
{
#if REUSE_FAULT_INJECTION
    for (auto &s : fc_) {
        if (s && s->hasPrev())
            return s->debugCorruptBuffer(seed);
    }
    for (auto &s : conv_) {
        if (s && s->hasPrev())
            return s->debugCorruptBuffer(seed);
    }
#else
    (void)seed;
#endif
    return false;
}

bool
ReuseState::warm() const
{
    for (const auto &s : fc_) {
        if (s && s->hasPrev())
            return true;
    }
    for (const auto &s : conv_) {
        if (s && s->hasPrev())
            return true;
    }
    return executions_since_refresh_ > 0;
}

} // namespace reuse
