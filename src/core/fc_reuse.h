/**
 * @file
 * Incremental (reuse-based) execution of a fully-connected layer
 * (Sec. IV-B of the paper).
 *
 * The state buffers the previous execution's quantized input indices
 * and output values.  Each new execution quantizes the inputs,
 * compares indices, and corrects the buffered outputs only for the
 * inputs that changed: z'_o = z_o + (c'_i - c_i) * W_io (Eq. 10).
 */

#ifndef REUSE_DNN_CORE_FC_REUSE_H
#define REUSE_DNN_CORE_FC_REUSE_H

#include <vector>

#include "common/aligned.h"
#include "core/exec_record.h"
#include "kernels/change_list.h"
#include "nn/fully_connected.h"
#include "quant/linear_quantizer.h"

namespace reuse {

/**
 * Reuse state and incremental executor for one FC layer.
 */
class FcReuseState
{
  public:
    /**
     * @param layer The FC layer; must outlive this state.
     * @param quantizer Input quantizer (copied; quantizers are small).
     * @param cluster_radius Near-match cluster radius in quantization
     *        steps: index moves of at most this distance keep the
     *        buffered representative instead of emitting a correction
     *        (0 = exact matching, bit-exact with the baseline).
     */
    FcReuseState(const FullyConnectedLayer &layer,
                 LinearQuantizer quantizer, int32_t cluster_radius = 0);

    /**
     * Executes the layer on `input` with reuse, updating the buffered
     * state and filling `rec` with what happened.  The first call (or
     * the first after reset()) computes from scratch on the quantized
     * input.
     */
    Tensor execute(const Tensor &input, LayerExecRecord &rec);

    /** Drops the buffered execution (stream/sequence boundary). */
    void reset() { has_prev_ = false; }

    /**
     * Drops the buffered execution AND frees the buffer storage
     * (session eviction).  The next execute() re-allocates lazily.
     */
    void releaseBuffers();

    /** Bytes currently held by the prev-indices/outputs buffers. */
    int64_t memoryBytes() const;

    /** True when a previous execution is buffered. */
    bool hasPrev() const { return has_prev_; }

    /** Buffered output values of the previous execution. */
    const AlignedVector<float> &prevOutputs() const
    {
        return prev_outputs_;
    }

    /** Buffered quantization indices of the previous execution. */
    const AlignedVector<int32_t> &prevIndices() const
    {
        return prev_indices_;
    }

    /** The input quantizer in use. */
    const LinearQuantizer &quantizer() const { return quantizer_; }

    /** The near-match cluster radius (0 = exact matching). */
    int32_t clusterRadius() const { return cluster_radius_; }

    /** Folds the buffered state into checksum state `h`. */
    void hashInto(uint64_t &h) const;

    /**
     * Testing hook: flips one seed-selected mantissa bit in the
     * buffered outputs (between-frame corruption).  Returns false
     * when nothing is buffered.
     */
    bool debugCorruptBuffer(uint64_t seed);

  private:
    const FullyConnectedLayer &layer_;
    LinearQuantizer quantizer_;
    int32_t cluster_radius_ = 0;
    bool has_prev_ = false;
    AlignedVector<int32_t> prev_indices_;
    AlignedVector<float> prev_outputs_;
    /** Per-frame (position, delta) scratch, reused across frames. */
    kernels::ChangeList changes_;
};

} // namespace reuse

#endif // REUSE_DNN_CORE_FC_REUSE_H
