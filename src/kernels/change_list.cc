#include "change_list.h"

namespace reuse {
namespace kernels {

int64_t
ChangeList::memoryBytes() const
{
    return static_cast<int64_t>(
        positions.capacity() * sizeof(int32_t) +
        deltas.capacity() * sizeof(float) +
        scratch_indices.capacity() * sizeof(int32_t));
}

void
ChangeList::releaseStorage()
{
    std::vector<int32_t>().swap(positions);
    std::vector<float>().swap(deltas);
    std::vector<int32_t>().swap(scratch_indices);
}

void
quantizeWithIndices(const float *input, int64_t n,
                    const QuantScanParams &q, int32_t *indices,
                    float *centroids)
{
    if (indices != nullptr && centroids != nullptr) {
        for (int64_t i = 0; i < n; ++i) {
            const int32_t idx = quantIndex(q, input[i]);
            indices[i] = idx;
            centroids[i] = quantCentroid(q, idx);
        }
    } else if (indices != nullptr) {
        for (int64_t i = 0; i < n; ++i)
            indices[i] = quantIndex(q, input[i]);
    } else if (centroids != nullptr) {
        for (int64_t i = 0; i < n; ++i)
            centroids[i] = quantCentroid(q, quantIndex(q, input[i]));
    }
}

int64_t
scanChanges(const float *input, int64_t n, const QuantScanParams &q,
            int32_t *prev_indices, ChangeList &out)
{
    out.clear();
    out.scratch_indices.resize(static_cast<size_t>(n));
    int32_t *__restrict cur = out.scratch_indices.data();

    // Phase 1: quantize every input with the hoisted parameters.
    for (int64_t i = 0; i < n; ++i)
        cur[i] = quantIndex(q, input[i]);

    // Phase 2: compare int32 indices and gather mismatches.  The
    // delta is computed as centroid(new) - centroid(old) — not
    // (new - old) * step — to stay bit-identical with the original
    // interleaved path.
    int64_t changed = 0;
    for (int64_t i = 0; i < n; ++i) {
        const int32_t idx = cur[i];
        const int32_t prev = prev_indices[i];
        if (idx == prev)
            continue;
        out.push(static_cast<int32_t>(i),
                 quantCentroid(q, idx) - quantCentroid(q, prev));
        prev_indices[i] = idx;
        ++changed;
    }
    return changed;
}

} // namespace kernels
} // namespace reuse
