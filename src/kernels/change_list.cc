#include "change_list.h"

#include <algorithm>

#include "kernels/simd_kernels.h"

namespace reuse {
namespace kernels {

void
ChangeList::grow(size_t need)
{
    const size_t size = std::max(
        {need, positions_.size() * 2, static_cast<size_t>(64)});
    positions_.resize(size);
    deltas_.resize(size);
}

int64_t
ChangeList::memoryBytes() const
{
    return static_cast<int64_t>(
        positions_.capacity() * sizeof(int32_t) +
        deltas_.capacity() * sizeof(float));
}

void
ChangeList::releaseStorage()
{
    AlignedVector<int32_t>().swap(positions_);
    AlignedVector<float>().swap(deltas_);
    count_ = 0;
}

void
quantizeWithIndices(const float *input, int64_t n,
                    const QuantScanParams &q, int32_t *indices,
                    float *centroids)
{
    if (indices != nullptr && centroids != nullptr) {
        for (int64_t i = 0; i < n; ++i) {
            const int32_t idx = quantIndex(q, input[i]);
            indices[i] = idx;
            centroids[i] = quantCentroid(q, idx);
        }
    } else if (indices != nullptr) {
        for (int64_t i = 0; i < n; ++i)
            indices[i] = quantIndex(q, input[i]);
    } else if (centroids != nullptr) {
        for (int64_t i = 0; i < n; ++i)
            centroids[i] = quantCentroid(q, quantIndex(q, input[i]));
    }
}

namespace {

/**
 * Fused scalar scan: quantize, compare, near-match filter and
 * compact emit in one pass over the inputs.  This is the reference
 * the SIMD variants are fuzz-tested against; the delta is computed
 * as centroid(new) - centroid(old) — not (new - old) * step — to
 * stay bit-identical with the original interleaved path.
 */
ScanResult
scanChangesScalar(const float *input, int64_t n,
                  const QuantScanParams &q, int32_t *prev_indices,
                  int32_t *positions, float *deltas)
{
    ScanResult r;
    for (int64_t i = 0; i < n; ++i) {
        const int32_t idx = quantIndex(q, input[i]);
        const int32_t prev = prev_indices[i];
        if (idx == prev)
            continue;
        const int32_t dist = idx > prev ? idx - prev : prev - idx;
        if (dist <= q.radius) {
            ++r.near_matched;
            continue;
        }
        positions[r.changed] = static_cast<int32_t>(i);
        deltas[r.changed] =
            quantCentroid(q, idx) - quantCentroid(q, prev);
        prev_indices[i] = idx;
        ++r.changed;
    }
    return r;
}

} // namespace

ScanResult
scanChanges(const float *input, int64_t n, const QuantScanParams &q,
            int32_t *prev_indices, ChangeList &out, KernelArch arch)
{
    int32_t *positions = nullptr;
    float *deltas = nullptr;
    out.beginScan(n, positions, deltas);

    ScanResult r;
    switch (arch) {
#if defined(REUSE_KERNELS_HAVE_AVX512)
      case KernelArch::Avx512:
        r = scanChangesAvx512(input, n, q, prev_indices, positions,
                              deltas);
        break;
#endif
#if defined(REUSE_KERNELS_HAVE_AVX2)
      case KernelArch::Avx2:
        r = scanChangesAvx2(input, n, q, prev_indices, positions,
                            deltas);
        break;
#endif
#if defined(REUSE_KERNELS_HAVE_NEON)
      case KernelArch::Neon:
        r = scanChangesNeon(input, n, q, prev_indices, positions,
                            deltas);
        break;
#endif
      default:
        // Scalar and Blocked share the fused scalar scan (blocking
        // only ever applied to the output-streaming apply kernels),
        // as does any SIMD arch the build did not compile.
        r = scanChangesScalar(input, n, q, prev_indices, positions,
                              deltas);
        break;
    }
    out.endScan(static_cast<size_t>(r.changed));
    return r;
}

} // namespace kernels
} // namespace reuse
