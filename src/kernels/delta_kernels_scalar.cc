/**
 * @file
 * Scalar reference implementations of the delta-update kernels.
 *
 * These reproduce the original interleaved hot path's operation
 * order exactly (per change, one full sweep of the affected
 * outputs) and serve as the correctness reference the blocked
 * kernels are tested against, and as the baseline the perf-smoke CI
 * job compares against.  This translation unit is compiled with
 * auto-vectorization disabled (see CMakeLists.txt), so the measured
 * scalar-vs-blocked speedup reflects what blocking + SIMD buy.
 */

#include "delta_kernels.h"

namespace reuse {
namespace kernels {

void
applyDeltasScalar(const ChangeList &changes, const float *weights,
                  int64_t m, float *out)
{
    const size_t k = changes.size();
    for (size_t c = 0; c < k; ++c) {
        const float d = changes.delta(c);
        const float *w_row =
            weights + static_cast<int64_t>(changes.position(c)) * m;
        for (int64_t o = 0; o < m; ++o)
            out[o] += d * w_row[o];
    }
}

void
gemvScalar(const float *input, int64_t n, const float *weights,
           const float *biases, int64_t m, float *out)
{
    for (int64_t o = 0; o < m; ++o)
        out[o] = biases[o];
    for (int64_t i = 0; i < n; ++i) {
        const float v = input[i];
        if (v == 0.0f)
            continue;
        const float *w_row = weights + i * m;
        for (int64_t o = 0; o < m; ++o)
            out[o] += v * w_row[o];
    }
}

void
applyConvDeltas2dScalar(const ChangeList &changes,
                        const Conv2dGeometry &g, const float *weights,
                        float *out)
{
    const size_t k = changes.size();
    const int64_t hw = g.in_h * g.in_w;
    const int64_t out_map = g.out_h * g.out_w;
    for (size_t c = 0; c < k; ++c) {
        const int64_t i = changes.position(c);
        const float d = changes.delta(c);
        const int64_t ci = i / hw;
        const int64_t y = (i / g.in_w) % g.in_h;
        const int64_t x = i % g.in_w;
        for (int64_t ky = 0; ky < g.kernel; ++ky) {
            const int64_t ry = y - ky;
            if (ry < 0 || ry % g.stride != 0)
                continue;
            const int64_t oy = ry / g.stride;
            if (oy >= g.out_h)
                continue;
            for (int64_t kx = 0; kx < g.kernel; ++kx) {
                const int64_t rx = x - kx;
                if (rx < 0 || rx % g.stride != 0)
                    continue;
                const int64_t ox = rx / g.stride;
                if (ox >= g.out_w)
                    continue;
                const float *w_row =
                    weights +
                    ((ci * g.kernel + ky) * g.kernel + kx) *
                        g.out_channels;
                float *dst = out + oy * g.out_w + ox;
                for (int64_t co = 0; co < g.out_channels; ++co)
                    dst[co * out_map] += d * w_row[co];
            }
        }
    }
}

void
applyConvDeltas3dScalar(const ChangeList &changes,
                        const Conv3dGeometry &g, const float *weights,
                        float *out)
{
    const size_t k = changes.size();
    const int64_t hw = g.in_h * g.in_w;
    const int64_t dhw = g.in_d * hw;
    const int64_t out_map = g.out_d * g.out_h * g.out_w;
    for (size_t c = 0; c < k; ++c) {
        const int64_t i = changes.position(c);
        const float dv = changes.delta(c);
        const int64_t ci = i / dhw;
        const int64_t z = (i / hw) % g.in_d;
        const int64_t y = (i / g.in_w) % g.in_h;
        const int64_t x = i % g.in_w;
        for (int64_t kd = 0; kd < g.kernel; ++kd) {
            const int64_t oz = z + g.pad - kd;
            if (oz < 0 || oz >= g.out_d)
                continue;
            for (int64_t ky = 0; ky < g.kernel; ++ky) {
                const int64_t oy = y + g.pad - ky;
                if (oy < 0 || oy >= g.out_h)
                    continue;
                for (int64_t kx = 0; kx < g.kernel; ++kx) {
                    const int64_t ox = x + g.pad - kx;
                    if (ox < 0 || ox >= g.out_w)
                        continue;
                    const float *w_row =
                        weights +
                        (((ci * g.kernel + kd) * g.kernel + ky) *
                             g.kernel +
                         kx) *
                            g.out_channels;
                    float *dst =
                        out + (oz * g.out_h + oy) * g.out_w + ox;
                    for (int64_t co = 0; co < g.out_channels; ++co)
                        dst[co * out_map] += dv * w_row[co];
                }
            }
        }
    }
}

} // namespace kernels
} // namespace reuse
