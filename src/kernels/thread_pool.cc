#include "thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/math_utils.h"
#include "obs/trace_recorder.h"

namespace reuse {
namespace kernels {

namespace {

std::atomic<KernelThreadPool::ChunkHook> g_chunk_hook{nullptr};

void
runChunkHook()
{
    if (KernelThreadPool::ChunkHook hook =
            g_chunk_hook.load(std::memory_order_acquire))
        hook();
}

size_t
defaultWorkerCount()
{
    if (const char *env = std::getenv("REUSE_KERNEL_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        return v > 0 ? static_cast<size_t>(v) : 0;
    }
    // The calling thread participates, so on an H-hardware-thread
    // machine H-1 workers saturate it; cap at 3 workers (4-way
    // layer parallelism) — delta updates are memory bound and wider
    // fan-out mostly adds synchronization cost.  Single-core
    // machines get zero workers: parallelFor() runs inline.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw <= 1)
        return 0;
    return std::min<size_t>(3, hw - 1);
}

} // namespace

KernelThreadPool::KernelThreadPool(size_t workers)
{
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

KernelThreadPool::~KernelThreadPool()
{
    {
        MutexLock lock(mutex_);
        stop_ = true;
    }
    work_cv_.notifyAll();
    for (std::thread &t : workers_)
        t.join();
}

KernelThreadPool &
KernelThreadPool::global()
{
    static KernelThreadPool pool(defaultWorkerCount());
    return pool;
}

void
KernelThreadPool::setChunkHook(ChunkHook hook)
{
    g_chunk_hook.store(hook, std::memory_order_release);
}

void
KernelThreadPool::runChunks(Job &job)
{
    for (;;) {
        const int64_t c =
            job.next.fetch_add(1, std::memory_order_relaxed);
        if (c >= job.chunks)
            break;
        const int64_t begin = c * job.grain;
        const int64_t end = std::min(job.total, begin + job.grain);
        runChunkHook();
        (*job.fn)(begin, end);
        if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            job.chunks) {
            MutexLock lock(mutex_);
            done_cv_.notifyAll();
        }
    }
}

void
KernelThreadPool::workerLoop()
{
    uint64_t seen = 0;
    MutexLock lock(mutex_);
    for (;;) {
        while (!stop_ && generation_ == seen)
            work_cv_.wait(lock);
        if (stop_)
            return;
        seen = generation_;
        Job *job = current_;
        if (job == nullptr)
            continue;  // Job already retired; nothing to do.
        ++workers_in_job_;
        lock.unlock();
        runChunks(*job);
        lock.lock();
        --workers_in_job_;
        done_cv_.notifyAll();
    }
}

void
KernelThreadPool::parallelFor(int64_t total, int64_t grain,
                              const ChunkFn &fn)
{
    if (total <= 0)
        return;
    if (grain <= 0)
        grain = total;
    // Dispatch span on the calling thread: covers inline execution
    // and the fan-out/join of the pooled path alike (chunk bodies on
    // pool workers are outside any sampled frame and stay untraced).
    obs::TraceSpan dispatch_span(obs::SpanKind::PoolDispatch);
    dispatch_span.args(total, grain);
    if (workers_.empty() || total <= grain) {
        // Inline execution with identical chunk boundaries, so the
        // result is bit-identical to the threaded path.
        for (int64_t begin = 0; begin < total; begin += grain) {
            runChunkHook();
            fn(begin, std::min(total, begin + grain));
        }
        return;
    }

    MutexLock job_lock(job_mutex_);
    Job job;
    job.fn = &fn;
    job.total = total;
    job.grain = grain;
    job.chunks = ceilDiv(total, grain);
    {
        MutexLock lock(mutex_);
        current_ = &job;
        ++generation_;
    }
    work_cv_.notifyAll();
    runChunks(job);
    {
        // Wait until every chunk ran AND every worker left the job,
        // so `job` (on this stack frame) cannot be touched after we
        // return.
        MutexLock lock(mutex_);
        while (workers_in_job_ != 0 ||
               job.done.load(std::memory_order_acquire) != job.chunks)
            done_cv_.wait(lock);
        current_ = nullptr;
    }
}

} // namespace kernels
} // namespace reuse
