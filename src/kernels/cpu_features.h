/**
 * @file
 * Runtime CPUID dispatch for the hand-written SIMD reuse kernels.
 *
 * Every kernel entry point (scan, delta apply, conv scatter) exists
 * in several implementations; the one that runs is picked once per
 * process from (a) which translation units the build compiled
 * (REUSE_KERNELS_HAVE_* macros, set by src/kernels/CMakeLists.txt
 * from compiler-flag probes), (b) what the host CPU reports via
 * CPUID, and (c) an optional REUSE_KERNELS environment override.
 * Forcing an arch the host cannot execute falls back to the best
 * supported one with a warning instead of dying on SIGILL.
 */

#ifndef REUSE_DNN_KERNELS_CPU_FEATURES_H
#define REUSE_DNN_KERNELS_CPU_FEATURES_H

#include <string_view>

namespace reuse {
namespace kernels {

/**
 * Kernel implementation families, in increasing preference order.
 *
 *  - Scalar:  the reference TU, compiled with vectorization off;
 *             defines the bit-exactness contract.
 *  - Blocked: the PR 3 cache-blocked loops, auto-vectorized at -O3
 *             to the compiler's baseline ISA.
 *  - Neon:    128-bit NEON kernels (AArch64 builds only).
 *  - Avx2:    256-bit intrinsic kernels (movemask compaction).
 *  - Avx512:  512-bit intrinsic kernels (compress-store, scatter).
 */
enum class KernelArch { Scalar, Blocked, Neon, Avx2, Avx512 };

/** Short lowercase name of an arch ("avx2", "scalar", ...). */
const char *archName(KernelArch arch);

/** True when the build compiled the kernels of `arch`. */
bool archCompiled(KernelArch arch);

/** True when the host CPU can execute the kernels of `arch`. */
bool archRunnable(KernelArch arch);

/** Best arch that is both compiled and runnable on this host. */
KernelArch bestSupportedArch();

/**
 * Parses a REUSE_KERNELS value ("scalar", "blocked", "avx2",
 * "avx512", "neon").  Returns false (leaving `out` untouched) for
 * unknown strings.
 */
bool parseKernelArch(std::string_view name, KernelArch &out);

} // namespace kernels
} // namespace reuse

#endif // REUSE_DNN_KERNELS_CPU_FEATURES_H
