/**
 * @file
 * AVX-512 kernel implementations (512-bit, 16 float lanes).
 *
 * Compiled with -mavx512f -ffp-contract=off (see CMakeLists.txt);
 * only dispatched to when CPUID reports AVX-512F.  Everything here
 * stays inside the F subset so the runtime gate is a single feature
 * bit: compare-to-mask + masked compress-store replace the AVX2
 * shuffle-table compaction (writing exactly the changed lanes), and
 * the conv path uses hardware gather/scatter over the strided
 * per-channel output columns.  Bit-exactness contract: see
 * simd_kernels.h.
 */

#include <immintrin.h>

#include <algorithm>

#include "kernels/delta_kernels.h"
#include "kernels/simd_kernels.h"

namespace reuse {
namespace kernels {

ScanResult
scanChangesAvx512(const float *input, int64_t n,
                  const QuantScanParams &q, int32_t *prev_indices,
                  int32_t *positions, float *deltas)
{
    const __m512 step = _mm512_set1_ps(q.step);
    const __m512 lo =
        _mm512_set1_ps(static_cast<float>(q.min_index));
    const __m512 hi =
        _mm512_set1_ps(static_cast<float>(q.max_index));
    const __m512i sign_bit = _mm512_set1_epi32(
        static_cast<int32_t>(0x80000000u));
    const __m512i half_bits =
        _mm512_castps_si512(_mm512_set1_ps(0.5f));
    const __m512i one_bits =
        _mm512_castps_si512(_mm512_set1_ps(1.0f));
    const __m512i radius = _mm512_set1_epi32(q.radius);
    const __m512i sixteen = _mm512_set1_epi32(16);
    __m512i lane_pos = _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8,
                                         9, 10, 11, 12, 13, 14, 15);

    ScanResult r;
    int64_t i = 0;
    for (; i + 16 <= n;
         i += 16, lane_pos = _mm512_add_epi32(lane_pos, sixteen)) {
        __m512 x = _mm512_div_ps(_mm512_loadu_ps(input + i), step);
        x = _mm512_max_ps(x, lo);
        x = _mm512_min_ps(x, hi);
        __m512 t = _mm512_roundscale_ps(
            x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        // lround emulation: nudge exact halfway quotients one
        // further from zero.  copysign is built with integer bit
        // ops: the float or/and forms live in AVX-512DQ, and this
        // TU stays inside the F subset.
        const __m512i signs =
            _mm512_and_epi32(_mm512_castps_si512(x), sign_bit);
        const __m512 tie_val = _mm512_castsi512_ps(
            _mm512_or_epi32(signs, half_bits));
        const __mmask16 tie = _mm512_cmp_ps_mask(
            _mm512_sub_ps(x, t), tie_val, _CMP_EQ_OQ);
        t = _mm512_mask_add_ps(
            t, tie, t,
            _mm512_castsi512_ps(_mm512_or_epi32(signs, one_bits)));
        const __m512i idx = _mm512_cvttps_epi32(t);

        const __m512i prev = _mm512_loadu_si512(prev_indices + i);
        const __m512i dist =
            _mm512_abs_epi32(_mm512_sub_epi32(idx, prev));
        const __mmask16 chg =
            _mm512_cmpgt_epi32_mask(dist, radius);
        const __mmask16 moved = _mm512_test_epi32_mask(dist, dist);
        r.near_matched += __builtin_popcount(
            static_cast<unsigned>(moved & ~chg));
        if (chg == 0)
            continue;

        const __m512 delta = _mm512_sub_ps(
            _mm512_mul_ps(_mm512_cvtepi32_ps(idx), step),
            _mm512_mul_ps(_mm512_cvtepi32_ps(prev), step));
        _mm512_mask_compressstoreu_epi32(positions + r.changed, chg,
                                         lane_pos);
        _mm512_mask_compressstoreu_ps(deltas + r.changed, chg,
                                      delta);
        r.changed +=
            __builtin_popcount(static_cast<unsigned>(chg));
        _mm512_storeu_si512(prev_indices + i,
                            _mm512_mask_blend_epi32(chg, prev, idx));
    }

    for (; i < n; ++i) {
        const int32_t idx = quantIndex(q, input[i]);
        const int32_t prev = prev_indices[i];
        if (idx == prev)
            continue;
        const int32_t dist = idx > prev ? idx - prev : prev - idx;
        if (dist <= q.radius) {
            ++r.near_matched;
            continue;
        }
        positions[r.changed] = static_cast<int32_t>(i);
        deltas[r.changed] =
            quantCentroid(q, idx) - quantCentroid(q, prev);
        prev_indices[i] = idx;
        ++r.changed;
    }
    return r;
}

void
applyDeltasAvx512Range(const ChangeList &changes,
                       const float *weights, int64_t m,
                       int64_t begin, int64_t end, float *out)
{
    const size_t k = changes.size();
    const int32_t *pos = changes.positions();
    const float *del = changes.deltas();
    for (int64_t b0 = begin; b0 < end; b0 += kDeltaBlockFloats) {
        const int64_t len = std::min(kDeltaBlockFloats, end - b0);
        float *dst = out + b0;
        size_t c = 0;
        for (; c + 4 <= k; c += 4) {
            const __m512 d0 = _mm512_set1_ps(del[c]);
            const __m512 d1 = _mm512_set1_ps(del[c + 1]);
            const __m512 d2 = _mm512_set1_ps(del[c + 2]);
            const __m512 d3 = _mm512_set1_ps(del[c + 3]);
            const float *w0 =
                weights + static_cast<int64_t>(pos[c]) * m + b0;
            const float *w1 =
                weights + static_cast<int64_t>(pos[c + 1]) * m + b0;
            const float *w2 =
                weights + static_cast<int64_t>(pos[c + 2]) * m + b0;
            const float *w3 =
                weights + static_cast<int64_t>(pos[c + 3]) * m + b0;
            int64_t o = 0;
            for (; o + 32 <= len; o += 32) {
                __m512 a0 = _mm512_loadu_ps(dst + o);
                __m512 a1 = _mm512_loadu_ps(dst + o + 16);
                a0 = _mm512_add_ps(
                    a0, _mm512_mul_ps(d0, _mm512_loadu_ps(w0 + o)));
                a1 = _mm512_add_ps(
                    a1,
                    _mm512_mul_ps(d0, _mm512_loadu_ps(w0 + o + 16)));
                a0 = _mm512_add_ps(
                    a0, _mm512_mul_ps(d1, _mm512_loadu_ps(w1 + o)));
                a1 = _mm512_add_ps(
                    a1,
                    _mm512_mul_ps(d1, _mm512_loadu_ps(w1 + o + 16)));
                a0 = _mm512_add_ps(
                    a0, _mm512_mul_ps(d2, _mm512_loadu_ps(w2 + o)));
                a1 = _mm512_add_ps(
                    a1,
                    _mm512_mul_ps(d2, _mm512_loadu_ps(w2 + o + 16)));
                a0 = _mm512_add_ps(
                    a0, _mm512_mul_ps(d3, _mm512_loadu_ps(w3 + o)));
                a1 = _mm512_add_ps(
                    a1,
                    _mm512_mul_ps(d3, _mm512_loadu_ps(w3 + o + 16)));
                _mm512_storeu_ps(dst + o, a0);
                _mm512_storeu_ps(dst + o + 16, a1);
            }
            for (; o < len; o += 16) {
                const int64_t rem = std::min<int64_t>(16, len - o);
                const __mmask16 mt = static_cast<__mmask16>(
                    (1u << rem) - 1u);
                __m512 a0 = _mm512_maskz_loadu_ps(mt, dst + o);
                a0 = _mm512_add_ps(
                    a0, _mm512_mul_ps(
                            d0, _mm512_maskz_loadu_ps(mt, w0 + o)));
                a0 = _mm512_add_ps(
                    a0, _mm512_mul_ps(
                            d1, _mm512_maskz_loadu_ps(mt, w1 + o)));
                a0 = _mm512_add_ps(
                    a0, _mm512_mul_ps(
                            d2, _mm512_maskz_loadu_ps(mt, w2 + o)));
                a0 = _mm512_add_ps(
                    a0, _mm512_mul_ps(
                            d3, _mm512_maskz_loadu_ps(mt, w3 + o)));
                _mm512_mask_storeu_ps(dst + o, mt, a0);
            }
        }
        for (; c < k; ++c) {
            const __m512 vd = _mm512_set1_ps(del[c]);
            const float *w_row =
                weights + static_cast<int64_t>(pos[c]) * m + b0;
            int64_t o = 0;
            for (; o + 16 <= len; o += 16) {
                const __m512 acc = _mm512_add_ps(
                    _mm512_loadu_ps(dst + o),
                    _mm512_mul_ps(vd, _mm512_loadu_ps(w_row + o)));
                _mm512_storeu_ps(dst + o, acc);
            }
            if (o < len) {
                const __mmask16 mt = static_cast<__mmask16>(
                    (1u << (len - o)) - 1u);
                const __m512 acc = _mm512_add_ps(
                    _mm512_maskz_loadu_ps(mt, dst + o),
                    _mm512_mul_ps(
                        vd, _mm512_maskz_loadu_ps(mt, w_row + o)));
                _mm512_mask_storeu_ps(dst + o, mt, acc);
            }
        }
    }
}

// ---------------------------------------------------------------
// Conv delta scatter: the output is channel-major (one spatial
// element sits out_map floats apart across channels) while the
// weight row is contiguous in co, so the per-channel output column
// is gathered, corrected, and scattered back 16 channels at a time.
// Channel blocks stay outermost (same order as the blocked form) so
// per output element the changes apply in ascending change order.
// ---------------------------------------------------------------

void
applyConvDeltas2dAvx512(const ChangeList &changes,
                        const Conv2dGeometry &g, const float *weights,
                        int64_t co_begin, int64_t co_end, float *out)
{
    const size_t k = changes.size();
    const int32_t *pos = changes.positions();
    const float *del = changes.deltas();
    const int64_t hw = g.in_h * g.in_w;
    const int64_t out_map = g.out_h * g.out_w;
    const __m512i lane = _mm512_setr_epi32(
        0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    const __m512i vmap =
        _mm512_set1_epi32(static_cast<int32_t>(out_map));
    for (int64_t co0 = co_begin; co0 < co_end; co0 += kConvCoBlock) {
        const int64_t co1 = std::min(co_end, co0 + kConvCoBlock);
        const int64_t rem = co1 - co0;
        const __mmask16 mask =
            rem >= 16 ? static_cast<__mmask16>(0xffffu)
                      : static_cast<__mmask16>((1u << rem) - 1u);
        // offsets[lane] = (co0 + lane) * out_map, the gather/scatter
        // stride of one output spatial element across channels.
        const __m512i offsets = _mm512_mullo_epi32(
            _mm512_add_epi32(
                _mm512_set1_epi32(static_cast<int32_t>(co0)), lane),
            vmap);
        for (size_t c = 0; c < k; ++c) {
            const int64_t i = pos[c];
            const __m512 d = _mm512_set1_ps(del[c]);
            const int64_t ci = i / hw;
            const int64_t y = (i / g.in_w) % g.in_h;
            const int64_t x = i % g.in_w;
            for (int64_t ky = 0; ky < g.kernel; ++ky) {
                const int64_t ry = y - ky;
                if (ry < 0 || ry % g.stride != 0)
                    continue;
                const int64_t oy = ry / g.stride;
                if (oy >= g.out_h)
                    continue;
                for (int64_t kx = 0; kx < g.kernel; ++kx) {
                    const int64_t rx = x - kx;
                    if (rx < 0 || rx % g.stride != 0)
                        continue;
                    const int64_t ox = rx / g.stride;
                    if (ox >= g.out_w)
                        continue;
                    const float *w_row =
                        weights +
                        ((ci * g.kernel + ky) * g.kernel + kx) *
                            g.out_channels;
                    float *dst = out + oy * g.out_w + ox;
                    const __m512 wv =
                        _mm512_maskz_loadu_ps(mask, w_row + co0);
                    __m512 acc = _mm512_mask_i32gather_ps(
                        _mm512_setzero_ps(), mask, offsets, dst, 4);
                    acc = _mm512_add_ps(acc, _mm512_mul_ps(d, wv));
                    _mm512_mask_i32scatter_ps(dst, mask, offsets,
                                              acc, 4);
                }
            }
        }
    }
}

void
applyConvDeltas3dAvx512(const ChangeList &changes,
                        const Conv3dGeometry &g, const float *weights,
                        int64_t co_begin, int64_t co_end, float *out)
{
    const size_t k = changes.size();
    const int32_t *pos = changes.positions();
    const float *del = changes.deltas();
    const int64_t hw = g.in_h * g.in_w;
    const int64_t dhw = g.in_d * hw;
    const int64_t out_map = g.out_d * g.out_h * g.out_w;
    const __m512i lane = _mm512_setr_epi32(
        0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
    const __m512i vmap =
        _mm512_set1_epi32(static_cast<int32_t>(out_map));
    for (int64_t co0 = co_begin; co0 < co_end; co0 += kConvCoBlock) {
        const int64_t co1 = std::min(co_end, co0 + kConvCoBlock);
        const int64_t rem = co1 - co0;
        const __mmask16 mask =
            rem >= 16 ? static_cast<__mmask16>(0xffffu)
                      : static_cast<__mmask16>((1u << rem) - 1u);
        const __m512i offsets = _mm512_mullo_epi32(
            _mm512_add_epi32(
                _mm512_set1_epi32(static_cast<int32_t>(co0)), lane),
            vmap);
        for (size_t c = 0; c < k; ++c) {
            const int64_t i = pos[c];
            const __m512 dv = _mm512_set1_ps(del[c]);
            const int64_t ci = i / dhw;
            const int64_t z = (i / hw) % g.in_d;
            const int64_t y = (i / g.in_w) % g.in_h;
            const int64_t x = i % g.in_w;
            for (int64_t kd = 0; kd < g.kernel; ++kd) {
                const int64_t oz = z + g.pad - kd;
                if (oz < 0 || oz >= g.out_d)
                    continue;
                for (int64_t ky = 0; ky < g.kernel; ++ky) {
                    const int64_t oy = y + g.pad - ky;
                    if (oy < 0 || oy >= g.out_h)
                        continue;
                    for (int64_t kx = 0; kx < g.kernel; ++kx) {
                        const int64_t ox = x + g.pad - kx;
                        if (ox < 0 || ox >= g.out_w)
                            continue;
                        const float *w_row =
                            weights +
                            (((ci * g.kernel + kd) * g.kernel + ky) *
                                 g.kernel +
                             kx) *
                                g.out_channels;
                        float *dst =
                            out + (oz * g.out_h + oy) * g.out_w + ox;
                        const __m512 wv = _mm512_maskz_loadu_ps(
                            mask, w_row + co0);
                        __m512 acc = _mm512_mask_i32gather_ps(
                            _mm512_setzero_ps(), mask, offsets, dst,
                            4);
                        acc = _mm512_add_ps(acc,
                                            _mm512_mul_ps(dv, wv));
                        _mm512_mask_i32scatter_ps(dst, mask, offsets,
                                                  acc, 4);
                    }
                }
            }
        }
    }
}

} // namespace kernels
} // namespace reuse
