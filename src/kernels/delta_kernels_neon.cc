/**
 * @file
 * NEON kernel implementations (128-bit, 4 float lanes), AArch64
 * builds only — the TU is added by CMake when the target is ARM and
 * double-guarded on __ARM_NEON.  Compiled with -ffp-contract=off so
 * the separate mul + add vector ops are never fused into fmla,
 * keeping the results bit-identical to the scalar reference (see
 * simd_kernels.h for the contract).
 *
 * NEON has no compress-store or movemask, so the scan compacts by
 * materializing each vector's lanes to a small stack buffer and
 * emitting the changed ones scalar-wise; the quantize/compare work
 * is still 4-wide.
 */

#if defined(__ARM_NEON)

#include <arm_neon.h>

#include <algorithm>

#include "kernels/delta_kernels.h"
#include "kernels/simd_kernels.h"

namespace reuse {
namespace kernels {

ScanResult
scanChangesNeon(const float *input, int64_t n,
                const QuantScanParams &q, int32_t *prev_indices,
                int32_t *positions, float *deltas)
{
    const float32x4_t step = vdupq_n_f32(q.step);
    const float32x4_t lo =
        vdupq_n_f32(static_cast<float>(q.min_index));
    const float32x4_t hi =
        vdupq_n_f32(static_cast<float>(q.max_index));
    const uint32x4_t sign_bit = vdupq_n_u32(0x80000000u);
    const float32x4_t half = vdupq_n_f32(0.5f);
    const float32x4_t one = vdupq_n_f32(1.0f);
    const int32x4_t radius = vdupq_n_s32(q.radius);

    ScanResult r;
    int64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        float32x4_t x = vdivq_f32(vld1q_f32(input + i), step);
        // Clamp with explicit compare+select so a NaN quotient
        // clamps to min_index, matching the scalar reference's
        // `x > lo ? x : lo` exactly.
        x = vbslq_f32(vcgtq_f32(x, lo), x, lo);
        x = vbslq_f32(vcltq_f32(x, hi), x, hi);
        float32x4_t t = vrndnq_f32(x); // round to nearest even
        const uint32x4_t signs =
            vandq_u32(vreinterpretq_u32_f32(x), sign_bit);
        const float32x4_t tie_val = vreinterpretq_f32_u32(
            vorrq_u32(signs, vreinterpretq_u32_f32(half)));
        const uint32x4_t tie = vceqq_f32(vsubq_f32(x, t), tie_val);
        const float32x4_t nudge = vreinterpretq_f32_u32(vandq_u32(
            tie, vorrq_u32(signs, vreinterpretq_u32_f32(one))));
        t = vaddq_f32(t, nudge);
        const int32x4_t idx = vcvtq_s32_f32(t);

        const int32x4_t prev = vld1q_s32(prev_indices + i);
        const int32x4_t dist = vabsq_s32(vsubq_s32(idx, prev));
        const uint32x4_t chg = vcgtq_s32(dist, radius);
        if (vmaxvq_u32(vcgtq_s32(dist, vdupq_n_s32(0))) == 0)
            continue;

        alignas(16) int32_t idx_buf[4];
        alignas(16) int32_t prev_buf[4];
        alignas(16) uint32_t chg_buf[4];
        alignas(16) int32_t dist_buf[4];
        vst1q_s32(idx_buf, idx);
        vst1q_s32(prev_buf, prev);
        vst1q_u32(chg_buf, chg);
        vst1q_s32(dist_buf, dist);
        for (int lane = 0; lane < 4; ++lane) {
            if (dist_buf[lane] == 0)
                continue;
            if (chg_buf[lane] == 0) {
                ++r.near_matched;
                continue;
            }
            positions[r.changed] =
                static_cast<int32_t>(i + lane);
            deltas[r.changed] =
                quantCentroid(q, idx_buf[lane]) -
                quantCentroid(q, prev_buf[lane]);
            prev_indices[i + lane] = idx_buf[lane];
            ++r.changed;
        }
    }

    for (; i < n; ++i) {
        const int32_t idx = quantIndex(q, input[i]);
        const int32_t prev = prev_indices[i];
        if (idx == prev)
            continue;
        const int32_t dist = idx > prev ? idx - prev : prev - idx;
        if (dist <= q.radius) {
            ++r.near_matched;
            continue;
        }
        positions[r.changed] = static_cast<int32_t>(i);
        deltas[r.changed] =
            quantCentroid(q, idx) - quantCentroid(q, prev);
        prev_indices[i] = idx;
        ++r.changed;
    }
    return r;
}

void
applyDeltasNeonRange(const ChangeList &changes, const float *weights,
                     int64_t m, int64_t begin, int64_t end,
                     float *out)
{
    const size_t k = changes.size();
    const int32_t *pos = changes.positions();
    const float *del = changes.deltas();
    for (int64_t b0 = begin; b0 < end; b0 += kDeltaBlockFloats) {
        const int64_t len = std::min(kDeltaBlockFloats, end - b0);
        float *dst = out + b0;
        size_t c = 0;
        for (; c + 4 <= k; c += 4) {
            const float32x4_t d0 = vdupq_n_f32(del[c]);
            const float32x4_t d1 = vdupq_n_f32(del[c + 1]);
            const float32x4_t d2 = vdupq_n_f32(del[c + 2]);
            const float32x4_t d3 = vdupq_n_f32(del[c + 3]);
            const float *w0 =
                weights + static_cast<int64_t>(pos[c]) * m + b0;
            const float *w1 =
                weights + static_cast<int64_t>(pos[c + 1]) * m + b0;
            const float *w2 =
                weights + static_cast<int64_t>(pos[c + 2]) * m + b0;
            const float *w3 =
                weights + static_cast<int64_t>(pos[c + 3]) * m + b0;
            int64_t o = 0;
            for (; o + 4 <= len; o += 4) {
                float32x4_t acc = vld1q_f32(dst + o);
                acc = vaddq_f32(
                    acc, vmulq_f32(d0, vld1q_f32(w0 + o)));
                acc = vaddq_f32(
                    acc, vmulq_f32(d1, vld1q_f32(w1 + o)));
                acc = vaddq_f32(
                    acc, vmulq_f32(d2, vld1q_f32(w2 + o)));
                acc = vaddq_f32(
                    acc, vmulq_f32(d3, vld1q_f32(w3 + o)));
                vst1q_f32(dst + o, acc);
            }
            for (; o < len; ++o) {
                float acc = dst[o];
                acc += del[c] * w0[o];
                acc += del[c + 1] * w1[o];
                acc += del[c + 2] * w2[o];
                acc += del[c + 3] * w3[o];
                dst[o] = acc;
            }
        }
        for (; c < k; ++c) {
            const float d = del[c];
            const float32x4_t vd = vdupq_n_f32(d);
            const float *w_row =
                weights + static_cast<int64_t>(pos[c]) * m + b0;
            int64_t o = 0;
            for (; o + 4 <= len; o += 4) {
                const float32x4_t acc = vaddq_f32(
                    vld1q_f32(dst + o),
                    vmulq_f32(vd, vld1q_f32(w_row + o)));
                vst1q_f32(dst + o, acc);
            }
            for (; o < len; ++o)
                dst[o] += d * w_row[o];
        }
    }
}

} // namespace kernels
} // namespace reuse

#endif // __ARM_NEON
