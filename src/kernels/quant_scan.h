/**
 * @file
 * Hoisted, inline quantization-index computation shared by every
 * reuse hot loop.
 *
 * LinearQuantizer::index() is semantically one division, one rounding
 * and one clamp, but calling it per element re-reads the quantizer
 * members through the object pointer on every iteration.  The hot
 * loops instead copy the parameters into a QuantScanParams value once
 * (registers for the whole loop) and call quantIndex(), which is the
 * single definition of the index function: the LinearQuantizer
 * delegates to it, so both paths agree bit-exactly.
 *
 * The clamp runs in the float domain *before* the float-to-int
 * conversion (rather than on the converted integer) so the scalar
 * reference and the SIMD kernels agree for every input: a float
 * whose quotient exceeds int32 range would wrap through the scalar
 * long->int32 cast but saturate through the vector cvttps
 * conversion.  For all in-range quotients the two clamp orders give
 * identical indices because float(min_index)/float(max_index) are
 * exactly representable (indices are small).
 */

#ifndef REUSE_DNN_KERNELS_QUANT_SCAN_H
#define REUSE_DNN_KERNELS_QUANT_SCAN_H

#include <cmath>
#include <cstdint>

namespace reuse {
namespace kernels {

/** Parameters of a linear quantizer, hoisted out of the hot loop. */
struct QuantScanParams {
    float step;         ///< Quantization step (range / clusters).
    int32_t min_index;  ///< Smallest representable index.
    int32_t max_index;  ///< Largest representable index.
    /**
     * Near-match cluster radius: an input whose new index is within
     * `radius` of its buffered index keeps the buffered index as its
     * representative (no change emitted).  0 = exact matching.  The
     * per-element value error is bounded by radius * step at all
     * times because the representative never drifts further than the
     * comparison allows.
     */
    int32_t radius = 0;
};

/**
 * Quantization index of `v`: round(v / step), half away from zero,
 * clamped to the profiled range.  The comparisons are written to
 * mirror the SSE/AVX max/min semantics (a NaN quotient clamps to
 * min_index), keeping the scalar reference and the vector kernels
 * bit-identical on every input.
 */
inline int32_t
quantIndex(const QuantScanParams &q, float v)
{
    float x = v / q.step;
    const float lo = static_cast<float>(q.min_index);
    const float hi = static_cast<float>(q.max_index);
    x = x > lo ? x : lo;
    x = x < hi ? x : hi;
    return static_cast<int32_t>(std::lround(x));
}

/** Centroid value of an index: idx * step. */
inline float
quantCentroid(const QuantScanParams &q, int32_t idx)
{
    return static_cast<float>(idx) * q.step;
}

/**
 * Drift-estimate share of `near_matched` suppressed changes at this
 * scan's cluster radius: each one leaves up to radius quantization
 * steps of input error standing, expressed relative to the
 * quantizer's representable range so the DriftGuard can add it to
 * the same accumulated relative-error budget as fp32 rounding.
 */
inline double
nearMatchDriftShare(const QuantScanParams &q, int64_t near_matched)
{
    const double range = static_cast<double>(q.max_index) -
                         static_cast<double>(q.min_index);
    if (q.radius <= 0 || near_matched <= 0 || range <= 0.0)
        return 0.0;
    return static_cast<double>(near_matched) *
           (static_cast<double>(q.radius) / range);
}

} // namespace kernels
} // namespace reuse

#endif // REUSE_DNN_KERNELS_QUANT_SCAN_H
