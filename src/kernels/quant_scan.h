/**
 * @file
 * Hoisted, inline quantization-index computation shared by every
 * reuse hot loop.
 *
 * LinearQuantizer::index() is semantically one division, one rounding
 * and one clamp, but calling it per element re-reads the quantizer
 * members through the object pointer on every iteration.  The hot
 * loops instead copy the three parameters into a QuantScanParams
 * value once (registers for the whole loop) and call quantIndex(),
 * which is the single definition of the index function: the
 * LinearQuantizer delegates to it, so both paths agree bit-exactly.
 */

#ifndef REUSE_DNN_KERNELS_QUANT_SCAN_H
#define REUSE_DNN_KERNELS_QUANT_SCAN_H

#include <cmath>
#include <cstdint>

namespace reuse {
namespace kernels {

/** Parameters of a linear quantizer, hoisted out of the hot loop. */
struct QuantScanParams {
    float step;         ///< Quantization step (range / clusters).
    int32_t min_index;  ///< Smallest representable index.
    int32_t max_index;  ///< Largest representable index.
};

/**
 * Quantization index of `v`: round(v / step) clamped to the profiled
 * range.  Branchless except for the clamp min/max selects.
 */
inline int32_t
quantIndex(const QuantScanParams &q, float v)
{
    const int32_t idx = static_cast<int32_t>(std::lround(v / q.step));
    const int32_t lo = idx < q.min_index ? q.min_index : idx;
    return lo > q.max_index ? q.max_index : lo;
}

/** Centroid value of an index: idx * step. */
inline float
quantCentroid(const QuantScanParams &q, int32_t idx)
{
    return static_cast<float>(idx) * q.step;
}

} // namespace kernels
} // namespace reuse

#endif // REUSE_DNN_KERNELS_QUANT_SCAN_H
