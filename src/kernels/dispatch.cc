#include "dispatch.h"

#include <cstdlib>
#include <string>
#include <string_view>

#include "common/logging.h"

namespace reuse {
namespace kernels {

const DeltaDispatch &
defaultDispatch()
{
    static const DeltaDispatch cfg = [] {
        DeltaDispatch c;
        c.arch = bestSupportedArch();
        if (const char *env = std::getenv("REUSE_KERNELS")) {
            KernelArch forced;
            if (!parseKernelArch(env, forced)) {
                warn(std::string("REUSE_KERNELS=") + env +
                     " is not a known kernel arch; using " +
                     archName(c.arch));
            } else if (!archCompiled(forced) ||
                       !archRunnable(forced)) {
                warn(std::string("REUSE_KERNELS=") + env +
                     " is not supported on this host/build; using " +
                     archName(c.arch));
            } else {
                c.arch = forced;
            }
        }
        if (const char *env =
                std::getenv("REUSE_KERNEL_PAR_THRESHOLD")) {
            c.parallel_mac_threshold =
                std::strtoll(env, nullptr, 10);
        }
        return c;
    }();
    return cfg;
}

} // namespace kernels
} // namespace reuse
