#include "cpu_features.h"

namespace reuse {
namespace kernels {

const char *
archName(KernelArch arch)
{
    switch (arch) {
      case KernelArch::Scalar:
        return "scalar";
      case KernelArch::Blocked:
        return "blocked";
      case KernelArch::Neon:
        return "neon";
      case KernelArch::Avx2:
        return "avx2";
      case KernelArch::Avx512:
        return "avx512";
    }
    return "unknown";
}

bool
archCompiled(KernelArch arch)
{
    switch (arch) {
      case KernelArch::Scalar:
      case KernelArch::Blocked:
        return true;
      case KernelArch::Neon:
#if defined(REUSE_KERNELS_HAVE_NEON)
        return true;
#else
        return false;
#endif
      case KernelArch::Avx2:
#if defined(REUSE_KERNELS_HAVE_AVX2)
        return true;
#else
        return false;
#endif
      case KernelArch::Avx512:
#if defined(REUSE_KERNELS_HAVE_AVX512)
        return true;
#else
        return false;
#endif
    }
    return false;
}

bool
archRunnable(KernelArch arch)
{
    switch (arch) {
      case KernelArch::Scalar:
      case KernelArch::Blocked:
        return true;
      case KernelArch::Neon:
        // NEON is architecturally guaranteed on AArch64, so a build
        // that compiled the NEON TU can always run it.
#if defined(__aarch64__)
        return true;
#else
        return false;
#endif
      case KernelArch::Avx2:
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
      case KernelArch::Avx512:
        // avx512f covers every instruction the kernels use (compare
        // masks, compress-store, gather/scatter, roundscale); the
        // builtin also folds in the OS XSAVE state check.
#if defined(__x86_64__) || defined(__i386__)
        return __builtin_cpu_supports("avx512f") != 0;
#else
        return false;
#endif
    }
    return false;
}

KernelArch
bestSupportedArch()
{
    for (KernelArch arch :
         {KernelArch::Avx512, KernelArch::Avx2, KernelArch::Neon}) {
        if (archCompiled(arch) && archRunnable(arch))
            return arch;
    }
    return KernelArch::Blocked;
}

bool
parseKernelArch(std::string_view name, KernelArch &out)
{
    if (name == "scalar")
        out = KernelArch::Scalar;
    else if (name == "blocked")
        out = KernelArch::Blocked;
    else if (name == "neon")
        out = KernelArch::Neon;
    else if (name == "avx2")
        out = KernelArch::Avx2;
    else if (name == "avx512")
        out = KernelArch::Avx512;
    else
        return false;
    return true;
}

} // namespace kernels
} // namespace reuse
