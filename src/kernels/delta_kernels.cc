/**
 * @file
 * Blocked kernel implementations and the runtime dispatchers.  The
 * scalar references live in delta_kernels_scalar.cc (vectorization
 * disabled); the hand-written SIMD forms live in the per-ISA TUs
 * (delta_kernels_avx2.cc / _avx512.cc / _neon.cc) declared by
 * simd_kernels.h.
 *
 * This translation unit is compiled at -O3 (see CMakeLists.txt):
 * the blocked inner loops are unit-stride restrict-qualified
 * multiply-accumulates that GCC/Clang auto-vectorize to the baseline
 * ISA; the dispatchers below route to the intrinsic TUs when CPUID
 * allows it.
 */

#include "delta_kernels.h"

#include <algorithm>

#include "kernels/simd_kernels.h"

namespace reuse {
namespace kernels {

namespace {

KernelThreadPool &
poolOf(const DeltaDispatch &dispatch)
{
    return dispatch.pool != nullptr ? *dispatch.pool
                                    : KernelThreadPool::global();
}

bool
shouldThread(const DeltaDispatch &dispatch, KernelThreadPool &pool,
             int64_t macs)
{
    return dispatch.parallel_mac_threshold >= 0 &&
           macs >= dispatch.parallel_mac_threshold &&
           pool.workerCount() > 0;
}

using ApplyRangeFn = void (*)(const ChangeList &, const float *,
                              int64_t, int64_t, int64_t, float *);

/**
 * Range-kernel for an arch.  Archs whose TU is not compiled into
 * this build fall back to the blocked form — defaultDispatch()
 * never routes there, but an explicit DeltaDispatch might.
 */
ApplyRangeFn
applyRangeFor(KernelArch arch)
{
    switch (arch) {
#if defined(REUSE_KERNELS_HAVE_AVX512)
      case KernelArch::Avx512:
        return &applyDeltasAvx512Range;
#endif
#if defined(REUSE_KERNELS_HAVE_AVX2)
      case KernelArch::Avx2:
        return &applyDeltasAvx2Range;
#endif
#if defined(REUSE_KERNELS_HAVE_NEON)
      case KernelArch::Neon:
        return &applyDeltasNeonRange;
#endif
      default:
        return &applyDeltasBlockedRange;
    }
}

} // namespace

// ---------------------------------------------------------------
// FC / LSTM-gate delta update.
// ---------------------------------------------------------------

void
applyDeltasBlockedRange(const ChangeList &changes, const float *weights,
                        int64_t m, int64_t begin, int64_t end,
                        float *out)
{
    const size_t k = changes.size();
    const int32_t *__restrict pos = changes.positions();
    const float *__restrict del = changes.deltas();
    for (int64_t b0 = begin; b0 < end; b0 += kDeltaBlockFloats) {
        const int64_t len = std::min(kDeltaBlockFloats, end - b0);
        float *__restrict dst = out + b0;
        // Four changes per sweep: 4x fewer block read/writes, and
        // four weight-row streams in flight (the kernel is memory
        // bound on large layers).  The accumulation per output
        // element stays a sequential chain in ascending change
        // order, so the result is bit-identical to one-at-a-time.
        size_t c = 0;
        for (; c + 4 <= k; c += 4) {
            const float d0 = del[c];
            const float d1 = del[c + 1];
            const float d2 = del[c + 2];
            const float d3 = del[c + 3];
            const float *__restrict w0 =
                weights + static_cast<int64_t>(pos[c]) * m + b0;
            const float *__restrict w1 =
                weights + static_cast<int64_t>(pos[c + 1]) * m + b0;
            const float *__restrict w2 =
                weights + static_cast<int64_t>(pos[c + 2]) * m + b0;
            const float *__restrict w3 =
                weights + static_cast<int64_t>(pos[c + 3]) * m + b0;
            for (int64_t o = 0; o < len; ++o) {
                float acc = dst[o];
                acc += d0 * w0[o];
                acc += d1 * w1[o];
                acc += d2 * w2[o];
                acc += d3 * w3[o];
                dst[o] = acc;
            }
        }
        for (; c < k; ++c) {
            const float d = del[c];
            const float *__restrict w_row =
                weights + static_cast<int64_t>(pos[c]) * m + b0;
            for (int64_t o = 0; o < len; ++o)
                dst[o] += d * w_row[o];
        }
    }
}

void
applyDeltasBlocked(const ChangeList &changes, const float *weights,
                   int64_t m, float *out)
{
    applyDeltasBlockedRange(changes, weights, m, 0, m, out);
}

void
applyDeltas(const ChangeList &changes, const float *weights, int64_t m,
            float *out, const DeltaDispatch &dispatch)
{
    if (changes.empty() || m <= 0)
        return;
    if (dispatch.arch == KernelArch::Scalar) {
        applyDeltasScalar(changes, weights, m, out);
        return;
    }
    const ApplyRangeFn range = applyRangeFor(dispatch.arch);
    KernelThreadPool &pool = poolOf(dispatch);
    const int64_t macs = static_cast<int64_t>(changes.size()) * m;
    if (shouldThread(dispatch, pool, macs)) {
        pool.parallelFor(m, kDeltaChunkFloats,
                         [&](int64_t begin, int64_t end) {
                             range(changes, weights, m, begin, end,
                                   out);
                         });
    } else {
        range(changes, weights, m, 0, m, out);
    }
}

// ---------------------------------------------------------------
// From-scratch GEMV.
// ---------------------------------------------------------------

void
gemvBlockedRange(const float *input, int64_t n, const float *weights,
                 const float *biases, int64_t m, int64_t begin,
                 int64_t end, float *out)
{
    for (int64_t b0 = begin; b0 < end; b0 += kDeltaBlockFloats) {
        const int64_t len = std::min(kDeltaBlockFloats, end - b0);
        float *__restrict dst = out + b0;
        const float *__restrict bias = biases + b0;
        for (int64_t o = 0; o < len; ++o)
            dst[o] = bias[o];
        for (int64_t i = 0; i < n; ++i) {
            const float v = input[i];
            if (v == 0.0f)
                continue;
            const float *__restrict w_row = weights + i * m + b0;
            for (int64_t o = 0; o < len; ++o)
                dst[o] += v * w_row[o];
        }
    }
}

void
gemv(const float *input, int64_t n, const float *weights,
     const float *biases, int64_t m, float *out,
     const DeltaDispatch &dispatch)
{
    if (m <= 0)
        return;
    if (dispatch.arch == KernelArch::Scalar) {
        gemvScalar(input, n, weights, biases, m, out);
        return;
    }
    KernelThreadPool &pool = poolOf(dispatch);
    if (shouldThread(dispatch, pool, n * m)) {
        pool.parallelFor(m, kDeltaChunkFloats,
                         [&](int64_t begin, int64_t end) {
                             gemvBlockedRange(input, n, weights,
                                              biases, m, begin, end,
                                              out);
                         });
    } else {
        gemvBlockedRange(input, n, weights, biases, m, 0, m, out);
    }
}

// ---------------------------------------------------------------
// Conv2D delta scatter.
// ---------------------------------------------------------------

namespace {

/**
 * Applies the whole change list to output channels [co_begin,
 * co_end).  Iterating channel blocks outermost keeps the touched
 * output lines of one block cached across spatially clustered
 * changes; per output element the changes still apply in ascending
 * change order, so the result is bit-identical to the scalar
 * reference.
 */
void
conv2dRange(const ChangeList &changes, const Conv2dGeometry &g,
            const float *weights, int64_t co_begin, int64_t co_end,
            float *out)
{
    const size_t k = changes.size();
    const int32_t *__restrict pos = changes.positions();
    const float *__restrict del = changes.deltas();
    const int64_t hw = g.in_h * g.in_w;
    const int64_t out_map = g.out_h * g.out_w;
    for (int64_t co0 = co_begin; co0 < co_end; co0 += kConvCoBlock) {
        const int64_t co1 = std::min(co_end, co0 + kConvCoBlock);
        for (size_t c = 0; c < k; ++c) {
            const int64_t i = pos[c];
            const float d = del[c];
            const int64_t ci = i / hw;
            const int64_t y = (i / g.in_w) % g.in_h;
            const int64_t x = i % g.in_w;
            for (int64_t ky = 0; ky < g.kernel; ++ky) {
                const int64_t ry = y - ky;
                if (ry < 0 || ry % g.stride != 0)
                    continue;
                const int64_t oy = ry / g.stride;
                if (oy >= g.out_h)
                    continue;
                for (int64_t kx = 0; kx < g.kernel; ++kx) {
                    const int64_t rx = x - kx;
                    if (rx < 0 || rx % g.stride != 0)
                        continue;
                    const int64_t ox = rx / g.stride;
                    if (ox >= g.out_w)
                        continue;
                    const float *__restrict w_row =
                        weights +
                        ((ci * g.kernel + ky) * g.kernel + kx) *
                            g.out_channels;
                    float *__restrict dst =
                        out + oy * g.out_w + ox;
                    for (int64_t co = co0; co < co1; ++co)
                        dst[co * out_map] += d * w_row[co];
                }
            }
        }
    }
}

using Conv2dRangeFn = void (*)(const ChangeList &,
                               const Conv2dGeometry &, const float *,
                               int64_t, int64_t, float *);

/**
 * AVX2/NEON have no scatter instruction, so only the AVX-512 conv
 * path is hand-written; every other non-scalar arch runs the
 * blocked form.
 */
Conv2dRangeFn
conv2dRangeFor(KernelArch arch)
{
#if defined(REUSE_KERNELS_HAVE_AVX512)
    if (arch == KernelArch::Avx512)
        return &applyConvDeltas2dAvx512;
#else
    (void)arch;
#endif
    return &conv2dRange;
}

} // namespace

void
applyConvDeltas2dBlocked(const ChangeList &changes,
                         const Conv2dGeometry &g, const float *weights,
                         float *out)
{
    conv2dRange(changes, g, weights, 0, g.out_channels, out);
}

void
applyConvDeltas2d(const ChangeList &changes, const Conv2dGeometry &g,
                  const float *weights, float *out,
                  const DeltaDispatch &dispatch)
{
    if (changes.empty())
        return;
    if (dispatch.arch == KernelArch::Scalar) {
        applyConvDeltas2dScalar(changes, g, weights, out);
        return;
    }
    const Conv2dRangeFn range = conv2dRangeFor(dispatch.arch);
    KernelThreadPool &pool = poolOf(dispatch);
    // Upper bound of the work: every change touches at most K*K
    // windows across all output channels.
    const int64_t macs = static_cast<int64_t>(changes.size()) *
                         g.kernel * g.kernel * g.out_channels;
    if (shouldThread(dispatch, pool, macs)) {
        pool.parallelFor(g.out_channels, kConvCoBlock,
                         [&](int64_t begin, int64_t end) {
                             range(changes, g, weights, begin, end,
                                   out);
                         });
    } else {
        range(changes, g, weights, 0, g.out_channels, out);
    }
}

// ---------------------------------------------------------------
// Conv3D delta scatter.
// ---------------------------------------------------------------

namespace {

void
conv3dRange(const ChangeList &changes, const Conv3dGeometry &g,
            const float *weights, int64_t co_begin, int64_t co_end,
            float *out)
{
    const size_t k = changes.size();
    const int32_t *__restrict pos = changes.positions();
    const float *__restrict del = changes.deltas();
    const int64_t hw = g.in_h * g.in_w;
    const int64_t dhw = g.in_d * hw;
    const int64_t out_map = g.out_d * g.out_h * g.out_w;
    for (int64_t co0 = co_begin; co0 < co_end; co0 += kConvCoBlock) {
        const int64_t co1 = std::min(co_end, co0 + kConvCoBlock);
        for (size_t c = 0; c < k; ++c) {
            const int64_t i = pos[c];
            const float dv = del[c];
            const int64_t ci = i / dhw;
            const int64_t z = (i / hw) % g.in_d;
            const int64_t y = (i / g.in_w) % g.in_h;
            const int64_t x = i % g.in_w;
            for (int64_t kd = 0; kd < g.kernel; ++kd) {
                const int64_t oz = z + g.pad - kd;
                if (oz < 0 || oz >= g.out_d)
                    continue;
                for (int64_t ky = 0; ky < g.kernel; ++ky) {
                    const int64_t oy = y + g.pad - ky;
                    if (oy < 0 || oy >= g.out_h)
                        continue;
                    for (int64_t kx = 0; kx < g.kernel; ++kx) {
                        const int64_t ox = x + g.pad - kx;
                        if (ox < 0 || ox >= g.out_w)
                            continue;
                        const float *__restrict w_row =
                            weights +
                            (((ci * g.kernel + kd) * g.kernel + ky) *
                                 g.kernel +
                             kx) *
                                g.out_channels;
                        float *__restrict dst =
                            out + (oz * g.out_h + oy) * g.out_w + ox;
                        for (int64_t co = co0; co < co1; ++co)
                            dst[co * out_map] += dv * w_row[co];
                    }
                }
            }
        }
    }
}

using Conv3dRangeFn = void (*)(const ChangeList &,
                               const Conv3dGeometry &, const float *,
                               int64_t, int64_t, float *);

Conv3dRangeFn
conv3dRangeFor(KernelArch arch)
{
#if defined(REUSE_KERNELS_HAVE_AVX512)
    if (arch == KernelArch::Avx512)
        return &applyConvDeltas3dAvx512;
#else
    (void)arch;
#endif
    return &conv3dRange;
}

} // namespace

void
applyConvDeltas3dBlocked(const ChangeList &changes,
                         const Conv3dGeometry &g, const float *weights,
                         float *out)
{
    conv3dRange(changes, g, weights, 0, g.out_channels, out);
}

void
applyConvDeltas3d(const ChangeList &changes, const Conv3dGeometry &g,
                  const float *weights, float *out,
                  const DeltaDispatch &dispatch)
{
    if (changes.empty())
        return;
    if (dispatch.arch == KernelArch::Scalar) {
        applyConvDeltas3dScalar(changes, g, weights, out);
        return;
    }
    const Conv3dRangeFn range = conv3dRangeFor(dispatch.arch);
    KernelThreadPool &pool = poolOf(dispatch);
    const int64_t macs = static_cast<int64_t>(changes.size()) *
                         g.kernel * g.kernel * g.kernel *
                         g.out_channels;
    if (shouldThread(dispatch, pool, macs)) {
        pool.parallelFor(g.out_channels, kConvCoBlock,
                         [&](int64_t begin, int64_t end) {
                             range(changes, g, weights, begin, end,
                                   out);
                         });
    } else {
        range(changes, g, weights, 0, g.out_channels, out);
    }
}

} // namespace kernels
} // namespace reuse
