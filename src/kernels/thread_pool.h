/**
 * @file
 * Small persistent thread pool for intra-layer kernel parallelism.
 *
 * Large FC / LSTM-gate delta updates partition their output range
 * across the pool so single-session latency improves, not just
 * cross-session throughput (the serve worker pool parallelizes
 * across sessions; this pool parallelizes inside one layer).
 *
 * Design mirrors the serve worker-pool idioms (mutex + condvar
 * signalling, persistent threads joined on destruction).  One job
 * runs at a time; concurrent parallelFor() callers serialize on the
 * job mutex, which is fine because only above-threshold layer
 * updates reach the pool at all.
 *
 * Determinism: chunk boundaries depend only on (total, grain), never
 * on the worker count or scheduling, and chunks are disjoint — so a
 * kernel whose chunks don't overlap produces bit-identical results
 * for any pool size, including zero workers (inline execution).
 */

#ifndef REUSE_DNN_KERNELS_THREAD_POOL_H
#define REUSE_DNN_KERNELS_THREAD_POOL_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace reuse {
namespace kernels {

/**
 * Persistent worker pool executing chunked parallel-for jobs.
 */
class KernelThreadPool
{
  public:
    /** Function applied to one chunk [begin, end) of the range. */
    using ChunkFn = std::function<void(int64_t begin, int64_t end)>;

    /**
     * @param workers Number of persistent worker threads.  The
     *   calling thread always participates in a job, so effective
     *   parallelism is workers + 1; zero workers means parallelFor()
     *   runs inline.
     */
    explicit KernelThreadPool(size_t workers);

    /** Stops and joins the workers. */
    ~KernelThreadPool();

    KernelThreadPool(const KernelThreadPool &) = delete;
    KernelThreadPool &operator=(const KernelThreadPool &) = delete;

    /**
     * Process-wide pool used by the kernel dispatchers.  Sized from
     * REUSE_KERNEL_THREADS when set; otherwise uses a small default
     * derived from the hardware concurrency (0 workers on
     * single-core machines).  Created on first use.
     */
    static KernelThreadPool &global();

    /**
     * Splits [0, total) into ceil(total/grain) chunks of `grain`
     * elements and runs `fn` on every chunk, distributing chunks
     * over the workers and the calling thread.  Blocks until all
     * chunks completed.  Safe to call from multiple threads
     * (concurrent jobs serialize).
     */
    void parallelFor(int64_t total, int64_t grain, const ChunkFn &fn);

    /**
     * Process-wide hook invoked once per chunk, on the executing
     * thread, before the chunk body runs — on the pooled AND the
     * inline path, so it fires for any pool size.  Used by the fault
     * injector (src/fault) to model worker stalls; nullptr (the
     * default) disables it.  The hook must not call back into the
     * pool.
     */
    using ChunkHook = void (*)();
    static void setChunkHook(ChunkHook hook);

    /** Number of persistent worker threads. */
    size_t workerCount() const { return workers_.size(); }

  private:
    struct Job {
        const ChunkFn *fn = nullptr;
        int64_t total = 0;
        int64_t grain = 0;
        int64_t chunks = 0;
        std::atomic<int64_t> next{0};
        std::atomic<int64_t> done{0};
    };

    void workerLoop() EXCLUDES(mutex_);
    void runChunks(Job &job) EXCLUDES(mutex_);

    std::vector<std::thread> workers_;

    /** Serializes whole jobs from concurrent callers. */
    Mutex job_mutex_;

    /** Guards the signalling state below. */
    Mutex mutex_;
    CondVar work_cv_;
    CondVar done_cv_;
    Job *current_ GUARDED_BY(mutex_) = nullptr;
    uint64_t generation_ GUARDED_BY(mutex_) = 0;
    int workers_in_job_ GUARDED_BY(mutex_) = 0;
    bool stop_ GUARDED_BY(mutex_) = false;
};

} // namespace kernels
} // namespace reuse

#endif // REUSE_DNN_KERNELS_THREAD_POOL_H
