/**
 * @file
 * AVX2 kernel implementations (256-bit, 8 float lanes).
 *
 * Compiled with -mavx2 -ffp-contract=off (see CMakeLists.txt); only
 * dispatched to when CPUID reports AVX2.  See simd_kernels.h for the
 * bit-exactness contract; the interesting pieces here are
 *
 *  - the lround emulation: AVX has only round-to-nearest-even, so a
 *    halfway quotient (x - rte(x) == copysign(0.5, x)) is nudged one
 *    further from zero to reproduce round-half-away exactly;
 *  - the compaction: the 8-bit changed movemask indexes a 256-entry
 *    lane-shuffle table, vpermd packs the changed lanes to the
 *    front, and a full-vector store at the write cursor (advanced by
 *    popcount) emits them — the cursor scribbles up to 7 lanes past
 *    the final count, which ChangeList::beginScan() pre-sizes for.
 */

#include <immintrin.h>

#include <algorithm>

#include "kernels/delta_kernels.h"
#include "kernels/simd_kernels.h"

namespace reuse {
namespace kernels {

namespace {

/** Lane-compaction shuffle table: entry m packs the set bits of m. */
struct CompactTable {
    alignas(32) int32_t lane[256][8];
};

constexpr CompactTable
makeCompactTable()
{
    CompactTable t{};
    for (int mask = 0; mask < 256; ++mask) {
        int k = 0;
        for (int bit = 0; bit < 8; ++bit) {
            if ((mask >> bit) & 1)
                t.lane[mask][k++] = bit;
        }
    }
    return t;
}

constexpr CompactTable kCompact = makeCompactTable();

} // namespace

ScanResult
scanChangesAvx2(const float *input, int64_t n,
                const QuantScanParams &q, int32_t *prev_indices,
                int32_t *positions, float *deltas)
{
    const __m256 step = _mm256_set1_ps(q.step);
    const __m256 lo =
        _mm256_set1_ps(static_cast<float>(q.min_index));
    const __m256 hi =
        _mm256_set1_ps(static_cast<float>(q.max_index));
    const __m256 sign_mask = _mm256_set1_ps(-0.0f);
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256i radius = _mm256_set1_epi32(q.radius);
    const __m256i zero = _mm256_setzero_si256();
    const __m256i eight = _mm256_set1_epi32(8);
    __m256i lane_pos = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

    ScanResult r;
    int64_t i = 0;
    for (; i + 8 <= n; i += 8, lane_pos = _mm256_add_epi32(lane_pos, eight)) {
        __m256 x = _mm256_div_ps(_mm256_loadu_ps(input + i), step);
        x = _mm256_max_ps(x, lo);
        x = _mm256_min_ps(x, hi);
        __m256 t = _mm256_round_ps(
            x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        const __m256 signs = _mm256_and_ps(x, sign_mask);
        const __m256 tie = _mm256_cmp_ps(
            _mm256_sub_ps(x, t), _mm256_or_ps(half, signs),
            _CMP_EQ_OQ);
        t = _mm256_add_ps(
            t, _mm256_and_ps(tie, _mm256_or_ps(one, signs)));
        const __m256i idx = _mm256_cvttps_epi32(t);

        const __m256i prev = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(prev_indices + i));
        const __m256i dist =
            _mm256_abs_epi32(_mm256_sub_epi32(idx, prev));
        const __m256i chg = _mm256_cmpgt_epi32(dist, radius);
        const __m256i moved = _mm256_cmpgt_epi32(dist, zero);
        const int chg_mask =
            _mm256_movemask_ps(_mm256_castsi256_ps(chg));
        const int near_mask = _mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_andnot_si256(chg, moved)));
        r.near_matched +=
            __builtin_popcount(static_cast<unsigned>(near_mask));
        if (chg_mask == 0)
            continue;

        const __m256 delta = _mm256_sub_ps(
            _mm256_mul_ps(_mm256_cvtepi32_ps(idx), step),
            _mm256_mul_ps(_mm256_cvtepi32_ps(prev), step));
        const __m256i perm = _mm256_load_si256(
            reinterpret_cast<const __m256i *>(
                kCompact.lane[chg_mask]));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(positions + r.changed),
            _mm256_permutevar8x32_epi32(lane_pos, perm));
        _mm256_storeu_ps(deltas + r.changed,
                         _mm256_permutevar8x32_ps(delta, perm));
        r.changed +=
            __builtin_popcount(static_cast<unsigned>(chg_mask));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(prev_indices + i),
            _mm256_blendv_epi8(prev, idx, chg));
    }

    // Scalar tail: quantIndex() is the same arithmetic the vector
    // body emulates, so the boundary is seamless.
    for (; i < n; ++i) {
        const int32_t idx = quantIndex(q, input[i]);
        const int32_t prev = prev_indices[i];
        if (idx == prev)
            continue;
        const int32_t dist = idx > prev ? idx - prev : prev - idx;
        if (dist <= q.radius) {
            ++r.near_matched;
            continue;
        }
        positions[r.changed] = static_cast<int32_t>(i);
        deltas[r.changed] =
            quantCentroid(q, idx) - quantCentroid(q, prev);
        prev_indices[i] = idx;
        ++r.changed;
    }
    return r;
}

void
applyDeltasAvx2Range(const ChangeList &changes, const float *weights,
                     int64_t m, int64_t begin, int64_t end,
                     float *out)
{
    const size_t k = changes.size();
    const int32_t *pos = changes.positions();
    const float *del = changes.deltas();
    for (int64_t b0 = begin; b0 < end; b0 += kDeltaBlockFloats) {
        const int64_t len = std::min(kDeltaBlockFloats, end - b0);
        float *dst = out + b0;
        // Four changes per sweep (four weight-row streams in
        // flight), two output vectors per step for ILP.  Per output
        // element the accumulation stays a sequential chain in
        // ascending change order — bit-identical to one-at-a-time.
        size_t c = 0;
        for (; c + 4 <= k; c += 4) {
            const __m256 d0 = _mm256_set1_ps(del[c]);
            const __m256 d1 = _mm256_set1_ps(del[c + 1]);
            const __m256 d2 = _mm256_set1_ps(del[c + 2]);
            const __m256 d3 = _mm256_set1_ps(del[c + 3]);
            const float *w0 =
                weights + static_cast<int64_t>(pos[c]) * m + b0;
            const float *w1 =
                weights + static_cast<int64_t>(pos[c + 1]) * m + b0;
            const float *w2 =
                weights + static_cast<int64_t>(pos[c + 2]) * m + b0;
            const float *w3 =
                weights + static_cast<int64_t>(pos[c + 3]) * m + b0;
            int64_t o = 0;
            for (; o + 16 <= len; o += 16) {
                __m256 a0 = _mm256_loadu_ps(dst + o);
                __m256 a1 = _mm256_loadu_ps(dst + o + 8);
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(d0, _mm256_loadu_ps(w0 + o)));
                a1 = _mm256_add_ps(
                    a1,
                    _mm256_mul_ps(d0, _mm256_loadu_ps(w0 + o + 8)));
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(d1, _mm256_loadu_ps(w1 + o)));
                a1 = _mm256_add_ps(
                    a1,
                    _mm256_mul_ps(d1, _mm256_loadu_ps(w1 + o + 8)));
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(d2, _mm256_loadu_ps(w2 + o)));
                a1 = _mm256_add_ps(
                    a1,
                    _mm256_mul_ps(d2, _mm256_loadu_ps(w2 + o + 8)));
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(d3, _mm256_loadu_ps(w3 + o)));
                a1 = _mm256_add_ps(
                    a1,
                    _mm256_mul_ps(d3, _mm256_loadu_ps(w3 + o + 8)));
                _mm256_storeu_ps(dst + o, a0);
                _mm256_storeu_ps(dst + o + 8, a1);
            }
            for (; o + 8 <= len; o += 8) {
                __m256 a0 = _mm256_loadu_ps(dst + o);
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(d0, _mm256_loadu_ps(w0 + o)));
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(d1, _mm256_loadu_ps(w1 + o)));
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(d2, _mm256_loadu_ps(w2 + o)));
                a0 = _mm256_add_ps(
                    a0, _mm256_mul_ps(d3, _mm256_loadu_ps(w3 + o)));
                _mm256_storeu_ps(dst + o, a0);
            }
            for (; o < len; ++o) {
                float acc = dst[o];
                acc += del[c] * w0[o];
                acc += del[c + 1] * w1[o];
                acc += del[c + 2] * w2[o];
                acc += del[c + 3] * w3[o];
                dst[o] = acc;
            }
        }
        for (; c < k; ++c) {
            const float d = del[c];
            const __m256 vd = _mm256_set1_ps(d);
            const float *w_row =
                weights + static_cast<int64_t>(pos[c]) * m + b0;
            int64_t o = 0;
            for (; o + 8 <= len; o += 8) {
                const __m256 acc = _mm256_add_ps(
                    _mm256_loadu_ps(dst + o),
                    _mm256_mul_ps(vd, _mm256_loadu_ps(w_row + o)));
                _mm256_storeu_ps(dst + o, acc);
            }
            for (; o < len; ++o)
                dst[o] += d * w_row[o];
        }
    }
}

} // namespace kernels
} // namespace reuse
