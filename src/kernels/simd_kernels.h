/**
 * @file
 * Internal declarations of the per-ISA kernel implementations.
 *
 * Each implementation family lives in its own translation unit
 * compiled with the matching -m flags (see CMakeLists.txt):
 * delta_kernels_avx2.cc, delta_kernels_avx512.cc,
 * delta_kernels_neon.cc.  The TUs only exist when the compiler
 * supports the flags (REUSE_KERNELS_HAVE_* macros); callers must
 * consult archCompiled()/archRunnable() before routing here.  This
 * header is kernel-layer internal — everything outside src/kernels
 * goes through the dispatching entry points in delta_kernels.h and
 * change_list.h.
 *
 * Bit-exactness contract: every function here performs the identical
 * floating-point operations in the identical per-output-element
 * order as the scalar reference (delta_kernels_scalar.cc /
 * the fused scalar scan in change_list.cc).  In particular the
 * multiply-accumulate is kept as separate mul + add vector ops (the
 * TUs are compiled with -ffp-contract=off so the compiler cannot
 * fuse them into FMA, which the reference, built for the baseline
 * ISA, does not use), and per-element accumulation stays a
 * sequential chain in ascending change order.
 */

#ifndef REUSE_DNN_KERNELS_SIMD_KERNELS_H
#define REUSE_DNN_KERNELS_SIMD_KERNELS_H

#include <cstdint>

#include "kernels/change_list.h"
#include "kernels/quant_scan.h"

namespace reuse {
namespace kernels {

struct Conv2dGeometry;
struct Conv3dGeometry;

#if defined(REUSE_KERNELS_HAVE_AVX2)

/**
 * Fused quantize-compare-compact scan, 8 lanes per iteration:
 * vpcmpeqd-style compare, movemask, and a shuffle-table compaction
 * store.  Writes at most kScanStoreSlack elements past the returned
 * count (the caller pre-sizes via ChangeList::beginScan()).
 */
ScanResult scanChangesAvx2(const float *input, int64_t n,
                           const QuantScanParams &q,
                           int32_t *prev_indices, int32_t *positions,
                           float *deltas);

/** FC/LSTM delta apply over outputs [begin, end), 32 floats/iter. */
void applyDeltasAvx2Range(const ChangeList &changes,
                          const float *weights, int64_t m,
                          int64_t begin, int64_t end, float *out);

#endif // REUSE_KERNELS_HAVE_AVX2

#if defined(REUSE_KERNELS_HAVE_AVX512)

/**
 * Fused scan, 16 lanes per iteration, compacting with masked
 * compress-store (writes exactly the changed lanes, no slack
 * needed beyond the shared contract).
 */
ScanResult scanChangesAvx512(const float *input, int64_t n,
                             const QuantScanParams &q,
                             int32_t *prev_indices,
                             int32_t *positions, float *deltas);

/** FC/LSTM delta apply over outputs [begin, end), 64 floats/iter. */
void applyDeltasAvx512Range(const ChangeList &changes,
                            const float *weights, int64_t m,
                            int64_t begin, int64_t end, float *out);

/**
 * Conv delta scatter over output channels [co_begin, co_end):
 * the strided per-channel output column is gathered, corrected with
 * the contiguous weight row, and scattered back, 16 channels per
 * vector (masked at the block tail).
 */
void applyConvDeltas2dAvx512(const ChangeList &changes,
                             const Conv2dGeometry &g,
                             const float *weights, int64_t co_begin,
                             int64_t co_end, float *out);

/** 3D variant of the gather/scatter conv delta apply. */
void applyConvDeltas3dAvx512(const ChangeList &changes,
                             const Conv3dGeometry &g,
                             const float *weights, int64_t co_begin,
                             int64_t co_end, float *out);

#endif // REUSE_KERNELS_HAVE_AVX512

#if defined(REUSE_KERNELS_HAVE_NEON)

/** Fused scan, 4 lanes per iteration (AArch64 builds only). */
ScanResult scanChangesNeon(const float *input, int64_t n,
                           const QuantScanParams &q,
                           int32_t *prev_indices, int32_t *positions,
                           float *deltas);

/** FC/LSTM delta apply over outputs [begin, end), 16 floats/iter. */
void applyDeltasNeonRange(const ChangeList &changes,
                          const float *weights, int64_t m,
                          int64_t begin, int64_t end, float *out);

#endif // REUSE_KERNELS_HAVE_NEON

} // namespace kernels
} // namespace reuse

#endif // REUSE_DNN_KERNELS_SIMD_KERNELS_H
