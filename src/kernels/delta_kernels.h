/**
 * @file
 * Delta-update kernels for the reuse hot path (Eq. 10:
 * z'_o = z_o + (c'_i - c_i) * W_io), behind runtime CPUID dispatch.
 *
 * Every kernel exists in several forms:
 *
 *  - a *scalar reference* (…Scalar), compiled with vectorization
 *    disabled, that performs the operations in the same per-output
 *    order the original interleaved code used;
 *  - a *blocked* form that applies the whole change list one output
 *    block (kDeltaBlockFloats floats, 4 KB) at a time with
 *    restrict-qualified unit-stride loops the compiler
 *    auto-vectorizes to its baseline ISA;
 *  - hand-written *intrinsic* forms (AVX2 / AVX-512 / NEON, see
 *    simd_kernels.h) selected at runtime by CPUID, which use the
 *    full vector width of the machine instead of the x86-64
 *    baseline the blocked form compiles to.
 *
 * All forms perform the identical floating-point operations in the
 * identical per-output-element order (separate mul + add, ascending
 * change order), so their results are bit-identical (fuzz-tested).
 * The dispatching entry points pick the implementation at runtime
 * (REUSE_KERNELS forces a family; see dispatch.h) and partition the
 * output range over the kernel thread pool when the update is large
 * enough (changed × outputs ≥ threshold), which also preserves
 * bit-exactness because chunk boundaries are deterministic and
 * disjoint.
 *
 * All kernels operate on raw pointers: weights are input-major
 * (weight(i, o) at w[i * m + o], the paper's interleaved Weights
 * Buffer layout), and the weight and output buffers must not alias.
 */

#ifndef REUSE_DNN_KERNELS_DELTA_KERNELS_H
#define REUSE_DNN_KERNELS_DELTA_KERNELS_H

#include <cstdint>

#include "kernels/change_list.h"
#include "kernels/dispatch.h"
#include "kernels/thread_pool.h"

namespace reuse {
namespace kernels {

/** Output-block size of the blocked kernels: 4 KB of float32. */
constexpr int64_t kDeltaBlockFloats = 1024;

/** Thread-pool chunk: 4 blocks (16 KB) per unit of work. */
constexpr int64_t kDeltaChunkFloats = 4 * kDeltaBlockFloats;

/** Output-channel block of the conv delta kernels. */
constexpr int64_t kConvCoBlock = 16;

// ---------------------------------------------------------------
// Fully-connected / LSTM-gate delta update:
//   out[o] += delta_c * w[pos_c * m + o]  for every change c.
// ---------------------------------------------------------------

/** Scalar reference: per change, one full sweep of the outputs. */
void applyDeltasScalar(const ChangeList &changes, const float *weights,
                       int64_t m, float *out);

/** Blocked + auto-vectorized form over outputs [begin, end). */
void applyDeltasBlockedRange(const ChangeList &changes,
                             const float *weights, int64_t m,
                             int64_t begin, int64_t end, float *out);

/** Blocked + auto-vectorized form over the whole output vector. */
void applyDeltasBlocked(const ChangeList &changes, const float *weights,
                        int64_t m, float *out);

/** Dispatched form (CPUID arch choice + optional threading). */
void applyDeltas(const ChangeList &changes, const float *weights,
                 int64_t m, float *out,
                 const DeltaDispatch &dispatch = defaultDispatch());

// ---------------------------------------------------------------
// From-scratch GEMV for the first execution of an FC layer:
//   out[o] = biases[o] + sum_i input[i] * w[i * m + o].
// Zero inputs are skipped (quantized inputs are frequently zero).
// The GEMV runs once per session (first frame / drift refresh), so
// it keeps the auto-vectorized blocked form for every non-scalar
// arch rather than carrying three hand-written variants.
// ---------------------------------------------------------------

/** Scalar reference: bias fill, then one row sweep per input. */
void gemvScalar(const float *input, int64_t n, const float *weights,
                const float *biases, int64_t m, float *out);

/** Blocked + vectorized form over the output range [begin, end). */
void gemvBlockedRange(const float *input, int64_t n,
                      const float *weights, const float *biases,
                      int64_t m, int64_t begin, int64_t end, float *out);

/** Dispatched form of the from-scratch GEMV. */
void gemv(const float *input, int64_t n, const float *weights,
          const float *biases, int64_t m, float *out,
          const DeltaDispatch &dispatch = defaultDispatch());

// ---------------------------------------------------------------
// Convolution delta scatter: every output neuron whose receptive
// field covers a changed input is corrected by delta * weight.
// Change positions are flat input indices (ci, y, x) / (ci, d, y, x)
// in row-major order, as produced by scanChanges() over the input
// volume.  The AVX-512 form gathers/scatters the strided per-channel
// output columns; AVX2 and NEON have no scatter, so those archs run
// the blocked form (see DESIGN.md §14 dispatch table).
// ---------------------------------------------------------------

/** Geometry of a 2D conv delta update (valid padding + stride). */
struct Conv2dGeometry {
    int64_t in_h = 0;          ///< Input height H.
    int64_t in_w = 0;          ///< Input width W.
    int64_t out_channels = 0;  ///< Output feature maps C_out.
    int64_t out_h = 0;         ///< Output height.
    int64_t out_w = 0;         ///< Output width.
    int64_t kernel = 0;        ///< Square kernel size K.
    int64_t stride = 0;        ///< Spatial stride.
};

/** Geometry of a 3D conv delta update (stride 1 + zero padding). */
struct Conv3dGeometry {
    int64_t in_d = 0;          ///< Input depth D.
    int64_t in_h = 0;          ///< Input height H.
    int64_t in_w = 0;          ///< Input width W.
    int64_t out_channels = 0;  ///< Output feature maps C_out.
    int64_t out_d = 0;         ///< Output depth.
    int64_t out_h = 0;         ///< Output height.
    int64_t out_w = 0;         ///< Output width.
    int64_t kernel = 0;        ///< Cubic kernel size K.
    int64_t pad = 0;           ///< Symmetric zero padding.
};

/** Scalar reference: change-major per-window scatter. */
void applyConvDeltas2dScalar(const ChangeList &changes,
                             const Conv2dGeometry &g,
                             const float *weights, float *out);

/**
 * Blocked form: sweeps the change list once per block of
 * kConvCoBlock output channels, so the touched output lines of a
 * channel block stay cached across spatially clustered changes.
 */
void applyConvDeltas2dBlocked(const ChangeList &changes,
                              const Conv2dGeometry &g,
                              const float *weights, float *out);

/** Dispatched form (implementation choice + optional threading). */
void applyConvDeltas2d(const ChangeList &changes,
                       const Conv2dGeometry &g, const float *weights,
                       float *out,
                       const DeltaDispatch &dispatch = defaultDispatch());

/** Scalar reference: change-major per-window scatter (3D). */
void applyConvDeltas3dScalar(const ChangeList &changes,
                             const Conv3dGeometry &g,
                             const float *weights, float *out);

/** Blocked form over output-channel blocks (3D). */
void applyConvDeltas3dBlocked(const ChangeList &changes,
                              const Conv3dGeometry &g,
                              const float *weights, float *out);

/** Dispatched form (3D). */
void applyConvDeltas3d(const ChangeList &changes,
                       const Conv3dGeometry &g, const float *weights,
                       float *out,
                       const DeltaDispatch &dispatch = defaultDispatch());

} // namespace kernels
} // namespace reuse

#endif // REUSE_DNN_KERNELS_DELTA_KERNELS_H
