/**
 * @file
 * Process-wide kernel dispatch configuration.
 *
 * One DeltaDispatch value names the implementation family
 * (KernelArch) every kernel entry point routes to, plus the
 * threading policy.  The default is computed once per process:
 * CPUID picks the widest compiled-and-runnable arch, and the
 * REUSE_KERNELS environment variable overrides it (falling back,
 * with a warning, when it names an arch this host cannot execute).
 */

#ifndef REUSE_DNN_KERNELS_DISPATCH_H
#define REUSE_DNN_KERNELS_DISPATCH_H

#include <cstdint>

#include "kernels/cpu_features.h"
#include "kernels/thread_pool.h"

namespace reuse {
namespace kernels {

/**
 * Default MAC threshold (changed × outputs) above which a dispatched
 * kernel partitions its output range across the thread pool.  Below
 * it, threading overhead exceeds the win.
 */
constexpr int64_t kDefaultParallelMacThreshold = 1 << 20;

/**
 * Runtime kernel-dispatch configuration.  The process-wide default
 * is read once from the environment: REUSE_KERNELS=
 * scalar|blocked|avx2|avx512|neon forces an implementation family,
 * REUSE_KERNEL_PAR_THRESHOLD overrides the threading threshold
 * (negative disables threading), and REUSE_KERNEL_THREADS sizes the
 * pool (see thread_pool.h).
 */
struct DeltaDispatch {
    /** Implementation family every kernel routes to. */
    KernelArch arch = KernelArch::Blocked;
    /** MAC count at which to thread; negative = never. */
    int64_t parallel_mac_threshold = kDefaultParallelMacThreshold;
    /** Pool to thread on; null = KernelThreadPool::global(). */
    KernelThreadPool *pool = nullptr;
};

/** Process-wide dispatch configuration (CPUID + env, cached). */
const DeltaDispatch &defaultDispatch();

} // namespace kernels
} // namespace reuse

#endif // REUSE_DNN_KERNELS_DISPATCH_H
