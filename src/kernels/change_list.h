/**
 * @file
 * Change-list batching for the reuse hot path.
 *
 * The paper's incremental update (Eq. 10) touches only the inputs
 * whose quantization index changed since the previous execution.  The
 * original software path interleaved the index comparison with the
 * delta application, so every changed input re-streamed the full
 * output vector.  The kernel layer splits the work in two phases:
 *
 *   1. scanChanges() walks the inputs once with a fused
 *      quantize-compare-compact loop: each element is quantized with
 *      hoisted quantizer parameters, compared against the buffered
 *      int32 index, and — when it changed by more than the
 *      near-match radius — compact-stored into the SoA change list,
 *      all in a single pass (SIMD variants use movemask compaction /
 *      compress-store; see simd_kernels.h);
 *   2. the apply kernels (delta_kernels.h) sweep the whole change
 *      list one output block at a time, so the output stays resident
 *      in L1 across all changed inputs.
 */

#ifndef REUSE_DNN_KERNELS_CHANGE_LIST_H
#define REUSE_DNN_KERNELS_CHANGE_LIST_H

#include <cstdint>

#include "common/aligned.h"
#include "kernels/dispatch.h"
#include "kernels/quant_scan.h"

namespace reuse {
namespace kernels {

/**
 * Store slack kept past the logical end of the change list: the
 * AVX2 compaction stores a full 8-lane vector at the write cursor
 * and advances it by the lane popcount, so up to 15 elements past
 * the final count are scribbled and must be backed by storage.
 */
constexpr int64_t kScanStoreSlack = 16;

/**
 * Compact list of changed inputs: parallel arrays of input positions
 * and centroid deltas (c'_i - c_i).  Structure-of-arrays so the apply
 * kernels read each with unit stride; storage is cache-line aligned
 * (common/aligned.h) and retained across frames.
 *
 * The logical element count is tracked separately from the storage
 * size so the compact-storing scan kernels can write through raw
 * pointers into pre-sized storage (beginScan()/endScan()) without a
 * per-frame zero-fill of the backing vectors.
 */
class ChangeList
{
  public:
    /** Number of changed inputs. */
    size_t size() const { return count_; }

    /** True when no input changed. */
    bool empty() const { return count_ == 0; }

    /** Changed input positions, ascending; `size()` valid entries. */
    const int32_t *positions() const { return positions_.data(); }

    /** Centroid delta per change; `size()` valid entries. */
    const float *deltas() const { return deltas_.data(); }

    /** Position of change `c`. */
    int32_t position(size_t c) const { return positions_[c]; }

    /** Delta of change `c`. */
    float delta(size_t c) const { return deltas_[c]; }

    /** Clears the list, keeping storage for the next frame. */
    void clear() { count_ = 0; }

    /** Appends one change, growing storage as needed. */
    void
    push(int32_t position, float delta)
    {
        if (count_ + kScanStoreSlack >= positions_.size())
            grow(count_ + kScanStoreSlack + 1);
        positions_[count_] = position;
        deltas_[count_] = delta;
        ++count_;
    }

    /** Drops all but the first `keep` changes (fault injection). */
    void
    truncate(size_t keep)
    {
        if (keep < count_)
            count_ = keep;
    }

    /**
     * Prepares the list for a scan over `n` inputs: clears it and
     * sizes the backing storage to `n` + kScanStoreSlack elements
     * (every input changed, plus compaction slack).  Returns the
     * write cursors for the scan kernels.
     */
    void
    beginScan(int64_t n, int32_t *&positions_out, float *&deltas_out)
    {
        count_ = 0;
        const size_t need =
            static_cast<size_t>(n) + kScanStoreSlack;
        if (positions_.size() < need)
            grow(need);
        positions_out = positions_.data();
        deltas_out = deltas_.data();
    }

    /** Commits the element count a scan produced. */
    void endScan(size_t count) { count_ = count; }

    /** Bytes currently held by the list's storage. */
    int64_t memoryBytes() const;

    /** Frees all storage (session eviction). */
    void releaseStorage();

  private:
    void grow(size_t need);

    AlignedVector<int32_t> positions_;
    AlignedVector<float> deltas_;
    size_t count_ = 0;
};

/** Outcome of one scanChanges() pass. */
struct ScanResult {
    /** Inputs whose index moved past the radius (== out.size()). */
    int64_t changed = 0;
    /**
     * Inputs whose index moved but stayed within the near-match
     * radius: they reuse the buffered representative, contributing
     * bounded error instead of a delta update.  Always 0 when
     * q.radius == 0.
     */
    int64_t near_matched = 0;
};

/**
 * Quantizes `input[0..n)`, writing the index of every element to
 * `indices` and its centroid value to `centroids`.  Used by the
 * first-execution (from-scratch) path.  Either output may be null to
 * skip it.
 */
void quantizeWithIndices(const float *input, int64_t n,
                         const QuantScanParams &q, int32_t *indices,
                         float *centroids);

/**
 * Scans one input vector against the buffered indices of the
 * previous execution in a single fused pass: quantize, compare,
 * compact.  For every element whose index moved by more than
 * `q.radius`, a (position, delta) entry is appended to `out` (delta
 * = centroid(new) - centroid(old)) and `prev_indices` is updated in
 * place; moves within the radius keep the buffered index as the
 * near-match representative and are only counted.  `out` is cleared
 * first; storage is retained across frames.
 *
 * The implementation family comes from `arch` (default: the
 * process-wide dispatch); every family produces bit-identical
 * outputs (fuzz-tested against the scalar reference).
 */
ScanResult scanChanges(const float *input, int64_t n,
                       const QuantScanParams &q,
                       int32_t *prev_indices, ChangeList &out,
                       KernelArch arch = defaultDispatch().arch);

} // namespace kernels
} // namespace reuse

#endif // REUSE_DNN_KERNELS_CHANGE_LIST_H
