/**
 * @file
 * Change-list batching for the reuse hot path.
 *
 * The paper's incremental update (Eq. 10) touches only the inputs
 * whose quantization index changed since the previous execution.  The
 * original software path interleaved the index comparison with the
 * delta application, so every changed input re-streamed the full
 * output vector.  The kernel layer splits the work in two phases:
 *
 *   1. scanChanges() walks the inputs once, quantizes them with
 *      hoisted quantizer parameters, compares against the buffered
 *      int32 indices (a SIMD-friendly compare loop) and emits a
 *      compact (index, delta) change list;
 *   2. the apply kernels (delta_kernels.h) sweep the whole change
 *      list one output block at a time, so the output stays resident
 *      in L1 across all changed inputs.
 */

#ifndef REUSE_DNN_KERNELS_CHANGE_LIST_H
#define REUSE_DNN_KERNELS_CHANGE_LIST_H

#include <cstdint>
#include <vector>

#include "kernels/quant_scan.h"

namespace reuse {
namespace kernels {

/**
 * Compact list of changed inputs: parallel arrays of input positions
 * and centroid deltas (c'_i - c_i).  Structure-of-arrays so the apply
 * kernels read each with unit stride.
 */
struct ChangeList {
    std::vector<int32_t> positions;  ///< Changed input positions.
    std::vector<float> deltas;       ///< Centroid delta per change.

    /** Number of changed inputs. */
    size_t size() const { return positions.size(); }

    /** True when no input changed. */
    bool empty() const { return positions.empty(); }

    /** Clears the list, keeping capacity for the next frame. */
    void
    clear()
    {
        positions.clear();
        deltas.clear();
    }

    /** Appends one change. */
    void
    push(int32_t position, float delta)
    {
        positions.push_back(position);
        deltas.push_back(delta);
    }

    /** Bytes currently held by the list (capacity, incl. scratch). */
    int64_t memoryBytes() const;

    /** Frees all storage (session eviction). */
    void releaseStorage();

    /**
     * Scratch for the scan's quantize pass; exposed so reuse states
     * can account for it, not part of the list proper.
     */
    std::vector<int32_t> scratch_indices;
};

/**
 * Quantizes `input[0..n)`, writing the index of every element to
 * `indices` and its centroid value to `centroids`.  Used by the
 * first-execution (from-scratch) path.  Either output may be null to
 * skip it.
 */
void quantizeWithIndices(const float *input, int64_t n,
                         const QuantScanParams &q, int32_t *indices,
                         float *centroids);

/**
 * Scans one input vector against the buffered indices of the
 * previous execution.
 *
 * Phase 1 quantizes all `n` inputs into `out.scratch_indices`;
 * phase 2 compares them against `prev_indices` and appends a
 * (position, delta) entry to `out` for every mismatch, updating
 * `prev_indices` in place.  `out` is cleared first; capacity is
 * retained across frames.
 *
 * @return The number of changed inputs (== out.size()).
 */
int64_t scanChanges(const float *input, int64_t n,
                    const QuantScanParams &q, int32_t *prev_indices,
                    ChangeList &out);

} // namespace kernels
} // namespace reuse

#endif // REUSE_DNN_KERNELS_CHANGE_LIST_H
