#include "obs/flight_recorder.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/json.h"
#include "common/logging.h"
#include "common/sync.h"
#include "obs/exemplar.h"
#include "obs/trace_exporter.h"
#include "obs/trace_recorder.h"

namespace reuse {
namespace obs {

namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
                                 SIGILL};

std::atomic<bool> installed_flag{false};
/** Set once the (single allowed) dump has been claimed. */
std::atomic<bool> dumped{false};

/**
 * Guards path/provider registration against dumpNow readers.  The
 * signal path avoids it after the initial atomic claim: by then
 * install()-time registration has already happened-before the crash.
 */
Mutex &
stateMu()
{
    static Mutex *mu = new Mutex();
    return *mu;
}

std::string &
dumpPath()
{
    static std::string *path = new std::string();
    return *path;
}

std::function<std::string()> &
metricsProvider()
{
    static std::function<std::string()> *fn =
        new std::function<std::string()>();
    return *fn;
}

bool
writeDump(const char *reason)
{
    std::string path;
    std::string metrics;
    {
        MutexLock lock(stateMu());
        path = dumpPath();
        if (metricsProvider())
            metrics = metricsProvider()();
    }
    if (path.empty())
        return false;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;

    TraceRecorder &rec = TraceRecorder::instance();
    out << "{\"postmortem\":{\"reason\":\""
        << jsonEscape(reason != nullptr ? reason : "unknown")
        << "\",\"tool\":\"reuse_dnn\"},\n\"metrics\":"
        << (metrics.empty() ? "null" : metrics) << ",\n";
    // The trace body supplies otherData/exemplars/traceEvents; splice
    // its object fields into ours (drop its outer braces).
    std::ostringstream body;
    TraceExporter::writeJson(body, rec.snapshot(), rec.sampleEvery(),
                             rec.droppedEvents(),
                             TraceExporter::ExemplarExport::capture());
    std::string body_str = body.str();
    // body_str is "{...}\n"; keep the inner "...".
    const size_t open = body_str.find('{');
    const size_t close = body_str.rfind('}');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open)
        return false;
    out << body_str.substr(open + 1, close - open - 1) << "}\n";
    return static_cast<bool>(out);
}

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV: return "SIGSEGV";
      case SIGABRT: return "SIGABRT";
      case SIGBUS: return "SIGBUS";
      case SIGFPE: return "SIGFPE";
      case SIGILL: return "SIGILL";
      default: return "unknown";
    }
}

extern "C" void
flightRecorderSignalHandler(int sig)
{
    if (!dumped.exchange(true, std::memory_order_acq_rel)) {
        char reason[64];
        std::snprintf(reason, sizeof(reason), "signal:%s",
                      signalName(sig));
        writeDump(reason);
    }
    // Restore default disposition and re-raise so the exit status /
    // core dump behave as if we were never here.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
}

void
crashHook(const char *msg)
{
    if (!dumped.exchange(true, std::memory_order_acq_rel))
        writeDump(msg);
}

} // namespace

void
FlightRecorder::install(const std::string &path)
{
    {
        MutexLock lock(stateMu());
        dumpPath() = path;
    }
    if (!installed_flag.exchange(true, std::memory_order_acq_rel)) {
        for (int sig : kFatalSignals)
            std::signal(sig, flightRecorderSignalHandler);
        setCrashHook(crashHook);
    }
}

void
FlightRecorder::setMetricsProvider(std::function<std::string()> fn)
{
    MutexLock lock(stateMu());
    metricsProvider() = std::move(fn);
}

bool
FlightRecorder::dumpNow(const char *reason)
{
    if (dumped.exchange(true, std::memory_order_acq_rel))
        return false;
    return writeDump(reason);
}

bool
FlightRecorder::installed()
{
    return installed_flag.load(std::memory_order_acquire);
}

void
FlightRecorder::resetForTest()
{
    dumped.store(false, std::memory_order_release);
    MutexLock lock(stateMu());
    dumpPath().clear();
    metricsProvider() = nullptr;
}

} // namespace obs
} // namespace reuse
