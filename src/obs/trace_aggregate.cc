#include "trace_aggregate.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace reuse {
namespace obs {

namespace {

int64_t
argInt(const JsonValue &args, const std::string &key)
{
    return args.has(key) ? args.at(key).asInt() : 0;
}

} // namespace

bool
aggregateTrace(const JsonValue &root, TraceAggregate *out,
               std::string *error)
{
    *out = TraceAggregate();
    if (!root.isObject() || !root.has("traceEvents") ||
        !root.at("traceEvents").isArray()) {
        *error = "not a trace-event document (no traceEvents array)";
        return false;
    }
    if (root.has("otherData")) {
        const JsonValue &other = root.at("otherData");
        if (other.has("sampleEvery")) {
            out->sampleEvery = static_cast<uint32_t>(
                other.at("sampleEvery").asInt());
        }
        if (other.has("droppedEvents")) {
            out->droppedEvents = static_cast<uint64_t>(
                other.at("droppedEvents").asInt());
        }
        if (other.has("exemplarsCommitted")) {
            out->exemplarsCommitted = static_cast<uint64_t>(
                other.at("exemplarsCommitted").asInt());
        }
        if (other.has("exemplarsDropped")) {
            out->exemplarsDropped = static_cast<uint64_t>(
                other.at("exemplarsDropped").asInt());
        }
        if (other.has("exemplarStagingOverflows")) {
            out->exemplarStagingOverflows = static_cast<uint64_t>(
                other.at("exemplarStagingOverflows").asInt());
        }
    }
    if (root.has("exemplars") && root.at("exemplars").isArray()) {
        out->hasExemplars = true;
        out->exemplarCount = static_cast<int64_t>(
            root.at("exemplars").asArray().size());
    }
    for (const JsonValue &ev : root.at("traceEvents").asArray()) {
        if (!ev.isObject() || !ev.has("name")) {
            *error = "event without a name";
            return false;
        }
        const std::string &name = ev.at("name").asString();
        KindTraceAgg &kind = out->kinds[name];
        kind.count += 1;
        if (ev.has("dur"))
            kind.durUs.push_back(ev.at("dur").asNumber());
        out->events += 1;

        if (name != "layer_exec" || !ev.has("args"))
            continue;
        const JsonValue &args = ev.at("args");
        // Steady state only: the paper defines similarity against the
        // previous execution, which a first/refresh execution lacks —
        // mirror ReuseStatsCollector and exclude them.
        if (argInt(args, "first") != 0)
            continue;
        const int32_t li =
            static_cast<int32_t>(argInt(args, "layer"));
        LayerTraceAgg &layer = out->layers[li];
        layer.layer = li;
        layer.spans += 1;
        layer.reuseSpans += argInt(args, "reuse") != 0 ? 1 : 0;
        layer.inputsChecked += argInt(args, "checked");
        layer.inputsChanged += argInt(args, "changed");
        layer.macsFull += argInt(args, "macs_full");
        layer.macsPerformed += argInt(args, "macs_performed");
        if (ev.has("dur"))
            layer.durUs.push_back(ev.at("dur").asNumber());
    }
    return true;
}

bool
validateTrace(const JsonValue &root, const JsonValue &schema,
              std::string *error)
{
    std::ostringstream why;
    if (!root.isObject()) {
        *error = "trace root is not an object";
        return false;
    }
    if (schema.has("requiredTop")) {
        for (const JsonValue &key :
             schema.at("requiredTop").asArray()) {
            if (!root.has(key.asString())) {
                *error = "missing top-level member \"" +
                         key.asString() + "\"";
                return false;
            }
        }
    }
    if (schema.has("otherData")) {
        if (!root.has("otherData") ||
            !root.at("otherData").isObject()) {
            *error = "missing otherData object";
            return false;
        }
        for (const JsonValue &key : schema.at("otherData").asArray()) {
            if (!root.at("otherData").has(key.asString())) {
                *error = "otherData lacks \"" + key.asString() + "\"";
                return false;
            }
        }
    }
    if (!root.has("traceEvents") || !root.at("traceEvents").isArray()) {
        *error = "missing traceEvents array";
        return false;
    }
    const JsonValue::Array &events = root.at("traceEvents").asArray();
    const JsonValue &known = schema.at("events");
    for (size_t i = 0; i < events.size(); ++i) {
        const JsonValue &ev = events[i];
        why.str("");
        why << "event " << i << ": ";
        if (!ev.isObject()) {
            *error = why.str() + "not an object";
            return false;
        }
        for (const char *field : {"name", "ph", "ts", "pid", "tid"}) {
            if (!ev.has(field)) {
                *error = why.str() + "missing \"" + field + "\"";
                return false;
            }
        }
        const std::string &name = ev.at("name").asString();
        if (!known.has(name)) {
            *error = why.str() + "unknown event name \"" + name + "\"";
            return false;
        }
        const JsonValue &spec = known.at(name);
        const std::string &ph = ev.at("ph").asString();
        if (spec.has("ph") && ph != spec.at("ph").asString()) {
            *error = why.str() + name + " has phase \"" + ph +
                     "\", schema expects \"" +
                     spec.at("ph").asString() + "\"";
            return false;
        }
        if (ph == "X" && !ev.has("dur")) {
            *error = why.str() + "complete event without \"dur\"";
            return false;
        }
        if (!ev.has("args") || !ev.at("args").isObject()) {
            *error = why.str() + "missing args object";
            return false;
        }
        if (spec.has("args")) {
            for (const JsonValue &arg : spec.at("args").asArray()) {
                if (!ev.at("args").has(arg.asString())) {
                    *error = why.str() + name + " lacks arg \"" +
                             arg.asString() + "\"";
                    return false;
                }
            }
        }
    }
    // Exemplar section: present only when capture was armed (legacy
    // traces stay valid without it), but when present it must match
    // the schema's exemplar spec exactly.
    if (schema.has("exemplars") && root.has("exemplars")) {
        if (!root.at("exemplars").isArray()) {
            *error = "\"exemplars\" is not an array";
            return false;
        }
        const JsonValue &spec = schema.at("exemplars");
        const JsonValue::Array &exemplars =
            root.at("exemplars").asArray();
        for (size_t i = 0; i < exemplars.size(); ++i) {
            const JsonValue &ex = exemplars[i];
            why.str("");
            why << "exemplar " << i << ": ";
            if (!ex.isObject()) {
                *error = why.str() + "not an object";
                return false;
            }
            if (spec.has("required")) {
                for (const JsonValue &key :
                     spec.at("required").asArray()) {
                    if (!ex.has(key.asString())) {
                        *error = why.str() + "missing \"" +
                                 key.asString() + "\"";
                        return false;
                    }
                }
            }
            if (spec.has("causes")) {
                for (const JsonValue &c : ex.at("causes").asArray()) {
                    bool known = false;
                    for (const JsonValue &k :
                         spec.at("causes").asArray())
                        known = known ||
                                k.asString() == c.asString();
                    if (!known) {
                        *error = why.str() + "unknown cause \"" +
                                 c.asString() + "\"";
                        return false;
                    }
                }
            }
            if (!spec.has("spanRequired"))
                continue;
            const JsonValue::Array &spans =
                ex.at("spans").asArray();
            for (size_t s = 0; s < spans.size(); ++s) {
                for (const JsonValue &key :
                     spec.at("spanRequired").asArray()) {
                    if (!spans[s].has(key.asString())) {
                        *error = why.str() + "span " +
                                 std::to_string(s) + " missing \"" +
                                 key.asString() + "\"";
                        return false;
                    }
                }
            }
        }
    }
    error->clear();
    return true;
}

double
tracePercentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    p = std::min(1.0, std::max(0.0, p));
    const size_t rank = std::min(
        samples.size() - 1,
        static_cast<size_t>(p * static_cast<double>(samples.size())));
    return samples[rank];
}

} // namespace obs
} // namespace reuse
