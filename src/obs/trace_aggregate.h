/**
 * @file
 * Aggregation and schema validation of exported trace files.
 *
 * tools/trace_report and the observability tests both reduce a
 * Chrome trace-event file (TraceExporter's output) back to per-layer
 * reuse numbers; this module holds that logic once so the CLI's
 * tables and the tests' 1%-agreement checks cannot drift apart.
 *
 * Validation checks a trace against the checked-in schema
 * (tools/trace_schema.json): required top-level members, known event
 * names, the expected phase per event and the required args per
 * event name.  The schema file is plain JSON, not JSON-Schema — the
 * repo parses its own output with its own parser (common/json.h).
 */

#ifndef REUSE_DNN_OBS_TRACE_AGGREGATE_H
#define REUSE_DNN_OBS_TRACE_AGGREGATE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace reuse {
namespace obs {

/** Steady-state reuse aggregate of one layer's layer_exec spans. */
struct LayerTraceAgg {
    int32_t layer = -1;
    /** Steady-state spans aggregated (first executions excluded). */
    int64_t spans = 0;
    /** Spans flagged reuse-enabled. */
    int64_t reuseSpans = 0;
    int64_t inputsChecked = 0;
    int64_t inputsChanged = 0;
    int64_t macsFull = 0;
    int64_t macsPerformed = 0;
    /** Span durations in microseconds (for percentiles). */
    std::vector<double> durUs;

    /** Input similarity: unchanged / checked (0 when nothing checked). */
    double similarity() const
    {
        return inputsChecked == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(inputsChanged) /
                               static_cast<double>(inputsChecked);
    }

    /** Computation reuse: avoided / full MACs. */
    double computationReuse() const
    {
        return macsFull == 0
                   ? 0.0
                   : 1.0 - static_cast<double>(macsPerformed) /
                               static_cast<double>(macsFull);
    }
};

/** Count + durations of one event name across the trace. */
struct KindTraceAgg {
    int64_t count = 0;
    std::vector<double> durUs;
};

/**
 * Whole-trace reduction: per-layer steady-state reuse plus per-kind
 * counts/durations.
 */
struct TraceAggregate {
    uint32_t sampleEvery = 0;
    uint64_t droppedEvents = 0;
    /** Total events in the trace. */
    int64_t events = 0;
    /** True when the trace carries an exemplar section. */
    bool hasExemplars = false;
    /** Exemplars present in the file's "exemplars" array. */
    int64_t exemplarCount = 0;
    /** Lifetime counters as exported (otherData). */
    uint64_t exemplarsCommitted = 0;
    uint64_t exemplarsDropped = 0;
    uint64_t exemplarStagingOverflows = 0;
    /** layer_exec reductions keyed by layer index (steady state). */
    std::map<int32_t, LayerTraceAgg> layers;
    /** All events keyed by name ("layer_exec", "eviction", ...). */
    std::map<std::string, KindTraceAgg> kinds;
};

/**
 * Reduces a parsed trace document into `out`.  Returns false (with
 * `error` set) when the document is not a trace-event file.
 */
bool aggregateTrace(const JsonValue &root, TraceAggregate *out,
                    std::string *error);

/**
 * Validates a parsed trace document against a parsed schema (see
 * tools/trace_schema.json).  On failure returns false and sets
 * `error` to the first violation, with the offending event index.
 */
bool validateTrace(const JsonValue &root, const JsonValue &schema,
                   std::string *error);

/** Nearest-rank percentile of `samples` (unsorted); 0 when empty. */
double tracePercentile(std::vector<double> samples, double p);

} // namespace obs
} // namespace reuse

#endif // REUSE_DNN_OBS_TRACE_AGGREGATE_H
