/**
 * @file
 * Tail-latency attribution: decomposes each captured exemplar's wall
 * time into named causes.
 *
 * tools/latency_doctor and the observability tests both reduce an
 * exemplar-bearing trace file (or a postmortem dump — same member
 * layout, see obs/flight_recorder.h) to a per-class cause table; this
 * module holds that reduction once so the CLI's numbers and the
 * tests' golden output cannot drift apart.
 *
 * The decomposition is exhaustive by construction: every microsecond
 * of an exemplar's submit-to-completion wall time lands in exactly
 * one bucket, and whatever the staged spans cannot explain is
 * reported explicitly as `unattributed` rather than silently folded
 * into a neighbouring cause.
 */

#ifndef REUSE_DNN_OBS_LATENCY_ATTRIBUTION_H
#define REUSE_DNN_OBS_LATENCY_ATTRIBUTION_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"

namespace reuse {
namespace obs {

/**
 * The named causes an exemplar's wall time is split across.  Order is
 * the presentation order of the doctor's tables.
 */
enum class AttrCause : uint8_t {
    /** Waiting in the home shard's run queue (no steal, no hop). */
    QueueWait,
    /** Queue wait of a frame that ultimately ran on a thief shard. */
    StealDelay,
    /** Queue wait of a frame that rode >=1 session migration. */
    Migration,
    /** Layer executions re-run from scratch by the drift policy. */
    DriftRefresh,
    /** First executions forced by an eviction re-warm. */
    RewarmRecompute,
    /** Genuine first executions (stream warm-up). */
    FirstExec,
    /** Steady-state layers that recomputed >50% of their MACs. */
    LowSimilarityRecompute,
    /** Steady-state layers riding the reuse fast path. */
    ReuseExec,
    /** Frame-exec time outside any layer span (dispatch, bookkeeping). */
    RuntimeOverhead,
    /** Wall time no staged span explains (reported, never hidden). */
    Unattributed,
    kCount,
};

constexpr size_t kAttrCauseCount =
    static_cast<size_t>(AttrCause::kCount);

/** Stable lowercase identifier ("queue_wait", "steal_delay", ...). */
const char *attrCauseName(AttrCause cause);

/** One exemplar's wall-time decomposition. */
struct ExemplarAttribution {
    uint64_t session = 0;
    uint64_t frame = 0;
    /** SLO class name as captured ("interactive", ...). */
    std::string sloClass;
    /** Commit causes as captured ("deadline_miss", ...). */
    std::vector<std::string> causes;
    /** Submit-to-completion wall time (0 for shed frames). */
    double wallUs = 0.0;
    /** True when the exemplar was a shed admission (no execution). */
    bool shed = false;
    /** True when the staging buffer overflowed for this frame. */
    bool truncated = false;
    /** Microseconds charged to each cause. */
    double causeUs[kAttrCauseCount] = {};

    /** Fraction of wall time explained by named causes (1 on 0 wall). */
    double attributedFraction() const;
};

/** Per-SLO-class rollup across every attributed exemplar. */
struct ClassAttribution {
    std::string name;
    /** Exemplars that executed (attributable wall time). */
    int64_t exemplars = 0;
    /** Shed exemplars (no wall time; counted, not attributed). */
    int64_t shed = 0;
    /** Exemplars whose staging buffer overflowed. */
    int64_t truncated = 0;
    double wallUsTotal = 0.0;
    double causeUsTotal[kAttrCauseCount] = {};
    /** Wall-time samples of executed exemplars (for percentiles). */
    std::vector<double> wallSamples;

    /** 1 - unattributed/wall over the class (1 when no wall time). */
    double attributedFraction() const;
};

/** Whole-file reduction. */
struct AttributionReport {
    /** True when the input was a postmortem dump. */
    bool postmortem = false;
    /** Postmortem reason ("signal:SIGSEGV", ...); "" for traces. */
    std::string reason;
    uint64_t committed = 0;
    uint64_t dropped = 0;
    uint64_t stagingOverflows = 0;
    std::vector<ExemplarAttribution> exemplars;
    /** Rollups keyed by class name. */
    std::map<std::string, ClassAttribution> classes;
};

/**
 * Reduces a parsed trace or postmortem document into `out`.  Returns
 * false (with `error` set) when the document carries no exemplars —
 * legacy traces are a diagnosable error, not a crash.
 */
bool attributeExemplars(const JsonValue &root, AttributionReport *out,
                        std::string *error);

/**
 * Decomposes one parsed exemplar object (the "exemplars" array
 * element shape of obs/trace_exporter.h) into `out`.  Exposed for
 * tests; attributeExemplars() is the file-level entry point.
 */
bool attributeOneExemplar(const JsonValue &ex, ExemplarAttribution *out,
                          std::string *error);

} // namespace obs
} // namespace reuse

#endif // REUSE_DNN_OBS_LATENCY_ATTRIBUTION_H
