/**
 * @file
 * Low-overhead, always-compiled-but-sampled span tracing for the
 * reuse hot path.
 *
 * Design (DESIGN.md §11):
 *  - Each thread owns one fixed-capacity ring of trace events.  The
 *    owning thread is the only writer; slots are seqlock-published
 *    (every field is a relaxed atomic, a per-slot sequence number is
 *    stored with release ordering after the payload), so concurrent
 *    snapshot readers are data-race-free (TSan-clean) and torn slots
 *    — a reader overlapping a wrap-around overwrite — are detected
 *    and skipped, never misreported.
 *  - Sampling is per *frame*: the Nth frame (REUSE_TRACE_SAMPLE=1/N,
 *    0 = off) traces every span it executes, so one sampled frame
 *    yields a complete submit → queue → per-layer kernel picture and
 *    per-layer similarity ratios aggregate without bias.  Unsampled
 *    frames pay one relaxed load and a thread-local check per
 *    potential span.
 *  - Rare events (evictions, drift refreshes, shed frames,
 *    corruption recoveries) are recorded whenever tracing is enabled
 *    at all, independent of frame sampling — losing them would blind
 *    exactly the investigations they exist for.
 *
 * The recorder is a process-wide singleton: spans from the serving
 * worker pool, the kernel thread pool and single-stream harness runs
 * all land in one trace, ordered by a global sequence number.
 */

#ifndef REUSE_DNN_OBS_TRACE_RECORDER_H
#define REUSE_DNN_OBS_TRACE_RECORDER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace reuse {
namespace obs {

/** Span taxonomy; names are stable identifiers in exported traces. */
enum class SpanKind : uint32_t {
    /** One frame entering the admission queue (instant; depth args). */
    FrameSubmit = 0,
    /** Submit-to-dequeue wait of one frame in the admission queue. */
    QueueWait,
    /** End-to-end execution of one frame against a session state. */
    FrameExec,
    /** One layer's execution inside a frame (similarity args). */
    LayerExec,
    /** Quantize + compare scan producing the change list. */
    LayerScan,
    /** Blocked delta-update apply of the change list. */
    LayerApply,
    /** From-scratch execution (cold state or refresh). */
    FirstExec,
    /** Intra-layer thread-pool dispatch of one parallel-for job. */
    PoolDispatch,
    /** DriftGuard forced a full refresh (instant). */
    DriftRefresh,
    /** A session's reuse buffers were evicted (instant). */
    Eviction,
    /** Corrupted session state detected and re-warmed (instant). */
    CorruptionRecovery,
    /** A frame was shed for overload (instant). */
    FrameShed,
    /** An idle worker stole a frame from another shard (instant). */
    Steal,
    /** A session migrated between shards (instant). */
    Migration,
    kCount,
};

/** Stable lowercase name of a span kind ("layer_exec", ...). */
const char *spanKindName(SpanKind kind);

/** True for kinds recorded as instants (no duration). */
bool isInstantKind(SpanKind kind);

/** Per-kind display names of the four generic args (nullptr = unused). */
struct SpanArgNames {
    const char *a = nullptr;
    const char *b = nullptr;
    const char *c = nullptr;
    const char *d = nullptr;
};
SpanArgNames spanArgNames(SpanKind kind);

/** Event flag bits (the `flags` field / exported "first" etc.). */
enum : uint32_t {
    kFlagFirstExecution = 1u << 0,
    kFlagReuseEnabled = 1u << 1,
    kFlagDriftRefresh = 1u << 2,
};

/**
 * One recorded span/instant, as copied out of a ring by snapshot().
 */
struct TraceEvent {
    /** Global publication order (1-based, gap-free per thread). */
    uint64_t seq = 0;
    SpanKind kind = SpanKind::FrameExec;
    /** Stable display id of the emitting thread (0-based). */
    uint32_t tid = 0;
    /** Nanoseconds since the recorder's epoch. */
    int64_t startNs = 0;
    /** Span duration (0 for instants). */
    int64_t durNs = 0;
    /** Layer index; -1 when the span is not layer-scoped. */
    int32_t layer = -1;
    uint32_t flags = 0;
    /** Generic args; meaning per kind (see spanArgNames). */
    int64_t a = 0;
    int64_t b = 0;
    int64_t c = 0;
    int64_t d = 0;
    /** Serving session id (0 outside the serving runtime). */
    uint64_t session = 0;
    /** Frame index within the session's stream. */
    uint64_t frame = 0;
};

/** Passed as `frame` when the caller has no stream frame index. */
constexpr uint64_t kAutoFrame = ~uint64_t{0};

/**
 * Process-wide trace recorder.  See file comment for the model.
 */
class TraceRecorder
{
  public:
    /** Default per-thread ring capacity (events). */
    static constexpr size_t kDefaultRingCapacity = 8192;

    /** The singleton (created on first use; never destroyed). */
    static TraceRecorder &instance();

    /**
     * Sets the frame-sampling divisor: every Nth frame is traced;
     * 0 disables tracing entirely.  Runtime-tunable at any point.
     */
    void setSampleEvery(uint32_t n)
    {
        sample_every_.store(n, std::memory_order_relaxed);
    }

    uint32_t sampleEvery() const
    {
        return sample_every_.load(std::memory_order_relaxed);
    }

    /** True when tracing is on at all (sample divisor != 0). */
    bool enabled() const { return sampleEvery() != 0; }

    /**
     * Decides whether the frame that is about to execute on this
     * thread is sampled (global frame counter modulo the divisor).
     * @param tick Receives the global frame index of this tick (used
     *   as the frame id when the caller has none); may be nullptr.
     */
    bool sampleFrameTick(uint64_t *tick = nullptr);

    /**
     * Sampling decision for frequent standalone events that are not
     * tied to a frame's execution (e.g. submit-side queue-depth
     * instants): same divisor, independent counter, so it never
     * perturbs which frames sampleFrameTick() selects.
     */
    bool sampleEventTick();

    /**
     * Ring capacity for threads that register *after* this call
     * (existing rings keep their size).  Testing/benching hook.
     */
    void setRingCapacity(size_t capacity)
    {
        ring_capacity_.store(capacity, std::memory_order_relaxed);
    }

    /** Appends one event to the calling thread's ring. */
    void record(const TraceEvent &ev);

    /**
     * Copies all published events out of every ring, ordered by
     * global sequence number.  Safe concurrently with writers; events
     * overwritten mid-copy are skipped, never torn.
     */
    std::vector<TraceEvent> snapshot() const;

    /** Events dropped to ring wrap-around since the last clear(). */
    uint64_t droppedEvents() const;

    /** Empties every ring and zeroes the drop counter. */
    void clear();

    /** Nanoseconds since the recorder's epoch (steady clock). */
    int64_t nowNs() const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
    }

    /** Converts a steady_clock time_point to epoch-relative ns. */
    int64_t toNs(std::chrono::steady_clock::time_point tp) const
    {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   tp - epoch_)
            .count();
    }

    /**
     * Parses a REUSE_TRACE_SAMPLE-style spec: "0" (off), "N" or
     * "1/N" (every Nth frame).  Returns false on malformed input.
     */
    static bool parseSampleSpec(const std::string &spec, uint32_t *out);

  private:
    TraceRecorder();

    struct ThreadRing;

    /** The calling thread's ring, registering it on first use. */
    ThreadRing &ring();

    std::chrono::steady_clock::time_point epoch_;
    std::atomic<uint32_t> sample_every_{0};
    std::atomic<size_t> ring_capacity_{kDefaultRingCapacity};
    std::atomic<uint64_t> frame_counter_{0};
    std::atomic<uint64_t> event_counter_{0};
    std::atomic<uint64_t> next_seq_{1};

    /**
     * Guards the rings_ *vector* only (registration vs traversal);
     * slot contents are seqlock-published atomics that writers update
     * without this lock.  Reader/writer: snapshot exports and drop
     * queries share, thread registration and clear() are exclusive.
     */
    mutable SharedMutex rings_mu_;
    std::vector<std::unique_ptr<ThreadRing>> rings_
        GUARDED_BY(rings_mu_);
};

struct ExemplarStaging;

/**
 * Per-thread frame trace context: which session/frame the spans
 * emitted on this thread belong to, whether the current frame is
 * sampled, and where exemplar staging writes land while the exemplar
 * recorder is armed.  Managed by FrameTraceScope; read by TraceSpan.
 */
struct FrameContext {
    int depth = 0;
    bool active = false;
    uint64_t session = 0;
    uint64_t frame = 0;
    /** Non-null while the current frame stages exemplar spans. */
    ExemplarStaging *staging = nullptr;
};

/** The calling thread's frame context (for tests/instrumentation). */
FrameContext &frameContext();

/** True when the current thread is inside a sampled frame. */
inline bool
traceActive()
{
    return frameContext().active;
}

/**
 * RAII scope around one frame's execution.  The outermost scope on a
 * thread makes the sampling decision, arms exemplar staging when the
 * exemplar recorder is armed, and emits a FrameExec span on exit;
 * nested scopes (the engine under the serving runtime) are
 * pass-throughs that keep the outer decision and identifiers.  The
 * staged spans survive scope exit in the thread-local buffer so the
 * caller can hand them to ExemplarRecorder::finishFrame().
 */
class FrameTraceScope
{
  public:
    /**
     * @param session Serving session id (0 for single-stream runs).
     * @param frame Frame index within the stream; kAutoFrame derives
     *   a process-global index (single-stream harness runs).
     */
    FrameTraceScope(uint64_t session, uint64_t frame);
    ~FrameTraceScope();

    FrameTraceScope(const FrameTraceScope &) = delete;
    FrameTraceScope &operator=(const FrameTraceScope &) = delete;

    /** True when this frame is being traced. */
    bool active() const { return frameContext().active; }

    /** True when this frame is staging exemplar spans. */
    bool staged() const { return frameContext().staging != nullptr; }

  private:
    bool outer_ = false;
    int64_t start_ = 0;
};

/**
 * RAII span: records [construction, destruction) when the thread is
 * inside a sampled frame and/or stages it when the frame is staging
 * exemplar spans, else costs two branches.
 */
class TraceSpan
{
  public:
    explicit TraceSpan(SpanKind kind, int32_t layer = -1);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attaches the kind-specific args (see spanArgNames). */
    void args(int64_t a, int64_t b = 0, int64_t c = 0, int64_t d = 0,
              uint32_t flags = 0)
    {
        a_ = a;
        b_ = b;
        c_ = c;
        d_ = d;
        flags_ = flags;
    }

    /**
     * True when someone consumes this span — the frame is trace-
     * sampled or staging exemplar spans — so callers know to compute
     * and attach args.  Exemplar capture with tracing off still needs
     * the per-layer MAC counts for reuse-ratio and attribution.
     */
    bool active() const { return active_ || staging_ != nullptr; }

  private:
    bool active_;
    ExemplarStaging *staging_;
    SpanKind kind_;
    int32_t layer_;
    int64_t start_ = 0;
    int64_t a_ = 0, b_ = 0, c_ = 0, d_ = 0;
    uint32_t flags_ = 0;
};

/**
 * Records a rare instant event (eviction, refresh, shed, ...).
 * Subject only to tracing being enabled, not to frame sampling; also
 * staged when the calling thread's frame is staging exemplar spans
 * (even with tracing off entirely).
 */
void recordInstant(SpanKind kind, int32_t layer = -1, int64_t a = 0,
                   int64_t b = 0, int64_t c = 0, int64_t d = 0,
                   uint64_t session = 0, uint64_t frame = 0);

/**
 * Records a span whose endpoints were measured externally (e.g. the
 * queue wait between submit and dequeue).  Subject to the calling
 * thread's frame-sampling decision.
 */
void recordSpanAt(SpanKind kind, int64_t start_ns, int64_t end_ns,
                  uint64_t session, uint64_t frame, int64_t a = 0,
                  int64_t b = 0);

} // namespace obs
} // namespace reuse

#endif // REUSE_DNN_OBS_TRACE_RECORDER_H
