#include "obs/exemplar.h"

#include <utility>

namespace reuse {
namespace obs {

ExemplarStaging &
exemplarStaging()
{
    static thread_local ExemplarStaging staging;
    return staging;
}

const char *
exemplarCauseName(uint32_t bit)
{
    switch (bit) {
      case kExemplarDeadlineMiss:
        return "deadline_miss";
      case kExemplarLatencyThreshold:
        return "latency_threshold";
      case kExemplarShed:
        return "shed";
      case kExemplarColdRewarm:
        return "cold_rewarm";
      case kExemplarLowReuse:
        return "low_reuse";
      default:
        return "unknown";
    }
}

ExemplarRecorder &
ExemplarRecorder::instance()
{
    // Leaked on purpose: worker threads may stage spans during
    // process teardown, same lifetime contract as TraceRecorder.
    static ExemplarRecorder *recorder = new ExemplarRecorder();
    return *recorder;
}

void
ExemplarRecorder::configure(const Policy &policy)
{
    {
        MutexLock lock(mu_);
        policy_ = policy;
        if (policy_.ringCapacity == 0)
            policy_.ringCapacity = 1;
        while (ring_.size() > policy_.ringCapacity)
            ring_.pop_front();
    }
    armed_.store(policy.armed, std::memory_order_release);
}

namespace {

/**
 * Steady-state reuse ratio over staged layer spans: 1 - performed
 * MACs / full MACs across non-first, reuse-enabled LayerExec spans.
 * Returns -1 when no such span was staged (all-first-exec frames and
 * reuse-disabled models are never "low reuse").
 */
double
stagedReuseRatio(const ExemplarStaging &staging)
{
    int64_t full = 0;
    int64_t performed = 0;
    for (uint32_t i = 0; i < staging.count; ++i) {
        const ExemplarSpan &s = staging.spans[i];
        if (s.kind != SpanKind::LayerExec)
            continue;
        if (s.flags & kFlagFirstExecution)
            continue;
        if (!(s.flags & kFlagReuseEnabled))
            continue;
        full += s.c;
        performed += s.d;
    }
    if (full <= 0)
        return -1.0;
    double ratio = 1.0 - static_cast<double>(performed) /
                             static_cast<double>(full);
    return ratio < 0.0 ? 0.0 : ratio;
}

} // namespace

uint32_t
ExemplarRecorder::finishFrame(const FrameMeta &meta)
{
    ExemplarStaging &staging = exemplarStaging();
    if (!armed()) {
        staging.reset();
        return 0;
    }
    if (staging.overflow > 0) {
        staging_overflows_.fetch_add(staging.overflow,
                                     std::memory_order_relaxed);
    }

    const int64_t latency_us = meta.completedMicros - meta.enqueuedMicros;
    const double reuse = stagedReuseRatio(staging);

    uint32_t causes = 0;
    if (meta.deadlineMicros > 0 && meta.completedMicros > meta.deadlineMicros)
        causes |= kExemplarDeadlineMiss;
    {
        MutexLock lock(mu_);
        const size_t cls = meta.sloClass < kMaxClasses ? meta.sloClass : 0;
        const int64_t threshold = policy_.latencyThresholdMicros[cls];
        if (threshold > 0 && latency_us > threshold)
            causes |= kExemplarLatencyThreshold;
        if (policy_.lowReuseFloor >= 0.0 && reuse >= 0.0 &&
            reuse < policy_.lowReuseFloor) {
            causes |= kExemplarLowReuse;
        }
        if (meta.coldRewarm)
            causes |= kExemplarColdRewarm;

        if (causes == 0) {
            staging.reset();
            return 0;
        }

        Exemplar ex;
        ex.session = meta.session;
        ex.frame = meta.frame;
        ex.sloClass = meta.sloClass;
        ex.causes = causes;
        ex.truncated = staging.overflow > 0;
        ex.stolen = meta.stolen;
        ex.migrations = meta.migrations;
        ex.enqueuedMicros = meta.enqueuedMicros;
        ex.completedMicros = meta.completedMicros;
        ex.deadlineMicros = meta.deadlineMicros;
        ex.latencyUs = latency_us;
        ex.reuseRatio = reuse;
        ex.spans.assign(staging.spans, staging.spans + staging.count);
        commit(std::move(ex));
    }
    staging.reset();
    return causes;
}

void
ExemplarRecorder::recordShed(uint64_t session, uint8_t slo_class,
                             int64_t retry_after_us, int64_t now_micros)
{
    if (!armed())
        return;
    Exemplar ex;
    ex.session = session;
    ex.sloClass = slo_class;
    ex.causes = kExemplarShed;
    ex.enqueuedMicros = now_micros;
    ex.completedMicros = now_micros;
    // Shed frames never executed; stash the backoff hint where the
    // doctor can see it.
    ExemplarSpan span;
    span.kind = SpanKind::FrameShed;
    span.a = 0;
    span.b = retry_after_us;
    ex.spans.push_back(span);
    MutexLock lock(mu_);
    commit(std::move(ex));
}

void
ExemplarRecorder::commit(Exemplar &&ex)
{
    if (ring_.size() >= policy_.ringCapacity) {
        ring_.pop_front();
        dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    ring_.push_back(std::move(ex));
    committed_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<Exemplar>
ExemplarRecorder::snapshot() const
{
    MutexLock lock(mu_);
    return std::vector<Exemplar>(ring_.begin(), ring_.end());
}

std::string
ExemplarRecorder::className(uint8_t slo_class) const
{
    MutexLock lock(mu_);
    if (slo_class < policy_.classNames.size() &&
        !policy_.classNames[slo_class].empty()) {
        return policy_.classNames[slo_class];
    }
    return "class" + std::to_string(static_cast<int>(slo_class));
}

void
ExemplarRecorder::clear()
{
    MutexLock lock(mu_);
    ring_.clear();
    committed_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    staging_overflows_.store(0, std::memory_order_relaxed);
}

} // namespace obs
} // namespace reuse
