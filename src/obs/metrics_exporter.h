/**
 * @file
 * Metrics exposition: turns the repo-wide StatRegistry (into which
 * ServeMetrics, the serving runtime's per-layer session aggregates,
 * the engine's drift counters and the simulator all publish) into
 * Prometheus text format and JSON snapshots, and maintains
 * scrape-to-scrape EWMAs for the volatile per-layer gauges
 * (similarity, reuse, change-list occupancy).
 *
 * The exporter deliberately depends only on StatRegistry: producers
 * publish through their existing publishTo()/publishStats() paths, so
 * no producer grows a dependency on the obs layer for exposition (the
 * span tracing above is the only obs hook in the hot path).
 */

#ifndef REUSE_DNN_OBS_METRICS_EXPORTER_H
#define REUSE_DNN_OBS_METRICS_EXPORTER_H

#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/sync.h"

namespace reuse {
namespace obs {

/**
 * Prometheus/JSON exposition over a StatRegistry, with EWMA memory.
 */
class MetricsExporter
{
  public:
    struct Config {
        /** EWMA smoothing factor in (0, 1]; 1 = no smoothing. */
        double ewmaAlpha = 0.25;
        /**
         * Counter-name suffixes folded into EWMAs on each scrape()
         * (exposed as "<name>_ewma").
         */
        std::vector<std::string> ewmaSuffixes = {
            ".similarity", ".reuse", ".near_match", ".occupancy",
            ".drift_refresh_rate", ".burn_rate_fast",
            ".burn_rate_slow"};
        /** Metric-name prefix in the Prometheus exposition. */
        std::string promPrefix = "reuse_";
    };

    MetricsExporter() : MetricsExporter(Config()) {}
    explicit MetricsExporter(Config config)
        : config_(std::move(config))
    {
    }

    /**
     * Folds the matching gauges of `registry` into the exporter's
     * EWMAs (call once per scrape interval).
     */
    void scrape(const StatRegistry &registry);

    /**
     * Prometheus text exposition format: every counter as a gauge
     * (names sanitized, '.' → '_', prefixed), plus the "_ewma"
     * series accumulated by scrape().
     */
    std::string prometheusText(const StatRegistry &registry) const;

    /**
     * JSON snapshot: {"counters": {name: value}, "ewma": {...},
     * "scrapes": N}.
     */
    std::string jsonSnapshot(const StatRegistry &registry) const;

    /** Scrapes performed so far. */
    uint64_t scrapeCount() const
    {
        MutexLock lock(mu_);
        return scrapes_;
    }

    /**
     * Current EWMA of a counter name; `fallback` when the name was
     * never scraped.
     */
    double ewma(const std::string &name, double fallback = 0.0) const;

    /** Sanitizes a counter name into a Prometheus metric name. */
    static std::string promName(const std::string &name);

  private:
    bool tracked(const std::string &name) const;

    Config config_;
    /**
     * Guards the EWMA state: a periodic scrape() thread and on-demand
     * exposition readers (prometheusText/jsonSnapshot) would
     * otherwise race on the map.
     */
    mutable Mutex mu_;
    std::map<std::string, double> ewma_ GUARDED_BY(mu_);
    uint64_t scrapes_ GUARDED_BY(mu_) = 0;
};

} // namespace obs
} // namespace reuse

#endif // REUSE_DNN_OBS_METRICS_EXPORTER_H
