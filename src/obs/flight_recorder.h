/**
 * @file
 * Postmortem flight recorder: when the process dies — fatal signal,
 * fatal()/panic(), or an injected engine fatal — the in-memory trace
 * rings, the committed exemplar ring, and a metrics snapshot are
 * dumped to a file that latency_doctor and trace_report read offline.
 *
 * The dump is best-effort by design: it runs on the crashing thread,
 * takes the same locks snapshot() takes (trace rings are
 * seqlock-read, the exemplar ring takes a mutex — acceptable because
 * fatal paths are not lock-holding hot paths), and a reentrancy guard
 * makes a crash-during-dump terminate without recursing.  install()
 * claims the fatal-signal handlers (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/
 * SIGILL) and the common-layer crash hook, so both hardware faults
 * and REUSE_ASSERT/panic() produce the same artifact.
 */

#ifndef REUSE_DNN_OBS_FLIGHT_RECORDER_H
#define REUSE_DNN_OBS_FLIGHT_RECORDER_H

#include <functional>
#include <string>

namespace reuse {
namespace obs {

/**
 * Process-wide postmortem dumper.  All methods are static; state is
 * process-global because signal handlers cannot carry instance
 * pointers.
 */
class FlightRecorder
{
  public:
    /**
     * Arms the recorder: remembers `path`, installs the fatal-signal
     * handlers and the logging crash hook.  Call once near process
     * start; later calls re-point the output path.
     */
    static void install(const std::string &path);

    /**
     * Registers a callback producing a JSON object string (e.g. a
     * MetricsExporter snapshot) embedded as the dump's "metrics"
     * field.  Optional; the dump writes "null" without one.
     */
    static void setMetricsProvider(std::function<std::string()> fn);

    /**
     * Writes the postmortem dump now (also the crash path's entry
     * point).  Safe to call directly for tests and orderly shutdown
     * reports.  Returns false when disarmed, already dumped, or the
     * file cannot be written.
     */
    static bool dumpNow(const char *reason);

    /** True once install() ran (test hook). */
    static bool installed();

    /** Re-arms after a dump and clears the path (test hook). */
    static void resetForTest();
};

} // namespace obs
} // namespace reuse

#endif // REUSE_DNN_OBS_FLIGHT_RECORDER_H
