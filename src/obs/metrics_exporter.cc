#include "metrics_exporter.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace reuse {
namespace obs {

namespace {

/** Formats a double the way Prometheus expects (shortest exact-ish). */
std::string
formatValue(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

bool
MetricsExporter::tracked(const std::string &name) const
{
    for (const std::string &suffix : config_.ewmaSuffixes) {
        if (name.size() >= suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0)
            return true;
    }
    return false;
}

void
MetricsExporter::scrape(const StatRegistry &registry)
{
    MutexLock lock(mu_);
    for (const auto &[name, counter] : registry.all()) {
        if (!tracked(name))
            continue;
        const double v = counter.value();
        auto it = ewma_.find(name);
        if (it == ewma_.end())
            ewma_.emplace(name, v);
        else
            it->second = config_.ewmaAlpha * v +
                         (1.0 - config_.ewmaAlpha) * it->second;
    }
    ++scrapes_;
}

double
MetricsExporter::ewma(const std::string &name, double fallback) const
{
    MutexLock lock(mu_);
    auto it = ewma_.find(name);
    return it == ewma_.end() ? fallback : it->second;
}

std::string
MetricsExporter::promName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            out.push_back(c);
        else
            out.push_back('_');
    }
    // Metric names must not start with a digit.
    if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])))
        out.insert(out.begin(), '_');
    return out;
}

std::string
MetricsExporter::prometheusText(const StatRegistry &registry) const
{
    std::ostringstream os;
    for (const auto &[name, counter] : registry.all()) {
        const std::string metric = config_.promPrefix + promName(name);
        os << "# TYPE " << metric << " gauge\n"
           << metric << " " << formatValue(counter.value()) << "\n";
    }
    MutexLock lock(mu_);
    for (const auto &[name, value] : ewma_) {
        const std::string metric =
            config_.promPrefix + promName(name) + "_ewma";
        os << "# TYPE " << metric << " gauge\n"
           << metric << " " << formatValue(value) << "\n";
    }
    return os.str();
}

std::string
MetricsExporter::jsonSnapshot(const StatRegistry &registry) const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, counter] : registry.all()) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":" << formatValue(counter.value());
    }
    os << "},\"ewma\":{";
    first = true;
    MutexLock lock(mu_);
    for (const auto &[name, value] : ewma_) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << name << "\":" << formatValue(value);
    }
    os << "},\"scrapes\":" << scrapes_ << "}";
    return os.str();
}

} // namespace obs
} // namespace reuse
