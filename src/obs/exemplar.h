/**
 * @file
 * Retroactive tail-latency exemplar capture.
 *
 * The 1-in-N frame sampling of trace_recorder.h statistically misses
 * exactly the frames an on-call engineer needs: the p99 outliers.
 * This module captures them *after the fact*: while the exemplar
 * recorder is armed, every frame stages its spans (queue wait, steal
 * and migration hops, per-layer scan/apply/first-exec, drift
 * refreshes) in a small fixed-size thread-local buffer as a side
 * effect of the instrumentation that already exists for sampling.  On
 * completion the serving layer calls finishFrame(), which commits the
 * staged causal timeline to a bounded exemplar ring ONLY when the
 * frame was actually bad — it missed its deadline, exceeded its
 * class's latency threshold, ran cold after an eviction, or fell
 * under a reuse floor.  Healthy frames pay the staging writes and one
 * branch per span; nothing is allocated and no lock is taken.
 *
 * Layering: this header knows nothing about src/serve.  SLO classes
 * arrive as plain ordinals with caller-supplied display names, and
 * all timestamps are caller-supplied microseconds from the serving
 * clock seam (virtual in tests), so capture decisions are exactly
 * reproducible under tests/support/virtual_clock.h.
 */

#ifndef REUSE_DNN_OBS_EXEMPLAR_H
#define REUSE_DNN_OBS_EXEMPLAR_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/trace_recorder.h"

namespace reuse {
namespace obs {

/** One staged span inside an exemplar's causal timeline. */
struct ExemplarSpan {
    SpanKind kind = SpanKind::FrameExec;
    int32_t layer = -1;
    uint32_t flags = 0;
    /** Tracer-epoch nanoseconds (same timeline as exported traces). */
    int64_t startNs = 0;
    int64_t durNs = 0;
    /** Generic args; meaning per kind (see spanArgNames). */
    int64_t a = 0;
    int64_t b = 0;
    int64_t c = 0;
    int64_t d = 0;
};

/**
 * Per-thread staging buffer.  Fixed capacity: a frame is ~one span
 * per layer plus a handful of frame-level spans, so 96 slots hold any
 * zoo model; overflow truncates (counted, surfaced on the exemplar
 * and in trace_report) rather than allocating on the hot path.
 */
struct ExemplarStaging {
    static constexpr size_t kCapacity = 96;

    uint32_t count = 0;
    /** Spans that did not fit since the last reset. */
    uint32_t overflow = 0;
    ExemplarSpan spans[kCapacity];

    void reset()
    {
        count = 0;
        overflow = 0;
    }

    void add(const ExemplarSpan &span)
    {
        if (count >= kCapacity) {
            ++overflow;
            return;
        }
        spans[count++] = span;
    }
};

/** The calling thread's staging buffer (created on first use). */
ExemplarStaging &exemplarStaging();

/** Why an exemplar was committed (bitmask; a frame can have many). */
enum : uint32_t {
    kExemplarDeadlineMiss = 1u << 0,
    kExemplarLatencyThreshold = 1u << 1,
    kExemplarShed = 1u << 2,
    kExemplarColdRewarm = 1u << 3,
    kExemplarLowReuse = 1u << 4,
};

/** Stable lowercase name of one cause bit ("deadline_miss", ...). */
const char *exemplarCauseName(uint32_t bit);

/** One committed exemplar: a bad frame's full causal timeline. */
struct Exemplar {
    uint64_t session = 0;
    uint64_t frame = 0;
    /** SLO class ordinal (see ExemplarRecorder::Policy::classNames). */
    uint8_t sloClass = 0;
    /** OR of kExemplar* cause bits (never 0 on a committed record). */
    uint32_t causes = 0;
    /** True when the staging buffer overflowed (spans missing). */
    bool truncated = false;
    /** True when an idle worker stole the frame from its home shard. */
    bool stolen = false;
    /** Placement epochs the session crossed while this frame waited. */
    uint32_t migrations = 0;
    /** Serve-clock microseconds (virtual under the test clock). */
    int64_t enqueuedMicros = 0;
    int64_t completedMicros = 0;
    int64_t deadlineMicros = 0;
    /** Submit-to-completion latency (0 for shed frames). */
    int64_t latencyUs = 0;
    /**
     * Steady-state computation reuse over the staged layer spans
     * (first executions excluded); -1 when no steady span was staged.
     */
    double reuseRatio = -1.0;
    std::vector<ExemplarSpan> spans;
};

/**
 * Process-wide exemplar recorder.  configure() arms it; the serving
 * layer reports frame completions through finishFrame() and admission
 * sheds through recordShed().  Committed exemplars live in a bounded
 * ring (oldest evicted first, counted as dropped) until snapshot() or
 * clear().
 */
class ExemplarRecorder
{
  public:
    /** Maximum SLO class ordinals the policy tables cover. */
    static constexpr size_t kMaxClasses = 8;

    struct Policy {
        bool armed = false;
        /**
         * Per-class commit thresholds in microseconds; a completion
         * with latency strictly above its class threshold commits.
         * <= 0 disables the threshold cause for that class (deadline
         * misses still commit).
         */
        int64_t latencyThresholdMicros[kMaxClasses] = {0};
        /**
         * Commit steady-state frames whose computation reuse fell
         * strictly below this floor; < 0 disables the cause.
         */
        double lowReuseFloor = -1.0;
        /** Committed-exemplar ring capacity. */
        size_t ringCapacity = 256;
        /** Display names per class ordinal ("interactive", ...). */
        std::vector<std::string> classNames;
    };

    /** The singleton (created on first use; never destroyed). */
    static ExemplarRecorder &instance();

    /** Replaces the policy; arms/disarms staging process-wide. */
    void configure(const Policy &policy) EXCLUDES(mu_);

    /** True when frames must stage their spans (one relaxed load). */
    bool armed() const
    {
        return armed_.load(std::memory_order_relaxed);
    }

    /** Completion-side metadata supplied by the serving layer. */
    struct FrameMeta {
        uint64_t session = 0;
        uint64_t frame = 0;
        uint8_t sloClass = 0;
        int64_t enqueuedMicros = 0;
        int64_t completedMicros = 0;
        int64_t deadlineMicros = 0;
        /** Frame executed cold because its state had been evicted. */
        bool coldRewarm = false;
        bool stolen = false;
        uint32_t migrations = 0;
    };

    /**
     * Commit decision for the frame whose spans the calling thread
     * just staged (call after the frame's FrameTraceScope closed, on
     * the same thread).  Consumes and resets the staging buffer.
     * Returns the cause mask (0 = healthy, nothing committed).
     */
    uint32_t finishFrame(const FrameMeta &meta) EXCLUDES(mu_);

    /**
     * Commits a minimal exemplar for a frame shed at admission (no
     * spans — the frame never executed).
     */
    void recordShed(uint64_t session, uint8_t slo_class,
                    int64_t retry_after_us, int64_t now_micros)
        EXCLUDES(mu_);

    /** Copies the committed ring, oldest first. */
    std::vector<Exemplar> snapshot() const EXCLUDES(mu_);

    /** Display name of a class ordinal ("class<N>" when unnamed). */
    std::string className(uint8_t slo_class) const EXCLUDES(mu_);

    /** Exemplars committed since the last clear(). */
    uint64_t committed() const
    {
        return committed_.load(std::memory_order_relaxed);
    }

    /** Exemplars evicted from the full ring since the last clear(). */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Spans lost to staging-buffer overflow since the last clear(). */
    uint64_t stagingOverflows() const
    {
        return staging_overflows_.load(std::memory_order_relaxed);
    }

    /** Empties the ring and zeroes all counters (tests/benches). */
    void clear() EXCLUDES(mu_);

  private:
    ExemplarRecorder() = default;

    void commit(Exemplar &&ex) REQUIRES(mu_);

    std::atomic<bool> armed_{false};
    std::atomic<uint64_t> committed_{0};
    std::atomic<uint64_t> dropped_{0};
    std::atomic<uint64_t> staging_overflows_{0};

    mutable Mutex mu_;
    Policy policy_ GUARDED_BY(mu_);
    std::deque<Exemplar> ring_ GUARDED_BY(mu_);
};

} // namespace obs
} // namespace reuse

#endif // REUSE_DNN_OBS_EXEMPLAR_H
