#include "trace_recorder.h"

#include <algorithm>
#include <cstdlib>

#include "obs/exemplar.h"

namespace reuse {
namespace obs {

const char *
spanKindName(SpanKind kind)
{
    switch (kind) {
      case SpanKind::FrameSubmit: return "frame_submit";
      case SpanKind::QueueWait: return "queue_wait";
      case SpanKind::FrameExec: return "frame_exec";
      case SpanKind::LayerExec: return "layer_exec";
      case SpanKind::LayerScan: return "layer_scan";
      case SpanKind::LayerApply: return "layer_apply";
      case SpanKind::FirstExec: return "first_exec";
      case SpanKind::PoolDispatch: return "pool_dispatch";
      case SpanKind::DriftRefresh: return "drift_refresh";
      case SpanKind::Eviction: return "eviction";
      case SpanKind::CorruptionRecovery: return "corruption_recovery";
      case SpanKind::FrameShed: return "frame_shed";
      case SpanKind::Steal: return "steal";
      case SpanKind::Migration: return "migration";
      case SpanKind::kCount: break;
    }
    return "unknown";
}

bool
isInstantKind(SpanKind kind)
{
    switch (kind) {
      case SpanKind::FrameSubmit:
      case SpanKind::DriftRefresh:
      case SpanKind::Eviction:
      case SpanKind::CorruptionRecovery:
      case SpanKind::FrameShed:
      case SpanKind::Steal:
      case SpanKind::Migration:
        return true;
      default:
        return false;
    }
}

SpanArgNames
spanArgNames(SpanKind kind)
{
    switch (kind) {
      case SpanKind::LayerExec:
      case SpanKind::FirstExec:
        return {"checked", "changed", "macs_full", "macs_performed"};
      case SpanKind::LayerScan:
        return {"inputs", "changed", nullptr, nullptr};
      case SpanKind::LayerApply:
        return {"changes", "outputs", nullptr, nullptr};
      case SpanKind::FrameSubmit:
        return {"queue_depth", "pending", nullptr, nullptr};
      case SpanKind::PoolDispatch:
        return {"total", "grain", nullptr, nullptr};
      case SpanKind::Eviction:
        return {"bytes", "charged_bytes", nullptr, nullptr};
      case SpanKind::DriftRefresh:
        return {"executions_since_refresh", nullptr, nullptr, nullptr};
      case SpanKind::FrameShed:
        return {"pending", "retry_after_us", nullptr, nullptr};
      case SpanKind::Steal:
        return {"home_shard", "thief_shard", nullptr, nullptr};
      case SpanKind::Migration:
        return {"from_shard", "to_shard", nullptr, nullptr};
      default:
        return {};
    }
}

/**
 * Single-writer ring of seqlock-published slots.  Every slot field is
 * a relaxed atomic (data-race freedom); `seq` is written 0 (release)
 * before the payload and the event's global sequence (release) after
 * it, so a reader that sees the same non-zero seq before and after
 * copying the payload holds a consistent event.
 */
struct TraceRecorder::ThreadRing {
    struct Slot {
        std::atomic<uint64_t> seq{0};
        std::atomic<uint32_t> kind{0};
        std::atomic<int64_t> start_ns{0};
        std::atomic<int64_t> dur_ns{0};
        std::atomic<int32_t> layer{-1};
        std::atomic<uint32_t> flags{0};
        std::atomic<int64_t> a{0};
        std::atomic<int64_t> b{0};
        std::atomic<int64_t> c{0};
        std::atomic<int64_t> d{0};
        std::atomic<uint64_t> session{0};
        std::atomic<uint64_t> frame{0};
    };

    ThreadRing(uint32_t tid, size_t capacity)
        : tid(tid), slots(capacity)
    {
    }

    const uint32_t tid;
    std::vector<Slot> slots;
    /** Events ever written to this ring (head = written % capacity). */
    std::atomic<uint64_t> written{0};
    std::atomic<uint64_t> dropped{0};
};

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now())
{
    if (const char *spec = std::getenv("REUSE_TRACE_SAMPLE")) {
        uint32_t n = 0;
        if (parseSampleSpec(spec, &n))
            sample_every_.store(n, std::memory_order_relaxed);
    }
}

TraceRecorder &
TraceRecorder::instance()
{
    // Leaked on purpose: worker threads may trace during static
    // destruction of other objects.
    static TraceRecorder *recorder = new TraceRecorder();
    return *recorder;
}

bool
TraceRecorder::parseSampleSpec(const std::string &spec, uint32_t *out)
{
    std::string num = spec;
    const size_t slash = spec.find('/');
    if (slash != std::string::npos) {
        // "1/N" form: the numerator must literally be 1.
        if (spec.substr(0, slash) != "1")
            return false;
        num = spec.substr(slash + 1);
    }
    if (num.empty() ||
        num.find_first_not_of("0123456789") != std::string::npos)
        return false;
    const unsigned long v = std::strtoul(num.c_str(), nullptr, 10);
    if (v > 0xFFFFFFFFul)
        return false;
    *out = static_cast<uint32_t>(v);
    return true;
}

bool
TraceRecorder::sampleFrameTick(uint64_t *tick)
{
    const uint32_t every = sample_every_.load(std::memory_order_relaxed);
    if (every == 0)
        return false;
    const uint64_t n =
        frame_counter_.fetch_add(1, std::memory_order_relaxed);
    if (tick != nullptr)
        *tick = n;
    return n % every == 0;
}

bool
TraceRecorder::sampleEventTick()
{
    const uint32_t every = sample_every_.load(std::memory_order_relaxed);
    if (every == 0)
        return false;
    return event_counter_.fetch_add(1, std::memory_order_relaxed) %
               every ==
           0;
}

TraceRecorder::ThreadRing &
TraceRecorder::ring()
{
    thread_local ThreadRing *tls_ring = nullptr;
    if (tls_ring == nullptr) {
        WriterMutexLock lock(rings_mu_);
        const uint32_t tid = static_cast<uint32_t>(rings_.size());
        rings_.push_back(std::make_unique<ThreadRing>(
            tid, ring_capacity_.load(std::memory_order_relaxed)));
        tls_ring = rings_.back().get();
    }
    return *tls_ring;
}

void
TraceRecorder::record(const TraceEvent &ev)
{
    ThreadRing &r = ring();
    const size_t capacity = r.slots.size();
    if (capacity == 0)
        return;
    const uint64_t n = r.written.load(std::memory_order_relaxed);
    if (n >= capacity)
        r.dropped.fetch_add(1, std::memory_order_relaxed);
    ThreadRing::Slot &slot = r.slots[n % capacity];
    const uint64_t seq =
        next_seq_.fetch_add(1, std::memory_order_relaxed);

    slot.seq.store(0, std::memory_order_release);
    slot.kind.store(static_cast<uint32_t>(ev.kind),
                    std::memory_order_relaxed);
    slot.start_ns.store(ev.startNs, std::memory_order_relaxed);
    slot.dur_ns.store(ev.durNs, std::memory_order_relaxed);
    slot.layer.store(ev.layer, std::memory_order_relaxed);
    slot.flags.store(ev.flags, std::memory_order_relaxed);
    slot.a.store(ev.a, std::memory_order_relaxed);
    slot.b.store(ev.b, std::memory_order_relaxed);
    slot.c.store(ev.c, std::memory_order_relaxed);
    slot.d.store(ev.d, std::memory_order_relaxed);
    slot.session.store(ev.session, std::memory_order_relaxed);
    slot.frame.store(ev.frame, std::memory_order_relaxed);
    slot.seq.store(seq, std::memory_order_release);
    r.written.store(n + 1, std::memory_order_release);
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::vector<TraceEvent> events;
    ReaderMutexLock lock(rings_mu_);
    for (const auto &ring : rings_) {
        const size_t capacity = ring->slots.size();
        const uint64_t written =
            ring->written.load(std::memory_order_acquire);
        const uint64_t valid = std::min<uint64_t>(written, capacity);
        for (uint64_t i = 0; i < valid; ++i) {
            const ThreadRing::Slot &slot = ring->slots[i];
            const uint64_t seq0 =
                slot.seq.load(std::memory_order_acquire);
            if (seq0 == 0)
                continue; // empty or mid-write
            TraceEvent ev;
            ev.seq = seq0;
            ev.tid = ring->tid;
            ev.kind = static_cast<SpanKind>(
                slot.kind.load(std::memory_order_relaxed));
            ev.startNs = slot.start_ns.load(std::memory_order_relaxed);
            ev.durNs = slot.dur_ns.load(std::memory_order_relaxed);
            ev.layer = slot.layer.load(std::memory_order_relaxed);
            ev.flags = slot.flags.load(std::memory_order_relaxed);
            ev.a = slot.a.load(std::memory_order_relaxed);
            ev.b = slot.b.load(std::memory_order_relaxed);
            ev.c = slot.c.load(std::memory_order_relaxed);
            ev.d = slot.d.load(std::memory_order_relaxed);
            ev.session = slot.session.load(std::memory_order_relaxed);
            ev.frame = slot.frame.load(std::memory_order_relaxed);
            // Seqlock check: the slot was overwritten while we read
            // it iff the sequence changed; skip the torn copy.
            if (slot.seq.load(std::memory_order_acquire) != seq0)
                continue;
            events.push_back(ev);
        }
    }
    std::sort(events.begin(), events.end(),
              [](const TraceEvent &x, const TraceEvent &y) {
                  return x.seq < y.seq;
              });
    return events;
}

uint64_t
TraceRecorder::droppedEvents() const
{
    uint64_t total = 0;
    ReaderMutexLock lock(rings_mu_);
    for (const auto &ring : rings_)
        total += ring->dropped.load(std::memory_order_relaxed);
    return total;
}

void
TraceRecorder::clear()
{
    WriterMutexLock lock(rings_mu_);
    for (const auto &ring : rings_) {
        for (auto &slot : ring->slots)
            slot.seq.store(0, std::memory_order_release);
        ring->written.store(0, std::memory_order_release);
        ring->dropped.store(0, std::memory_order_relaxed);
    }
}

FrameContext &
frameContext()
{
    thread_local FrameContext ctx;
    return ctx;
}

FrameTraceScope::FrameTraceScope(uint64_t session, uint64_t frame)
{
    FrameContext &ctx = frameContext();
    outer_ = ctx.depth == 0;
    ++ctx.depth;
    if (!outer_)
        return;
    TraceRecorder &rec = TraceRecorder::instance();
    uint64_t tick = 0;
    ctx.active = rec.sampleFrameTick(&tick);
    if (ExemplarRecorder::instance().armed()) {
        ExemplarStaging &staging = exemplarStaging();
        staging.reset();
        ctx.staging = &staging;
    }
    if (!ctx.active && ctx.staging == nullptr)
        return;
    ctx.session = session;
    ctx.frame = frame == kAutoFrame ? tick : frame;
    start_ = rec.nowNs();
}

FrameTraceScope::~FrameTraceScope()
{
    FrameContext &ctx = frameContext();
    --ctx.depth;
    if (!outer_)
        return;
    if (ctx.active || ctx.staging != nullptr) {
        TraceRecorder &rec = TraceRecorder::instance();
        const int64_t end = rec.nowNs();
        if (ctx.staging != nullptr) {
            ExemplarSpan span;
            span.kind = SpanKind::FrameExec;
            span.startNs = start_;
            span.durNs = end - start_;
            ctx.staging->add(span);
        }
        if (ctx.active) {
            TraceEvent ev;
            ev.kind = SpanKind::FrameExec;
            ev.startNs = start_;
            ev.durNs = end - start_;
            ev.session = ctx.session;
            ev.frame = ctx.frame;
            rec.record(ev);
        }
    }
    // The staged spans stay in the thread-local buffer for the
    // caller's ExemplarRecorder::finishFrame(); only the pointer that
    // routes new spans into it is cleared here.
    ctx.active = false;
    ctx.staging = nullptr;
    ctx.session = 0;
    ctx.frame = 0;
}

TraceSpan::TraceSpan(SpanKind kind, int32_t layer)
    : active_(traceActive()), staging_(frameContext().staging),
      kind_(kind), layer_(layer)
{
    if (active_ || staging_ != nullptr)
        start_ = TraceRecorder::instance().nowNs();
}

TraceSpan::~TraceSpan()
{
    if (!active_ && staging_ == nullptr)
        return;
    TraceRecorder &rec = TraceRecorder::instance();
    const FrameContext &ctx = frameContext();
    const int64_t end = rec.nowNs();
    if (staging_ != nullptr) {
        ExemplarSpan span;
        span.kind = kind_;
        span.layer = layer_;
        span.flags = flags_;
        span.startNs = start_;
        span.durNs = end - start_;
        span.a = a_;
        span.b = b_;
        span.c = c_;
        span.d = d_;
        staging_->add(span);
    }
    if (!active_)
        return;
    TraceEvent ev;
    ev.kind = kind_;
    ev.startNs = start_;
    ev.durNs = end - start_;
    ev.layer = layer_;
    ev.flags = flags_;
    ev.a = a_;
    ev.b = b_;
    ev.c = c_;
    ev.d = d_;
    ev.session = ctx.session;
    ev.frame = ctx.frame;
    rec.record(ev);
}

void
recordInstant(SpanKind kind, int32_t layer, int64_t a, int64_t b,
              int64_t c, int64_t d, uint64_t session, uint64_t frame)
{
    TraceRecorder &rec = TraceRecorder::instance();
    ExemplarStaging *staging = frameContext().staging;
    if (!rec.enabled() && staging == nullptr)
        return;
    const int64_t now = rec.nowNs();
    if (staging != nullptr) {
        ExemplarSpan span;
        span.kind = kind;
        span.layer = layer;
        span.startNs = now;
        span.a = a;
        span.b = b;
        span.c = c;
        span.d = d;
        staging->add(span);
    }
    if (!rec.enabled())
        return;
    TraceEvent ev;
    ev.kind = kind;
    ev.startNs = now;
    ev.durNs = 0;
    ev.layer = layer;
    ev.a = a;
    ev.b = b;
    ev.c = c;
    ev.d = d;
    ev.session = session;
    ev.frame = frame;
    rec.record(ev);
}

void
recordSpanAt(SpanKind kind, int64_t start_ns, int64_t end_ns,
             uint64_t session, uint64_t frame, int64_t a, int64_t b)
{
    const FrameContext &ctx = frameContext();
    if (!ctx.active && ctx.staging == nullptr)
        return;
    TraceRecorder &rec = TraceRecorder::instance();
    const int64_t dur = end_ns > start_ns ? end_ns - start_ns : 0;
    if (ctx.staging != nullptr) {
        ExemplarSpan span;
        span.kind = kind;
        span.startNs = start_ns;
        span.durNs = dur;
        span.a = a;
        span.b = b;
        ctx.staging->add(span);
    }
    if (!ctx.active)
        return;
    TraceEvent ev;
    ev.kind = kind;
    ev.startNs = start_ns;
    ev.durNs = dur;
    ev.a = a;
    ev.b = b;
    ev.session = session;
    ev.frame = frame;
    rec.record(ev);
}

} // namespace obs
} // namespace reuse
