#include "trace_exporter.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace reuse {
namespace obs {

namespace {

/** Writes one microsecond value with sub-us (ns) precision. */
void
writeMicros(std::ostream &os, int64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    os << buf;
}

void
writeEvent(std::ostream &os, const TraceEvent &ev)
{
    const bool instant = ev.durNs == 0 && isInstantKind(ev.kind);
    os << "{\"name\":\"" << spanKindName(ev.kind)
       << "\",\"cat\":\"reuse\",\"ph\":\"" << (instant ? 'i' : 'X')
       << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":";
    writeMicros(os, ev.startNs);
    if (instant)
        os << ",\"s\":\"t\"";
    else {
        os << ",\"dur\":";
        writeMicros(os, ev.durNs);
    }
    os << ",\"args\":{";
    bool firstArg = true;
    auto arg = [&](const char *name, auto value) {
        if (name == nullptr)
            return;
        if (!firstArg)
            os << ",";
        firstArg = false;
        os << "\"" << name << "\":" << value;
    };
    if (ev.layer >= 0)
        arg("layer", ev.layer);
    const SpanArgNames names = spanArgNames(ev.kind);
    arg(names.a, ev.a);
    arg(names.b, ev.b);
    arg(names.c, ev.c);
    arg(names.d, ev.d);
    arg("session", ev.session);
    arg("frame", ev.frame);
    if (ev.kind == SpanKind::LayerExec ||
        ev.kind == SpanKind::FirstExec) {
        arg("first", (ev.flags & kFlagFirstExecution) ? 1 : 0);
        arg("reuse", (ev.flags & kFlagReuseEnabled) ? 1 : 0);
    }
    os << "}}";
}

/** Writes a double as a JSON number ("-1" for the n/a sentinel). */
void
writeRatio(std::ostream &os, double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    os << buf;
}

void
writeBody(std::ostream &os, const std::vector<TraceEvent> &events,
          uint32_t sample_every, uint64_t dropped,
          const TraceExporter::ExemplarExport *exemplars)
{
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"tool\":\"reuse_dnn\",\"sampleEvery\":" << sample_every
       << ",\"droppedEvents\":" << dropped;
    if (exemplars != nullptr) {
        os << ",\"exemplarsCommitted\":" << exemplars->committed
           << ",\"exemplarsDropped\":" << exemplars->dropped
           << ",\"exemplarStagingOverflows\":"
           << exemplars->stagingOverflows;
    }
    os << "}";
    if (exemplars != nullptr) {
        os << ",\"exemplars\":[";
        for (size_t i = 0; i < exemplars->exemplars.size(); ++i) {
            if (i != 0)
                os << ",";
            os << "\n";
            TraceExporter::writeExemplar(os, exemplars->exemplars[i]);
        }
        os << "\n]";
    }
    os << ",\"traceEvents\":[";
    for (size_t i = 0; i < events.size(); ++i) {
        if (i != 0)
            os << ",";
        os << "\n";
        writeEvent(os, events[i]);
    }
    os << "\n]}\n";
}

} // namespace

TraceExporter::ExemplarExport
TraceExporter::ExemplarExport::capture()
{
    const ExemplarRecorder &rec = ExemplarRecorder::instance();
    ExemplarExport out;
    out.exemplars = rec.snapshot();
    out.committed = rec.committed();
    out.dropped = rec.dropped();
    out.stagingOverflows = rec.stagingOverflows();
    return out;
}

void
TraceExporter::writeExemplar(std::ostream &os, const Exemplar &ex)
{
    os << "{\"session\":" << ex.session << ",\"frame\":" << ex.frame
       << ",\"class\":\""
       << ExemplarRecorder::instance().className(ex.sloClass)
       << "\",\"class_ordinal\":" << static_cast<int>(ex.sloClass)
       << ",\"causes\":[";
    bool first = true;
    for (uint32_t bit = 1; bit != 0 && bit <= ex.causes; bit <<= 1) {
        if (!(ex.causes & bit))
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << exemplarCauseName(bit) << "\"";
    }
    os << "],\"truncated\":" << (ex.truncated ? "true" : "false")
       << ",\"stolen\":" << (ex.stolen ? "true" : "false")
       << ",\"migrations\":" << ex.migrations
       << ",\"enqueued_us\":" << ex.enqueuedMicros
       << ",\"completed_us\":" << ex.completedMicros
       << ",\"deadline_us\":" << ex.deadlineMicros
       << ",\"latency_us\":" << ex.latencyUs << ",\"reuse_ratio\":";
    writeRatio(os, ex.reuseRatio);
    os << ",\"spans\":[";
    for (size_t i = 0; i < ex.spans.size(); ++i) {
        const ExemplarSpan &s = ex.spans[i];
        if (i != 0)
            os << ",";
        os << "{\"name\":\"" << spanKindName(s.kind) << "\",\"ts\":";
        writeMicros(os, s.startNs);
        os << ",\"dur\":";
        writeMicros(os, s.durNs);
        os << ",\"layer\":" << s.layer << ",\"flags\":" << s.flags
           << ",\"args\":{";
        const SpanArgNames names = spanArgNames(s.kind);
        bool firstArg = true;
        auto arg = [&](const char *name, int64_t value) {
            if (name == nullptr)
                return;
            if (!firstArg)
                os << ",";
            firstArg = false;
            os << "\"" << name << "\":" << value;
        };
        arg(names.a, s.a);
        arg(names.b, s.b);
        arg(names.c, s.c);
        arg(names.d, s.d);
        os << "}}";
    }
    os << "]}";
}

void
TraceExporter::writeJson(std::ostream &os,
                         const std::vector<TraceEvent> &events,
                         uint32_t sample_every, uint64_t dropped)
{
    writeBody(os, events, sample_every, dropped, nullptr);
}

void
TraceExporter::writeJson(std::ostream &os,
                         const std::vector<TraceEvent> &events,
                         uint32_t sample_every, uint64_t dropped,
                         const ExemplarExport &exemplars)
{
    writeBody(os, events, sample_every, dropped, &exemplars);
}

std::string
TraceExporter::exportString()
{
    TraceRecorder &rec = TraceRecorder::instance();
    std::ostringstream oss;
    writeJson(oss, rec.snapshot(), rec.sampleEvery(),
              rec.droppedEvents());
    return oss.str();
}

bool
TraceExporter::exportFile(const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("trace export: cannot write " + path);
        return false;
    }
    TraceRecorder &rec = TraceRecorder::instance();
    const ExemplarRecorder &exrec = ExemplarRecorder::instance();
    if (exrec.armed() || exrec.committed() > 0) {
        writeJson(out, rec.snapshot(), rec.sampleEvery(),
                  rec.droppedEvents(), ExemplarExport::capture());
    } else {
        writeJson(out, rec.snapshot(), rec.sampleEvery(),
                  rec.droppedEvents());
    }
    return static_cast<bool>(out);
}

} // namespace obs
} // namespace reuse
