#include "trace_exporter.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace reuse {
namespace obs {

namespace {

/** Writes one microsecond value with sub-us (ns) precision. */
void
writeMicros(std::ostream &os, int64_t ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                  static_cast<long long>(ns / 1000),
                  static_cast<long long>(ns % 1000));
    os << buf;
}

void
writeEvent(std::ostream &os, const TraceEvent &ev)
{
    const bool instant = ev.durNs == 0 && isInstantKind(ev.kind);
    os << "{\"name\":\"" << spanKindName(ev.kind)
       << "\",\"cat\":\"reuse\",\"ph\":\"" << (instant ? 'i' : 'X')
       << "\",\"pid\":1,\"tid\":" << ev.tid << ",\"ts\":";
    writeMicros(os, ev.startNs);
    if (instant)
        os << ",\"s\":\"t\"";
    else {
        os << ",\"dur\":";
        writeMicros(os, ev.durNs);
    }
    os << ",\"args\":{";
    bool firstArg = true;
    auto arg = [&](const char *name, auto value) {
        if (name == nullptr)
            return;
        if (!firstArg)
            os << ",";
        firstArg = false;
        os << "\"" << name << "\":" << value;
    };
    if (ev.layer >= 0)
        arg("layer", ev.layer);
    const SpanArgNames names = spanArgNames(ev.kind);
    arg(names.a, ev.a);
    arg(names.b, ev.b);
    arg(names.c, ev.c);
    arg(names.d, ev.d);
    arg("session", ev.session);
    arg("frame", ev.frame);
    if (ev.kind == SpanKind::LayerExec ||
        ev.kind == SpanKind::FirstExec) {
        arg("first", (ev.flags & kFlagFirstExecution) ? 1 : 0);
        arg("reuse", (ev.flags & kFlagReuseEnabled) ? 1 : 0);
    }
    os << "}}";
}

} // namespace

void
TraceExporter::writeJson(std::ostream &os,
                         const std::vector<TraceEvent> &events,
                         uint32_t sample_every, uint64_t dropped)
{
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{"
       << "\"tool\":\"reuse_dnn\",\"sampleEvery\":" << sample_every
       << ",\"droppedEvents\":" << dropped << "},\"traceEvents\":[";
    for (size_t i = 0; i < events.size(); ++i) {
        if (i != 0)
            os << ",";
        os << "\n";
        writeEvent(os, events[i]);
    }
    os << "\n]}\n";
}

std::string
TraceExporter::exportString()
{
    TraceRecorder &rec = TraceRecorder::instance();
    std::ostringstream oss;
    writeJson(oss, rec.snapshot(), rec.sampleEvery(),
              rec.droppedEvents());
    return oss.str();
}

bool
TraceExporter::exportFile(const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("trace export: cannot write " + path);
        return false;
    }
    TraceRecorder &rec = TraceRecorder::instance();
    writeJson(out, rec.snapshot(), rec.sampleEvery(),
              rec.droppedEvents());
    return static_cast<bool>(out);
}

} // namespace obs
} // namespace reuse
