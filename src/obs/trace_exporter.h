/**
 * @file
 * Serialization of recorded trace events to Chrome trace-event JSON
 * (the format chrome://tracing and Perfetto's legacy importer read).
 *
 * Spans become "ph":"X" complete events with microsecond ts/dur;
 * instants become "ph":"i" events with thread scope.  Kind-specific
 * args (layer, checked, changed, macs_full, macs_performed, session,
 * frame, first) ride in "args" so tools/trace_report — and ad-hoc
 * Perfetto queries — can aggregate per-layer reuse behaviour without
 * any side tables.
 */

#ifndef REUSE_DNN_OBS_TRACE_EXPORTER_H
#define REUSE_DNN_OBS_TRACE_EXPORTER_H

#include <ostream>
#include <string>
#include <vector>

#include "obs/exemplar.h"
#include "obs/trace_recorder.h"

namespace reuse {
namespace obs {

/**
 * Writes traces as Chrome trace-event JSON.
 */
class TraceExporter
{
  public:
    /** Serializes `events` (as returned by snapshot()) to `os`. */
    static void writeJson(std::ostream &os,
                          const std::vector<TraceEvent> &events,
                          uint32_t sample_every, uint64_t dropped);

    /** Committed exemplars plus their loss counters, for export. */
    struct ExemplarExport {
        std::vector<Exemplar> exemplars;
        uint64_t committed = 0;
        uint64_t dropped = 0;
        uint64_t stagingOverflows = 0;

        /** Snapshot of the process-wide exemplar recorder. */
        static ExemplarExport capture();
    };

    /**
     * As above, plus an "exemplars" array and the exemplar loss
     * counters in otherData (exemplarsCommitted, exemplarsDropped,
     * exemplarStagingOverflows).  Legacy readers ignore the extras.
     */
    static void writeJson(std::ostream &os,
                          const std::vector<TraceEvent> &events,
                          uint32_t sample_every, uint64_t dropped,
                          const ExemplarExport &exemplars);

    /** Writes one committed exemplar as a JSON object. */
    static void writeExemplar(std::ostream &os, const Exemplar &ex);

    /** Snapshot + serialize of the process-wide recorder. */
    static std::string exportString();

    /**
     * Snapshot + serialize to `path`.  Returns false (with a warning)
     * when the file cannot be written.
     */
    static bool exportFile(const std::string &path);
};

} // namespace obs
} // namespace reuse

#endif // REUSE_DNN_OBS_TRACE_EXPORTER_H
