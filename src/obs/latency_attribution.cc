#include "latency_attribution.h"

#include <algorithm>

#include "obs/trace_recorder.h"

namespace reuse {
namespace obs {

namespace {

double
numOr(const JsonValue &obj, const std::string &key, double fallback)
{
    return obj.has(key) && obj.at(key).isNumber()
               ? obj.at(key).asNumber()
               : fallback;
}

bool
hasCause(const ExemplarAttribution &attr, const char *cause)
{
    for (const std::string &c : attr.causes)
        if (c == cause)
            return true;
    return false;
}

void
charge(ExemplarAttribution *attr, AttrCause cause, double us)
{
    attr->causeUs[static_cast<size_t>(cause)] += us;
}

} // namespace

const char *
attrCauseName(AttrCause cause)
{
    switch (cause) {
      case AttrCause::QueueWait: return "queue_wait";
      case AttrCause::StealDelay: return "steal_delay";
      case AttrCause::Migration: return "migration";
      case AttrCause::DriftRefresh: return "drift_refresh";
      case AttrCause::RewarmRecompute: return "rewarm_recompute";
      case AttrCause::FirstExec: return "first_exec";
      case AttrCause::LowSimilarityRecompute:
        return "low_similarity_recompute";
      case AttrCause::ReuseExec: return "reuse_exec";
      case AttrCause::RuntimeOverhead: return "runtime_overhead";
      case AttrCause::Unattributed: return "unattributed";
      case AttrCause::kCount: break;
    }
    return "unknown";
}

double
ExemplarAttribution::attributedFraction() const
{
    if (wallUs <= 0.0)
        return 1.0;
    const double un =
        causeUs[static_cast<size_t>(AttrCause::Unattributed)];
    return std::max(0.0, 1.0 - un / wallUs);
}

double
ClassAttribution::attributedFraction() const
{
    if (wallUsTotal <= 0.0)
        return 1.0;
    const double un =
        causeUsTotal[static_cast<size_t>(AttrCause::Unattributed)];
    return std::max(0.0, 1.0 - un / wallUsTotal);
}

bool
attributeOneExemplar(const JsonValue &ex, ExemplarAttribution *out,
                     std::string *error)
{
    *out = ExemplarAttribution();
    if (!ex.isObject()) {
        *error = "exemplar is not an object";
        return false;
    }
    for (const char *field : {"session", "frame", "class", "causes",
                              "latency_us", "spans"}) {
        if (!ex.has(field)) {
            *error = std::string("exemplar lacks \"") + field + "\"";
            return false;
        }
    }
    out->session = static_cast<uint64_t>(ex.at("session").asInt());
    out->frame = static_cast<uint64_t>(ex.at("frame").asInt());
    out->sloClass = ex.at("class").asString();
    for (const JsonValue &c : ex.at("causes").asArray())
        out->causes.push_back(c.asString());
    out->wallUs = ex.at("latency_us").asNumber();
    out->truncated =
        ex.has("truncated") && ex.at("truncated").asBool();
    out->shed = hasCause(*out, "shed");
    if (out->shed) {
        // A shed frame never executed; there is no wall time to
        // decompose (the capture records the backoff hint instead).
        out->wallUs = 0.0;
        return true;
    }

    const bool stolen = ex.has("stolen") && ex.at("stolen").asBool();
    const bool migrated = numOr(ex, "migrations", 0.0) > 0.0;
    const bool cold = hasCause(*out, "cold_rewarm");

    double queueWaitUs = 0.0;
    double frameExecUs = 0.0;
    double layerUs = 0.0;
    for (const JsonValue &sp : ex.at("spans").asArray()) {
        if (!sp.isObject() || !sp.has("name")) {
            *error = "exemplar span without a name";
            return false;
        }
        const std::string &name = sp.at("name").asString();
        const double dur = numOr(sp, "dur", 0.0);
        if (name == "queue_wait") {
            queueWaitUs += dur;
        } else if (name == "frame_exec") {
            frameExecUs += dur;
        } else if (name == "layer_exec") {
            layerUs += dur;
            const uint32_t flags = static_cast<uint32_t>(
                numOr(sp, "flags", 0.0));
            if (flags & kFlagDriftRefresh) {
                charge(out, AttrCause::DriftRefresh, dur);
            } else if (flags & kFlagFirstExecution) {
                charge(out,
                       cold ? AttrCause::RewarmRecompute
                            : AttrCause::FirstExec,
                       dur);
            } else {
                // Steady state: split on how much of the layer's work
                // the scan actually avoided.
                double full = 0.0, performed = 0.0;
                if (sp.has("args")) {
                    const JsonValue &args = sp.at("args");
                    full = numOr(args, "macs_full", 0.0);
                    performed = numOr(args, "macs_performed", 0.0);
                }
                const bool lowSim =
                    full > 0.0 && performed / full > 0.5;
                charge(out,
                       lowSim ? AttrCause::LowSimilarityRecompute
                              : AttrCause::ReuseExec,
                       dur);
            }
        }
        // layer_scan/layer_apply/first_exec/drift_refresh nest inside
        // layer_exec and instants carry no duration: neither adds
        // wall time beyond what is charged above.
    }

    // The wait bucket is the queue-wait span, named for how the frame
    // reached its executing worker.
    const AttrCause wait = migrated ? AttrCause::Migration
                           : stolen ? AttrCause::StealDelay
                                    : AttrCause::QueueWait;
    charge(out, wait, queueWaitUs);
    // Frame-exec time no layer span explains: dispatch, validation,
    // state bookkeeping.  With a truncated staging buffer part of
    // this is really missing layer spans; the `truncated` flag keys
    // the caller to distrust the split, not the total.
    charge(out, AttrCause::RuntimeOverhead,
           std::max(0.0, frameExecUs - layerUs));
    // Whatever submit-to-completion time the staged spans do not
    // cover.  Kept explicit: a growing unattributed share means the
    // capture is missing an instrumentation point, which is exactly
    // what the doctor exists to surface.
    charge(out, AttrCause::Unattributed,
           std::max(0.0, out->wallUs - queueWaitUs - frameExecUs));
    return true;
}

bool
attributeExemplars(const JsonValue &root, AttributionReport *out,
                   std::string *error)
{
    *out = AttributionReport();
    if (!root.isObject()) {
        *error = "document root is not an object";
        return false;
    }
    if (root.has("postmortem")) {
        out->postmortem = true;
        const JsonValue &pm = root.at("postmortem");
        if (pm.isObject() && pm.has("reason"))
            out->reason = pm.at("reason").asString();
    }
    if (!root.has("exemplars") || !root.at("exemplars").isArray()) {
        *error = "document carries no exemplars (armed capture "
                 "required: REUSE_EXEMPLARS=1 or "
                 "Config::exemplars.enabled)";
        return false;
    }
    if (root.has("otherData") && root.at("otherData").isObject()) {
        const JsonValue &other = root.at("otherData");
        out->committed = static_cast<uint64_t>(
            numOr(other, "exemplarsCommitted", 0.0));
        out->dropped = static_cast<uint64_t>(
            numOr(other, "exemplarsDropped", 0.0));
        out->stagingOverflows = static_cast<uint64_t>(
            numOr(other, "exemplarStagingOverflows", 0.0));
    }
    for (const JsonValue &ex : root.at("exemplars").asArray()) {
        ExemplarAttribution attr;
        if (!attributeOneExemplar(ex, &attr, error))
            return false;
        ClassAttribution &cls = out->classes[attr.sloClass];
        cls.name = attr.sloClass;
        if (attr.shed) {
            cls.shed += 1;
        } else {
            cls.exemplars += 1;
            cls.wallUsTotal += attr.wallUs;
            cls.wallSamples.push_back(attr.wallUs);
            for (size_t c = 0; c < kAttrCauseCount; ++c)
                cls.causeUsTotal[c] += attr.causeUs[c];
        }
        if (attr.truncated)
            cls.truncated += 1;
        out->exemplars.push_back(std::move(attr));
    }
    return true;
}

} // namespace obs
} // namespace reuse
