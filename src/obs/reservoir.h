/**
 * @file
 * Sliding-window reservoir for gauge time series (queue depth,
 * change-list occupancy): keeps the last N observations and answers
 * quantile/mean/max queries over that window, so the metrics
 * exposition can report "queue depth p99 over the recent past"
 * instead of only an all-time peak.
 *
 * Mutex-guarded: observations arrive from serving submit paths at
 * frame rate (thousands per second), far below mutex contention
 * territory, and readers are scrape-rate cold paths.
 */

#ifndef REUSE_DNN_OBS_RESERVOIR_H
#define REUSE_DNN_OBS_RESERVOIR_H

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/sync.h"

namespace reuse {
namespace obs {

/**
 * Fixed-capacity sliding window over a stream of double samples.
 */
class SlidingWindowReservoir
{
  public:
    /** @param capacity Window size in samples (>= 1). */
    explicit SlidingWindowReservoir(size_t capacity = 1024)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
        window_.reserve(capacity_);
    }

    /** Adds one observation, evicting the oldest when full. */
    void observe(double v)
    {
        MutexLock lock(mu_);
        if (window_.size() < capacity_) {
            window_.push_back(v);
        } else {
            window_[next_] = v;
        }
        next_ = (next_ + 1) % capacity_;
        ++total_;
    }

    /** Samples currently in the window. */
    size_t size() const
    {
        MutexLock lock(mu_);
        return window_.size();
    }

    /** Observations ever made (including evicted ones). */
    uint64_t total() const
    {
        MutexLock lock(mu_);
        return total_;
    }

    /** Mean over the window (0 when empty). */
    double mean() const
    {
        MutexLock lock(mu_);
        if (window_.empty())
            return 0.0;
        double sum = 0.0;
        for (const double v : window_)
            sum += v;
        return sum / static_cast<double>(window_.size());
    }

    /** Largest sample in the window (0 when empty). */
    double max() const
    {
        MutexLock lock(mu_);
        return window_.empty()
                   ? 0.0
                   : *std::max_element(window_.begin(), window_.end());
    }

    /**
     * p-quantile over the window via nearest-rank on a sorted copy,
     * p in [0, 1]; 0 when empty.
     */
    double quantile(double p) const
    {
        MutexLock lock(mu_);
        if (window_.empty())
            return 0.0;
        std::vector<double> sorted(window_);
        std::sort(sorted.begin(), sorted.end());
        p = std::clamp(p, 0.0, 1.0);
        const size_t rank = std::min(
            sorted.size() - 1,
            static_cast<size_t>(p * static_cast<double>(sorted.size())));
        return sorted[rank];
    }

    /** Drops all samples. */
    void reset()
    {
        MutexLock lock(mu_);
        window_.clear();
        next_ = 0;
        total_ = 0;
    }

  private:
    const size_t capacity_;
    mutable Mutex mu_;
    std::vector<double> window_ GUARDED_BY(mu_);
    size_t next_ GUARDED_BY(mu_) = 0;
    uint64_t total_ GUARDED_BY(mu_) = 0;
};

} // namespace obs
} // namespace reuse

#endif // REUSE_DNN_OBS_RESERVOIR_H
