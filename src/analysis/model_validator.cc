#include "model_validator.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/fully_connected.h"
#include "nn/lstm.h"

namespace reuse {

namespace {

/** True when any dimension is non-positive (empty tensors cannot
 *  flow through the substrate). */
bool
degenerate(const Shape &shape)
{
    for (size_t i = 0; i < shape.rank(); ++i) {
        if (shape.dim(i) <= 0)
            return true;
    }
    return shape.numel() <= 0;
}

/**
 * Worst-case number of inputs feeding one output neuron (the fan-in
 * of the delta accumulation): every changed input contributes one
 * delta * weight term to an output.
 */
int64_t
deltaFanIn(const Layer &layer)
{
    switch (layer.kind()) {
      case LayerKind::FullyConnected:
        return static_cast<const FullyConnectedLayer &>(layer).inputs();
      case LayerKind::Conv2D: {
        const auto &conv = static_cast<const Conv2DLayer &>(layer);
        return conv.inChannels() * conv.kernel() * conv.kernel();
      }
      case LayerKind::Conv3D: {
        const auto &conv = static_cast<const Conv3DLayer &>(layer);
        return conv.inChannels() * conv.kernel() * conv.kernel() *
               conv.kernel();
      }
      case LayerKind::Lstm: {
        const auto &lstm = static_cast<const LstmLayer &>(layer);
        return lstm.inputDim() + lstm.cellDim();
      }
      case LayerKind::BiLstm: {
        const auto &lstm = static_cast<const BiLstmLayer &>(layer);
        return lstm.inputDim() + lstm.cellDim();
      }
      default:
        return 0;
    }
}

/** Checks one quantizer's range/step for usability (QP002). */
void
checkQuantizer(DiagnosticReport &report, const LinearQuantizer &q,
               const char *which, size_t li, const Layer &layer)
{
    std::ostringstream oss;
    if (!std::isfinite(q.rangeMin()) || !std::isfinite(q.rangeMax())) {
        oss << which << " quantizer range ["
            << q.rangeMin() << ", " << q.rangeMax() << "] is not finite";
    } else if (!(q.step() > 0.0f) || !std::isfinite(q.step())) {
        oss << which << " quantizer step " << q.step()
            << " is not a positive finite value";
    }
    if (!oss.str().empty()) {
        report.error(diag::kQuantizerInvalid, oss.str(),
                     static_cast<int>(li), layer.name());
    }
}

/**
 * Flags quantizers whose index range can overflow a 32-bit
 * fixed-point delta accumulator (RS003).  Worst case per output
 * neuron: every one of `fan_in` inputs moves across the whole index
 * range and each delta is scaled by the largest 8-bit weight code
 * (the Sec. VI-A reduced-precision accelerator).
 */
void
checkDeltaOverflow(DiagnosticReport &report, const LinearQuantizer &q,
                   const char *which, int64_t fan_in, size_t li,
                   const Layer &layer)
{
    if (fan_in <= 0)
        return;
    constexpr int64_t kMaxWeightCode = 127;  // 8-bit signed weights
    const int64_t worst_delta =
        static_cast<int64_t>(q.indexCount()) - 1;
    const int64_t accumulated = fan_in * worst_delta * kMaxWeightCode;
    if (accumulated >
        static_cast<int64_t>(std::numeric_limits<int32_t>::max())) {
        std::ostringstream oss;
        oss << which << " quantizer spans " << q.indexCount()
            << " indices; worst-case delta accumulation over fan-in "
            << fan_in << " (" << accumulated
            << ") overflows a 32-bit fixed-point accumulator — use "
               "fewer clusters or a narrower range";
        report.warning(diag::kDeltaOverflowRisk, oss.str(),
                       static_cast<int>(li), layer.name());
    }
}

} // namespace

bool
isIncrementallyUpdatable(LayerKind kind)
{
    switch (kind) {
      case LayerKind::FullyConnected:
      case LayerKind::Conv2D:
      case LayerKind::Conv3D:
      case LayerKind::Lstm:
      case LayerKind::BiLstm:
        return true;
      case LayerKind::MaxPool2D:
      case LayerKind::MaxPool3D:
      case LayerKind::Activation:
      case LayerKind::Flatten:
        return false;
    }
    return false;
}

DiagnosticReport
validateShapes(const Network &network)
{
    DiagnosticReport report;
    if (network.layerCount() == 0) {
        report.error(diag::kEmptyNetwork,
                     network.name() + ": network has no layers");
        return report;
    }
    if (degenerate(network.inputShape())) {
        report.error(diag::kDegenerateShape,
                     network.name() + ": input shape " +
                         network.inputShape().str() +
                         " has a non-positive dimension");
        return report;
    }
    Shape current = network.inputShape();
    for (size_t li = 0; li < network.layerCount(); ++li) {
        const Layer &layer = network.layer(li);
        const ShapeInference inf = layer.inferOutputShape(current);
        if (!inf.valid()) {
            report.error(diag::kShapeMismatch, inf.reason(),
                         static_cast<int>(li), layer.name());
            return report;  // downstream shapes are unknowable
        }
        if (degenerate(inf.shape())) {
            std::ostringstream oss;
            oss << layer.name() << ": output shape "
                << inf.shape().str() << " has a non-positive dimension";
            report.error(diag::kDegenerateShape, oss.str(),
                         static_cast<int>(li), layer.name());
            return report;
        }
        current = inf.shape();
    }
    return report;
}

DiagnosticReport
validateReuseSafety(const Network &network, const QuantizationPlan &plan)
{
    DiagnosticReport report;
    if (plan.size() != network.layerCount()) {
        std::ostringstream oss;
        oss << network.name() << ": plan covers " << plan.size()
            << " layers but the network has " << network.layerCount();
        report.error(diag::kPlanSizeMismatch, oss.str());
        return report;
    }
    for (size_t li = 0; li < network.layerCount(); ++li) {
        const LayerQuantization &lq = plan.layer(li);
        if (!lq.enabled())
            continue;
        const Layer &layer = network.layer(li);
        if (!isIncrementallyUpdatable(layer.kind())) {
            std::ostringstream oss;
            oss << layer.name() << " (" << layerKindName(layer.kind())
                << ") is not incrementally updatable: Eq. 10 only "
                   "holds for layers linear in their inputs; this "
                   "layer must be recomputed from scratch";
            report.error(diag::kReuseOnUnsafeLayer, oss.str(),
                         static_cast<int>(li), layer.name());
            continue;
        }
        const bool recurrent = layer.kind() == LayerKind::Lstm ||
                               layer.kind() == LayerKind::BiLstm;
        if (recurrent && !lq.recurrent.has_value()) {
            std::ostringstream oss;
            oss << layer.name()
                << ": recurrent layer enabled without a quantizer "
                   "for the hidden-state inputs h_{t-1}";
            report.error(diag::kMissingRecurrentQuantizer, oss.str(),
                         static_cast<int>(li), layer.name());
        }
        const int64_t fan_in = deltaFanIn(layer);
        checkQuantizer(report, *lq.input, "input", li, layer);
        checkDeltaOverflow(report, *lq.input, "input", fan_in, li,
                           layer);
        if (recurrent && lq.recurrent.has_value()) {
            checkQuantizer(report, *lq.recurrent, "recurrent", li,
                           layer);
            checkDeltaOverflow(report, *lq.recurrent, "recurrent",
                               fan_in, li, layer);
        }
    }
    return report;
}

int64_t
estimateLayerStateBytes(const Layer &layer, const Shape &input,
                        const LayerQuantization &lq)
{
    if (!lq.enabled())
        return 0;
    constexpr int64_t kIdx = sizeof(int32_t);
    constexpr int64_t kVal = sizeof(float);
    switch (layer.kind()) {
      case LayerKind::FullyConnected: {
        // Previous quantized input indices + previous outputs.
        const auto &fc = static_cast<const FullyConnectedLayer &>(layer);
        return fc.inputs() * kIdx + fc.outputs() * kVal;
      }
      case LayerKind::Conv2D:
      case LayerKind::Conv3D: {
        // Previous indices of the whole input volume + previous
        // output volume.
        const ShapeInference inf = layer.inferOutputShape(input);
        if (!inf.valid())
            return 0;
        return input.numel() * kIdx + inf.shape().numel() * kVal;
      }
      case LayerKind::Lstm: {
        const auto &lstm = static_cast<const LstmLayer &>(layer);
        // Per cell: x indices, h indices, (h, c), four gate
        // pre-activation buffers.
        return lstm.inputDim() * kIdx +
               lstm.cellDim() * (kIdx + 2 * kVal +
                                 NumLstmGates * kVal);
      }
      case LayerKind::BiLstm: {
        const auto &lstm = static_cast<const BiLstmLayer &>(layer);
        const int64_t per_cell =
            lstm.inputDim() * kIdx +
            lstm.cellDim() * (kIdx + 2 * kVal + NumLstmGates * kVal);
        return 2 * per_cell;
      }
      default:
        return 0;
    }
}

int64_t
estimateReuseStateBytes(const Network &network,
                        const QuantizationPlan &plan)
{
    if (plan.size() != network.layerCount())
        return 0;
    const std::vector<Shape> inputs = network.layerInputShapes();
    int64_t total = 0;
    for (size_t li = 0; li < network.layerCount(); ++li) {
        total += estimateLayerStateBytes(network.layer(li), inputs[li],
                                         plan.layer(li));
    }
    return total;
}

DiagnosticReport
validateMemoryFootprint(const Network &network,
                        const QuantizationPlan &plan,
                        int64_t budget_bytes, bool emit_info)
{
    DiagnosticReport report;
    if (plan.size() != network.layerCount())
        return report;  // QP001 already reported by the safety pass
    const int64_t bytes = estimateReuseStateBytes(network, plan);
    if (emit_info) {
        std::ostringstream oss;
        oss << network.name() << ": one warm session holds " << bytes
            << " bytes of reuse state across " << plan.enabledCount()
            << " enabled layers";
        report.info(diag::kFootprintSummary, oss.str());
    }
    if (budget_bytes >= 0 && bytes > budget_bytes) {
        std::ostringstream oss;
        oss << network.name() << ": per-session reuse state (" << bytes
            << " bytes) exceeds the session-manager budget ("
            << budget_bytes
            << " bytes); the session would be admitted cold and "
               "evicted before ever reusing — raise the budget or "
               "disable reuse on the largest layers";
        report.error(diag::kFootprintOverBudget, oss.str());
    }
    return report;
}

DiagnosticReport
validateModel(const Network &network, const QuantizationPlan &plan,
              const ValidatorOptions &options)
{
    DiagnosticReport report = validateShapes(network);
    const bool shapes_ok = !report.hasErrors();
    if (shapes_ok && options.emitInfo) {
        std::ostringstream oss;
        oss << network.summary() << ", output "
            << network.outputShape().str();
        report.info(diag::kModelSummary, oss.str());
    }
    report.merge(validateReuseSafety(network, plan));
    if (shapes_ok) {
        report.merge(validateMemoryFootprint(network, plan,
                                             options.memoryBudgetBytes,
                                             options.emitInfo));
    }
    return report;
}

} // namespace reuse
