#include "model_validator.h"

#include <sstream>

#include "ir/graph.h"
#include "ir/passes.h"
#include "nn/fully_connected.h"
#include "nn/lstm.h"

namespace reuse {

bool
isIncrementallyUpdatable(LayerKind kind)
{
    return ir::isReuseEligible(kind);
}

DiagnosticReport
validateShapes(const Network &network)
{
    // The shape pass IS the validator's shape analysis: build a chain
    // graph over the network and let the IR propagate shapes.
    DiagnosticReport report;
    ir::Graph graph = ir::Graph::fromNetwork(network);
    ir::ShapeInferencePass().run(graph, report);
    return report;
}

DiagnosticReport
validateReuseSafety(const Network &network, const QuantizationPlan &plan)
{
    // Analysis-only run of the IR safety pass (no pinning): findings
    // keep their original severity.
    DiagnosticReport report;
    ir::Graph graph = ir::Graph::fromNetwork(network, plan);
    ir::ReuseSafetyPass().run(graph, report);
    return report;
}

int64_t
estimateLayerStateBytes(const Layer &layer, const Shape &input,
                        const LayerQuantization &lq)
{
    if (!lq.enabled())
        return 0;
    constexpr int64_t kIdx = sizeof(int32_t);
    constexpr int64_t kVal = sizeof(float);
    switch (layer.kind()) {
      case LayerKind::FullyConnected: {
        // Previous quantized input indices + previous outputs.
        const auto &fc = static_cast<const FullyConnectedLayer &>(layer);
        return fc.inputs() * kIdx + fc.outputs() * kVal;
      }
      case LayerKind::Conv2D:
      case LayerKind::Conv3D: {
        // Previous indices of the whole input volume + previous
        // output volume.
        const ShapeInference inf = layer.inferOutputShape(input);
        if (!inf.valid())
            return 0;
        return input.numel() * kIdx + inf.shape().numel() * kVal;
      }
      case LayerKind::Lstm: {
        const auto &lstm = static_cast<const LstmLayer &>(layer);
        // Per cell: x indices, h indices, (h, c), four gate
        // pre-activation buffers.
        return lstm.inputDim() * kIdx +
               lstm.cellDim() * (kIdx + 2 * kVal +
                                 NumLstmGates * kVal);
      }
      case LayerKind::BiLstm: {
        const auto &lstm = static_cast<const BiLstmLayer &>(layer);
        const int64_t per_cell =
            lstm.inputDim() * kIdx +
            lstm.cellDim() * (kIdx + 2 * kVal + NumLstmGates * kVal);
        return 2 * per_cell;
      }
      default:
        return 0;
    }
}

int64_t
estimateReuseStateBytes(const Network &network,
                        const QuantizationPlan &plan)
{
    if (plan.size() != network.layerCount())
        return 0;
    const std::vector<Shape> inputs = network.layerInputShapes();
    int64_t total = 0;
    for (size_t li = 0; li < network.layerCount(); ++li) {
        total += estimateLayerStateBytes(network.layer(li), inputs[li],
                                         plan.layer(li));
    }
    return total;
}

DiagnosticReport
validateMemoryFootprint(const Network &network,
                        const QuantizationPlan &plan,
                        int64_t budget_bytes, bool emit_info)
{
    DiagnosticReport report;
    if (plan.size() != network.layerCount())
        return report;  // QP001 already reported by the safety pass
    const int64_t bytes = estimateReuseStateBytes(network, plan);
    if (emit_info) {
        std::ostringstream oss;
        oss << network.name() << ": one warm session holds " << bytes
            << " bytes of reuse state across " << plan.enabledCount()
            << " enabled layers";
        report.info(diag::kFootprintSummary, oss.str());
    }
    if (budget_bytes >= 0 && bytes > budget_bytes) {
        std::ostringstream oss;
        oss << network.name() << ": per-session reuse state (" << bytes
            << " bytes) exceeds the session-manager budget ("
            << budget_bytes
            << " bytes); the session would be admitted cold and "
               "evicted before ever reusing — raise the budget or "
               "disable reuse on the largest layers";
        report.error(diag::kFootprintOverBudget, oss.str());
    }
    return report;
}

DiagnosticReport
validateModel(const Network &network, const QuantizationPlan &plan,
              const ValidatorOptions &options)
{
    DiagnosticReport report = validateShapes(network);
    const bool shapes_ok = !report.hasErrors();
    if (shapes_ok && options.emitInfo) {
        std::ostringstream oss;
        oss << network.summary() << ", output "
            << network.outputShape().str();
        report.info(diag::kModelSummary, oss.str());
    }
    report.merge(validateReuseSafety(network, plan));
    if (shapes_ok) {
        report.merge(validateMemoryFootprint(network, plan,
                                             options.memoryBudgetBytes,
                                             options.emitInfo));
    }
    return report;
}

} // namespace reuse
