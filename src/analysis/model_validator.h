/**
 * @file
 * Static model validator: analyzes a Network + QuantizationPlan
 * before any execution and produces a typed DiagnosticReport.
 *
 * Three passes (Sec. IV of the paper motivates each):
 *
 *  1. Shape inference & graph validation — walks the layer graph
 *     through Layer::inferOutputShape(), rejecting mismatched layer
 *     chains before any buffer is allocated (SH*).
 *
 *  2. Reuse-safety analysis — the incremental-update rule
 *     z'_o = z_o + (c'_i - c_i) * W_io (Eq. 10) is only sound for
 *     layers whose outputs are linear in their inputs (FC, conv,
 *     LSTM gate pre-activations).  The pass verifies the plan only
 *     enables reuse on such layers, that recurrent layers carry an
 *     h-quantizer, and that quantization ranges cannot overflow a
 *     32-bit fixed-point delta accumulation (QP*, RS*).
 *
 *  3. Memory-footprint estimation — computes the warm per-session
 *     ReuseState bytes from shapes and checks them against a
 *     SessionManager budget, so undersized budgets surface at load
 *     time instead of as runtime eviction thrash (MF*).
 *
 * The validator never terminates the process; callers decide what a
 * finding means (ReuseEngine construction treats errors as fatal,
 * session admission rejects, the validate_model CLI just prints).
 */

#ifndef REUSE_DNN_ANALYSIS_MODEL_VALIDATOR_H
#define REUSE_DNN_ANALYSIS_MODEL_VALIDATOR_H

#include <cstdint>

#include "analysis/diagnostics.h"
#include "nn/network.h"
#include "quant/quantization_plan.h"

namespace reuse {

/** Tunables of a full validateModel() run. */
struct ValidatorOptions {
    /**
     * Per-session reuse-state budget to check the footprint against;
     * negative skips the budget check (the footprint is still
     * estimated and reported as IN002).
     */
    int64_t memoryBudgetBytes = -1;
    /** Emit IN* informational diagnostics alongside findings. */
    bool emitInfo = true;
};

/**
 * True when the paper's incremental update (Eq. 10) is sound for
 * this layer kind: the layer's pre-activation outputs are linear in
 * its inputs.  Pooling, nonlinear activations and p-norm must be
 * recomputed from scratch (their cost is negligible; Sec. III).
 */
bool isIncrementallyUpdatable(LayerKind kind);

/** Pass 1: shape inference & graph validation (SH*). */
DiagnosticReport validateShapes(const Network &network);

/** Pass 2: reuse-safety analysis of the plan (QP*, RS*). */
DiagnosticReport validateReuseSafety(const Network &network,
                                     const QuantizationPlan &plan);

/**
 * Pass 3: memory-footprint estimation (MF*, IN002).  Requires a
 * shape-valid network (run validateShapes first).  `budget_bytes`
 * negative skips the budget comparison.
 */
DiagnosticReport validateMemoryFootprint(const Network &network,
                                         const QuantizationPlan &plan,
                                         int64_t budget_bytes,
                                         bool emit_info = true);

/**
 * Runs all three passes.  The memory pass is skipped when the shape
 * pass found errors (footprints cannot be computed from an invalid
 * graph).
 */
DiagnosticReport validateModel(const Network &network,
                               const QuantizationPlan &plan,
                               const ValidatorOptions &options = {});

/**
 * Estimated bytes of one warm ReuseState for this network + plan:
 * the per-layer previous-input index and previous-output buffers of
 * every enabled layer (Table III of the paper).  Matches
 * ReuseState::memoryBytes() after the first executed frame.
 * Requires a shape-valid network.
 */
int64_t estimateReuseStateBytes(const Network &network,
                                const QuantizationPlan &plan);

/**
 * Warm reuse-state bytes of one layer given its input shape; 0 when
 * the plan disables the layer or its kind holds no reuse state.
 */
int64_t estimateLayerStateBytes(const Layer &layer, const Shape &input,
                                const LayerQuantization &lq);

} // namespace reuse

#endif // REUSE_DNN_ANALYSIS_MODEL_VALIDATOR_H
