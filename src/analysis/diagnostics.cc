#include "diagnostics.h"

#include <sstream>

namespace reuse {

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info:
        return "info";
      case Severity::Warning:
        return "warning";
      case Severity::Error:
        return "error";
    }
    return "unknown";
}

std::string
Diagnostic::str() const
{
    std::ostringstream oss;
    oss << severityName(severity) << " " << id;
    if (layer >= 0) {
        oss << " [layer " << layer;
        if (!layerName.empty())
            oss << " " << layerName;
        oss << "]";
    }
    oss << ": " << message;
    return oss.str();
}

void
DiagnosticReport::add(Diagnostic diagnostic)
{
    diags_.push_back(std::move(diagnostic));
}

void
DiagnosticReport::error(const char *id, std::string message, int layer,
                        std::string layer_name)
{
    add({Severity::Error, id, std::move(message), layer,
         std::move(layer_name)});
}

void
DiagnosticReport::warning(const char *id, std::string message, int layer,
                          std::string layer_name)
{
    add({Severity::Warning, id, std::move(message), layer,
         std::move(layer_name)});
}

void
DiagnosticReport::info(const char *id, std::string message, int layer,
                       std::string layer_name)
{
    add({Severity::Info, id, std::move(message), layer,
         std::move(layer_name)});
}

void
DiagnosticReport::merge(const DiagnosticReport &other)
{
    diags_.insert(diags_.end(), other.diags_.begin(),
                  other.diags_.end());
}

size_t
DiagnosticReport::count(Severity severity) const
{
    size_t n = 0;
    for (const Diagnostic &d : diags_) {
        if (d.severity == severity)
            ++n;
    }
    return n;
}

const Diagnostic *
DiagnosticReport::find(const std::string &id) const
{
    for (const Diagnostic &d : diags_) {
        if (d.id == id)
            return &d;
    }
    return nullptr;
}

std::string
DiagnosticReport::str() const
{
    std::ostringstream oss;
    for (const Diagnostic &d : diags_)
        oss << d.str() << "\n";
    return oss.str();
}

} // namespace reuse
