/**
 * @file
 * Typed diagnostics produced by the static model analyzer.
 *
 * Every diagnostic carries a stable ID (documented in DESIGN.md), a
 * severity, and a locus (the layer index it refers to, or the whole
 * model).  Reports are plain values: the analyzer never terminates
 * the process, so callers can decide whether a finding is fatal
 * (engine construction), recoverable (session admission), or merely
 * informative (the validate_model CLI).
 */

#ifndef REUSE_DNN_ANALYSIS_DIAGNOSTICS_H
#define REUSE_DNN_ANALYSIS_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <vector>

namespace reuse {

/** Severity of one diagnostic. */
enum class Severity {
    Info,
    Warning,
    Error,
};

/** Human-readable severity name ("error", ...). */
const char *severityName(Severity severity);

/**
 * Stable diagnostic IDs.  Never renumber: tests, logs and operator
 * runbooks refer to these.  Families: SH* shape/graph validation,
 * QP* quantization-plan consistency, RS* reuse safety, MF* memory
 * footprint, IN* informational.
 */
namespace diag {

/** Network has no layers. */
inline constexpr const char *kEmptyNetwork = "SH001";
/** A layer rejects the shape produced by its predecessor. */
inline constexpr const char *kShapeMismatch = "SH002";
/** The network input (or a layer output) has a degenerate shape. */
inline constexpr const char *kDegenerateShape = "SH003";
/** Plan has a different layer count than the network. */
inline constexpr const char *kPlanSizeMismatch = "QP001";
/** An enabled layer's quantizer has an unusable range/step. */
inline constexpr const char *kQuantizerInvalid = "QP002";
/** Reuse enabled on a must-recompute (non-incremental) layer. */
inline constexpr const char *kReuseOnUnsafeLayer = "RS001";
/** Recurrent layer enabled without a recurrent quantizer. */
inline constexpr const char *kMissingRecurrentQuantizer = "RS002";
/** Quantization range risks overflowing delta accumulation. */
inline constexpr const char *kDeltaOverflowRisk = "RS003";
/** Per-session reuse state exceeds the memory budget. */
inline constexpr const char *kFootprintOverBudget = "MF001";
/** Model summary (layers, params, output shape). */
inline constexpr const char *kModelSummary = "IN001";
/** Estimated per-session reuse-state footprint. */
inline constexpr const char *kFootprintSummary = "IN002";

} // namespace diag

/** One finding of the static analyzer. */
struct Diagnostic {
    Severity severity = Severity::Info;
    /** Stable ID, e.g. "SH002". */
    std::string id;
    /** Human-readable description of the finding. */
    std::string message;
    /** Layer index the finding refers to; -1 = whole model. */
    int layer = -1;
    /** Name of that layer; empty for whole-model findings. */
    std::string layerName;

    /** One-line rendering: "error SH002 [layer 3 FC2]: ...". */
    std::string str() const;
};

/**
 * Ordered collection of diagnostics from one or more analyzer
 * passes.
 */
class DiagnosticReport
{
  public:
    /** Appends a diagnostic. */
    void add(Diagnostic diagnostic);

    /** Appends an error with the given ID and locus. */
    void error(const char *id, std::string message, int layer = -1,
               std::string layer_name = {});

    /** Appends a warning with the given ID and locus. */
    void warning(const char *id, std::string message, int layer = -1,
                 std::string layer_name = {});

    /** Appends an info finding with the given ID and locus. */
    void info(const char *id, std::string message, int layer = -1,
              std::string layer_name = {});

    /** Appends all diagnostics of `other`. */
    void merge(const DiagnosticReport &other);

    /** All findings, in emission order. */
    const std::vector<Diagnostic> &diagnostics() const
    {
        return diags_;
    }

    size_t size() const { return diags_.size(); }
    bool empty() const { return diags_.empty(); }

    /** Number of findings at the given severity. */
    size_t count(Severity severity) const;

    /** True when any finding is an error. */
    bool hasErrors() const { return count(Severity::Error) > 0; }

    /** True when a finding with this ID is present. */
    bool has(const std::string &id) const
    {
        return find(id) != nullptr;
    }

    /** First finding with this ID (nullptr when absent). */
    const Diagnostic *find(const std::string &id) const;

    /** Multi-line rendering, one diagnostic per line. */
    std::string str() const;

  private:
    std::vector<Diagnostic> diags_;
};

} // namespace reuse

#endif // REUSE_DNN_ANALYSIS_DIAGNOSTICS_H
