#include "linear_quantizer.h"

#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace reuse {

LinearQuantizer::LinearQuantizer(int clusters, float range_min,
                                 float range_max)
    : clusters_(clusters), range_min_(range_min), range_max_(range_max)
{
    REUSE_ASSERT(clusters > 0, "quantizer needs a positive cluster count");
    REUSE_ASSERT(range_max > range_min,
                 "quantizer range [" << range_min << ", " << range_max
                                     << "] is empty");
    step_ = (range_max_ - range_min_) / static_cast<float>(clusters_);
    min_index_ =
        static_cast<int32_t>(std::lround(range_min_ / step_));
    max_index_ =
        static_cast<int32_t>(std::lround(range_max_ / step_));
}

Tensor
LinearQuantizer::quantize(const Tensor &t) const
{
    Tensor out(t.shape());
    const kernels::QuantScanParams q = scanParams();
    const float *in = t.data().data();
    float *dst = out.data().data();
    for (int64_t i = 0; i < t.numel(); ++i)
        dst[i] = kernels::quantCentroid(q, kernels::quantIndex(q, in[i]));
    return out;
}

std::vector<int32_t>
LinearQuantizer::indices(const Tensor &t) const
{
    std::vector<int32_t> out(static_cast<size_t>(t.numel()));
    const kernels::QuantScanParams q = scanParams();
    const float *in = t.data().data();
    for (int64_t i = 0; i < t.numel(); ++i)
        out[static_cast<size_t>(i)] = kernels::quantIndex(q, in[i]);
    return out;
}

int
LinearQuantizer::indexBits() const
{
    int bits = 1;
    while ((1 << bits) < indexCount())
        ++bits;
    return bits;
}

std::string
LinearQuantizer::str() const
{
    std::ostringstream oss;
    oss << "LinearQuantizer(C=" << clusters_ << ", range=[" << range_min_
        << ", " << range_max_ << "], step=" << step_ << ")";
    return oss.str();
}

} // namespace reuse
