/**
 * @file
 * Automatic selection of the layers where input quantization (and
 * therefore computation reuse) is applied.
 *
 * Section III of the paper: quantizing every layer hurts accuracy
 * because early-layer errors propagate, so quantization is applied
 * selectively starting from the last (large) layer and extended
 * backwards layer by layer while the accuracy loss stays negligible.
 * Tiny output layers (EESEN FC1, AutoPilot FC5) are skipped since the
 * potential savings there are negligible.
 */

#ifndef REUSE_DNN_QUANT_LAYER_SELECTION_H
#define REUSE_DNN_QUANT_LAYER_SELECTION_H

#include <functional>
#include <vector>

#include "nn/network.h"
#include "quant/quantization_plan.h"
#include "quant/range_profiler.h"

namespace reuse {

/** Configuration for the backwards layer-selection search. */
struct LayerSelectionConfig {
    /** Clusters for the linear quantizers being trialled. */
    int clusters = 16;
    /** Maximum tolerated accuracy loss, percentage points. */
    double maxAccuracyLossPct = 1.5;
    /**
     * Reusable layers whose output dimension is at most this many
     * neurons are skipped as "fairly small" starting points.
     */
    int64_t minOutputNeurons = 64;
};

/** Outcome of the selection search. */
struct LayerSelectionResult {
    /** Indices of layers selected for quantization. */
    std::vector<size_t> selectedLayers;
    /** Accuracy loss (pct points) of the final selection. */
    double accuracyLossPct = 0.0;
    /** Plan built from the final selection. */
    QuantizationPlan plan;
};

/**
 * Callback evaluating a candidate plan; returns the accuracy loss in
 * percentage points (e.g. 0.47 for Kaldi in the paper).
 */
using AccuracyLossFn = std::function<double(const QuantizationPlan &)>;

/**
 * Greedy backwards search: orders the network's reusable layers from
 * last to first, skips trailing layers smaller than
 * `minOutputNeurons`, then extends the quantized set one layer at a
 * time while `loss_fn` stays within budget.  Returns the largest
 * in-budget selection found (extension stops at the first layer whose
 * inclusion overshoots the budget, mirroring the paper's procedure).
 */
LayerSelectionResult
selectLayersBackwards(const Network &network, const NetworkRanges &ranges,
                      const LayerSelectionConfig &config,
                      const AccuracyLossFn &loss_fn);

/**
 * Indices of the network's reusable layers in execution order.
 */
std::vector<size_t> reusableLayerIndices(const Network &network);

/** Output-neuron count of layer `li` given the network input shape. */
int64_t layerOutputNeurons(const Network &network, size_t li);

} // namespace reuse

#endif // REUSE_DNN_QUANT_LAYER_SELECTION_H
