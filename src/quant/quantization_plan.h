/**
 * @file
 * Per-layer quantization configuration of a network.
 *
 * A QuantizationPlan records, for every layer, whether input
 * quantization (and therefore computation reuse) is applied and with
 * which quantizer.  Recurrent layers carry a second quantizer for the
 * hidden-state inputs h_{t-1}.
 */

#ifndef REUSE_DNN_QUANT_QUANTIZATION_PLAN_H
#define REUSE_DNN_QUANT_QUANTIZATION_PLAN_H

#include <optional>
#include <vector>

#include "nn/network.h"
#include "quant/linear_quantizer.h"
#include "quant/range_profiler.h"

namespace reuse {

/** Quantization setting of one layer. */
struct LayerQuantization {
    /** Quantizer for the layer's (feed-forward) inputs. */
    std::optional<LinearQuantizer> input;
    /** Quantizer for recurrent inputs (BiLSTM only). */
    std::optional<LinearQuantizer> recurrent;

    /** True when reuse/quantization is applied to this layer. */
    bool enabled() const { return input.has_value(); }
};

/**
 * Network-wide quantization plan: one LayerQuantization per layer.
 */
class QuantizationPlan
{
  public:
    QuantizationPlan() = default;

    /** Creates an all-disabled plan sized for `network`. */
    explicit QuantizationPlan(const Network &network);

    /** Number of layer slots. */
    size_t size() const { return layers_.size(); }

    /** Per-layer setting. */
    LayerQuantization &layer(size_t i) { return layers_[i]; }
    const LayerQuantization &layer(size_t i) const { return layers_[i]; }

    /** Disables quantization for layer `i`. */
    void disable(size_t i);

    /** Number of layers with quantization enabled. */
    size_t enabledCount() const;

  private:
    std::vector<LayerQuantization> layers_;
};

/**
 * Builds a plan enabling quantization on the reusable layers selected
 * by `enabled_layers` (indices into the network), using profiled
 * ranges and the given cluster count.  Layers not in the list, and
 * non-reusable layers, stay disabled.
 */
QuantizationPlan
makePlan(const Network &network, const NetworkRanges &ranges,
         int clusters, const std::vector<size_t> &enabled_layers);

/**
 * Builds a plan enabling quantization on every reusable layer except
 * the given exclusions (e.g. the first conv of C3D, tiny output FCs).
 */
QuantizationPlan
makePlanAllReusable(const Network &network, const NetworkRanges &ranges,
                    int clusters,
                    const std::vector<size_t> &excluded_layers = {});

} // namespace reuse

#endif // REUSE_DNN_QUANT_QUANTIZATION_PLAN_H
