/**
 * @file
 * Reduced-precision (8-bit fixed-point) support for the Sec. VI-A
 * experiment: the reuse technique evaluated on top of an accelerator
 * whose weights and inputs are 8-bit fixed-point values.
 */

#ifndef REUSE_DNN_QUANT_FIXED_POINT_H
#define REUSE_DNN_QUANT_FIXED_POINT_H

#include <cstdint>

#include "nn/network.h"
#include "quant/linear_quantizer.h"
#include "quant/range_profiler.h"

namespace reuse {

/**
 * Symmetric fixed-point format with `bits` total bits; values are
 * represented as integer * scale with integers in
 * [-2^(bits-1), 2^(bits-1) - 1].
 */
struct FixedPointFormat {
    int bits = 8;
    float scale = 1.0f;

    /** Builds a format whose grid covers [-absmax, absmax]. */
    static FixedPointFormat forAbsMax(float absmax, int bits = 8);

    int32_t minInt() const { return -(1 << (bits - 1)); }
    int32_t maxInt() const { return (1 << (bits - 1)) - 1; }

    /** Rounds `v` to the nearest grid point (saturating). */
    float snap(float v) const;

    /** Integer code of `v` (saturating round). */
    int32_t encode(float v) const;

    /** Value of an integer code. */
    float decode(int32_t code) const { return scale * static_cast<float>(code); }
};

/**
 * Snaps every weight and bias of the network to an n-bit fixed-point
 * grid sized per layer from the largest absolute parameter.  Models
 * the reduced-precision accelerator's weight storage.
 */
void quantizeWeightsFixedPoint(Network &network, int bits = 8);

/**
 * Builds a LinearQuantizer equivalent to n-bit fixed-point input
 * quantization over the profiled range: 2^bits clusters.  Used as the
 * per-layer input quantizer of the reduced-precision accelerator.
 */
LinearQuantizer makeFixedPointInputQuantizer(const RangeProfiler &range,
                                             int bits = 8);

} // namespace reuse

#endif // REUSE_DNN_QUANT_FIXED_POINT_H
