#include "range_profiler.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/lstm.h"

namespace reuse {

void
RangeProfiler::observe(const Tensor &t)
{
    for (int64_t i = 0; i < t.numel(); ++i)
        stats_.add(t[i]);
}

float
RangeProfiler::rangeMin() const
{
    REUSE_ASSERT(hasData(), "range profiler has no data");
    return static_cast<float>(stats_.min());
}

float
RangeProfiler::rangeMax() const
{
    REUSE_ASSERT(hasData(), "range profiler has no data");
    return static_cast<float>(stats_.max());
}

std::pair<float, float>
RangeProfiler::clippedRange(double sigmas) const
{
    REUSE_ASSERT(hasData(), "range profiler has no data");
    const double lo =
        std::max(stats_.min(), stats_.mean() - sigmas * stats_.stddev());
    const double hi =
        std::min(stats_.max(), stats_.mean() + sigmas * stats_.stddev());
    float flo = static_cast<float>(lo);
    float fhi = static_cast<float>(hi);
    if (fhi <= flo) {
        // Degenerate (constant) stream: widen artificially so a
        // quantizer can still be built.
        flo -= 0.5f;
        fhi += 0.5f;
    }
    return {flo, fhi};
}

NetworkRanges
profileNetworkRanges(const Network &network,
                     const std::vector<Tensor> &inputs)
{
    NetworkRanges ranges;
    ranges.layerInput.resize(network.layerCount());
    ranges.layerRecurrent.resize(network.layerCount());

    // Propagate the whole calibration set layer by layer; this also
    // matches the recurrent execution order (layer-at-a-time).
    std::vector<Tensor> current = inputs;
    for (size_t li = 0; li < network.layerCount(); ++li) {
        const Layer &layer = network.layer(li);
        for (const Tensor &t : current)
            ranges.layerInput[li].observe(t);

        if (layer.isRecurrent()) {
            // The recurrent inputs h_{t-1} of a BiLSTM direction are
            // that direction's own outputs; profiling the layer's
            // output stream (both halves) covers both directions.
            std::vector<Tensor> outputs = layer.forwardSequence(current);
            for (const Tensor &t : outputs)
                ranges.layerRecurrent[li].observe(t);
            current = std::move(outputs);
        } else {
            current = layer.forwardSequence(current);
        }
    }
    return ranges;
}

} // namespace reuse
