#include "layer_selection.h"

#include <algorithm>

#include "common/logging.h"

namespace reuse {

std::vector<size_t>
reusableLayerIndices(const Network &network)
{
    std::vector<size_t> indices;
    for (size_t li = 0; li < network.layerCount(); ++li) {
        if (network.layer(li).isReusable())
            indices.push_back(li);
    }
    return indices;
}

int64_t
layerOutputNeurons(const Network &network, size_t li)
{
    const std::vector<Shape> shapes = network.layerInputShapes();
    REUSE_ASSERT(li < shapes.size(), "layer index out of range");
    return network.layer(li).outputShape(shapes[li]).numel();
}

LayerSelectionResult
selectLayersBackwards(const Network &network, const NetworkRanges &ranges,
                      const LayerSelectionConfig &config,
                      const AccuracyLossFn &loss_fn)
{
    LayerSelectionResult result;
    result.plan = QuantizationPlan(network);

    // Reusable layers from last to first.
    std::vector<size_t> candidates = reusableLayerIndices(network);
    std::reverse(candidates.begin(), candidates.end());

    // Skip trailing tiny layers (paper: EESEN FC1 / AutoPilot FC5 are
    // too small for the savings to matter).
    size_t start = 0;
    while (start < candidates.size() &&
           layerOutputNeurons(network, candidates[start]) <
               config.minOutputNeurons) {
        ++start;
    }

    std::vector<size_t> selected;
    double best_loss = 0.0;
    for (size_t k = start; k < candidates.size(); ++k) {
        std::vector<size_t> trial = selected;
        trial.push_back(candidates[k]);
        QuantizationPlan plan =
            makePlan(network, ranges, config.clusters, trial);
        const double loss = loss_fn(plan);
        if (loss > config.maxAccuracyLossPct) {
            // Stop at the first layer that overshoots the budget; the
            // paper extends the quantized region contiguously from
            // the back, so one rejection ends the search.
            break;
        }
        selected = std::move(trial);
        best_loss = loss;
    }

    std::sort(selected.begin(), selected.end());
    result.selectedLayers = selected;
    result.accuracyLossPct = best_loss;
    result.plan = makePlan(network, ranges, config.clusters, selected);
    return result;
}

} // namespace reuse
