/**
 * @file
 * Input-range profiling for quantizer calibration.
 *
 * The paper derives each layer's quantization step from the input
 * range observed on the training dataset (Sec. III).  RangeProfiler
 * accumulates min/max (and distribution moments) over observed
 * tensors; profileNetworkRanges() runs a network over calibration
 * inputs and records the per-layer input ranges.
 */

#ifndef REUSE_DNN_QUANT_RANGE_PROFILER_H
#define REUSE_DNN_QUANT_RANGE_PROFILER_H

#include <vector>

#include "common/stats.h"
#include "nn/network.h"
#include "tensor/tensor.h"

namespace reuse {

/**
 * Accumulates the value range of a stream of tensors.
 */
class RangeProfiler
{
  public:
    /** Observes every element of `t`. */
    void observe(const Tensor &t);

    /** Observes a single value. */
    void observe(float v) { stats_.add(v); }

    /** True when at least one value has been observed. */
    bool hasData() const { return stats_.count() > 0; }

    /** Smallest observed value. */
    float rangeMin() const;

    /** Largest observed value. */
    float rangeMax() const;

    /**
     * Range clipped to mean +/- `sigmas` standard deviations and
     * intersected with the observed min/max; robust to rare outliers
     * that would otherwise blow up the quantization step.
     */
    std::pair<float, float> clippedRange(double sigmas = 6.0) const;

    /** Underlying running statistics. */
    const RunningStats &stats() const { return stats_; }

  private:
    RunningStats stats_;
};

/** Per-layer profiled ranges of a network. */
struct NetworkRanges {
    /** Input range of each layer, indexed like Network::layer(). */
    std::vector<RangeProfiler> layerInput;
    /**
     * Recurrent-input (h) range of each layer; only meaningful for
     * BiLSTM layers, empty profilers elsewhere.
     */
    std::vector<RangeProfiler> layerRecurrent;
};

/**
 * Runs the network from scratch over the calibration inputs and
 * profiles every layer's input range.  For recurrent networks the
 * calibration inputs form one sequence; hidden-state streams are
 * profiled as the recurrent ranges.
 */
NetworkRanges profileNetworkRanges(const Network &network,
                                   const std::vector<Tensor> &inputs);

} // namespace reuse

#endif // REUSE_DNN_QUANT_RANGE_PROFILER_H
