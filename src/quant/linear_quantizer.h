/**
 * @file
 * Uniformly distributed linear quantization of layer inputs (Eq. 9 of
 * the paper): Qval = round(input / step) * step, with the step derived
 * from a profiled input range and a cluster count.
 */

#ifndef REUSE_DNN_QUANT_LINEAR_QUANTIZER_H
#define REUSE_DNN_QUANT_LINEAR_QUANTIZER_H

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/quant_scan.h"
#include "tensor/tensor.h"

namespace reuse {

/**
 * Linear quantizer mapping floats to a small set of cluster centroids.
 *
 * The quantization index round(v / step) is what the accelerator
 * stores in the I/O Buffer and compares across executions; the
 * centroid index * step is the value computation proceeds with.
 * Indices are clamped to the profiled range so out-of-range inputs
 * saturate instead of growing the index table.
 */
class LinearQuantizer
{
  public:
    /**
     * @param clusters Number of clusters C spanning the range.
     * @param range_min Profiled minimum input value.
     * @param range_max Profiled maximum input value (> range_min).
     */
    LinearQuantizer(int clusters, float range_min, float range_max);

    /** Number of clusters. */
    int clusters() const { return clusters_; }

    /** Quantization step (range / clusters). */
    float step() const { return step_; }

    /** Profiled range minimum. */
    float rangeMin() const { return range_min_; }

    /** Profiled range maximum. */
    float rangeMax() const { return range_max_; }

    /** Smallest representable index. */
    int32_t minIndex() const { return min_index_; }

    /** Largest representable index. */
    int32_t maxIndex() const { return max_index_; }

    /** Number of distinct indices (centroid-table entries). */
    int32_t indexCount() const { return max_index_ - min_index_ + 1; }

    /**
     * Hot-loop parameter pack: copy once before a per-element loop
     * (kernels::quantIndex) instead of re-deriving the members per
     * call.  index() delegates to the same function, so the two
     * paths agree bit-exactly.
     */
    kernels::QuantScanParams scanParams() const
    {
        return {step_, min_index_, max_index_};
    }

    /** Quantization index of `v`, clamped to the profiled range. */
    int32_t index(float v) const
    {
        return kernels::quantIndex(scanParams(), v);
    }

    /** Centroid value of an index: idx * step. */
    float centroid(int32_t idx) const
    {
        return static_cast<float>(idx) * step_;
    }

    /** Quantized value of `v` (centroid of its index). */
    float quantize(float v) const { return centroid(index(v)); }

    /** Quantizes a whole tensor elementwise. */
    Tensor quantize(const Tensor &t) const;

    /** Quantization indices of a whole tensor. */
    std::vector<int32_t> indices(const Tensor &t) const;

    /** Bits needed to store one index. */
    int indexBits() const;

    /** Human-readable description. */
    std::string str() const;

  private:
    int clusters_;
    float range_min_;
    float range_max_;
    float step_;
    int32_t min_index_;
    int32_t max_index_;
};

} // namespace reuse

#endif // REUSE_DNN_QUANT_LINEAR_QUANTIZER_H
