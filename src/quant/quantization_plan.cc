#include "quantization_plan.h"

#include <algorithm>

#include "common/logging.h"

namespace reuse {

QuantizationPlan::QuantizationPlan(const Network &network)
    : layers_(network.layerCount())
{
}

void
QuantizationPlan::disable(size_t i)
{
    REUSE_ASSERT(i < layers_.size(), "plan index out of range");
    layers_[i].input.reset();
    layers_[i].recurrent.reset();
}

size_t
QuantizationPlan::enabledCount() const
{
    size_t n = 0;
    for (const auto &l : layers_)
        n += l.enabled() ? 1 : 0;
    return n;
}

QuantizationPlan
makePlan(const Network &network, const NetworkRanges &ranges,
         int clusters, const std::vector<size_t> &enabled_layers)
{
    REUSE_ASSERT(ranges.layerInput.size() == network.layerCount(),
                 "ranges were profiled on a different network");
    QuantizationPlan plan(network);
    for (size_t li : enabled_layers) {
        REUSE_ASSERT(li < network.layerCount(),
                     "enabled layer index " << li << " out of range");
        const Layer &layer = network.layer(li);
        if (!layer.isReusable()) {
            warn("makePlan: layer " + layer.name() +
                 " is not reusable; skipping");
            continue;
        }
        REUSE_ASSERT(ranges.layerInput[li].hasData(),
                     "no profiled range for layer " << layer.name());
        const auto [lo, hi] = ranges.layerInput[li].clippedRange();
        plan.layer(li).input.emplace(clusters, lo, hi);
        if (layer.isRecurrent()) {
            REUSE_ASSERT(ranges.layerRecurrent[li].hasData(),
                         "no recurrent range for layer "
                             << layer.name());
            const auto [rlo, rhi] =
                ranges.layerRecurrent[li].clippedRange();
            plan.layer(li).recurrent.emplace(clusters, rlo, rhi);
        }
    }
    return plan;
}

QuantizationPlan
makePlanAllReusable(const Network &network, const NetworkRanges &ranges,
                    int clusters,
                    const std::vector<size_t> &excluded_layers)
{
    std::vector<size_t> enabled;
    for (size_t li = 0; li < network.layerCount(); ++li) {
        if (!network.layer(li).isReusable())
            continue;
        if (std::find(excluded_layers.begin(), excluded_layers.end(),
                      li) != excluded_layers.end())
            continue;
        enabled.push_back(li);
    }
    return makePlan(network, ranges, clusters, enabled);
}

} // namespace reuse
