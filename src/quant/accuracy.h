/**
 * @file
 * Accuracy-degradation metrics for quantized / reuse-based inference.
 *
 * The paper reports absolute accuracy on labelled test sets (Table I);
 * without trained models or datasets the reproduction measures
 * degradation relative to the FP32 from-scratch network treated as a
 * teacher (see DESIGN.md substitution table): top-1 agreement for
 * classifiers and mean relative error for regressors.
 */

#ifndef REUSE_DNN_QUANT_ACCURACY_H
#define REUSE_DNN_QUANT_ACCURACY_H

#include <vector>

#include "tensor/tensor.h"

namespace reuse {

/** Aggregate degradation of one output stream versus a reference. */
struct AccuracyReport {
    /** Fraction of executions whose argmax matches the reference. */
    double top1Agreement = 0.0;
    /** Mean relative L2 error of the raw outputs vs. the reference. */
    double meanRelativeError = 0.0;
    /** Largest relative L2 error over all executions. */
    double maxRelativeError = 0.0;
    /** Number of executions compared. */
    int64_t executions = 0;

    /**
     * Accuracy-loss proxy in percentage points, comparable to the
     * paper's "baseline accuracy - quantization accuracy" column:
     * (1 - top1Agreement) * 100.
     */
    double accuracyLossPct() const { return (1.0 - top1Agreement) * 100.0; }
};

/**
 * Compares two output streams execution-by-execution; `reference` is
 * the FP32 from-scratch output, `candidate` the quantized/reuse output.
 */
AccuracyReport compareOutputs(const std::vector<Tensor> &reference,
                              const std::vector<Tensor> &candidate);

} // namespace reuse

#endif // REUSE_DNN_QUANT_ACCURACY_H
