#include "accuracy.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace reuse {

AccuracyReport
compareOutputs(const std::vector<Tensor> &reference,
               const std::vector<Tensor> &candidate)
{
    REUSE_ASSERT(reference.size() == candidate.size(),
                 "output stream lengths differ: " << reference.size()
                     << " vs " << candidate.size());
    AccuracyReport report;
    report.executions = static_cast<int64_t>(reference.size());
    if (reference.empty()) {
        report.top1Agreement = 1.0;
        return report;
    }

    int64_t agree = 0;
    double rel_sum = 0.0;
    double rel_max = 0.0;
    for (size_t i = 0; i < reference.size(); ++i) {
        if (reference[i].argmax() == candidate[i].argmax())
            ++agree;
        const double ref_norm = reference[i].norm();
        const double err = euclideanDistance(reference[i], candidate[i]);
        const double rel = ref_norm > 0.0 ? err / ref_norm : err;
        rel_sum += rel;
        rel_max = std::max(rel_max, rel);
    }
    report.top1Agreement =
        static_cast<double>(agree) / static_cast<double>(reference.size());
    report.meanRelativeError =
        rel_sum / static_cast<double>(reference.size());
    report.maxRelativeError = rel_max;
    return report;
}

} // namespace reuse
