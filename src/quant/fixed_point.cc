#include "fixed_point.h"

#include <algorithm>
#include <cmath>

#include "common/aligned.h"
#include "common/logging.h"
#include "common/math_utils.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/fully_connected.h"
#include "nn/lstm.h"

namespace reuse {

FixedPointFormat
FixedPointFormat::forAbsMax(float absmax, int bits)
{
    REUSE_ASSERT(bits >= 2 && bits <= 16, "unsupported bit width "
                                              << bits);
    FixedPointFormat fmt;
    fmt.bits = bits;
    const float levels = static_cast<float>((1 << (bits - 1)) - 1);
    fmt.scale = absmax > 0.0f ? absmax / levels : 1.0f;
    return fmt;
}

float
FixedPointFormat::snap(float v) const
{
    return decode(encode(v));
}

int32_t
FixedPointFormat::encode(float v) const
{
    const int32_t code = static_cast<int32_t>(std::lround(v / scale));
    return clamp(code, minInt(), maxInt());
}

namespace {

float
absMax(const AlignedVector<float> &values)
{
    float m = 0.0f;
    for (float v : values)
        m = std::max(m, std::fabs(v));
    return m;
}

void
snapAll(AlignedVector<float> &values, int bits)
{
    const FixedPointFormat fmt =
        FixedPointFormat::forAbsMax(absMax(values), bits);
    for (float &v : values)
        v = fmt.snap(v);
}

void
quantizeFc(FullyConnectedLayer &fc, int bits)
{
    snapAll(fc.weights(), bits);
    snapAll(fc.biases(), bits);
}

void
quantizeCell(LstmCell &cell, int bits)
{
    for (int g = 0; g < NumLstmGates; ++g) {
        quantizeFc(cell.feedForward(g), bits);
        quantizeFc(cell.recurrent(g), bits);
    }
}

} // namespace

void
quantizeWeightsFixedPoint(Network &network, int bits)
{
    for (size_t li = 0; li < network.layerCount(); ++li) {
        Layer &layer = network.layer(li);
        switch (layer.kind()) {
          case LayerKind::FullyConnected:
            quantizeFc(static_cast<FullyConnectedLayer &>(layer), bits);
            break;
          case LayerKind::Conv2D: {
            auto &conv = static_cast<Conv2DLayer &>(layer);
            snapAll(conv.weights(), bits);
            snapAll(conv.biases(), bits);
            break;
          }
          case LayerKind::Conv3D: {
            auto &conv = static_cast<Conv3DLayer &>(layer);
            snapAll(conv.weights(), bits);
            snapAll(conv.biases(), bits);
            break;
          }
          case LayerKind::BiLstm: {
            auto &lstm = static_cast<BiLstmLayer &>(layer);
            quantizeCell(lstm.forwardCell(), bits);
            quantizeCell(lstm.backwardCell(), bits);
            break;
          }
          default:
            break;
        }
    }
}

LinearQuantizer
makeFixedPointInputQuantizer(const RangeProfiler &range, int bits)
{
    const auto [lo, hi] = range.clippedRange();
    // A fixed-point input path constrains inputs to 2^bits levels
    // over the profiled range.
    return LinearQuantizer(1 << bits, lo, hi);
}

} // namespace reuse
