#include "op_shapes.h"

#include <sstream>

namespace reuse {
namespace ir {

InferredShape
inferFullyConnected(const std::string &name, const Shape &input,
                    int64_t inputs, int64_t outputs)
{
    if (input.numel() != inputs) {
        std::ostringstream oss;
        oss << name << ": input " << input.str() << " has "
            << input.numel() << " elements, expected " << inputs;
        return InferredShape::fail(oss.str());
    }
    return InferredShape::ok(Shape({outputs}));
}

InferredShape
inferConv2d(const std::string &name, const Shape &input,
            int64_t in_channels, int64_t out_channels, int64_t kernel,
            int64_t stride)
{
    std::ostringstream oss;
    if (input.rank() != 3) {
        oss << name << ": conv2d expects [C,H,W], got " << input.str();
    } else if (input.dim(0) != in_channels) {
        oss << name << ": expected " << in_channels
            << " input channels, got " << input.dim(0);
    } else if (input.dim(1) < kernel || input.dim(2) < kernel) {
        oss << name << ": input " << input.str()
            << " smaller than kernel " << kernel;
    }
    if (!oss.str().empty())
        return InferredShape::fail(oss.str());
    const int64_t oh = (input.dim(1) - kernel) / stride + 1;
    const int64_t ow = (input.dim(2) - kernel) / stride + 1;
    return InferredShape::ok(Shape({out_channels, oh, ow}));
}

InferredShape
inferConv3d(const std::string &name, const Shape &input,
            int64_t in_channels, int64_t out_channels, int64_t kernel,
            int64_t pad)
{
    std::ostringstream oss;
    if (input.rank() != 4) {
        oss << name << ": conv3d expects [C,D,H,W], got "
            << input.str();
    } else if (input.dim(0) != in_channels) {
        oss << name << ": expected " << in_channels
            << " input channels, got " << input.dim(0);
    } else if (input.dim(1) + 2 * pad < kernel ||
               input.dim(2) + 2 * pad < kernel ||
               input.dim(3) + 2 * pad < kernel) {
        oss << name << ": input " << input.str()
            << " smaller than kernel";
    }
    if (!oss.str().empty())
        return InferredShape::fail(oss.str());
    const int64_t od = input.dim(1) + 2 * pad - kernel + 1;
    const int64_t oh = input.dim(2) + 2 * pad - kernel + 1;
    const int64_t ow = input.dim(3) + 2 * pad - kernel + 1;
    return InferredShape::ok(Shape({out_channels, od, oh, ow}));
}

InferredShape
inferMaxPool2d(const std::string &name, const Shape &input,
               int64_t window)
{
    if (input.rank() != 3) {
        std::ostringstream oss;
        oss << name << ": pool2d expects [C,H,W], got " << input.str();
        return InferredShape::fail(oss.str());
    }
    if (input.dim(1) < window || input.dim(2) < window) {
        std::ostringstream oss;
        oss << name << ": input " << input.str()
            << " smaller than pool window " << window;
        return InferredShape::fail(oss.str());
    }
    return InferredShape::ok(Shape(
        {input.dim(0), input.dim(1) / window, input.dim(2) / window}));
}

InferredShape
inferMaxPool3d(const std::string &name, const Shape &input,
               int64_t depth_window, int64_t spatial_window,
               bool ceil_mode)
{
    if (input.rank() != 4) {
        std::ostringstream oss;
        oss << name << ": pool3d expects [C,D,H,W], got "
            << input.str();
        return InferredShape::fail(oss.str());
    }
    auto div = [ceil_mode](int64_t v, int64_t w) {
        return ceil_mode ? (v + w - 1) / w : v / w;
    };
    const Shape out({input.dim(0), div(input.dim(1), depth_window),
                     div(input.dim(2), spatial_window),
                     div(input.dim(3), spatial_window)});
    if (out.dim(1) == 0 || out.dim(2) == 0 || out.dim(3) == 0) {
        std::ostringstream oss;
        oss << name << ": input " << input.str()
            << " smaller than pool windows " << depth_window << "/"
            << spatial_window;
        return InferredShape::fail(oss.str());
    }
    return InferredShape::ok(out);
}

InferredShape
inferPNorm(const std::string &name, const Shape &input, int64_t group)
{
    if (input.numel() % group != 0) {
        std::ostringstream oss;
        oss << name << ": input size " << input.numel()
            << " not divisible by group " << group;
        return InferredShape::fail(oss.str());
    }
    return InferredShape::ok(Shape({input.numel() / group}));
}

InferredShape
inferLstm(const std::string &name, const Shape &input,
          int64_t input_dim, int64_t cell_dim)
{
    if (input.numel() != input_dim) {
        std::ostringstream oss;
        oss << name << ": per-step input has " << input.numel()
            << " elements, expected " << input_dim;
        return InferredShape::fail(oss.str());
    }
    return InferredShape::ok(Shape({cell_dim}));
}

InferredShape
inferBiLstm(const std::string &name, const Shape &input,
            int64_t input_dim, int64_t cell_dim)
{
    if (input.numel() != input_dim) {
        std::ostringstream oss;
        oss << name << ": per-step input has " << input.numel()
            << " elements, expected " << input_dim;
        return InferredShape::fail(oss.str());
    }
    return InferredShape::ok(Shape({2 * cell_dim}));
}

InferredShape
inferActivation(const Shape &input)
{
    return InferredShape::ok(input);
}

InferredShape
inferFlatten(const Shape &input)
{
    return InferredShape::ok(Shape({input.numel()}));
}

} // namespace ir
} // namespace reuse
