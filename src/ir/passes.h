/**
 * @file
 * Rewrite and analysis passes over the graph IR, plus the pass
 * manager that runs them in order.
 *
 * Pass order (see DESIGN.md §12):
 *
 *  1. ShapeInferencePass — propagates shapes edge-by-edge through
 *     ir::op_shapes (SH001/SH002/SH003).  The static validator's
 *     shape pass is this pass run on a chain graph.
 *
 *  2. ReuseSafetyPass — verifies the quantization plan only enables
 *     reuse where Eq. 10 is sound (QP001/QP002, RS001/RS002/RS003).
 *     In pin mode the pass *rewrites* instead of merely reporting:
 *     offending nodes are pinned to full recompute (quantization
 *     cleared, finding downgraded to a warning), so a plan over an
 *     unsafe model still compiles to a correct schedule.
 *
 *  3. FuseActivationPass — folds an elementwise activation into its
 *     producing FC/conv node (bias is already part of those layers),
 *     halving tensor round-trips on MLP-style chains.  Skipped for
 *     recurrent graphs, where layers consume whole sequences.
 *
 *  4. DeadNodeEliminationPass — marks nodes unreachable from the
 *     graph output dead so the schedule skips them.
 *
 * Passes 1–2 are pure analysis unless pinning; they run even on
 * broken graphs so diagnostics accumulate.  Passes 3–4 require a
 * shape-valid graph and are skipped by the PassManager otherwise.
 */

#ifndef REUSE_DNN_IR_PASSES_H
#define REUSE_DNN_IR_PASSES_H

#include <memory>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "ir/graph.h"

namespace reuse {
namespace ir {

/** Outcome of one pass run. */
struct PassResult {
    /** Nodes rewritten (pinned, fused, or killed); 0 for analysis. */
    size_t rewrites = 0;
};

/** Base class of all IR passes. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable pass name, used in plan dumps. */
    virtual const char *name() const = 0;

    /** True when the pass must not run on a graph with errors. */
    virtual bool requiresValidGraph() const { return false; }

    /** Runs the pass, appending findings to `report`. */
    virtual PassResult run(Graph &graph, DiagnosticReport &report) = 0;
};

/** Pass 1: shape propagation & graph validation (SH*). */
class ShapeInferencePass : public Pass
{
  public:
    const char *name() const override { return "shape-inference"; }
    PassResult run(Graph &graph, DiagnosticReport &report) override;
};

/** Pass 2: reuse-safety analysis / pinning rewrite (QP*, RS*). */
class ReuseSafetyPass : public Pass
{
  public:
    /**
     * @param pin_unsafe Rewrite error-grade findings (RS001, RS002,
     *   QP002) into warnings by pinning the node to full recompute.
     * @param pin_overflow Additionally pin on the RS003 overflow-risk
     *   warning (conservative schedules for --dump-plan and tests).
     */
    explicit ReuseSafetyPass(bool pin_unsafe = false,
                             bool pin_overflow = false)
        : pin_unsafe_(pin_unsafe), pin_overflow_(pin_overflow)
    {
    }

    const char *name() const override { return "reuse-safety"; }
    PassResult run(Graph &graph, DiagnosticReport &report) override;

  private:
    /** Pins `node` to full recompute; returns 1 (a rewrite). */
    static size_t pin(Node &node);

    bool pin_unsafe_;
    bool pin_overflow_;
};

/** Pass 3: FC/conv + elementwise-activation fusion. */
class FuseActivationPass : public Pass
{
  public:
    const char *name() const override { return "fuse-activation"; }
    bool requiresValidGraph() const override { return true; }
    PassResult run(Graph &graph, DiagnosticReport &report) override;
};

/** Pass 4: dead-node elimination by reverse reachability. */
class DeadNodeEliminationPass : public Pass
{
  public:
    const char *name() const override { return "dce"; }
    bool requiresValidGraph() const override { return true; }
    PassResult run(Graph &graph, DiagnosticReport &report) override;
};

/** Ordered pass pipeline with per-pass rewrite accounting. */
class PassManager
{
  public:
    /** What one managed pass did (for dumps and tests). */
    struct Record {
        std::string pass;
        size_t rewrites = 0;
        /** False when skipped because the graph had errors. */
        bool ran = false;
    };

    /** Appends a pass to the pipeline. */
    void add(std::unique_ptr<Pass> pass)
    {
        passes_.push_back(std::move(pass));
    }

    /**
     * Runs the pipeline in order.  A pass with requiresValidGraph()
     * is skipped once `report` carries errors; analysis passes always
     * run so diagnostics accumulate like the standalone validator's.
     */
    std::vector<Record> run(Graph &graph, DiagnosticReport &report);

  private:
    std::vector<std::unique_ptr<Pass>> passes_;
};

} // namespace ir
} // namespace reuse

#endif // REUSE_DNN_IR_PASSES_H
