#include "compiled_plan.h"

#include <sstream>

#include "nn/activations.h"
#include "nn/network.h"

namespace reuse {
namespace ir {

const char *
execModeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::FromScratch:
        return "from-scratch";
      case ExecMode::FcReuse:
        return "fc-reuse";
      case ExecMode::ConvReuse:
        return "conv-reuse";
      case ExecMode::LstmReuse:
        return "lstm-reuse";
      case ExecMode::BiLstmReuse:
        return "bilstm-reuse";
    }
    return "unknown";
}

namespace {

/** Kernel choice for a node that survived the safety pass. */
ExecMode
modeFor(const Node &node)
{
    if (!node.quant.enabled())
        return ExecMode::FromScratch;
    switch (node.kind()) {
      case LayerKind::FullyConnected:
        return ExecMode::FcReuse;
      case LayerKind::Conv2D:
      case LayerKind::Conv3D:
        return ExecMode::ConvReuse;
      case LayerKind::Lstm:
        return ExecMode::LstmReuse;
      case LayerKind::BiLstm:
        return ExecMode::BiLstmReuse;
      default:
        return ExecMode::FromScratch;
    }
}

} // namespace

std::shared_ptr<const CompiledPlan>
CompiledPlan::compile(const Network &network,
                      const QuantizationPlan &plan,
                      const CompileOptions &options)
{
    std::shared_ptr<CompiledPlan> cp(new CompiledPlan());
    cp->network_ = &network;
    cp->options_ = options;
    cp->layer_count_ = network.layerCount();

    Graph graph = Graph::fromNetwork(network, plan);
    cp->recurrent_ = graph.recurrent();

    PassManager manager;
    manager.add(std::make_unique<ShapeInferencePass>());
    manager.add(std::make_unique<ReuseSafetyPass>(
        options.pinUnsafeLayers, options.pinOverflowRisk));
    if (options.fuseActivations)
        manager.add(std::make_unique<FuseActivationPass>());
    if (options.eliminateDeadNodes)
        manager.add(std::make_unique<DeadNodeEliminationPass>());
    cp->pass_records_ = manager.run(graph, cp->report_);

    if (cp->report_.hasErrors())
        return cp;

    for (NodeId id : graph.topoOrder()) {
        const Node &node = graph.node(id);
        if (node.fusedAway) {
            ++cp->fused_;
            continue;
        }
        if (node.dead) {
            ++cp->dead_;
            continue;
        }
        PlanStep step;
        step.layer = node.layer;
        step.layerIndex = node.layerIndex;
        step.fusedActivation = node.fusedActivation;
        step.fusedActivationIndex = node.fusedActivationIndex;
        step.mode = modeFor(node);
        step.inShape = node.inShape;
        step.outShape = node.outShape;
        step.reuseSafe = isReuseEligible(node.kind());
        step.pinned = node.pinnedFullRecompute;
        step.quant = node.quant;
        if (step.mode != ExecMode::FromScratch)
            step.clusterRadius = options.clusterRadius;
        if (step.pinned)
            ++cp->pinned_;
        cp->steps_.push_back(std::move(step));
    }
    return cp;
}

std::string
CompiledPlan::dump() const
{
    // Deliberately float-free: only names, shapes, counts and flags,
    // so the rendering is bit-stable across platforms and fit for
    // golden-file comparison.
    std::ostringstream oss;
    oss << "plan " << network_->name() << ": input "
        << network_->inputShape().str() << ", layers " << layer_count_
        << ", steps " << steps_.size() << ", fused " << fused_
        << ", dead " << dead_ << ", pinned " << pinned_ << "\n";
    oss << "passes:";
    for (const PassManager::Record &rec : pass_records_) {
        oss << " " << rec.pass;
        if (rec.ran)
            oss << "(" << rec.rewrites << ")";
        else
            oss << "(skipped)";
    }
    oss << "\n";
    if (!valid()) {
        oss << "  no schedule: " << report_.count(Severity::Error)
            << " error(s)\n";
        return oss.str();
    }
    for (const PlanStep &step : steps_) {
        oss << "  [" << step.layerIndex << "] " << step.layer->name()
            << " " << layerKindName(step.layer->kind()) << " "
            << step.inShape.str() << " -> " << step.outShape.str()
            << " " << execModeName(step.mode);
        if (step.quant.enabled()) {
            oss << " q=" << step.quant.input->indexCount();
            if (step.quant.recurrent.has_value())
                oss << "/" << step.quant.recurrent->indexCount();
        }
        // Printed only when nonzero so radius-0 plans render exactly
        // as before (golden-file stability).
        if (step.clusterRadius > 0)
            oss << " radius=" << step.clusterRadius;
        if (step.fusedActivation != nullptr) {
            const auto &act = static_cast<const ActivationLayer &>(
                *step.fusedActivation);
            oss << " fused(" << act.name() << ":"
                << activationKindName(act.activation()) << ")";
        }
        if (step.pinned)
            oss << " pinned";
        oss << (step.reuseSafe ? " safe" : " unsafe") << "\n";
    }
    return oss.str();
}

} // namespace ir
} // namespace reuse
