#include "graph.h"

#include "common/logging.h"
#include "nn/network.h"

namespace reuse {
namespace ir {

bool
isReuseEligible(LayerKind kind)
{
    switch (kind) {
      case LayerKind::FullyConnected:
      case LayerKind::Conv2D:
      case LayerKind::Conv3D:
      case LayerKind::Lstm:
      case LayerKind::BiLstm:
        return true;
      case LayerKind::MaxPool2D:
      case LayerKind::MaxPool3D:
      case LayerKind::Activation:
      case LayerKind::Flatten:
        return false;
    }
    return false;
}

Graph
Graph::fromNetwork(const Network &network)
{
    return fromNetwork(network, QuantizationPlan(network));
}

Graph
Graph::fromNetwork(const Network &network, const QuantizationPlan &plan)
{
    Graph graph(network.name(), network.inputShape());
    const bool plan_ok = plan.size() == network.layerCount();
    if (!plan_ok) {
        graph.plan_size_mismatch_ = true;
        graph.plan_size_ = plan.size();
    }
    for (size_t li = 0; li < network.layerCount(); ++li) {
        const NodeId id = graph.addNode(
            &network.layer(li), li,
            plan_ok ? plan.layer(li) : LayerQuantization{});
        if (li > 0)
            graph.connect(id - 1, id);
    }
    if (graph.nodeCount() > 0)
        graph.setOutput(graph.nodeCount() - 1);
    return graph;
}

NodeId
Graph::addNode(const Layer *layer, size_t layer_index,
               LayerQuantization quant)
{
    REUSE_ASSERT(layer != nullptr, "addNode(nullptr)");
    Node node;
    node.id = nodes_.size();
    node.layer = layer;
    node.layerIndex = layer_index;
    node.quant = std::move(quant);
    nodes_.push_back(std::move(node));
    return nodes_.back().id;
}

void
Graph::connect(NodeId from, NodeId to)
{
    REUSE_ASSERT(from < nodes_.size() && to < nodes_.size(),
                 "connect: node id out of range");
    nodes_[from].outputs.push_back(to);
    nodes_[to].inputs.push_back(from);
}

bool
Graph::recurrent() const
{
    for (const Node &n : nodes_) {
        if (n.layer->isRecurrent())
            return true;
    }
    return false;
}

std::vector<NodeId>
Graph::topoOrder() const
{
    std::vector<size_t> pending(nodes_.size());
    std::vector<NodeId> ready;
    for (const Node &n : nodes_) {
        pending[n.id] = n.inputs.size();
        if (n.inputs.empty())
            ready.push_back(n.id);
    }
    // Kahn's algorithm with a FIFO ready list: sources enqueue in
    // insertion order, so chains come out in layer order.
    std::vector<NodeId> order;
    order.reserve(nodes_.size());
    for (size_t next = 0; next < ready.size(); ++next) {
        const NodeId id = ready[next];
        order.push_back(id);
        for (NodeId out : nodes_[id].outputs) {
            if (--pending[out] == 0)
                ready.push_back(out);
        }
    }
    REUSE_ASSERT(order.size() == nodes_.size(),
                 name_ << ": graph has a cycle");
    return order;
}

} // namespace ir
} // namespace reuse
