/**
 * @file
 * Process-wide cache of CompiledPlans keyed by model identity, so a
 * process serving many sessions — or many distinct models — compiles
 * each (network, plan, options) combination exactly once.
 *
 * The key fingerprints everything compilation depends on: the network
 * (address, name, input shape, per-layer identity) and the
 * quantization plan (per-layer ranges and cluster counts, bit-exact)
 * plus the compile options.  Two engines over the same model share
 * one immutable plan; two different models, or the same model with a
 * recalibrated plan, get distinct entries.  Plans are handed out as
 * shared_ptr<const>, so an entry evicted by the LRU policy stays
 * alive for the engines already holding it.
 */

#ifndef REUSE_DNN_IR_PLAN_CACHE_H
#define REUSE_DNN_IR_PLAN_CACHE_H

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/sync.h"
#include "ir/compiled_plan.h"

namespace reuse {
namespace ir {

/** Process-wide LRU cache of compiled plans. */
class PlanCache
{
  public:
    /** Cache counters (a consistent snapshot). */
    struct Stats {
        uint64_t hits = 0;
        uint64_t misses = 0;
        size_t size = 0;
    };

    /** The process-wide instance. */
    static PlanCache &instance();

    /**
     * Returns the cached plan for (network, plan, options), compiling
     * and inserting it on the first request.  Compilation happens
     * under the cache lock, so concurrent requests for one model
     * compile it exactly once.  `network` must outlive the returned
     * plan.
     */
    std::shared_ptr<const CompiledPlan>
    getOrCompile(const Network &network, const QuantizationPlan &plan,
                 const CompileOptions &options = {});

    /** Counters since construction (hits/misses survive clear()). */
    Stats stats() const;

    /** Drops every entry (tests; engines keep their shared_ptrs). */
    void clear();

    /** Max entries before LRU eviction (default 64). */
    size_t capacity() const;

    /** Changes the capacity, evicting LRU entries if over it. */
    void setCapacity(size_t capacity);

  private:
    struct Entry {
        std::shared_ptr<const CompiledPlan> plan;
        uint64_t lastUse = 0;
    };

    /** Evicts least-recently-used entries down to the capacity. */
    void evictLocked() REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::unordered_map<uint64_t, Entry> entries_ GUARDED_BY(mutex_);
    size_t capacity_ GUARDED_BY(mutex_) = 64;
    uint64_t tick_ GUARDED_BY(mutex_) = 0;
    uint64_t hits_ GUARDED_BY(mutex_) = 0;
    uint64_t misses_ GUARDED_BY(mutex_) = 0;
};

} // namespace ir
} // namespace reuse

#endif // REUSE_DNN_IR_PLAN_CACHE_H
