#include "plan_cache.h"

#include "common/checksum.h"
#include "nn/network.h"

namespace reuse {
namespace ir {

namespace {

/** Folds one optional quantizer into the fingerprint, bit-exactly. */
void
fingerprintQuantizer(uint64_t &h,
                     const std::optional<LinearQuantizer> &q)
{
    checksumValue(h, q.has_value());
    if (!q.has_value())
        return;
    checksumValue(h, q->clusters());
    checksumValue(h, q->rangeMin());
    checksumValue(h, q->rangeMax());
}

/**
 * Fingerprint of everything compile() depends on.  Layer and network
 * addresses are included so two live models that happen to agree on
 * every parameter still get distinct entries (plans reference their
 * network), and name/shape/kind/params catch a network rebuilt at a
 * recycled address with different weights' *structure*; weight values
 * don't affect the schedule, so they are deliberately not hashed.
 */
uint64_t
fingerprint(const Network &network, const QuantizationPlan &plan,
            const CompileOptions &options)
{
    uint64_t h = checksumInit();
    checksumValue(h, &network);
    checksumBytes(h, network.name().data(), network.name().size());
    checksumValue(h, network.name().size());
    checksumVector(h, network.inputShape().dims());
    checksumValue(h, network.layerCount());
    for (size_t li = 0; li < network.layerCount(); ++li) {
        const Layer &layer = network.layer(li);
        checksumValue(h, &layer);
        checksumValue(h, layer.kind());
        checksumBytes(h, layer.name().data(), layer.name().size());
        checksumValue(h, layer.name().size());
        checksumValue(h, layer.paramCount());
    }
    checksumValue(h, plan.size());
    for (size_t li = 0; li < plan.size(); ++li) {
        const LayerQuantization &lq = plan.layer(li);
        fingerprintQuantizer(h, lq.input);
        fingerprintQuantizer(h, lq.recurrent);
    }
    checksumValue(h, options.fuseActivations);
    checksumValue(h, options.eliminateDeadNodes);
    checksumValue(h, options.pinUnsafeLayers);
    checksumValue(h, options.pinOverflowRisk);
    checksumValue(h, options.clusterRadius);
    return h;
}

} // namespace

PlanCache &
PlanCache::instance()
{
    static PlanCache cache;
    return cache;
}

std::shared_ptr<const CompiledPlan>
PlanCache::getOrCompile(const Network &network,
                        const QuantizationPlan &plan,
                        const CompileOptions &options)
{
    const uint64_t key = fingerprint(network, plan, options);
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        ++hits_;
        it->second.lastUse = ++tick_;
        return it->second.plan;
    }
    ++misses_;
    // Compile under the lock: concurrent sessions racing to serve one
    // model must not compile it twice (compilation is pure analysis,
    // cheap relative to a single frame of execution).
    Entry entry;
    entry.plan = CompiledPlan::compile(network, plan, options);
    entry.lastUse = ++tick_;
    std::shared_ptr<const CompiledPlan> result = entry.plan;
    entries_.emplace(key, std::move(entry));
    evictLocked();
    return result;
}

PlanCache::Stats
PlanCache::stats() const
{
    MutexLock lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.size = entries_.size();
    return s;
}

void
PlanCache::clear()
{
    MutexLock lock(mutex_);
    entries_.clear();
}

size_t
PlanCache::capacity() const
{
    MutexLock lock(mutex_);
    return capacity_;
}

void
PlanCache::setCapacity(size_t capacity)
{
    MutexLock lock(mutex_);
    capacity_ = capacity;
    evictLocked();
}

void
PlanCache::evictLocked()
{
    while (entries_.size() > capacity_) {
        auto lru = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.lastUse < lru->second.lastUse)
                lru = it;
        }
        entries_.erase(lru);
    }
}

} // namespace ir
} // namespace reuse
