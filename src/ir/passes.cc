#include "passes.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "ir/op_shapes.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/fully_connected.h"
#include "nn/lstm.h"
#include "nn/network.h"

namespace reuse {
namespace ir {

namespace {

/** True when any dimension is non-positive (empty tensors cannot
 *  flow through the substrate). */
bool
degenerate(const Shape &shape)
{
    for (size_t i = 0; i < shape.rank(); ++i) {
        if (shape.dim(i) <= 0)
            return true;
    }
    return shape.numel() <= 0;
}

/**
 * Worst-case number of inputs feeding one output neuron (the fan-in
 * of the delta accumulation): every changed input contributes one
 * delta * weight term to an output.
 */
int64_t
deltaFanIn(const Layer &layer)
{
    switch (layer.kind()) {
      case LayerKind::FullyConnected:
        return static_cast<const FullyConnectedLayer &>(layer).inputs();
      case LayerKind::Conv2D: {
        const auto &conv = static_cast<const Conv2DLayer &>(layer);
        return conv.inChannels() * conv.kernel() * conv.kernel();
      }
      case LayerKind::Conv3D: {
        const auto &conv = static_cast<const Conv3DLayer &>(layer);
        return conv.inChannels() * conv.kernel() * conv.kernel() *
               conv.kernel();
      }
      case LayerKind::Lstm: {
        const auto &lstm = static_cast<const LstmLayer &>(layer);
        return lstm.inputDim() + lstm.cellDim();
      }
      case LayerKind::BiLstm: {
        const auto &lstm = static_cast<const BiLstmLayer &>(layer);
        return lstm.inputDim() + lstm.cellDim();
      }
      default:
        return 0;
    }
}

/** Checks one quantizer's range/step for usability (QP002). */
void
checkQuantizer(DiagnosticReport &report, const LinearQuantizer &q,
               const char *which, size_t li, const Layer &layer)
{
    std::ostringstream oss;
    if (!std::isfinite(q.rangeMin()) || !std::isfinite(q.rangeMax())) {
        oss << which << " quantizer range ["
            << q.rangeMin() << ", " << q.rangeMax() << "] is not finite";
    } else if (!(q.step() > 0.0f) || !std::isfinite(q.step())) {
        oss << which << " quantizer step " << q.step()
            << " is not a positive finite value";
    }
    if (!oss.str().empty()) {
        report.error(diag::kQuantizerInvalid, oss.str(),
                     static_cast<int>(li), layer.name());
    }
}

/**
 * Flags quantizers whose index range can overflow a 32-bit
 * fixed-point delta accumulator (RS003).  Worst case per output
 * neuron: every one of `fan_in` inputs moves across the whole index
 * range and each delta is scaled by the largest 8-bit weight code
 * (the Sec. VI-A reduced-precision accelerator).
 */
void
checkDeltaOverflow(DiagnosticReport &report, const LinearQuantizer &q,
                   const char *which, int64_t fan_in, size_t li,
                   const Layer &layer)
{
    if (fan_in <= 0)
        return;
    constexpr int64_t kMaxWeightCode = 127;  // 8-bit signed weights
    const int64_t worst_delta =
        static_cast<int64_t>(q.indexCount()) - 1;
    const int64_t accumulated = fan_in * worst_delta * kMaxWeightCode;
    if (accumulated >
        static_cast<int64_t>(std::numeric_limits<int32_t>::max())) {
        std::ostringstream oss;
        oss << which << " quantizer spans " << q.indexCount()
            << " indices; worst-case delta accumulation over fan-in "
            << fan_in << " (" << accumulated
            << ") overflows a 32-bit fixed-point accumulator — use "
               "fewer clusters or a narrower range";
        report.warning(diag::kDeltaOverflowRisk, oss.str(),
                       static_cast<int>(li), layer.name());
    }
}

/** Re-emits `sub`'s findings as warnings noting the pin rewrite. */
void
downgradePinned(DiagnosticReport &report, const DiagnosticReport &sub)
{
    for (const Diagnostic &d : sub.diagnostics()) {
        Diagnostic pinned = d;
        pinned.severity = Severity::Warning;
        pinned.message += "; pinned to full recompute";
        report.add(std::move(pinned));
    }
}

} // namespace

PassResult
ShapeInferencePass::run(Graph &graph, DiagnosticReport &report)
{
    PassResult result;
    if (graph.nodeCount() == 0) {
        report.error(diag::kEmptyNetwork,
                     graph.name() + ": network has no layers");
        return result;
    }
    if (degenerate(graph.inputShape())) {
        report.error(diag::kDegenerateShape,
                     graph.name() + ": input shape " +
                         graph.inputShape().str() +
                         " has a non-positive dimension");
        return result;
    }
    for (NodeId id : graph.topoOrder()) {
        Node &node = graph.node(id);
        const Layer &layer = *node.layer;
        // Layers are single-input ops: a node's input shape is its
        // (sole) producer's output, or the graph input for sources.
        node.inShape = node.inputs.empty()
                           ? graph.inputShape()
                           : graph.node(node.inputs[0]).outShape;
        const ShapeInference inf = layer.inferOutputShape(node.inShape);
        if (!inf.valid()) {
            report.error(diag::kShapeMismatch, inf.reason(),
                         static_cast<int>(node.layerIndex),
                         layer.name());
            return result;  // downstream shapes are unknowable
        }
        if (degenerate(inf.shape())) {
            std::ostringstream oss;
            oss << layer.name() << ": output shape "
                << inf.shape().str() << " has a non-positive dimension";
            report.error(diag::kDegenerateShape, oss.str(),
                         static_cast<int>(node.layerIndex),
                         layer.name());
            return result;
        }
        node.outShape = inf.shape();
        node.shapesValid = true;
    }
    return result;
}

size_t
ReuseSafetyPass::pin(Node &node)
{
    node.pinnedFullRecompute = true;
    node.quant = LayerQuantization{};
    return 1;
}

PassResult
ReuseSafetyPass::run(Graph &graph, DiagnosticReport &report)
{
    PassResult result;
    if (graph.planSizeMismatch()) {
        std::ostringstream oss;
        oss << graph.name() << ": plan covers " << graph.planSize()
            << " layers but the network has " << graph.nodeCount();
        report.error(diag::kPlanSizeMismatch, oss.str());
        return result;
    }
    for (NodeId id : graph.topoOrder()) {
        Node &node = graph.node(id);
        const LayerQuantization &lq = node.quant;
        if (!lq.enabled())
            continue;
        const Layer &layer = *node.layer;
        const size_t li = node.layerIndex;
        if (!isReuseEligible(layer.kind())) {
            std::ostringstream oss;
            oss << layer.name() << " (" << layerKindName(layer.kind())
                << ") is not incrementally updatable: Eq. 10 only "
                   "holds for layers linear in their inputs; this "
                   "layer must be recomputed from scratch";
            if (pin_unsafe_) {
                oss << "; pinned to full recompute";
                report.warning(diag::kReuseOnUnsafeLayer, oss.str(),
                               static_cast<int>(li), layer.name());
                result.rewrites += pin(node);
            } else {
                report.error(diag::kReuseOnUnsafeLayer, oss.str(),
                             static_cast<int>(li), layer.name());
            }
            continue;
        }
        const bool recurrent = layer.kind() == LayerKind::Lstm ||
                               layer.kind() == LayerKind::BiLstm;
        // Quantizer findings go through a sub-report so pin mode can
        // downgrade them without perturbing their emission order.
        DiagnosticReport local;
        if (recurrent && !lq.recurrent.has_value()) {
            std::ostringstream oss;
            oss << layer.name()
                << ": recurrent layer enabled without a quantizer "
                   "for the hidden-state inputs h_{t-1}";
            local.error(diag::kMissingRecurrentQuantizer, oss.str(),
                        static_cast<int>(li), layer.name());
        }
        const int64_t fan_in = deltaFanIn(layer);
        checkQuantizer(local, *lq.input, "input", li, layer);
        checkDeltaOverflow(local, *lq.input, "input", fan_in, li,
                           layer);
        if (recurrent && lq.recurrent.has_value()) {
            checkQuantizer(local, *lq.recurrent, "recurrent", li,
                           layer);
            checkDeltaOverflow(local, *lq.recurrent, "recurrent",
                               fan_in, li, layer);
        }
        if (local.hasErrors() && !pin_unsafe_) {
            report.merge(local);
            continue;
        }
        const bool pin_node =
            (pin_unsafe_ && local.hasErrors()) ||
            (pin_overflow_ && local.has(diag::kDeltaOverflowRisk));
        if (pin_node) {
            downgradePinned(report, local);
            result.rewrites += pin(node);
        } else {
            report.merge(local);
        }
    }
    return result;
}

PassResult
FuseActivationPass::run(Graph &graph, DiagnosticReport &report)
{
    (void)report;
    PassResult result;
    // Recurrent layers consume whole sequences through a dedicated
    // path; per-frame fusion does not apply.
    if (graph.recurrent())
        return result;
    for (NodeId id : graph.topoOrder()) {
        Node &node = graph.node(id);
        if (node.fusedAway || node.dead || node.fusedActivation)
            continue;
        switch (node.kind()) {
          case LayerKind::FullyConnected:
          case LayerKind::Conv2D:
          case LayerKind::Conv3D:
            break;
          default:
            continue;
        }
        if (node.outputs.size() != 1)
            continue;
        Node &succ = graph.node(node.outputs[0]);
        if (succ.fusedAway || succ.dead || succ.inputs.size() != 1)
            continue;
        // PNormLayer also reports LayerKind::Activation; only true
        // elementwise activations preserve shape and can be applied
        // in place, so key on the concrete type.
        const auto *act =
            dynamic_cast<const ActivationLayer *>(succ.layer);
        if (act == nullptr)
            continue;
        node.fusedActivation = succ.layer;
        node.fusedActivationIndex = succ.layerIndex;
        succ.fusedAway = true;
        // Splice the activation out: its consumers now read from the
        // producing node directly.
        node.outputs = succ.outputs;
        for (NodeId out : node.outputs) {
            for (NodeId &in : graph.node(out).inputs) {
                if (in == succ.id)
                    in = node.id;
            }
        }
        // Fully detach the fused node: a half-linked node (inputs
        // kept, producer edge gone) would never drain in topoOrder's
        // pending counts and read as a cycle.
        succ.inputs.clear();
        succ.outputs.clear();
        if (graph.output() == succ.id)
            graph.setOutput(node.id);
        ++result.rewrites;
    }
    return result;
}

PassResult
DeadNodeEliminationPass::run(Graph &graph, DiagnosticReport &report)
{
    (void)report;
    PassResult result;
    if (graph.nodeCount() == 0 || graph.output() == kNoNode)
        return result;
    std::vector<bool> live(graph.nodeCount(), false);
    std::vector<NodeId> stack;
    live[graph.output()] = true;
    stack.push_back(graph.output());
    while (!stack.empty()) {
        const NodeId id = stack.back();
        stack.pop_back();
        for (NodeId in : graph.node(id).inputs) {
            if (!live[in]) {
                live[in] = true;
                stack.push_back(in);
            }
        }
    }
    for (Node &node : graph.nodes()) {
        if (!live[node.id] && !node.fusedAway && !node.dead) {
            node.dead = true;
            ++result.rewrites;
        }
    }
    return result;
}

std::vector<PassManager::Record>
PassManager::run(Graph &graph, DiagnosticReport &report)
{
    std::vector<Record> records;
    records.reserve(passes_.size());
    for (const std::unique_ptr<Pass> &pass : passes_) {
        Record rec;
        rec.pass = pass->name();
        if (pass->requiresValidGraph() && report.hasErrors()) {
            records.push_back(std::move(rec));
            continue;
        }
        const PassResult r = pass->run(graph, report);
        rec.rewrites = r.rewrites;
        rec.ran = true;
        records.push_back(std::move(rec));
    }
    return records;
}

} // namespace ir
} // namespace reuse
