/**
 * @file
 * CompiledPlan: the post-pass topology of one model frozen into a
 * flat execution schedule.
 *
 * compile() builds a Graph from a Network + QuantizationPlan, runs
 * the pass pipeline (shape inference, reuse safety, activation
 * fusion, dead-node elimination; see passes.h), and linearizes the
 * surviving nodes into PlanSteps: per step the kernel choice
 * (ExecMode), the resolved shapes, the effective quantization and the
 * fused activation, if any.  The engine executes the schedule without
 * re-deriving any of this per frame, and the plan is immutable and
 * handed out as shared_ptr<const>, so one compile can serve every
 * session of a model concurrently (see plan_cache.h).
 *
 * A plan whose diagnostics carry errors has no steps; callers decide
 * whether that is fatal (ReuseEngine) or printable (validate_model).
 */

#ifndef REUSE_DNN_IR_COMPILED_PLAN_H
#define REUSE_DNN_IR_COMPILED_PLAN_H

#include <memory>
#include <string>
#include <vector>

#include "ir/passes.h"

namespace reuse {
namespace ir {

/** Kernel family a plan step executes with. */
enum class ExecMode {
    /** Layer::forward() — no reuse state. */
    FromScratch,
    /** Incremental FC update against an FcReuseState. */
    FcReuse,
    /** Incremental conv (2D or 3D) update against a ConvReuseState. */
    ConvReuse,
    /** Per-timestep LSTM reuse against an LstmLayerReuseState. */
    LstmReuse,
    /** Per-timestep BiLSTM reuse against a BiLstmReuseState. */
    BiLstmReuse,
};

/** Stable mode name ("fc-reuse", ...), used in plan dumps. */
const char *execModeName(ExecMode mode);

/** One scheduled layer execution. */
struct PlanStep {
    /** The layer to execute (not owned). */
    const Layer *layer = nullptr;
    /** The layer's index in the source network (trace/state slot). */
    size_t layerIndex = 0;
    /** Activation fused into this step (an ActivationLayer) or null. */
    const Layer *fusedActivation = nullptr;
    /** Original layer index of the fused activation (trace slot). */
    size_t fusedActivationIndex = 0;
    /** Kernel choice. */
    ExecMode mode = ExecMode::FromScratch;
    Shape inShape;
    Shape outShape;
    /** Eq. 10 is sound for this layer kind. */
    bool reuseSafe = false;
    /** The safety pass pinned this step to full recompute. */
    bool pinned = false;
    /** Effective quantization (disabled when pinned or unplanned). */
    LayerQuantization quant;
    /**
     * Near-match cluster radius (quantization steps) this step's
     * reuse state scans with; 0 = exact matching.  Only set on
     * reuse-mode steps, and surfaced in dump() when nonzero.
     */
    int32_t clusterRadius = 0;
};

/** Compilation tunables.  The defaults preserve engine behavior:
 *  fusion and DCE are semantics-neutral rewrites, and with pinning
 *  off every safety finding keeps its original severity. */
struct CompileOptions {
    /** Run FuseActivationPass. */
    bool fuseActivations = true;
    /** Run DeadNodeEliminationPass. */
    bool eliminateDeadNodes = true;
    /** Pin error-grade unsafe layers instead of failing compile. */
    bool pinUnsafeLayers = false;
    /** Also pin layers with RS003 overflow-risk warnings. */
    bool pinOverflowRisk = false;
    /**
     * Near-match cluster radius in quantization steps, applied to
     * every reuse-enabled step: quantized values within this radius
     * of their buffered index map to the buffered representative
     * (no correction emitted).  0 preserves exact matching; the
     * per-element input error is bounded by radius * step and is
     * charged against the DriftGuard budget at runtime.
     */
    int32_t clusterRadius = 0;
};

/** Immutable compiled schedule of one network + plan + options. */
class CompiledPlan
{
  public:
    /**
     * Compiles `network` + `plan` under `options`.  Never fails:
     * diagnostics land in report(), and steps() is empty when they
     * include errors.  `network` must outlive the returned plan.
     */
    static std::shared_ptr<const CompiledPlan>
    compile(const Network &network, const QuantizationPlan &plan,
            const CompileOptions &options = {});

    /** The network this plan was compiled from. */
    const Network &network() const { return *network_; }

    /** The execution schedule (empty when report() has errors). */
    const std::vector<PlanStep> &steps() const { return steps_; }

    /** All pass diagnostics (shape + safety findings). */
    const DiagnosticReport &report() const { return report_; }

    /** True when the plan compiled without errors. */
    bool valid() const { return !report_.hasErrors(); }

    /** The options the plan was compiled under. */
    const CompileOptions &options() const { return options_; }

    /** Layer count of the source network (trace/state sizing). */
    size_t layerCount() const { return layer_count_; }

    /** True when the source network is recurrent. */
    bool recurrent() const { return recurrent_; }

    /** Per-pass rewrite accounting, in pipeline order. */
    const std::vector<PassManager::Record> &passRecords() const
    {
        return pass_records_;
    }

    /** Activations folded into their producers. */
    size_t fusedCount() const { return fused_; }

    /** Nodes eliminated as unreachable. */
    size_t deadCount() const { return dead_; }

    /** Steps pinned to full recompute by the safety pass. */
    size_t pinnedCount() const { return pinned_; }

    /**
     * Human-readable, float-free rendering of the schedule (one line
     * per step), stable across runs — the --dump-plan golden format.
     */
    std::string dump() const;

  private:
    CompiledPlan() = default;

    const Network *network_ = nullptr;
    CompileOptions options_;
    DiagnosticReport report_;
    std::vector<PassManager::Record> pass_records_;
    std::vector<PlanStep> steps_;
    size_t layer_count_ = 0;
    bool recurrent_ = false;
    size_t fused_ = 0;
    size_t dead_ = 0;
    size_t pinned_ = 0;
};

} // namespace ir
} // namespace reuse

#endif // REUSE_DNN_IR_COMPILED_PLAN_H
