/**
 * @file
 * Per-op shape inference: the single source of truth for how every
 * layer kind maps an input shape to an output shape (or rejects it).
 *
 * Both the layer classes (`Layer::inferOutputShape()` wrappers in
 * src/nn) and the IR shape-inference pass (src/ir/passes.h, which the
 * static validator delegates to) call these functions, so execution
 * and analysis can never disagree about a shape.  The functions are
 * pure: they touch no layer state and never panic — invalid inputs
 * come back as an InferredShape carrying a human-readable reason.
 */

#ifndef REUSE_DNN_IR_OP_SHAPES_H
#define REUSE_DNN_IR_OP_SHAPES_H

#include <cstdint>
#include <optional>
#include <string>

#include "tensor/shape.h"

namespace reuse {
namespace ir {

/** Result of one shape inference: a shape or a rejection reason. */
struct InferredShape {
    /** The inferred output shape; empty when inference failed. */
    std::optional<Shape> shape;
    /** Why inference failed; empty on success. */
    std::string reason;

    /** True when an output shape was inferred. */
    bool valid() const { return shape.has_value(); }

    static InferredShape ok(Shape s)
    {
        InferredShape r;
        r.shape = std::move(s);
        return r;
    }

    static InferredShape fail(std::string why)
    {
        InferredShape r;
        r.reason = std::move(why);
        return r;
    }
};

/** Fully-connected: any shape with `inputs` elements -> [outputs]. */
InferredShape inferFullyConnected(const std::string &name,
                                  const Shape &input, int64_t inputs,
                                  int64_t outputs);

/** 2D convolution over [C,H,W], valid padding. */
InferredShape inferConv2d(const std::string &name, const Shape &input,
                          int64_t in_channels, int64_t out_channels,
                          int64_t kernel, int64_t stride);

/** 3D convolution over [C,D,H,W] with symmetric padding, stride 1. */
InferredShape inferConv3d(const std::string &name, const Shape &input,
                          int64_t in_channels, int64_t out_channels,
                          int64_t kernel, int64_t pad);

/** 2D max pooling over [C,H,W] (floor division). */
InferredShape inferMaxPool2d(const std::string &name,
                             const Shape &input, int64_t window);

/** 3D max pooling over [C,D,H,W]; `ceil_mode` rounds dims up. */
InferredShape inferMaxPool3d(const std::string &name,
                             const Shape &input, int64_t depth_window,
                             int64_t spatial_window, bool ceil_mode);

/** p-norm grouping: [N] -> [N / group]. */
InferredShape inferPNorm(const std::string &name, const Shape &input,
                         int64_t group);

/** Unidirectional LSTM per-step: [input_dim] -> [cell_dim]. */
InferredShape inferLstm(const std::string &name, const Shape &input,
                        int64_t input_dim, int64_t cell_dim);

/** Bidirectional LSTM per-step: [input_dim] -> [2 * cell_dim]. */
InferredShape inferBiLstm(const std::string &name, const Shape &input,
                          int64_t input_dim, int64_t cell_dim);

/** Elementwise activation: shape-preserving. */
InferredShape inferActivation(const Shape &input);

/** Flatten: any shape -> [numel]. */
InferredShape inferFlatten(const Shape &input);

} // namespace ir
} // namespace reuse

#endif // REUSE_DNN_IR_OP_SHAPES_H
