/**
 * @file
 * Lightweight graph IR over the nn layer substrate.
 *
 * A Graph holds one node per layer with explicit edges (instead of
 * the Network's implicit chain), plus the analysis metadata the
 * rewrite passes read and write: inferred shapes, per-layer
 * quantization, reuse-safety verdicts, fusion links and liveness.
 * Nodes reference — never own — the underlying layers, so a graph is
 * cheap to build and a CompiledPlan derived from it stays valid for
 * as long as the Network it was compiled from.
 *
 * Graphs built from a Network are chains; the explicit edge lists
 * exist so passes (and hand-built test graphs) can express the
 * general case: fusion splices nodes out of the edge list, and
 * dead-node elimination walks reverse reachability from the output.
 */

#ifndef REUSE_DNN_IR_GRAPH_H
#define REUSE_DNN_IR_GRAPH_H

#include <cstddef>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "quant/quantization_plan.h"

namespace reuse {
namespace ir {

/** Index of a node within its graph. */
using NodeId = size_t;

/** Sentinel for "no node" (e.g. an unset graph output). */
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/**
 * True when the paper's incremental update (Eq. 10) is sound for
 * this layer kind: the layer's pre-activation outputs are linear in
 * its inputs.  Pooling, nonlinear activations and p-norm must be
 * recomputed from scratch (their cost is negligible; Sec. III).
 */
bool isReuseEligible(LayerKind kind);

/** One layer plus the metadata the passes maintain for it. */
struct Node {
    NodeId id = kNoNode;
    /** The layer this node wraps (not owned; must outlive users). */
    const Layer *layer = nullptr;
    /** Index of the layer in the source network (trace slot). */
    size_t layerIndex = 0;
    /** Producers feeding this node (empty = fed by the graph input). */
    std::vector<NodeId> inputs;
    /** Consumers of this node's output. */
    std::vector<NodeId> outputs;

    // ---- written by the shape-inference pass ------------------------
    Shape inShape;
    Shape outShape;
    bool shapesValid = false;

    // ---- written by the reuse-safety pass ---------------------------
    /** Effective quantization (cleared when the node is pinned). */
    LayerQuantization quant;
    /** Safety rewrite pinned this node to full recompute. */
    bool pinnedFullRecompute = false;

    // ---- written by the fusion / DCE passes -------------------------
    /** Elementwise activation fused into this node (not owned). */
    const Layer *fusedActivation = nullptr;
    /** Original layer index of the fused activation. */
    size_t fusedActivationIndex = 0;
    /** This node was fused into its producer (skip when scheduling). */
    bool fusedAway = false;
    /** Unreachable from the graph output (skip when scheduling). */
    bool dead = false;

    const std::string &name() const { return layer->name(); }
    LayerKind kind() const { return layer->kind(); }
};

/**
 * Graph of one model.  Build with fromNetwork() (chain edges, one
 * node per layer) or hand-assemble with addNode()/connect() for
 * tests and future importers.
 */
class Graph
{
  public:
    Graph() = default;
    Graph(std::string name, Shape input_shape)
        : name_(std::move(name)), input_shape_(std::move(input_shape))
    {
    }

    /** Chain graph over `network` with an all-disabled plan. */
    static Graph fromNetwork(const Network &network);

    /**
     * Chain graph over `network` carrying `plan`'s per-layer
     * quantization.  A plan sized differently from the network is
     * recorded (planSizeMismatch()) for the safety pass to report as
     * QP001; nodes then carry disabled quantization.
     */
    static Graph fromNetwork(const Network &network,
                             const QuantizationPlan &plan);

    /** Appends a node for `layer`; returns its id. */
    NodeId addNode(const Layer *layer, size_t layer_index,
                   LayerQuantization quant = {});

    /** Adds the edge `from` -> `to`. */
    void connect(NodeId from, NodeId to);

    /** Marks `id` as the graph output (DCE root). */
    void setOutput(NodeId id) { output_ = id; }

    const std::string &name() const { return name_; }
    const Shape &inputShape() const { return input_shape_; }
    NodeId output() const { return output_; }

    size_t nodeCount() const { return nodes_.size(); }
    Node &node(NodeId id) { return nodes_[id]; }
    const Node &node(NodeId id) const { return nodes_[id]; }
    std::vector<Node> &nodes() { return nodes_; }
    const std::vector<Node> &nodes() const { return nodes_; }

    /** True when any node wraps a recurrent layer. */
    bool recurrent() const;

    /**
     * Nodes in a topological order (panics on cycles).  Source nodes
     * and ties resolve in insertion order, so a chain graph's order
     * equals its layer order.
     */
    std::vector<NodeId> topoOrder() const;

    /** True when the source plan's size disagreed with the network. */
    bool planSizeMismatch() const { return plan_size_mismatch_; }
    /** The mismatched plan's size (meaningful on mismatch only). */
    size_t planSize() const { return plan_size_; }

  private:
    std::string name_;
    Shape input_shape_;
    std::vector<Node> nodes_;
    NodeId output_ = kNoNode;
    bool plan_size_mismatch_ = false;
    size_t plan_size_ = 0;
};

} // namespace ir
} // namespace reuse

#endif // REUSE_DNN_IR_GRAPH_H
