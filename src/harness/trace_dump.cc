#include "trace_dump.h"

namespace reuse {

void
dumpTracesCsv(std::ostream &os, const Network &network,
              const std::vector<ExecutionTrace> &traces)
{
    os << "execution,layer,name,kind,reuse,first,checked,changed,"
          "similarity,macs_full,macs_performed,reuse_fraction\n";
    for (size_t e = 0; e < traces.size(); ++e) {
        for (const LayerExecRecord &rec : traces[e]) {
            const std::string name =
                rec.layerIndex < network.layerCount()
                    ? network.layer(rec.layerIndex).name()
                    : "?";
            os << e << "," << rec.layerIndex << "," << name << ","
               << layerKindName(rec.kind) << ","
               << (rec.reuseEnabled ? 1 : 0) << ","
               << (rec.firstExecution ? 1 : 0) << ","
               << rec.inputsChecked << "," << rec.inputsChanged << ","
               << rec.similarity() << "," << rec.macsFull << ","
               << rec.macsPerformed << "," << rec.reuseFraction()
               << "\n";
        }
    }
}

void
dumpStatsCsv(std::ostream &os, const ReuseStatsCollector &stats)
{
    os << "layer,name,kind,enabled,executions,similarity,"
          "computation_reuse\n";
    for (size_t li = 0; li < stats.layers().size(); ++li) {
        const LayerReuseStats &s = stats.layers()[li];
        os << li << "," << s.layerName << "," << layerKindName(s.kind)
           << "," << (s.reuseEnabled ? 1 : 0) << "," << s.executions
           << "," << s.similarity() << "," << s.computationReuse()
           << "\n";
    }
}

} // namespace reuse
