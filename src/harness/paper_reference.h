/**
 * @file
 * Reference numbers reported by the paper, used by the benchmark
 * harness to print "paper vs. measured" comparisons (EXPERIMENTS.md).
 */

#ifndef REUSE_DNN_HARNESS_PAPER_REFERENCE_H
#define REUSE_DNN_HARNESS_PAPER_REFERENCE_H

#include <map>
#include <string>
#include <vector>

namespace reuse {

/** Paper numbers for one DNN. */
struct PaperReference {
    /** Speedup of reuse over baseline accelerator (Fig. 9). */
    double speedup = 0.0;
    /** Energy reduction of the reuse scheme (Fig. 10), fraction. */
    double energySavings = 0.0;
    /** Accuracy loss of quantization (Table I), pct points. */
    double accuracyLossPct = 0.0;
    /** Per-layer computation reuse, Table I ("layer name" -> frac). */
    std::vector<std::pair<std::string, double>> layerReuse;
    /** I/O Buffer bytes baseline / reuse (Table III, KB). */
    double ioBufferBaselineKB = 0.0;
    double ioBufferReuseKB = 0.0;
    /** Main memory baseline / reuse (Table III, MB). */
    double mainMemoryBaselineMB = 0.0;
    double mainMemoryReuseMB = 0.0;
};

/** Paper numbers indexed by DNN name (Kaldi/EESEN/C3D/AutoPilot). */
const std::map<std::string, PaperReference> &paperReferences();

/** Fig. 5 overall averages reported by the paper. */
struct PaperAverages {
    double inputSimilarity = 0.61;
    double computationReuse = 0.66;
    double speedup = 3.5;
    double energySavings = 0.63;
};

} // namespace reuse

#endif // REUSE_DNN_HARNESS_PAPER_REFERENCE_H
