/**
 * @file
 * Shared computation behind the headline figures (Figs. 9-12): for
 * each of the four DNNs, measure per-layer similarity functionally,
 * then cost the paper-scale network in baseline and reuse modes and
 * attach the energy breakdowns.
 */

#ifndef REUSE_DNN_HARNESS_HEADLINE_H
#define REUSE_DNN_HARNESS_HEADLINE_H

#include <string>
#include <vector>

#include "energy/energy_model.h"
#include "harness/experiment.h"
#include "harness/workload_setup.h"
#include "sim/accelerator.h"

namespace reuse {

/** Per-DNN headline result. */
struct HeadlineEntry {
    std::string name;
    /** Functional measurement (reduced scale for C3D). */
    WorkloadMeasurement measurement;
    /** Paper-scale simulation results. */
    SimResult baseline;
    SimResult reuse;
    EnergyBreakdown baselineEnergy;
    EnergyBreakdown reuseEnergy;
    /** The paper-scale network's MACs per execution. */
    int64_t macsPerExecution = 0;
    /** Paper-scale network weight bytes. */
    int64_t weightBytes = 0;

    double speedup() const { return baseline.cycles / reuse.cycles; }
    double energySavings() const
    {
        return 1.0 - reuseEnergy.total() / baselineEnergy.total();
    }
};

/** Knobs for the headline computation. */
struct HeadlineConfig {
    WorkloadSetupConfig setup;
    /** Frames measured functionally per feed-forward workload. */
    size_t measureFrames = 24;
    /** Timesteps measured functionally for the RNN. */
    size_t measureSteps = 32;
    /** Windows measured functionally for C3D (expensive). */
    size_t measureWindows = 4;
    /** Executions costed in the paper-scale simulation (a long
     *  stream, so the stream-start weight load amortizes as in the
     *  paper's hours-long inputs). */
    int64_t simulatedExecutions = 1000;
    /** Sequence length of each simulated RNN utterance. */
    int64_t simulatedSequenceLength = 100;
    /** Accelerator configuration. */
    AcceleratorParams params;
    /** Energy constants. */
    EnergyTable energyTable;
};

/**
 * Computes the headline entry for one workload name
 * ("Kaldi"/"EESEN"/"C3D"/"AutoPilot").
 */
HeadlineEntry computeHeadlineEntry(const std::string &name,
                                   const HeadlineConfig &config);

/** Computes entries for all four workloads in paper order. */
std::vector<HeadlineEntry>
computeHeadline(const HeadlineConfig &config = {});

} // namespace reuse

#endif // REUSE_DNN_HARNESS_HEADLINE_H
