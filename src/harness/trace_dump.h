/**
 * @file
 * CSV export of execution traces and per-layer statistics, for
 * offline analysis/plotting of reuse behaviour over time.
 */

#ifndef REUSE_DNN_HARNESS_TRACE_DUMP_H
#define REUSE_DNN_HARNESS_TRACE_DUMP_H

#include <ostream>
#include <vector>

#include "core/exec_record.h"
#include "core/reuse_stats.h"
#include "nn/network.h"

namespace reuse {

/**
 * Writes one CSV row per (execution, layer) record:
 * execution,layer,name,kind,reuse,first,checked,changed,similarity,
 * macs_full,macs_performed,reuse_fraction.
 */
void dumpTracesCsv(std::ostream &os, const Network &network,
                   const std::vector<ExecutionTrace> &traces);

/**
 * Writes one CSV row per layer of accumulated statistics:
 * layer,name,kind,enabled,executions,similarity,computation_reuse.
 */
void dumpStatsCsv(std::ostream &os, const ReuseStatsCollector &stats);

} // namespace reuse

#endif // REUSE_DNN_HARNESS_TRACE_DUMP_H
