/**
 * @file
 * One-call setup of the four paper workloads: network + calibrated
 * quantization plan + input stream, with the generator parameters
 * tuned so the measured per-layer reuse lands in the bands of
 * Table I (see EXPERIMENTS.md for the calibration evidence).
 */

#ifndef REUSE_DNN_HARNESS_WORKLOAD_SETUP_H
#define REUSE_DNN_HARNESS_WORKLOAD_SETUP_H

#include <functional>
#include <memory>
#include <string>

#include "quant/quantization_plan.h"
#include "workloads/model_zoo.h"
#include "workloads/sequence_generator.h"

namespace reuse {

/** A fully assembled workload ready for measurement. */
struct Workload {
    std::string name;
    ModelBundle bundle;
    std::unique_ptr<SequenceGenerator> generator;
    QuantizationPlan plan;
    /** True when inputs form one RNN sequence per measurement. */
    bool recurrent = false;
    /**
     * Spatial divisor applied to the functional network (C3D only;
     * 1 elsewhere).  Paper-scale costing uses a full-scale network
     * built separately.
     */
    int spatialDivisor = 1;
    /**
     * Builds an additional stream of this workload's input process
     * from a seed, with the same generator parameters as `generator`.
     * Multi-session serving uses this to give every session its own
     * decorrelated stream (see workloads/multi_session_generator.h).
     */
    std::function<std::unique_ptr<SequenceGenerator>(uint64_t)>
        makeGenerator;
};

/**
 * Workload factory configuration shared by tests and benches.
 */
struct WorkloadSetupConfig {
    uint64_t seed = 42;
    /** Frames used to calibrate quantizer ranges ("training set"). */
    size_t calibrationFrames = 48;
    /** Spatial divisor for the functional C3D network (28x28 at 4;
     *  deep conv layers keep a usable spatial extent). */
    int c3dSpatialDivisor = 4;
};

/** Builds the Kaldi MLP workload (sliding 9x40 speech windows). */
Workload setupKaldi(const WorkloadSetupConfig &config = {});

/** Builds the EESEN RNN workload (120-feature frame sequences). */
Workload setupEesen(const WorkloadSetupConfig &config = {});

/** Builds the C3D CNN workload (16-frame video windows). */
Workload setupC3D(const WorkloadSetupConfig &config = {});

/** Builds the AutoPilot CNN workload (66x200 camera frames). */
Workload setupAutopilot(const WorkloadSetupConfig &config = {});

/** Builds a workload by name ("Kaldi", "EESEN", "C3D", "AutoPilot"). */
Workload setupWorkload(const std::string &name,
                       const WorkloadSetupConfig &config = {});

/**
 * Compiles the named workload's model under the most aggressive
 * pinning policy (unsafe layers and overflow risks pinned to full
 * recompute) and returns CompiledPlan::dump() — the stable schedule
 * rendering behind `validate_model --dump-plan` and its golden test.
 */
std::string dumpWorkloadPlan(const std::string &name);

} // namespace reuse

#endif // REUSE_DNN_HARNESS_WORKLOAD_SETUP_H
