#include "paper_reference.h"

namespace reuse {

const std::map<std::string, PaperReference> &
paperReferences()
{
    static const std::map<std::string, PaperReference> refs = [] {
        std::map<std::string, PaperReference> m;

        PaperReference kaldi;
        kaldi.speedup = 1.9;
        kaldi.energySavings = 0.45;
        kaldi.accuracyLossPct = 0.47;
        kaldi.layerReuse = {{"FC3", 0.75},
                            {"FC4", 0.66},
                            {"FC5", 0.56},
                            {"FC6", 0.66}};
        kaldi.ioBufferBaselineKB = 27;
        kaldi.ioBufferReuseKB = 66;
        kaldi.mainMemoryBaselineMB = 18;
        kaldi.mainMemoryReuseMB = 18;
        m["Kaldi"] = kaldi;

        PaperReference eesen;
        eesen.speedup = 2.4;    // Fig. 9 bar (approximate read-off)
        eesen.energySavings = 0.55;
        eesen.accuracyLossPct = 0.18;
        eesen.layerReuse = {{"BiLSTM1", 0.38},
                            {"BiLSTM2", 0.53},
                            {"BiLSTM3", 0.56},
                            {"BiLSTM4", 0.59},
                            {"BiLSTM5", 0.60}};
        eesen.ioBufferBaselineKB = 8;
        eesen.ioBufferReuseKB = 13;
        eesen.mainMemoryBaselineMB = 42;
        eesen.mainMemoryReuseMB = 42;
        m["EESEN"] = eesen;

        PaperReference c3d;
        c3d.speedup = 4.5;      // Fig. 9 bar (approximate read-off)
        c3d.energySavings = 0.77;
        c3d.accuracyLossPct = 1.38;
        c3d.layerReuse = {{"CONV2", 0.76},
                          {"CONV3", 0.75},
                          {"CONV4", 0.75},
                          {"CONV5", 0.73},
                          {"CONV6", 0.80},
                          {"CONV7", 0.80},
                          {"CONV8", 0.87},
                          {"FC1", 0.88},
                          {"FC2", 0.61},
                          {"FC3", 0.54}};
        c3d.ioBufferBaselineKB = 1152;
        c3d.ioBufferReuseKB = 1280;
        c3d.mainMemoryBaselineMB = 397;
        c3d.mainMemoryReuseMB = 443;
        m["C3D"] = c3d;

        PaperReference autopilot;
        autopilot.speedup = 5.2;
        autopilot.energySavings = 0.76;
        autopilot.accuracyLossPct = 0.06;
        autopilot.layerReuse = {{"CONV1", 0.46},
                                {"CONV2", 0.84},
                                {"CONV3", 0.93},
                                {"CONV4", 0.94},
                                {"CONV5", 0.88},
                                {"FC1", 0.89},
                                {"FC2", 0.97},
                                {"FC3", 0.95},
                                {"FC4", 0.82}};
        autopilot.ioBufferBaselineKB = 160;
        autopilot.ioBufferReuseKB = 176;
        autopilot.mainMemoryBaselineMB = 6.6;
        autopilot.mainMemoryReuseMB = 7.2;
        m["AutoPilot"] = autopilot;
        return m;
    }();
    return refs;
}

} // namespace reuse
