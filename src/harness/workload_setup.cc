#include "workload_setup.h"

#include "analysis/model_validator.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "ir/compiled_plan.h"
#include "workloads/speech_generator.h"
#include "workloads/video_generator.h"

namespace reuse {

namespace {

/**
 * Statically validates an assembled workload before handing it to
 * callers: a workload with a broken layer chain or an unsafe plan
 * would otherwise surface mid-measurement.
 */
Workload
validated(Workload w)
{
    ValidatorOptions options;
    options.emitInfo = false;
    const DiagnosticReport report =
        validateModel(*w.bundle.network, w.plan, options);
    for (const Diagnostic &d : report.diagnostics()) {
        if (d.severity == Severity::Warning)
            warn(w.name + ": " + d.str());
    }
    if (report.hasErrors()) {
        fatal(w.name + ": workload failed static validation\n" +
              report.str());
    }
    return w;
}

/**
 * Calibrates the plan using a stream freshly drawn from the same
 * generator distribution (a disjoint "training" stream).
 */
QuantizationPlan
calibrate(const Network &network, SequenceGenerator &generator,
          size_t frames, int clusters,
          const std::vector<size_t> &enabled)
{
    std::vector<Tensor> calibration = generator.take(frames);
    return calibratePlan(network, calibration, clusters, enabled);
}

} // namespace

Workload
setupKaldi(const WorkloadSetupConfig &config)
{
    Workload w;
    w.name = "Kaldi";
    Rng rng(config.seed);
    w.bundle = buildKaldi(rng);

    SpeechParams sp;
    sp.featureDim = 40;
    sp.segmentMeanFrames = 12.0;
    sp.wanderRho = 0.995f;
    sp.wanderSigma = 0.028f;
    sp.frameNoise = 0.010f;
    auto gen = std::make_unique<SpeechWindowGenerator>(sp, 9,
                                                       config.seed + 1);
    w.plan = calibrate(*w.bundle.network, *gen,
                       config.calibrationFrames, w.bundle.clusters,
                       w.bundle.quantizedLayers);
    // Fresh stream for measurement, disjoint from calibration.
    gen->reset(config.seed + 1000);
    w.generator = std::move(gen);
    w.recurrent = false;
    w.makeGenerator = [sp](uint64_t seed) {
        return std::make_unique<SpeechWindowGenerator>(sp, 9, seed);
    };
    return validated(std::move(w));
}

Workload
setupEesen(const WorkloadSetupConfig &config)
{
    Workload w;
    w.name = "EESEN";
    Rng rng(config.seed + 17);
    w.bundle = buildEesen(rng);

    SpeechParams sp;
    sp.featureDim = 120;
    sp.segmentMeanFrames = 6.0;
    sp.wanderRho = 0.98f;
    sp.wanderSigma = 0.22f;
    sp.frameNoise = 0.08f;
    auto gen =
        std::make_unique<SpeechFrameGenerator>(sp, config.seed + 2);
    w.plan = calibrate(*w.bundle.network, *gen,
                       config.calibrationFrames, w.bundle.clusters,
                       w.bundle.quantizedLayers);
    gen->reset(config.seed + 2000);
    w.generator = std::move(gen);
    w.recurrent = true;
    w.makeGenerator = [sp](uint64_t seed) {
        return std::make_unique<SpeechFrameGenerator>(sp, seed);
    };
    return validated(std::move(w));
}

Workload
setupC3D(const WorkloadSetupConfig &config)
{
    Workload w;
    w.name = "C3D";
    Rng rng(config.seed + 29);
    w.bundle = buildC3D(rng, config.c3dSpatialDivisor);
    w.spatialDivisor = config.c3dSpatialDivisor;

    VideoParams vp;
    vp.height = 112 / config.c3dSpatialDivisor;
    vp.width = 112 / config.c3dSpatialDivisor;
    vp.framesPerWindow = 16;
    vp.objects = 3;
    vp.objectScale = 0.25;
    vp.objectSpeed = 1.5;
    vp.pixelNoise = 0.004f;
    vp.sceneCutProb = 0.0;
    auto gen =
        std::make_unique<VideoWindowGenerator>(vp, config.seed + 3);
    // Video frames are expensive; a smaller calibration set suffices
    // because pixel statistics are stationary.
    const size_t calib = std::max<size_t>(4, config.calibrationFrames / 8);
    w.plan = calibrate(*w.bundle.network, *gen, calib,
                       w.bundle.clusters, w.bundle.quantizedLayers);
    gen->reset(config.seed + 3000);
    w.generator = std::move(gen);
    w.recurrent = false;
    w.makeGenerator = [vp](uint64_t seed) {
        return std::make_unique<VideoWindowGenerator>(vp, seed);
    };
    return validated(std::move(w));
}

Workload
setupAutopilot(const WorkloadSetupConfig &config)
{
    Workload w;
    w.name = "AutoPilot";
    Rng rng(config.seed + 41);
    w.bundle = buildAutopilot(rng);

    DrivingParams dp;
    // Near-static scene: with untrained (random) conv filters, deep
    // layers amplify perturbations that trained feature detectors
    // would be invariant to, so the synthetic scene must move less
    // than real dash-cam footage to land in Table I's deep-layer
    // reuse band (see EXPERIMENTS.md).
    dp.pixelNoise = 0.0012f;
    dp.jitterAmp = 0.03;
    dp.laneDrift = 0.06;
    dp.lightSigma = 0.0004f;
    auto gen =
        std::make_unique<DrivingFrameGenerator>(dp, config.seed + 4);
    const size_t calib = std::max<size_t>(8, config.calibrationFrames / 4);
    w.plan = calibrate(*w.bundle.network, *gen, calib,
                       w.bundle.clusters, w.bundle.quantizedLayers);
    gen->reset(config.seed + 4000);
    w.generator = std::move(gen);
    w.recurrent = false;
    w.makeGenerator = [dp](uint64_t seed) {
        return std::make_unique<DrivingFrameGenerator>(dp, seed);
    };
    return validated(std::move(w));
}

std::string
dumpWorkloadPlan(const std::string &name)
{
    WorkloadSetupConfig cfg;
    // Calibration only sets quantizer ranges; the schedule (and its
    // dump) depends on shapes and plan structure, not on the ranges,
    // so a short stream keeps the tool fast.
    cfg.calibrationFrames = 16;
    Workload w = setupWorkload(name, cfg);
    ir::CompileOptions options;
    options.pinUnsafeLayers = true;
    options.pinOverflowRisk = true;
    const auto plan =
        ir::CompiledPlan::compile(*w.bundle.network, w.plan, options);
    return plan->dump();
}

Workload
setupWorkload(const std::string &name, const WorkloadSetupConfig &config)
{
    if (name == "Kaldi")
        return setupKaldi(config);
    if (name == "EESEN")
        return setupEesen(config);
    if (name == "C3D")
        return setupC3D(config);
    if (name == "AutoPilot")
        return setupAutopilot(config);
    fatal("unknown workload: " + name);
}

} // namespace reuse
