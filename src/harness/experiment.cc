#include "experiment.h"

#include "common/logging.h"
#include "quant/range_profiler.h"

namespace reuse {

QuantizationPlan
calibratePlan(const Network &network,
              const std::vector<Tensor> &calibration_inputs,
              int clusters, const std::vector<size_t> &enabled_layers)
{
    const NetworkRanges ranges =
        profileNetworkRanges(network, calibration_inputs);
    return makePlan(network, ranges, clusters, enabled_layers);
}

namespace {

std::vector<double>
similarityFrom(const ReuseStatsCollector &stats)
{
    std::vector<double> sims;
    sims.reserve(stats.layers().size());
    for (const auto &l : stats.layers()) {
        if (l.reuseEnabled && l.inputsChecked > 0)
            sims.push_back(l.similarity());
        else
            sims.push_back(-1.0);
    }
    return sims;
}

std::vector<double>
reuseFrom(const ReuseStatsCollector &stats)
{
    std::vector<double> fracs;
    fracs.reserve(stats.layers().size());
    for (const auto &l : stats.layers()) {
        if (l.reuseEnabled && l.macsFull > 0)
            fracs.push_back(l.computationReuse());
        else
            fracs.push_back(-1.0);
    }
    return fracs;
}

} // namespace

std::vector<double>
layerSimilarityVector(const ReuseStatsCollector &stats)
{
    return similarityFrom(stats);
}

WorkloadMeasurement
measureWorkload(const Network &network, const QuantizationPlan &plan,
                const std::vector<Tensor> &inputs,
                const MeasureOptions &options)
{
    REUSE_ASSERT(!inputs.empty(), "no inputs to measure");
    WorkloadMeasurement m;

    if (network.isRecurrent()) {
        return measureWorkloadSequences(network, plan, {inputs},
                                        options);
    }

    ReuseEngine engine(network, plan);
    std::vector<Tensor> reuse_outputs;
    reuse_outputs.reserve(inputs.size());
    for (const Tensor &in : inputs) {
        reuse_outputs.push_back(engine.execute(in));
        m.traces.push_back(engine.lastTrace());
    }

    if (options.withReference) {
        std::vector<Tensor> reference;
        reference.reserve(inputs.size());
        for (const Tensor &in : inputs)
            reference.push_back(network.forward(in));
        m.accuracy = compareOutputs(reference, reuse_outputs);
    }

    m.stats = engine.stats();
    m.layerSimilarity = similarityFrom(m.stats);
    m.layerReuse = reuseFrom(m.stats);
    return m;
}

WorkloadMeasurement
measureWorkloadSequences(const Network &network,
                         const QuantizationPlan &plan,
                         const std::vector<std::vector<Tensor>> &sequences,
                         const MeasureOptions &options)
{
    REUSE_ASSERT(!sequences.empty(), "no sequences to measure");
    WorkloadMeasurement m;
    ReuseEngine engine(network, plan);

    std::vector<Tensor> reuse_outputs;
    std::vector<Tensor> reference;
    for (const auto &seq : sequences) {
        std::vector<Tensor> out = engine.executeSequence(seq);
        m.traces.push_back(engine.lastTrace());
        for (auto &t : out)
            reuse_outputs.push_back(std::move(t));
        if (options.withReference) {
            std::vector<Tensor> ref = network.forwardSequence(seq);
            for (auto &t : ref)
                reference.push_back(std::move(t));
        }
    }

    m.stats = engine.stats();
    if (options.withReference)
        m.accuracy = compareOutputs(reference, reuse_outputs);
    m.layerSimilarity = similarityFrom(m.stats);
    m.layerReuse = reuseFrom(m.stats);
    return m;
}

} // namespace reuse
