/**
 * @file
 * Shared experiment plumbing for the benchmark binaries and examples:
 * calibrating quantizers on a generator, running reuse-based and
 * reference inference over a stream, and collecting similarity,
 * reuse, accuracy and per-execution traces in one pass.
 */

#ifndef REUSE_DNN_HARNESS_EXPERIMENT_H
#define REUSE_DNN_HARNESS_EXPERIMENT_H

#include <vector>

#include "core/reuse_engine.h"
#include "quant/accuracy.h"
#include "quant/quantization_plan.h"
#include "workloads/sequence_generator.h"

namespace reuse {

/** What one workload measurement produced. */
struct WorkloadMeasurement {
    /** Accumulated per-layer similarity/reuse statistics. */
    ReuseStatsCollector stats{std::vector<std::string>{}};
    /** Degradation of reuse outputs vs. FP32 from-scratch outputs. */
    AccuracyReport accuracy;
    /** One execution trace per execution (per sequence for RNNs). */
    std::vector<ExecutionTrace> traces;
    /**
     * Per-layer steady-state input similarity, sized like the
     * network; -1 marks layers without reuse.  Feed this to
     * AcceleratorSim::estimate() for paper-scale costing.
     */
    std::vector<double> layerSimilarity;
    /**
     * Per-layer steady-state computation reuse (fraction of MACs
     * avoided); -1 marks layers without reuse.  Exceeds the input
     * similarity on conv layers whose changed inputs sit near
     * feature-map borders.
     */
    std::vector<double> layerReuse;
};

/**
 * Profiles layer input ranges with `calibration_inputs` (the
 * "training set") and builds a quantization plan enabling the given
 * layers with `clusters` clusters.
 */
QuantizationPlan
calibratePlan(const Network &network,
              const std::vector<Tensor> &calibration_inputs,
              int clusters, const std::vector<size_t> &enabled_layers);

/** Options for measureWorkload(). */
struct MeasureOptions {
    /**
     * Also run the FP32 from-scratch reference to fill the accuracy
     * report; disable to halve the cost when only similarity/trace
     * data is needed.
     */
    bool withReference = true;
};

/**
 * Runs the workload once with the reuse engine and (optionally) once
 * from scratch (FP32 reference) on the same inputs, collecting
 * statistics, traces and the accuracy report.
 *
 * For feed-forward networks, `inputs` is a stream of frames; for
 * recurrent networks it is ONE sequence processed as a whole.
 */
WorkloadMeasurement
measureWorkload(const Network &network, const QuantizationPlan &plan,
                const std::vector<Tensor> &inputs,
                const MeasureOptions &options = {});

/**
 * Recurrent variant over several sequences (utterances): the engine
 * state resets between sequences.
 */
WorkloadMeasurement
measureWorkloadSequences(const Network &network,
                         const QuantizationPlan &plan,
                         const std::vector<std::vector<Tensor>> &sequences,
                         const MeasureOptions &options = {});

/** Extracts the per-layer similarity vector from a stats collector. */
std::vector<double>
layerSimilarityVector(const ReuseStatsCollector &stats);

} // namespace reuse

#endif // REUSE_DNN_HARNESS_EXPERIMENT_H
