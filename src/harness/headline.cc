#include "headline.h"

#include <algorithm>

#include "common/logging.h"
#include "workloads/model_zoo.h"

namespace reuse {

HeadlineEntry
computeHeadlineEntry(const std::string &name,
                     const HeadlineConfig &config)
{
    HeadlineEntry entry;
    entry.name = name;

    Workload w = setupWorkload(name, config.setup);
    const Network &func_net = *w.bundle.network;

    // 1. Functional measurement of per-layer similarity.
    size_t count = config.measureFrames;
    if (name == "EESEN")
        count = config.measureSteps;
    else if (name == "C3D")
        count = config.measureWindows;
    MeasureOptions opts;
    opts.withReference = false;   // similarity only
    entry.measurement = measureWorkload(
        func_net, w.plan, w.generator->take(count), opts);

    // 2. Paper-scale network for costing.  C3D was measured at a
    // reduced spatial resolution; its similarity statistics carry
    // over per layer (same layer list either way).
    std::unique_ptr<Network> full_net;
    const Network *cost_net = &func_net;
    if (name == "C3D" && w.spatialDivisor != 1) {
        Rng rng(config.setup.seed + 29);   // same seed as setupC3D
        ModelBundle full = buildC3D(rng, 1);
        REUSE_ASSERT(full.network->layerCount() ==
                         func_net.layerCount(),
                     "full-scale C3D layer list mismatch");
        full_net = std::move(full.network);
        cost_net = full_net.get();
    }

    // 2b. Reduced-scale artifact correction: after dividing C3D's
    // 112x112 frames by 4, the deepest conv layers shrink to a few
    // pixels of spatial extent and the first FC layer's flattened
    // input loses most of its positions; the similarity measured
    // there is dominated by border effects rather than workload
    // dynamics.  Those degenerate layers inherit the similarity of
    // the nearest preceding layer with a trustworthy measurement
    // (see EXPERIMENTS.md).
    if (w.spatialDivisor > 1 && cost_net != &func_net) {
        const auto shapes = func_net.layerInputShapes();
        const auto cost_shapes = cost_net->layerInputShapes();
        double last_valid = -1.0;
        double last_valid_reuse = -1.0;
        auto &sims_fix = entry.measurement.layerSimilarity;
        auto &reuse_fix = entry.measurement.layerReuse;
        for (size_t li = 0; li < func_net.layerCount(); ++li) {
            if (sims_fix[li] < 0.0)
                continue;
            const Layer &layer = func_net.layer(li);
            bool degenerate = false;
            if (layer.kind() == LayerKind::Conv2D ||
                layer.kind() == LayerKind::Conv3D) {
                const int64_t min_extent =
                    std::min(shapes[li].dim(shapes[li].rank() - 1),
                             shapes[li].dim(shapes[li].rank() - 2));
                degenerate = min_extent < 6;
            } else if (layer.kind() == LayerKind::FullyConnected) {
                // An FC layer whose input width shrank relative to
                // paper scale sits on a degenerate feature map.
                degenerate =
                    shapes[li].numel() != cost_shapes[li].numel();
            }
            if (!degenerate) {
                last_valid = sims_fix[li];
                last_valid_reuse = reuse_fix[li];
            } else if (last_valid >= 0.0) {
                sims_fix[li] = last_valid;
                reuse_fix[li] = last_valid_reuse;
            }
        }
    }
    entry.macsPerExecution = cost_net->macCountPerExecution();
    entry.weightBytes = cost_net->weightBytes();

    // 3. Cost baseline and reuse configurations.
    AcceleratorSim sim(config.params);
    const std::vector<double> &sims = entry.measurement.layerSimilarity;
    const int64_t seq_len =
        cost_net->isRecurrent() ? config.simulatedSequenceLength : 1;
    const int64_t execs = cost_net->isRecurrent()
                              ? config.simulatedExecutions / 10
                              : config.simulatedExecutions;
    const std::vector<double> &reuse_fracs =
        entry.measurement.layerReuse;
    entry.baseline = sim.estimate(*cost_net, AccelMode::Baseline, sims,
                                  std::max<int64_t>(execs, 1), seq_len);
    entry.reuse = sim.estimate(*cost_net, AccelMode::Reuse, sims,
                               std::max<int64_t>(execs, 1), seq_len,
                               reuse_fracs);

    // 4. Energy.
    entry.baselineEnergy =
        computeEnergy(entry.baseline, config.energyTable);
    entry.reuseEnergy = computeEnergy(entry.reuse, config.energyTable);
    return entry;
}

std::vector<HeadlineEntry>
computeHeadline(const HeadlineConfig &config)
{
    std::vector<HeadlineEntry> entries;
    for (const auto &name : modelZooNames())
        entries.push_back(computeHeadlineEntry(name, config));
    return entries;
}

} // namespace reuse
