#include "platform_model.h"

#include <algorithm>

#include "common/logging.h"
#include "nn/lstm.h"

namespace reuse {

PlatformSpec
PlatformSpec::cpuI7_7700K()
{
    PlatformSpec s;
    s.name = "i7-7700K";
    // 4 cores x 2 AVX2 FMA units x 8 fp32 lanes x 2 flops x 4.2 GHz.
    s.peakFlops = 4.0 * 2.0 * 8.0 * 2.0 * 4.2e9;
    // Framework CPU kernels fall well short of peak on the small,
    // oddly shaped batch-1 layers of these networks.
    s.gemmEfficiency = 0.35;
    s.gemvEfficiency = 0.15;
    s.memBandwidth = 38.4e9;    // dual-channel DDR4-2400
    s.llcBytes = 8.0 * 1024 * 1024;   // 8 MB shared L3
    s.sustainedPowerW = 80.0;   // package power under AVX2 load
    s.perExecutionOverheadSec = 20e-6;
    return s;
}

PlatformSpec
PlatformSpec::gpuGTX1080()
{
    PlatformSpec s;
    s.name = "GTX1080";
    // 2560 CUDA cores x 2 flops x 1.82 GHz boost (per the paper).
    s.peakFlops = 2560.0 * 2.0 * 1.82e9;
    s.gemmEfficiency = 0.75;
    s.gemvEfficiency = 0.05;    // batch-1 matvec leaves FPUs idle
    s.memBandwidth = 320e9;     // GDDR5X
    s.llcBytes = 2.0 * 1024 * 1024;   // small on-chip L2
    s.sustainedPowerW = 200.0;  // the paper reports >200 W on C3D
    s.perExecutionOverheadSec = 200e-6;  // framework dispatch + launch
    return s;
}

PlatformResult
runOnPlatform(const Network &network, const PlatformSpec &spec,
              int64_t executions, int64_t sequence_length)
{
    REUSE_ASSERT(executions > 0, "need at least one execution");
    const std::vector<Shape> in_shapes = network.layerInputShapes();

    double seconds_per_exec = spec.perExecutionOverheadSec;
    for (size_t li = 0; li < network.layerCount(); ++li) {
        const Layer &layer = network.layer(li);
        const int64_t steps =
            layer.isRecurrent() ? sequence_length : 1;
        const double macs = static_cast<double>(
            layer.macCount(in_shapes[li]) * steps);
        if (macs == 0.0)
            continue;
        const double flops = 2.0 * macs;
        const bool dense_conv = layer.kind() == LayerKind::Conv2D ||
                                layer.kind() == LayerKind::Conv3D;
        const double eff =
            dense_conv ? spec.gemmEfficiency : spec.gemvEfficiency;
        // Batch-1 FC/LSTM layers stream their weights from memory once
        // per execution; conv kernels are reused heavily across the
        // feature map.
        // Weights resident in the LLC skip the memory roofline for
        // back-to-back executions.
        const double cold_bytes = std::max(
            0.0, static_cast<double>(layer.paramCount()) * 4.0 -
                     spec.llcBytes);
        const double weight_bytes =
            cold_bytes * (dense_conv ? 1.0
                                     : static_cast<double>(steps));
        const double t_compute = flops / (spec.peakFlops * eff);
        const double t_mem = weight_bytes / spec.memBandwidth;
        seconds_per_exec += std::max(t_compute, t_mem);
    }

    PlatformResult r;
    r.seconds = seconds_per_exec * static_cast<double>(executions);
    r.joules = r.seconds * spec.sustainedPowerW;
    return r;
}

} // namespace reuse
