/**
 * @file
 * Roofline time/energy models of the software platforms the paper
 * compares against in Figure 12: an Intel i7-7700K CPU and an NVIDIA
 * GTX 1080 GPU running the vendor-optimized framework kernels
 * (cuBLAS/cuDNN, MKL-class BLAS).
 *
 * Batch-1 DNN inference is memory-bound on these platforms except for
 * compute-dense 3D convolutions, so each layer is costed as
 * max(flops / effective_peak, bytes / bandwidth); energy is
 * execution time x sustained power.  Published specs (peaks,
 * bandwidths, TDPs) parameterize the models; see DESIGN.md.
 */

#ifndef REUSE_DNN_BASELINE_PLATFORM_MODEL_H
#define REUSE_DNN_BASELINE_PLATFORM_MODEL_H

#include <string>

#include "nn/network.h"

namespace reuse {

/** Roofline description of a software platform. */
struct PlatformSpec {
    std::string name;
    /** Peak FP32 throughput in FLOP/s. */
    double peakFlops = 0.0;
    /** Fraction of peak achievable on large GEMM/conv kernels. */
    double gemmEfficiency = 0.7;
    /** Fraction of peak achievable on batch-1 matrix-vector work. */
    double gemvEfficiency = 0.15;
    /** Sustained memory bandwidth in bytes/s. */
    double memBandwidth = 0.0;
    /**
     * Last-level cache bytes: weights that fit here are reused
     * across back-to-back executions and skip the memory roofline.
     */
    double llcBytes = 0.0;
    /** Sustained power while running DNN kernels, watts. */
    double sustainedPowerW = 0.0;
    /** Fixed per-execution overhead (kernel launches, framework). */
    double perExecutionOverheadSec = 0.0;

    /** Intel i7-7700K (Kaby Lake, 4C/8T, AVX2, 4.2 GHz). */
    static PlatformSpec cpuI7_7700K();

    /** NVIDIA GTX 1080 (Pascal, 2560 CUDA cores, 1.82 GHz boost). */
    static PlatformSpec gpuGTX1080();
};

/** Time and energy of running a workload on a platform. */
struct PlatformResult {
    double seconds = 0.0;
    double joules = 0.0;
};

/**
 * Costs `executions` back-to-back executions of the network on the
 * platform (from scratch; the software baselines do not reuse).
 * Convolutions are costed at GEMM efficiency (im2col/cuDNN kernels
 * with high data reuse), FC/LSTM batch-1 layers at GEMV efficiency
 * with their weights streamed from memory.
 */
PlatformResult runOnPlatform(const Network &network,
                             const PlatformSpec &spec,
                             int64_t executions,
                             int64_t sequence_length = 1);

} // namespace reuse

#endif // REUSE_DNN_BASELINE_PLATFORM_MODEL_H
