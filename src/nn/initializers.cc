#include "initializers.h"

#include <cmath>

#include "common/logging.h"
#include "nn/conv2d.h"
#include "nn/conv3d.h"
#include "nn/fully_connected.h"
#include "nn/lstm.h"

namespace reuse {

namespace {

/** Standard deviation for Glorot-scaled Gaussian initialization. */
float
glorotStddev(int64_t fan_in, int64_t fan_out)
{
    return std::sqrt(2.0f / static_cast<float>(fan_in + fan_out));
}

} // namespace

void
initGlorot(FullyConnectedLayer &layer, Rng &rng, float bias_shift)
{
    const float sd = glorotStddev(layer.inputs(), layer.outputs());
    rng.fillGaussian(layer.weights(), 0.0f, sd);
    rng.fillGaussian(layer.biases(), bias_shift, 0.01f);
}

void
initGlorot(Conv2DLayer &layer, Rng &rng, float bias_shift)
{
    const int64_t rf = layer.kernel() * layer.kernel();
    const float sd =
        glorotStddev(layer.inChannels() * rf, layer.outChannels() * rf);
    rng.fillGaussian(layer.weights(), 0.0f, sd);
    rng.fillGaussian(layer.biases(), bias_shift, 0.01f);
}

void
initGlorot(Conv3DLayer &layer, Rng &rng, float bias_shift)
{
    const int64_t rf = layer.kernel() * layer.kernel() * layer.kernel();
    const float sd =
        glorotStddev(layer.inChannels() * rf, layer.outChannels() * rf);
    rng.fillGaussian(layer.weights(), 0.0f, sd);
    rng.fillGaussian(layer.biases(), bias_shift, 0.01f);
}

void
initLstm(LstmCell &cell, Rng &rng)
{
    for (int g = 0; g < NumLstmGates; ++g) {
        initGlorot(cell.feedForward(g), rng);
        initGlorot(cell.recurrent(g), rng);
        // Recurrent sublayers carry no bias of their own; the gate
        // bias lives in the feed-forward sublayer.
        std::fill(cell.recurrent(g).biases().begin(),
                  cell.recurrent(g).biases().end(), 0.0f);
    }
    // Forget-gate bias of 1: the standard trick so freshly
    // initialized cells retain state instead of forgetting it.
    std::fill(cell.feedForward(GateForget).biases().begin(),
              cell.feedForward(GateForget).biases().end(), 1.0f);
}

void
initLstm(BiLstmLayer &layer, Rng &rng)
{
    initLstm(layer.forwardCell(), rng);
    initLstm(layer.backwardCell(), rng);
}

void
initNetwork(Network &network, Rng &rng)
{
    for (size_t i = 0; i < network.layerCount(); ++i) {
        Layer &l = network.layer(i);
        switch (l.kind()) {
          case LayerKind::FullyConnected:
            initGlorot(static_cast<FullyConnectedLayer &>(l), rng);
            break;
          case LayerKind::Conv2D:
            initGlorot(static_cast<Conv2DLayer &>(l), rng);
            break;
          case LayerKind::Conv3D:
            initGlorot(static_cast<Conv3DLayer &>(l), rng);
            break;
          case LayerKind::BiLstm:
            initLstm(static_cast<BiLstmLayer &>(l), rng);
            break;
          case LayerKind::Lstm:
            initLstm(static_cast<LstmLayer &>(l).cell(), rng);
            break;
          default:
            break;
        }
    }
}

} // namespace reuse
