#include "pnorm.h"

#include <cmath>

#include "common/logging.h"
#include "ir/op_shapes.h"

namespace reuse {

PNormLayer::PNormLayer(std::string name, int64_t group)
    : Layer(std::move(name)), group_(group)
{
    REUSE_ASSERT(group > 0, "p-norm group must be positive");
}

ShapeInference
PNormLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(ir::inferPNorm(name(), input, group_));
}

Tensor
PNormLayer::forward(const Tensor &input) const
{
    const Shape out_shape = outputShape(input.shape());
    Tensor out(out_shape);
    const int64_t m = out_shape.numel();
    for (int64_t j = 0; j < m; ++j) {
        double s = 0.0;
        for (int64_t g = 0; g < group_; ++g) {
            const double v = input[j * group_ + g];
            s += v * v;
        }
        out[j] = static_cast<float>(std::sqrt(s));
    }
    return out;
}

} // namespace reuse
