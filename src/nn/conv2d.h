/**
 * @file
 * 2D convolutional layer (valid padding, configurable stride), as used
 * by the AutoPilot network.
 *
 * Weights are stored input-channel-major per kernel position so the
 * set of weights touched by one input pixel (all output filters at one
 * kernel offset) is contiguous, matching the accelerator's interleaved
 * weight layout (Sec. IV-C).
 */

#ifndef REUSE_DNN_NN_CONV2D_H
#define REUSE_DNN_NN_CONV2D_H

#include "common/aligned.h"
#include "nn/layer.h"

namespace reuse {

/**
 * 2D convolution: input [C_in, H, W] -> output [C_out, H', W'] with
 * H' = (H - Kh) / stride + 1 (valid padding).
 */
class Conv2DLayer : public Layer
{
  public:
    /**
     * @param name Layer name used in reports.
     * @param in_channels Number of input feature maps.
     * @param out_channels Number of filters / output feature maps.
     * @param kernel Kernel size K (square KxK kernels).
     * @param stride Stride in both spatial dimensions.
     */
    Conv2DLayer(std::string name, int64_t in_channels,
                int64_t out_channels, int64_t kernel, int64_t stride);

    LayerKind kind() const override { return LayerKind::Conv2D; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;
    int64_t paramCount() const override;
    int64_t macCount(const Shape &input) const override;

    int64_t inChannels() const { return in_channels_; }
    int64_t outChannels() const { return out_channels_; }
    int64_t kernel() const { return kernel_; }
    int64_t stride() const { return stride_; }

    /**
     * Weight for (input channel ci, output filter co, kernel row ky,
     * kernel col kx).  Layout: w[((ci*K + ky)*K + kx)*C_out + co].
     */
    float weight(int64_t ci, int64_t co, int64_t ky, int64_t kx) const
    {
        return weights_[weightIndex(ci, co, ky, kx)];
    }

    /** Mutable access to the same weight. */
    float &weight(int64_t ci, int64_t co, int64_t ky, int64_t kx)
    {
        return weights_[weightIndex(ci, co, ky, kx)];
    }

    /** Flat weight storage. */
    AlignedVector<float> &weights() { return weights_; }
    const AlignedVector<float> &weights() const { return weights_; }

    /** Per-filter biases. */
    AlignedVector<float> &biases() { return biases_; }
    const AlignedVector<float> &biases() const { return biases_; }

    /**
     * Applies the delta-correction for a single changed input pixel
     * (ci, y, x): every output neuron whose receptive field covers the
     * pixel is corrected by delta * w.  `out` must hold the previous
     * output of shape outputShape(input_shape).
     */
    void applyDelta(const Shape &input_shape, int64_t ci, int64_t y,
                    int64_t x, float delta, Tensor &out) const;

    /**
     * Number of output neurons affected by one input pixel at (y, x),
     * i.e. the number of MACs a changed input costs in reuse mode.
     */
    int64_t affectedOutputs(const Shape &input_shape, int64_t y,
                            int64_t x) const;

  private:
    size_t weightIndex(int64_t ci, int64_t co, int64_t ky,
                       int64_t kx) const
    {
        return static_cast<size_t>(
            ((ci * kernel_ + ky) * kernel_ + kx) * out_channels_ + co);
    }

    int64_t in_channels_;
    int64_t out_channels_;
    int64_t kernel_;
    int64_t stride_;
    AlignedVector<float> weights_;
    AlignedVector<float> biases_;
};

} // namespace reuse

#endif // REUSE_DNN_NN_CONV2D_H
