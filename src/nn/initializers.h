/**
 * @file
 * Weight initialization for the model zoo.
 *
 * The reproduction has no access to trained weights (see DESIGN.md
 * substitution table); weights are drawn from scaled-Gaussian
 * (Glorot-style) distributions so activations stay in realistic
 * ranges through deep stacks, which is what the quantizer's range
 * profiling and the similarity analysis depend on.
 */

#ifndef REUSE_DNN_NN_INITIALIZERS_H
#define REUSE_DNN_NN_INITIALIZERS_H

#include "common/random.h"
#include "nn/network.h"

namespace reuse {

class FullyConnectedLayer;
class Conv2DLayer;
class Conv3DLayer;
class LstmCell;
class BiLstmLayer;

/**
 * Glorot-scaled Gaussian init of an FC layer's weights and biases.
 *
 * `bias_shift` offsets every bias (in units of the unit-variance
 * pre-activation scale).  Trained ReLU networks exhibit confident
 * sparse activations — most units are off with a solid negative
 * margin — which is what makes their deep activations stable across
 * similar inputs.  Random symmetric weights put half the units right
 * at the ReLU boundary instead; a negative bias shift restores the
 * trained-network sparsity pattern (see DESIGN.md substitutions).
 */
void initGlorot(FullyConnectedLayer &layer, Rng &rng,
                float bias_shift = 0.0f);

/** Glorot-scaled Gaussian init of a conv2d layer. */
void initGlorot(Conv2DLayer &layer, Rng &rng, float bias_shift = 0.0f);

/** Glorot-scaled Gaussian init of a conv3d layer. */
void initGlorot(Conv3DLayer &layer, Rng &rng, float bias_shift = 0.0f);

/**
 * Initializes an LSTM cell: Glorot gate weights plus the standard
 * forget-gate bias of 1 so cell state carries information early on.
 */
void initLstm(LstmCell &cell, Rng &rng);

/** Initializes both directions of a BiLSTM layer. */
void initLstm(BiLstmLayer &layer, Rng &rng);

/** Initializes every parameterized layer of a network. */
void initNetwork(Network &network, Rng &rng);

} // namespace reuse

#endif // REUSE_DNN_NN_INITIALIZERS_H
