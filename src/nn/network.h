/**
 * @file
 * Sequential network container for the four evaluated DNNs.
 */

#ifndef REUSE_DNN_NN_NETWORK_H
#define REUSE_DNN_NN_NETWORK_H

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace reuse {

/**
 * A sequential stack of layers with a fixed input shape.
 *
 * Feed-forward networks (MLP, CNN) run one tensor through all layers
 * per execution via forward(); recurrent networks (stacked BiLSTM)
 * process whole sequences layer-by-layer via forwardSequence(),
 * matching the paper's execution order where each recurrent layer is
 * executed back-to-back for every sequence element before the next
 * layer starts (Sec. IV-D).
 */
class Network
{
  public:
    /**
     * @param name Network name ("Kaldi", "C3D", ...).
     * @param input_shape Shape of one input frame/window.
     */
    Network(std::string name, Shape input_shape);

    /** Appends a layer; returns a reference for chaining setup. */
    Layer &addLayer(LayerPtr layer);

    const std::string &name() const { return name_; }
    const Shape &inputShape() const { return input_shape_; }

    size_t layerCount() const { return layers_.size(); }
    Layer &layer(size_t i) { return *layers_[i]; }
    const Layer &layer(size_t i) const { return *layers_[i]; }

    /** True when any layer is recurrent. */
    bool isRecurrent() const;

    /** Shape of each layer's input, derived from the network input. */
    std::vector<Shape> layerInputShapes() const;

    /** Shape of the network output for one execution. */
    Shape outputShape() const;

    /** From-scratch inference of one input (feed-forward nets only). */
    Tensor forward(const Tensor &input) const;

    /** From-scratch inference over an input sequence. */
    std::vector<Tensor>
    forwardSequence(const std::vector<Tensor> &inputs) const;

    /** Total trainable parameters over all layers. */
    int64_t paramCount() const;

    /** Total parameter bytes at 32-bit precision. */
    int64_t weightBytes() const { return paramCount() * 4; }

    /** Total MACs of one from-scratch execution (per sequence element
     *  for recurrent networks). */
    int64_t macCountPerExecution() const;

    /** One-line summary: name, layers, params. */
    std::string summary() const;

  private:
    std::string name_;
    Shape input_shape_;
    std::vector<LayerPtr> layers_;
};

} // namespace reuse

#endif // REUSE_DNN_NN_NETWORK_H
