#include "conv2d.h"

#include "common/logging.h"
#include "common/math_utils.h"
#include "ir/op_shapes.h"

namespace reuse {

Conv2DLayer::Conv2DLayer(std::string name, int64_t in_channels,
                         int64_t out_channels, int64_t kernel,
                         int64_t stride)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      weights_(static_cast<size_t>(in_channels * out_channels * kernel *
                                   kernel),
               0.0f),
      biases_(static_cast<size_t>(out_channels), 0.0f)
{
    REUSE_ASSERT(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                     stride > 0,
                 "invalid conv2d parameters");
}

ShapeInference
Conv2DLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(ir::inferConv2d(
        name(), input, in_channels_, out_channels_, kernel_, stride_));
}

Tensor
Conv2DLayer::forward(const Tensor &input) const
{
    const Shape out_shape = outputShape(input.shape());
    const int64_t h = input.shape().dim(1);
    const int64_t w = input.shape().dim(2);
    const int64_t oh = out_shape.dim(1);
    const int64_t ow = out_shape.dim(2);

    Tensor out(out_shape);
    for (int64_t co = 0; co < out_channels_; ++co) {
        const float b = biases_[static_cast<size_t>(co)];
        float *out_map = &out.data()[static_cast<size_t>(co * oh * ow)];
        for (int64_t i = 0; i < oh * ow; ++i)
            out_map[i] = b;
    }

    // Output-stationary loop nest; the inner loop over output filters
    // walks contiguous weights thanks to the input-major layout.
    for (int64_t ci = 0; ci < in_channels_; ++ci) {
        const float *in_map =
            &input.data()[static_cast<size_t>(ci * h * w)];
        for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
                for (int64_t ky = 0; ky < kernel_; ++ky) {
                    const int64_t iy = oy * stride_ + ky;
                    for (int64_t kx = 0; kx < kernel_; ++kx) {
                        const int64_t ix = ox * stride_ + kx;
                        const float in_v = in_map[iy * w + ix];
                        if (in_v == 0.0f)
                            continue;
                        const float *w_row =
                            &weights_[weightIndex(ci, 0, ky, kx)];
                        for (int64_t co = 0; co < out_channels_; ++co) {
                            out.data()[static_cast<size_t>(
                                (co * oh + oy) * ow + ox)] +=
                                in_v * w_row[co];
                        }
                    }
                }
            }
        }
    }
    return out;
}

int64_t
Conv2DLayer::paramCount() const
{
    return in_channels_ * out_channels_ * kernel_ * kernel_ +
           out_channels_;
}

int64_t
Conv2DLayer::macCount(const Shape &input) const
{
    const Shape out_shape = outputShape(input);
    return out_shape.numel() * in_channels_ * kernel_ * kernel_;
}

void
Conv2DLayer::applyDelta(const Shape &input_shape, int64_t ci, int64_t y,
                        int64_t x, float delta, Tensor &out) const
{
    const Shape out_shape = outputShape(input_shape);
    REUSE_ASSERT(out.shape() == out_shape,
                 name() << ": output buffer shape mismatch");
    const int64_t oh = out_shape.dim(1);
    const int64_t ow = out_shape.dim(2);

    // Output (oy, ox) with kernel offset (ky, kx) reads input
    // (oy*stride + ky, ox*stride + kx); invert to find all outputs
    // covering the changed pixel.
    for (int64_t ky = 0; ky < kernel_; ++ky) {
        const int64_t ry = y - ky;
        if (ry < 0 || ry % stride_ != 0)
            continue;
        const int64_t oy = ry / stride_;
        if (oy >= oh)
            continue;
        for (int64_t kx = 0; kx < kernel_; ++kx) {
            const int64_t rx = x - kx;
            if (rx < 0 || rx % stride_ != 0)
                continue;
            const int64_t ox = rx / stride_;
            if (ox >= ow)
                continue;
            const float *w_row = &weights_[weightIndex(ci, 0, ky, kx)];
            for (int64_t co = 0; co < out_channels_; ++co) {
                out.data()[static_cast<size_t>((co * oh + oy) * ow +
                                               ox)] += delta * w_row[co];
            }
        }
    }
}

int64_t
Conv2DLayer::affectedOutputs(const Shape &input_shape, int64_t y,
                             int64_t x) const
{
    const Shape out_shape = outputShape(input_shape);
    const int64_t oh = out_shape.dim(1);
    const int64_t ow = out_shape.dim(2);
    int64_t positions = 0;
    for (int64_t ky = 0; ky < kernel_; ++ky) {
        const int64_t ry = y - ky;
        if (ry < 0 || ry % stride_ != 0 || ry / stride_ >= oh)
            continue;
        for (int64_t kx = 0; kx < kernel_; ++kx) {
            const int64_t rx = x - kx;
            if (rx < 0 || rx % stride_ != 0 || rx / stride_ >= ow)
                continue;
            ++positions;
        }
    }
    return positions * out_channels_;
}

} // namespace reuse
