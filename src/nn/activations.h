/**
 * @file
 * Elementwise activation layers (ReLU, sigmoid, tanh, softmax, atan)
 * plus a flatten layer.  These layers account for a negligible share
 * of DNN execution time (Sec. III) and are therefore executed
 * from-scratch even in reuse mode.
 */

#ifndef REUSE_DNN_NN_ACTIVATIONS_H
#define REUSE_DNN_NN_ACTIVATIONS_H

#include "nn/layer.h"

namespace reuse {

/** Supported elementwise activation functions. */
enum class ActivationKind {
    ReLU,
    Sigmoid,
    Tanh,
    Softmax,
    Atan,     ///< Used by AutoPilot's steering-angle head.
    Identity,
};

/** Human-readable activation name. */
const char *activationKindName(ActivationKind kind);

/**
 * Applies `kind` elementwise in place (Softmax normalizes over the
 * flattened tensor).  Bit-identical to ActivationLayer::forward();
 * the engine uses this to run fused activations without a second
 * output tensor.
 */
void applyActivation(ActivationKind kind, Tensor &t);

/**
 * Elementwise activation layer; Softmax normalizes over the flattened
 * tensor.
 */
class ActivationLayer : public Layer
{
  public:
    ActivationLayer(std::string name, ActivationKind activation);

    LayerKind kind() const override { return LayerKind::Activation; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;

    /** Which function this layer applies. */
    ActivationKind activation() const { return activation_; }

  private:
    ActivationKind activation_;
};

/**
 * Flattens any input tensor to rank-1.  Needed between conv stacks and
 * FC heads (C3D, AutoPilot).
 */
class FlattenLayer : public Layer
{
  public:
    explicit FlattenLayer(std::string name) : Layer(std::move(name)) {}

    LayerKind kind() const override { return LayerKind::Flatten; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override
    {
        return input.reshaped(Shape({input.numel()}));
    }
};

} // namespace reuse

#endif // REUSE_DNN_NN_ACTIVATIONS_H
