#include "conv3d.h"

#include "common/logging.h"
#include "ir/op_shapes.h"

namespace reuse {

Conv3DLayer::Conv3DLayer(std::string name, int64_t in_channels,
                         int64_t out_channels, int64_t kernel,
                         int64_t pad)
    : Layer(std::move(name)),
      in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      pad_(pad),
      weights_(static_cast<size_t>(in_channels * out_channels * kernel *
                                   kernel * kernel),
               0.0f),
      biases_(static_cast<size_t>(out_channels), 0.0f)
{
    REUSE_ASSERT(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                     pad >= 0,
                 "invalid conv3d parameters");
}

ShapeInference
Conv3DLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(ir::inferConv3d(
        name(), input, in_channels_, out_channels_, kernel_, pad_));
}

Tensor
Conv3DLayer::forward(const Tensor &input) const
{
    const Shape out_shape = outputShape(input.shape());
    const int64_t d = input.shape().dim(1);
    const int64_t h = input.shape().dim(2);
    const int64_t w = input.shape().dim(3);
    const int64_t od = out_shape.dim(1);
    const int64_t oh = out_shape.dim(2);
    const int64_t ow = out_shape.dim(3);

    Tensor out(out_shape);
    for (int64_t co = 0; co < out_channels_; ++co) {
        float *out_vol =
            &out.data()[static_cast<size_t>(co * od * oh * ow)];
        const float b = biases_[static_cast<size_t>(co)];
        for (int64_t i = 0; i < od * oh * ow; ++i)
            out_vol[i] = b;
    }

    // Input-stationary loop nest: for every input voxel, scatter its
    // contribution to all covering outputs.  This is the dataflow the
    // accelerator uses (Sec. IV-C) and lets forward() and applyDelta()
    // share the exact same arithmetic.
    for (int64_t ci = 0; ci < in_channels_; ++ci) {
        const float *in_vol =
            &input.data()[static_cast<size_t>(ci * d * h * w)];
        for (int64_t iz = 0; iz < d; ++iz) {
            for (int64_t iy = 0; iy < h; ++iy) {
                for (int64_t ix = 0; ix < w; ++ix) {
                    const float in_v =
                        in_vol[(iz * h + iy) * w + ix];
                    if (in_v == 0.0f)
                        continue;
                    for (int64_t kd = 0; kd < kernel_; ++kd) {
                        const int64_t oz = iz + pad_ - kd;
                        if (oz < 0 || oz >= od)
                            continue;
                        for (int64_t ky = 0; ky < kernel_; ++ky) {
                            const int64_t oy = iy + pad_ - ky;
                            if (oy < 0 || oy >= oh)
                                continue;
                            for (int64_t kx = 0; kx < kernel_; ++kx) {
                                const int64_t ox = ix + pad_ - kx;
                                if (ox < 0 || ox >= ow)
                                    continue;
                                const float *w_row = &weights_
                                    [weightIndex(ci, 0, kd, ky, kx)];
                                float *out_base = &out.data()
                                    [static_cast<size_t>(
                                        ((oz)*oh + oy) * ow + ox)];
                                for (int64_t co = 0;
                                     co < out_channels_; ++co) {
                                    out_base[static_cast<size_t>(
                                        co * od * oh * ow)] +=
                                        in_v * w_row[co];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

int64_t
Conv3DLayer::paramCount() const
{
    return in_channels_ * out_channels_ * kernel_ * kernel_ * kernel_ +
           out_channels_;
}

int64_t
Conv3DLayer::macCount(const Shape &input) const
{
    const Shape out_shape = outputShape(input);
    return out_shape.numel() * in_channels_ * kernel_ * kernel_ *
           kernel_;
}

void
Conv3DLayer::applyDelta(const Shape &input_shape, int64_t ci, int64_t d,
                        int64_t y, int64_t x, float delta,
                        Tensor &out) const
{
    const Shape out_shape = outputShape(input_shape);
    REUSE_ASSERT(out.shape() == out_shape,
                 name() << ": output buffer shape mismatch");
    const int64_t od = out_shape.dim(1);
    const int64_t oh = out_shape.dim(2);
    const int64_t ow = out_shape.dim(3);

    for (int64_t kd = 0; kd < kernel_; ++kd) {
        const int64_t oz = d + pad_ - kd;
        if (oz < 0 || oz >= od)
            continue;
        for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t oy = y + pad_ - ky;
            if (oy < 0 || oy >= oh)
                continue;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
                const int64_t ox = x + pad_ - kx;
                if (ox < 0 || ox >= ow)
                    continue;
                const float *w_row =
                    &weights_[weightIndex(ci, 0, kd, ky, kx)];
                float *out_base = &out.data()[static_cast<size_t>(
                    (oz * oh + oy) * ow + ox)];
                for (int64_t co = 0; co < out_channels_; ++co) {
                    out_base[static_cast<size_t>(co * od * oh * ow)] +=
                        delta * w_row[co];
                }
            }
        }
    }
}

int64_t
Conv3DLayer::affectedOutputs(const Shape &input_shape, int64_t d,
                             int64_t y, int64_t x) const
{
    const Shape out_shape = outputShape(input_shape);
    const int64_t od = out_shape.dim(1);
    const int64_t oh = out_shape.dim(2);
    const int64_t ow = out_shape.dim(3);
    int64_t positions = 0;
    for (int64_t kd = 0; kd < kernel_; ++kd) {
        const int64_t oz = d + pad_ - kd;
        if (oz < 0 || oz >= od)
            continue;
        for (int64_t ky = 0; ky < kernel_; ++ky) {
            const int64_t oy = y + pad_ - ky;
            if (oy < 0 || oy >= oh)
                continue;
            for (int64_t kx = 0; kx < kernel_; ++kx) {
                const int64_t ox = x + pad_ - kx;
                if (ox < 0 || ox >= ow)
                    continue;
                ++positions;
            }
        }
    }
    return positions * out_channels_;
}

} // namespace reuse
