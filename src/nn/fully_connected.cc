#include "fully_connected.h"

#include "common/logging.h"
#include "ir/op_shapes.h"
#include "kernels/delta_kernels.h"

namespace reuse {

FullyConnectedLayer::FullyConnectedLayer(std::string name, int64_t inputs,
                                         int64_t outputs)
    : Layer(std::move(name)),
      inputs_(inputs),
      outputs_(outputs),
      weights_(static_cast<size_t>(inputs * outputs), 0.0f),
      biases_(static_cast<size_t>(outputs), 0.0f)
{
    REUSE_ASSERT(inputs > 0 && outputs > 0,
                 "FC layer needs positive dims, got " << inputs << "x"
                                                      << outputs);
}

ShapeInference
FullyConnectedLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(
        ir::inferFullyConnected(name(), input, inputs_, outputs_));
}

Tensor
FullyConnectedLayer::forward(const Tensor &input) const
{
    REUSE_ASSERT(input.numel() == inputs_,
                 name() << ": input has " << input.numel()
                        << " elements, expected " << inputs_);
    Tensor out(Shape({outputs_}));
    // Blocked GEMV over the input-major weights; zero (quantized)
    // inputs are skipped inside the kernel.
    kernels::gemv(input.data().data(), inputs_, weights_.data(),
                  biases_.data(), outputs_, out.data().data());
    return out;
}

int64_t
FullyConnectedLayer::paramCount() const
{
    return inputs_ * outputs_ + outputs_;
}

int64_t
FullyConnectedLayer::macCount(const Shape &input) const
{
    (void)input;
    return inputs_ * outputs_;
}

void
FullyConnectedLayer::applyDelta(int64_t input_index, float delta,
                                AlignedVector<float> &outputs) const
{
    REUSE_ASSERT(input_index >= 0 && input_index < inputs_,
                 name() << ": delta input index " << input_index
                        << " out of range");
    REUSE_ASSERT(static_cast<int64_t>(outputs.size()) == outputs_,
                 name() << ": output buffer size mismatch");
    const float *w_row =
        &weights_[static_cast<size_t>(input_index * outputs_)];
    for (int64_t o = 0; o < outputs_; ++o)
        outputs[static_cast<size_t>(o)] += delta * w_row[o];
}

} // namespace reuse
