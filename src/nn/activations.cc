#include "activations.h"

#include <cmath>

#include "common/math_utils.h"
#include "ir/op_shapes.h"

namespace reuse {

const char *
activationKindName(ActivationKind kind)
{
    switch (kind) {
      case ActivationKind::ReLU:
        return "relu";
      case ActivationKind::Sigmoid:
        return "sigmoid";
      case ActivationKind::Tanh:
        return "tanh";
      case ActivationKind::Softmax:
        return "softmax";
      case ActivationKind::Atan:
        return "atan";
      case ActivationKind::Identity:
        return "identity";
    }
    return "unknown";
}

void
applyActivation(ActivationKind kind, Tensor &t)
{
    const int64_t n = t.numel();
    switch (kind) {
      case ActivationKind::ReLU:
        for (int64_t i = 0; i < n; ++i)
            t[i] = t[i] > 0.0f ? t[i] : 0.0f;
        break;
      case ActivationKind::Sigmoid:
        for (int64_t i = 0; i < n; ++i)
            t[i] = sigmoid(t[i]);
        break;
      case ActivationKind::Tanh:
        for (int64_t i = 0; i < n; ++i)
            t[i] = std::tanh(t[i]);
        break;
      case ActivationKind::Atan:
        for (int64_t i = 0; i < n; ++i)
            t[i] = std::atan(t[i]);
        break;
      case ActivationKind::Identity:
        break;
      case ActivationKind::Softmax: {
        // Subtract the max for numerical stability.
        const float max_v = t.maxValue();
        double denom = 0.0;
        for (int64_t i = 0; i < n; ++i) {
            t[i] = std::exp(t[i] - max_v);
            denom += t[i];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int64_t i = 0; i < n; ++i)
            t[i] *= inv;
        break;
      }
    }
}

ActivationLayer::ActivationLayer(std::string name,
                                 ActivationKind activation)
    : Layer(std::move(name)), activation_(activation)
{
}

ShapeInference
ActivationLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(ir::inferActivation(input));
}

Tensor
ActivationLayer::forward(const Tensor &input) const
{
    Tensor out = input;
    applyActivation(activation_, out);
    return out;
}

ShapeInference
FlattenLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(ir::inferFlatten(input));
}

} // namespace reuse
