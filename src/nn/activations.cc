#include "activations.h"

#include <cmath>

#include "common/math_utils.h"

namespace reuse {

const char *
activationKindName(ActivationKind kind)
{
    switch (kind) {
      case ActivationKind::ReLU:
        return "relu";
      case ActivationKind::Sigmoid:
        return "sigmoid";
      case ActivationKind::Tanh:
        return "tanh";
      case ActivationKind::Softmax:
        return "softmax";
      case ActivationKind::Atan:
        return "atan";
      case ActivationKind::Identity:
        return "identity";
    }
    return "unknown";
}

ActivationLayer::ActivationLayer(std::string name,
                                 ActivationKind activation)
    : Layer(std::move(name)), activation_(activation)
{
}

Tensor
ActivationLayer::forward(const Tensor &input) const
{
    Tensor out(input.shape());
    const int64_t n = input.numel();
    switch (activation_) {
      case ActivationKind::ReLU:
        for (int64_t i = 0; i < n; ++i)
            out[i] = input[i] > 0.0f ? input[i] : 0.0f;
        break;
      case ActivationKind::Sigmoid:
        for (int64_t i = 0; i < n; ++i)
            out[i] = sigmoid(input[i]);
        break;
      case ActivationKind::Tanh:
        for (int64_t i = 0; i < n; ++i)
            out[i] = std::tanh(input[i]);
        break;
      case ActivationKind::Atan:
        for (int64_t i = 0; i < n; ++i)
            out[i] = std::atan(input[i]);
        break;
      case ActivationKind::Identity:
        for (int64_t i = 0; i < n; ++i)
            out[i] = input[i];
        break;
      case ActivationKind::Softmax: {
        // Subtract the max for numerical stability.
        const float max_v = input.maxValue();
        double denom = 0.0;
        for (int64_t i = 0; i < n; ++i) {
            out[i] = std::exp(input[i] - max_v);
            denom += out[i];
        }
        const float inv = static_cast<float>(1.0 / denom);
        for (int64_t i = 0; i < n; ++i)
            out[i] *= inv;
        break;
      }
    }
    return out;
}

} // namespace reuse
