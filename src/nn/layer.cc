#include "layer.h"

#include "common/logging.h"
#include "ir/op_shapes.h"

namespace reuse {

ShapeInference
toShapeInference(const ir::InferredShape &inf)
{
    if (!inf.valid())
        return ShapeInference::fail(inf.reason);
    return ShapeInference::ok(*inf.shape);
}

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::FullyConnected:
        return "FC";
      case LayerKind::Conv2D:
        return "CONV2D";
      case LayerKind::Conv3D:
        return "CONV3D";
      case LayerKind::MaxPool2D:
        return "POOL2D";
      case LayerKind::MaxPool3D:
        return "POOL3D";
      case LayerKind::Activation:
        return "ACT";
      case LayerKind::Flatten:
        return "FLATTEN";
      case LayerKind::BiLstm:
        return "BILSTM";
      case LayerKind::Lstm:
        return "LSTM";
    }
    return "UNKNOWN";
}

Shape
Layer::outputShape(const Shape &input) const
{
    ShapeInference inf = inferOutputShape(input);
    REUSE_ASSERT(inf.valid(), inf.reason());
    return inf.shape();
}

int64_t
Layer::macCount(const Shape &input) const
{
    (void)input;
    return 0;
}

std::vector<Tensor>
Layer::forwardSequence(const std::vector<Tensor> &inputs) const
{
    std::vector<Tensor> outputs;
    outputs.reserve(inputs.size());
    for (const Tensor &in : inputs)
        outputs.push_back(forward(in));
    return outputs;
}

bool
Layer::isReusable() const
{
    switch (kind()) {
      case LayerKind::FullyConnected:
      case LayerKind::Conv2D:
      case LayerKind::Conv3D:
      case LayerKind::BiLstm:
      case LayerKind::Lstm:
        return true;
      default:
        return false;
    }
}

} // namespace reuse
