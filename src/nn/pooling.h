/**
 * @file
 * Max-pooling layers for 2D ([C,H,W]) and 3D ([C,D,H,W]) tensors.
 * C3D uses a 1x2x2 pool after CONV1 and 2x2x2 pools afterwards.
 */

#ifndef REUSE_DNN_NN_POOLING_H
#define REUSE_DNN_NN_POOLING_H

#include "nn/layer.h"

namespace reuse {

/**
 * 2D max pooling with square window and equal stride (non-overlapping
 * windows).  Truncates partial windows at the border.
 */
class MaxPool2DLayer : public Layer
{
  public:
    MaxPool2DLayer(std::string name, int64_t window);

    LayerKind kind() const override { return LayerKind::MaxPool2D; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;

    int64_t window() const { return window_; }

  private:
    int64_t window_;
};

/**
 * 3D max pooling with independent temporal (depth) and spatial window
 * sizes; strides equal the windows.  With `ceil_mode`, partial border
 * windows produce an output (C3D's pool5 turns 7x7 into 4x4 this
 * way, yielding the 8192-wide FC1 input of Table I).
 */
class MaxPool3DLayer : public Layer
{
  public:
    MaxPool3DLayer(std::string name, int64_t depth_window,
                   int64_t spatial_window, bool ceil_mode = false);

    LayerKind kind() const override { return LayerKind::MaxPool3D; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;

    int64_t depthWindow() const { return depth_window_; }
    int64_t spatialWindow() const { return spatial_window_; }
    bool ceilMode() const { return ceil_mode_; }

  private:
    int64_t depth_window_;
    int64_t spatial_window_;
    bool ceil_mode_;
};

} // namespace reuse

#endif // REUSE_DNN_NN_POOLING_H
