#include "network.h"

#include <sstream>

#include "common/logging.h"

namespace reuse {

Network::Network(std::string name, Shape input_shape)
    : name_(std::move(name)), input_shape_(std::move(input_shape))
{
}

Layer &
Network::addLayer(LayerPtr layer)
{
    REUSE_ASSERT(layer != nullptr, "addLayer(nullptr)");
    layers_.push_back(std::move(layer));
    return *layers_.back();
}

bool
Network::isRecurrent() const
{
    for (const auto &l : layers_) {
        if (l->isRecurrent())
            return true;
    }
    return false;
}

std::vector<Shape>
Network::layerInputShapes() const
{
    std::vector<Shape> shapes;
    shapes.reserve(layers_.size());
    Shape current = input_shape_;
    for (const auto &l : layers_) {
        shapes.push_back(current);
        current = l->outputShape(current);
    }
    return shapes;
}

Shape
Network::outputShape() const
{
    Shape current = input_shape_;
    for (const auto &l : layers_)
        current = l->outputShape(current);
    return current;
}

Tensor
Network::forward(const Tensor &input) const
{
    REUSE_ASSERT(!isRecurrent(),
                 name_ << ": use forwardSequence() for recurrent nets");
    Tensor current = input;
    for (const auto &l : layers_)
        current = l->forward(current);
    return current;
}

std::vector<Tensor>
Network::forwardSequence(const std::vector<Tensor> &inputs) const
{
    std::vector<Tensor> current = inputs;
    for (const auto &l : layers_)
        current = l->forwardSequence(current);
    return current;
}

int64_t
Network::paramCount() const
{
    int64_t total = 0;
    for (const auto &l : layers_)
        total += l->paramCount();
    return total;
}

int64_t
Network::macCountPerExecution() const
{
    int64_t total = 0;
    Shape current = input_shape_;
    for (const auto &l : layers_) {
        total += l->macCount(current);
        current = l->outputShape(current);
    }
    return total;
}

std::string
Network::summary() const
{
    std::ostringstream oss;
    oss << name_ << ": " << layers_.size() << " layers, "
        << paramCount() << " params (" << weightBytes() / (1024 * 1024)
        << " MB), input " << input_shape_.str();
    return oss.str();
}

} // namespace reuse
