/**
 * @file
 * Group p-norm pooling layer, used by the Kaldi "generalized maxout"
 * acoustic model: consecutive groups of G activations are reduced to
 * their p-norm, shrinking e.g. 2000 units to 400 (Table I's FC
 * dimension pattern 400 -> 2000 -> 400).
 */

#ifndef REUSE_DNN_NN_PNORM_H
#define REUSE_DNN_NN_PNORM_H

#include "nn/layer.h"

namespace reuse {

/**
 * Reduces a rank-1 input of N elements to N/G outputs, each the
 * p-norm of one group of G consecutive inputs (p = 2, the Kaldi
 * default).
 */
class PNormLayer : public Layer
{
  public:
    /**
     * @param name Layer name used in reports.
     * @param group Number of inputs pooled per output.
     */
    PNormLayer(std::string name, int64_t group);

    LayerKind kind() const override { return LayerKind::Activation; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;

    int64_t group() const { return group_; }

  private:
    int64_t group_;
};

} // namespace reuse

#endif // REUSE_DNN_NN_PNORM_H
