/**
 * @file
 * 3D convolutional layer (same or valid padding), as used by C3D for
 * video classification (Eq. 2 of the paper).
 *
 * Input layout is [C, D, H, W]: feature maps, temporal depth, height,
 * width.  Weights follow the same input-major interleaving as the
 * other layers: all output filters for one (ci, kd, ky, kx) position
 * are contiguous.
 */

#ifndef REUSE_DNN_NN_CONV3D_H
#define REUSE_DNN_NN_CONV3D_H

#include "common/aligned.h"
#include "nn/layer.h"

namespace reuse {

/**
 * 3D convolution with cubic kernels KxKxK, stride 1, and optional
 * symmetric zero padding (C3D uses K=3, pad=1 for shape-preserving
 * convolutions).
 */
class Conv3DLayer : public Layer
{
  public:
    /**
     * @param name Layer name used in reports.
     * @param in_channels Number of input feature maps N_if.
     * @param out_channels Number of filters / output feature maps.
     * @param kernel Cubic kernel size K.
     * @param pad Symmetric zero padding in all three dimensions.
     */
    Conv3DLayer(std::string name, int64_t in_channels,
                int64_t out_channels, int64_t kernel, int64_t pad);

    LayerKind kind() const override { return LayerKind::Conv3D; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;
    int64_t paramCount() const override;
    int64_t macCount(const Shape &input) const override;

    int64_t inChannels() const { return in_channels_; }
    int64_t outChannels() const { return out_channels_; }
    int64_t kernel() const { return kernel_; }
    int64_t pad() const { return pad_; }

    /** Flat weight storage. */
    AlignedVector<float> &weights() { return weights_; }
    const AlignedVector<float> &weights() const { return weights_; }

    /** Per-filter biases. */
    AlignedVector<float> &biases() { return biases_; }
    const AlignedVector<float> &biases() const { return biases_; }

    /**
     * Delta-correction for one changed input voxel (ci, d, y, x):
     * corrects every output neuron whose receptive field covers it.
     */
    void applyDelta(const Shape &input_shape, int64_t ci, int64_t d,
                    int64_t y, int64_t x, float delta, Tensor &out) const;

    /** Output neurons affected by a change of input voxel (d, y, x). */
    int64_t affectedOutputs(const Shape &input_shape, int64_t d,
                            int64_t y, int64_t x) const;

  private:
    size_t weightIndex(int64_t ci, int64_t co, int64_t kd, int64_t ky,
                       int64_t kx) const
    {
        return static_cast<size_t>(
            (((ci * kernel_ + kd) * kernel_ + ky) * kernel_ + kx) *
                out_channels_ +
            co);
    }

    int64_t in_channels_;
    int64_t out_channels_;
    int64_t kernel_;
    int64_t pad_;
    AlignedVector<float> weights_;
    AlignedVector<float> biases_;
};

} // namespace reuse

#endif // REUSE_DNN_NN_CONV3D_H
