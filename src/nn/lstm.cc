#include "lstm.h"

#include <cmath>

#include "common/logging.h"
#include "common/math_utils.h"
#include "ir/op_shapes.h"

namespace reuse {

LstmCell::LstmCell(int64_t input_dim, int64_t cell_dim)
    : input_dim_(input_dim), cell_dim_(cell_dim)
{
    REUSE_ASSERT(input_dim > 0 && cell_dim > 0,
                 "invalid LSTM cell dimensions");
    static const char *gate_names[NumLstmGates] = {"i", "f", "g", "o"};
    for (int g = 0; g < NumLstmGates; ++g) {
        wx_[static_cast<size_t>(g)] =
            std::make_unique<FullyConnectedLayer>(
                std::string("Wx_") + gate_names[g], input_dim, cell_dim);
        wh_[static_cast<size_t>(g)] =
            std::make_unique<FullyConnectedLayer>(
                std::string("Wh_") + gate_names[g], cell_dim, cell_dim);
    }
}

LstmCell::State
LstmCell::initialState() const
{
    State s;
    s.h.assign(static_cast<size_t>(cell_dim_), 0.0f);
    s.c.assign(static_cast<size_t>(cell_dim_), 0.0f);
    return s;
}

LstmCell::Preacts
LstmCell::computePreacts(const AlignedVector<float> &x,
                         const AlignedVector<float> &h_prev) const
{
    REUSE_ASSERT(static_cast<int64_t>(x.size()) == input_dim_,
                 "LSTM x size mismatch");
    REUSE_ASSERT(static_cast<int64_t>(h_prev.size()) == cell_dim_,
                 "LSTM h size mismatch");
    Preacts preacts;
    const Tensor x_t(Shape({input_dim_}), x);
    const Tensor h_t(Shape({cell_dim_}), h_prev);
    for (int g = 0; g < NumLstmGates; ++g) {
        const Tensor zx = wx_[static_cast<size_t>(g)]->forward(x_t);
        const Tensor zh = wh_[static_cast<size_t>(g)]->forward(h_t);
        auto &z = preacts[static_cast<size_t>(g)];
        z.resize(static_cast<size_t>(cell_dim_));
        for (int64_t j = 0; j < cell_dim_; ++j)
            z[static_cast<size_t>(j)] = zx[j] + zh[j];
    }
    return preacts;
}

LstmCell::State
LstmCell::finishStep(const Preacts &preacts,
                     const AlignedVector<float> &c_prev) const
{
    REUSE_ASSERT(static_cast<int64_t>(c_prev.size()) == cell_dim_,
                 "LSTM c size mismatch");
    State s;
    s.h.resize(static_cast<size_t>(cell_dim_));
    s.c.resize(static_cast<size_t>(cell_dim_));
    const auto &zi = preacts[GateInput];
    const auto &zf = preacts[GateForget];
    const auto &zg = preacts[GateCell];
    const auto &zo = preacts[GateOutput];
    for (size_t j = 0; j < s.h.size(); ++j) {
        const float i_t = sigmoid(zi[j]);
        const float f_t = sigmoid(zf[j]);
        const float g_t = std::tanh(zg[j]);
        const float o_t = sigmoid(zo[j]);
        const float c_t = f_t * c_prev[j] + i_t * g_t;   // Eq. 7
        s.c[j] = c_t;
        s.h[j] = o_t * std::tanh(c_t);                   // Eq. 8
    }
    return s;
}

LstmCell::State
LstmCell::step(const AlignedVector<float> &x, const State &prev) const
{
    return finishStep(computePreacts(x, prev.h), prev.c);
}

int64_t
LstmCell::paramCount() const
{
    int64_t total = 0;
    for (int g = 0; g < NumLstmGates; ++g) {
        total += wx_[static_cast<size_t>(g)]->paramCount();
        total += wh_[static_cast<size_t>(g)]->paramCount();
    }
    return total;
}

int64_t
LstmCell::macCountPerStep() const
{
    return NumLstmGates *
           (input_dim_ * cell_dim_ + cell_dim_ * cell_dim_);
}

LstmLayer::LstmLayer(std::string name, int64_t input_dim,
                     int64_t cell_dim)
    : Layer(std::move(name)),
      input_dim_(input_dim),
      cell_dim_(cell_dim),
      cell_(input_dim, cell_dim)
{
}

ShapeInference
LstmLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(
        ir::inferLstm(name(), input, input_dim_, cell_dim_));
}

Tensor
LstmLayer::forward(const Tensor &input) const
{
    (void)input;
    panic(name() + ": LSTM has no single-step forward(); use "
                   "forwardSequence()");
}

std::vector<Tensor>
LstmLayer::forwardSequence(const std::vector<Tensor> &inputs) const
{
    std::vector<Tensor> outputs;
    outputs.reserve(inputs.size());
    LstmCell::State state = cell_.initialState();
    for (const Tensor &in : inputs) {
        REUSE_ASSERT(in.numel() == input_dim_,
                     name() << ": step input size mismatch");
        state = cell_.step(in.data(), state);
        Tensor out(Shape({cell_dim_}));
        for (int64_t j = 0; j < cell_dim_; ++j)
            out[j] = state.h[static_cast<size_t>(j)];
        outputs.push_back(std::move(out));
    }
    return outputs;
}

int64_t
LstmLayer::paramCount() const
{
    return cell_.paramCount();
}

int64_t
LstmLayer::macCount(const Shape &input) const
{
    (void)input;
    return cell_.macCountPerStep();
}

BiLstmLayer::BiLstmLayer(std::string name, int64_t input_dim,
                         int64_t cell_dim)
    : Layer(std::move(name)),
      input_dim_(input_dim),
      cell_dim_(cell_dim),
      forward_cell_(input_dim, cell_dim),
      backward_cell_(input_dim, cell_dim)
{
}

ShapeInference
BiLstmLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(
        ir::inferBiLstm(name(), input, input_dim_, cell_dim_));
}

Tensor
BiLstmLayer::forward(const Tensor &input) const
{
    (void)input;
    panic(name() + ": BiLSTM has no single-step forward(); use "
                   "forwardSequence()");
}

std::vector<Tensor>
BiLstmLayer::forwardSequence(const std::vector<Tensor> &inputs) const
{
    const size_t t_len = inputs.size();
    std::vector<Tensor> outputs(t_len, Tensor(Shape({outputDim()})));

    // Forward direction.
    LstmCell::State state = forward_cell_.initialState();
    for (size_t t = 0; t < t_len; ++t) {
        REUSE_ASSERT(inputs[t].numel() == input_dim_,
                     name() << ": step " << t << " input size mismatch");
        state = forward_cell_.step(inputs[t].data(), state);
        for (int64_t j = 0; j < cell_dim_; ++j)
            outputs[t][j] = state.h[static_cast<size_t>(j)];
    }

    // Backward direction.
    state = backward_cell_.initialState();
    for (size_t t = t_len; t-- > 0;) {
        state = backward_cell_.step(inputs[t].data(), state);
        for (int64_t j = 0; j < cell_dim_; ++j)
            outputs[t][cell_dim_ + j] = state.h[static_cast<size_t>(j)];
    }
    return outputs;
}

int64_t
BiLstmLayer::paramCount() const
{
    return forward_cell_.paramCount() + backward_cell_.paramCount();
}

int64_t
BiLstmLayer::macCount(const Shape &input) const
{
    (void)input;
    // Per sequence element: both directions step once.
    return forward_cell_.macCountPerStep() +
           backward_cell_.macCountPerStep();
}

} // namespace reuse
