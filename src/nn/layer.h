/**
 * @file
 * Abstract layer interface for the NN substrate.
 *
 * The substrate implements exactly the layer types the paper's four
 * networks need: fully-connected, 2D/3D convolution, pooling,
 * activations and bidirectional LSTM.  Layers own their parameters and
 * provide reference (from-scratch) inference; the reuse engine in
 * src/core re-executes FC/conv/LSTM layers incrementally.
 */

#ifndef REUSE_DNN_NN_LAYER_H
#define REUSE_DNN_NN_LAYER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace reuse {

namespace ir {
struct InferredShape;
} // namespace ir

/** Discriminator for the concrete layer types. */
enum class LayerKind {
    FullyConnected,
    Conv2D,
    Conv3D,
    MaxPool2D,
    MaxPool3D,
    Activation,
    Flatten,
    BiLstm,
    Lstm,
};

/** Human-readable name of a layer kind. */
const char *layerKindName(LayerKind kind);

/**
 * Result of non-panicking shape inference: either the inferred output
 * shape or a human-readable reason why the input shape is invalid for
 * the layer.  This is the static analyzer's view of a layer; the
 * panicking Layer::outputShape() is a thin wrapper over it.
 */
class ShapeInference
{
  public:
    /** Successful inference producing `shape`. */
    static ShapeInference ok(Shape shape)
    {
        ShapeInference r;
        r.shape_ = std::move(shape);
        return r;
    }

    /** Failed inference with a diagnostic reason. */
    static ShapeInference fail(std::string reason)
    {
        ShapeInference r;
        r.reason_ = std::move(reason);
        return r;
    }

    /** True when an output shape was inferred. */
    bool valid() const { return shape_.has_value(); }

    /** The inferred shape; only meaningful when valid(). */
    const Shape &shape() const { return *shape_; }

    /** Why inference failed; empty when valid(). */
    const std::string &reason() const { return reason_; }

  private:
    ShapeInference() = default;

    std::optional<Shape> shape_;
    std::string reason_;
};

/**
 * Converts an IR shape-inference result (ir/op_shapes.h) into the
 * layer-facing type.  All Layer::inferOutputShape() implementations
 * delegate to the IR through this, so execution and analysis share
 * one shape-inference source of truth.
 */
ShapeInference toShapeInference(const ir::InferredShape &inf);

/**
 * Base class of all layers.
 *
 * A layer maps one input tensor to one output tensor via forward().
 * Recurrent layers additionally process whole sequences (see
 * isRecurrent() / forwardSequence()); their single-step forward()
 * panics because a bidirectional LSTM has no meaningful per-frame
 * output in isolation.
 */
class Layer
{
  public:
    explicit Layer(std::string name) : name_(std::move(name)) {}
    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    /** Layer name as used in reports ("FC3", "CONV2", ...). */
    const std::string &name() const { return name_; }

    /** Concrete type of this layer. */
    virtual LayerKind kind() const = 0;

    /**
     * Non-panicking shape inference: the output shape this layer
     * produces for `input`, or the reason the input is unacceptable.
     * The static analyzer (src/analysis) walks the layer graph through
     * this method before any buffer is allocated.
     */
    virtual ShapeInference inferOutputShape(const Shape &input) const = 0;

    /**
     * Output shape for a given input shape; panics (internal error)
     * when inference fails.  Execution paths that already validated
     * the model use this convenience wrapper.
     */
    Shape outputShape(const Shape &input) const;

    /** Reference from-scratch inference for one input tensor. */
    virtual Tensor forward(const Tensor &input) const = 0;

    /** Number of trainable parameters (weights + biases). */
    virtual int64_t paramCount() const { return 0; }

    /**
     * Multiply-accumulate operations performed by a from-scratch
     * execution on an input of the given shape.
     */
    virtual int64_t macCount(const Shape &input) const;

    /** True for layers processing sequences (BiLSTM). */
    virtual bool isRecurrent() const { return false; }

    /**
     * Sequence inference; the default maps forward() over elements,
     * which is correct for all feed-forward layers.
     */
    virtual std::vector<Tensor>
    forwardSequence(const std::vector<Tensor> &inputs) const;

    /**
     * True for layers whose computation the reuse technique targets
     * (FC, conv and recurrent layers; Sec. III of the paper).
     */
    bool isReusable() const;

    /** Bytes of parameter storage at 32-bit precision. */
    int64_t weightBytes() const { return paramCount() * 4; }

  private:
    std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace reuse

#endif // REUSE_DNN_NN_LAYER_H
