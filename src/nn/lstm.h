/**
 * @file
 * LSTM cell and bidirectional LSTM layer (Sec. II-C of the paper).
 *
 * Each of the four gates (input, forget, cell-updater, output) is a
 * pair of fully-connected sublayers: one over the feed-forward input
 * x_t and one over the recurrent input h_{t-1} (Eqs. 3-6).  Building
 * the gates from FullyConnectedLayer lets the reuse engine correct
 * gate pre-activations with the exact same delta kernel used for
 * plain FC layers.
 */

#ifndef REUSE_DNN_NN_LSTM_H
#define REUSE_DNN_NN_LSTM_H

#include <array>

#include "common/aligned.h"
#include "nn/fully_connected.h"
#include "nn/layer.h"

namespace reuse {

/** Gate indices within an LSTM cell. */
enum LstmGate : int {
    GateInput = 0,
    GateForget = 1,
    GateCell = 2,
    GateOutput = 3,
    NumLstmGates = 4,
};

/**
 * Single-direction LSTM cell.
 *
 * The cell's per-step state is (h, c); stepping the cell computes the
 * four gate pre-activations, then combines them elementwise (Eqs. 7-8).
 * The biases b_* are folded into the feed-forward sublayers.
 */
class LstmCell
{
  public:
    /** Combined per-step state of an LSTM cell (64B-aligned). */
    struct State {
        AlignedVector<float> h;   ///< Hidden output h_t.
        AlignedVector<float> c;   ///< Cell state c_t.
    };

    /** Gate pre-activations before sigma/phi are applied. */
    using Preacts =
        std::array<AlignedVector<float>, NumLstmGates>;

    /**
     * @param input_dim Dimension of the feed-forward input x_t.
     * @param cell_dim Dimension of the cell state / hidden output.
     */
    LstmCell(int64_t input_dim, int64_t cell_dim);

    int64_t inputDim() const { return input_dim_; }
    int64_t cellDim() const { return cell_dim_; }

    /** Zero-initialized (h, c) for sequence start. */
    State initialState() const;

    /** Feed-forward sublayer (x-weights + bias) of `gate`. */
    FullyConnectedLayer &feedForward(int gate)
    {
        return *wx_[static_cast<size_t>(gate)];
    }
    const FullyConnectedLayer &feedForward(int gate) const
    {
        return *wx_[static_cast<size_t>(gate)];
    }

    /** Recurrent sublayer (h-weights, zero bias) of `gate`. */
    FullyConnectedLayer &recurrent(int gate)
    {
        return *wh_[static_cast<size_t>(gate)];
    }
    const FullyConnectedLayer &recurrent(int gate) const
    {
        return *wh_[static_cast<size_t>(gate)];
    }

    /**
     * Computes the four gate pre-activations from scratch:
     * z_g = Wx_g x + Wh_g h_prev + b_g.
     */
    Preacts computePreacts(const AlignedVector<float> &x,
                           const AlignedVector<float> &h_prev) const;

    /**
     * Elementwise tail of the step: applies gate nonlinearities and
     * Eqs. 7-8 to produce (h_t, c_t) from pre-activations and c_{t-1}.
     */
    State finishStep(const Preacts &preacts,
                     const AlignedVector<float> &c_prev) const;

    /** Full step: computePreacts + finishStep. */
    State step(const AlignedVector<float> &x, const State &prev) const;

    /** Total trainable parameters in the cell. */
    int64_t paramCount() const;

    /** MACs of one from-scratch cell step. */
    int64_t macCountPerStep() const;

  private:
    int64_t input_dim_;
    int64_t cell_dim_;
    std::array<std::unique_ptr<FullyConnectedLayer>, NumLstmGates> wx_;
    std::array<std::unique_ptr<FullyConnectedLayer>, NumLstmGates> wh_;
};

/**
 * Unidirectional LSTM layer: a single cell run forward over the
 * sequence; per-step output is h_t, so the layer's output dimension
 * equals the cell dimension (Sec. II-C: a recurrent layer contains
 * one or two LSTM cells).
 */
class LstmLayer : public Layer
{
  public:
    /**
     * @param name Layer name used in reports.
     * @param input_dim Per-step input dimension.
     * @param cell_dim Cell dimension.
     */
    LstmLayer(std::string name, int64_t input_dim, int64_t cell_dim);

    LayerKind kind() const override { return LayerKind::Lstm; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;
    std::vector<Tensor>
    forwardSequence(const std::vector<Tensor> &inputs) const override;
    int64_t paramCount() const override;
    int64_t macCount(const Shape &input) const override;
    bool isRecurrent() const override { return true; }

    int64_t inputDim() const { return input_dim_; }
    int64_t cellDim() const { return cell_dim_; }

    LstmCell &cell() { return cell_; }
    const LstmCell &cell() const { return cell_; }

  private:
    int64_t input_dim_;
    int64_t cell_dim_;
    LstmCell cell_;
};

/**
 * Bidirectional LSTM layer: a forward and a backward cell run over the
 * sequence; per-step outputs are the concatenation [h_fw ; h_bw], so
 * the layer's output dimension is 2 * cell_dim (Fig. 2).
 */
class BiLstmLayer : public Layer
{
  public:
    /**
     * @param name Layer name used in reports.
     * @param input_dim Per-step input dimension.
     * @param cell_dim Cell dimension of each direction.
     */
    BiLstmLayer(std::string name, int64_t input_dim, int64_t cell_dim);

    LayerKind kind() const override { return LayerKind::BiLstm; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;
    std::vector<Tensor>
    forwardSequence(const std::vector<Tensor> &inputs) const override;
    int64_t paramCount() const override;
    int64_t macCount(const Shape &input) const override;
    bool isRecurrent() const override { return true; }

    int64_t inputDim() const { return input_dim_; }
    int64_t cellDim() const { return cell_dim_; }
    int64_t outputDim() const { return 2 * cell_dim_; }

    LstmCell &forwardCell() { return forward_cell_; }
    const LstmCell &forwardCell() const { return forward_cell_; }
    LstmCell &backwardCell() { return backward_cell_; }
    const LstmCell &backwardCell() const { return backward_cell_; }

  private:
    int64_t input_dim_;
    int64_t cell_dim_;
    LstmCell forward_cell_;
    LstmCell backward_cell_;
};

} // namespace reuse

#endif // REUSE_DNN_NN_LSTM_H
