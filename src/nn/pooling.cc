#include "pooling.h"

#include <algorithm>

#include "common/logging.h"
#include "ir/op_shapes.h"

namespace reuse {

MaxPool2DLayer::MaxPool2DLayer(std::string name, int64_t window)
    : Layer(std::move(name)), window_(window)
{
    REUSE_ASSERT(window > 0, "pool window must be positive");
}

ShapeInference
MaxPool2DLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(
        ir::inferMaxPool2d(name(), input, window_));
}

Tensor
MaxPool2DLayer::forward(const Tensor &input) const
{
    const Shape out_shape = outputShape(input.shape());
    const int64_t c = input.shape().dim(0);
    const int64_t h = input.shape().dim(1);
    const int64_t w = input.shape().dim(2);
    const int64_t oh = out_shape.dim(1);
    const int64_t ow = out_shape.dim(2);

    Tensor out(out_shape);
    for (int64_t ci = 0; ci < c; ++ci) {
        const float *in_map =
            &input.data()[static_cast<size_t>(ci * h * w)];
        float *out_map =
            &out.data()[static_cast<size_t>(ci * oh * ow)];
        for (int64_t oy = 0; oy < oh; ++oy) {
            for (int64_t ox = 0; ox < ow; ++ox) {
                float m = in_map[(oy * window_) * w + ox * window_];
                for (int64_t ky = 0; ky < window_; ++ky) {
                    for (int64_t kx = 0; kx < window_; ++kx) {
                        m = std::max(m,
                                     in_map[(oy * window_ + ky) * w +
                                            ox * window_ + kx]);
                    }
                }
                out_map[oy * ow + ox] = m;
            }
        }
    }
    return out;
}

MaxPool3DLayer::MaxPool3DLayer(std::string name, int64_t depth_window,
                               int64_t spatial_window, bool ceil_mode)
    : Layer(std::move(name)),
      depth_window_(depth_window),
      spatial_window_(spatial_window),
      ceil_mode_(ceil_mode)
{
    REUSE_ASSERT(depth_window > 0 && spatial_window > 0,
                 "pool windows must be positive");
}

ShapeInference
MaxPool3DLayer::inferOutputShape(const Shape &input) const
{
    return toShapeInference(ir::inferMaxPool3d(
        name(), input, depth_window_, spatial_window_, ceil_mode_));
}

Tensor
MaxPool3DLayer::forward(const Tensor &input) const
{
    const Shape out_shape = outputShape(input.shape());
    const int64_t c = input.shape().dim(0);
    const int64_t d = input.shape().dim(1);
    const int64_t h = input.shape().dim(2);
    const int64_t w = input.shape().dim(3);
    const int64_t od = out_shape.dim(1);
    const int64_t oh = out_shape.dim(2);
    const int64_t ow = out_shape.dim(3);

    Tensor out(out_shape);
    for (int64_t ci = 0; ci < c; ++ci) {
        const float *in_vol =
            &input.data()[static_cast<size_t>(ci * d * h * w)];
        float *out_vol =
            &out.data()[static_cast<size_t>(ci * od * oh * ow)];
        for (int64_t oz = 0; oz < od; ++oz) {
            const int64_t zd = std::min(depth_window_,
                                        d - oz * depth_window_);
            for (int64_t oy = 0; oy < oh; ++oy) {
                const int64_t yd = std::min(spatial_window_,
                                            h - oy * spatial_window_);
                for (int64_t ox = 0; ox < ow; ++ox) {
                    const int64_t xd = std::min(
                        spatial_window_, w - ox * spatial_window_);
                    float m = in_vol[((oz * depth_window_) * h +
                                      oy * spatial_window_) *
                                         w +
                                     ox * spatial_window_];
                    for (int64_t kd = 0; kd < zd; ++kd) {
                        for (int64_t ky = 0; ky < yd; ++ky) {
                            for (int64_t kx = 0; kx < xd; ++kx) {
                                m = std::max(
                                    m,
                                    in_vol[((oz * depth_window_ + kd) *
                                                h +
                                            oy * spatial_window_ + ky) *
                                               w +
                                           ox * spatial_window_ + kx]);
                            }
                        }
                    }
                    out_vol[(oz * oh + oy) * ow + ox] = m;
                }
            }
        }
    }
    return out;
}

} // namespace reuse
