/**
 * @file
 * Fully-connected (dense) layer.
 *
 * Weights are stored input-major: weight(i, o) lives at w[i * M + o].
 * This mirrors the interleaved Weights Buffer layout of the paper's
 * accelerator (Fig. 7), where the first weight of every neuron is
 * stored first so all weights touched by one input are contiguous —
 * exactly what the delta-correction z'_o = z_o + d_i * W_io needs.
 */

#ifndef REUSE_DNN_NN_FULLY_CONNECTED_H
#define REUSE_DNN_NN_FULLY_CONNECTED_H

#include "common/aligned.h"
#include "nn/layer.h"

namespace reuse {

/**
 * Dense layer computing out(j) = sum_i w(i,j) * in(i) + b(j) (Eq. 1).
 */
class FullyConnectedLayer : public Layer
{
  public:
    /**
     * Creates an FC layer with zero-initialized parameters.
     *
     * @param name Layer name used in reports.
     * @param inputs Number of inputs N.
     * @param outputs Number of output neurons M.
     */
    FullyConnectedLayer(std::string name, int64_t inputs, int64_t outputs);

    LayerKind kind() const override { return LayerKind::FullyConnected; }
    ShapeInference inferOutputShape(const Shape &input) const override;
    Tensor forward(const Tensor &input) const override;
    int64_t paramCount() const override;
    int64_t macCount(const Shape &input) const override;

    /** Number of inputs N. */
    int64_t inputs() const { return inputs_; }

    /** Number of output neurons M. */
    int64_t outputs() const { return outputs_; }

    /** Weight for (input i, output o). */
    float weight(int64_t i, int64_t o) const
    {
        return weights_[i * outputs_ + o];
    }

    /** Mutable weight for (input i, output o). */
    float &weight(int64_t i, int64_t o)
    {
        return weights_[i * outputs_ + o];
    }

    /** Input-major weight storage: w[i * outputs + o], 64B-aligned. */
    const AlignedVector<float> &weights() const { return weights_; }

    /** Mutable weight storage. */
    AlignedVector<float> &weights() { return weights_; }

    /** Bias vector, one entry per output neuron, 64B-aligned. */
    const AlignedVector<float> &biases() const { return biases_; }

    /** Mutable bias vector. */
    AlignedVector<float> &biases() { return biases_; }

    /**
     * Applies the delta-correction of Eq. 10 for a single changed
     * input: out[o] += delta * w(i, o) for all o.  Exposed here so the
     * reuse engine and the LSTM cell share one implementation.
     */
    void applyDelta(int64_t input_index, float delta,
                    AlignedVector<float> &outputs) const;

  private:
    int64_t inputs_;
    int64_t outputs_;
    AlignedVector<float> weights_;
    AlignedVector<float> biases_;
};

} // namespace reuse

#endif // REUSE_DNN_NN_FULLY_CONNECTED_H
