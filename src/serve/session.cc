#include "session.h"

namespace reuse {

Session::Session(SessionId id, const ReuseEngine &engine, uint64_t seed)
    : id_(id),
      seed_(seed),
      engine_(engine),
      state_(engine.makeState()),
      stats_(engine.makeStatsCollector())
{
}

Session::Snapshot
Session::snapshot() const
{
    MutexLock lock(state_mu_);
    Snapshot snap;
    snap.framesCompleted = frames_completed_;
    snap.evictions = evictions_;
    snap.reuseRatio = stats_.networkComputationReuse();
    snap.similarity = stats_.meanSimilarity();
    snap.stateBytes = state_.memoryBytes();
    snap.warm = state_.warm();
    snap.corruptionRecoveries = corruption_recoveries_;
    snap.droppedFrames = dropped_frames_;
    snap.duplicatedFrames = duplicated_frames_;
    snap.coldFrames = cold_frames_;
    return snap;
}

std::vector<LayerReuseStats>
Session::layerStats() const
{
    MutexLock lock(state_mu_);
    return stats_.layers();
}

} // namespace reuse
