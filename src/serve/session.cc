#include "session.h"

namespace reuse {

Session::Session(SessionId id, const ReuseEngine &engine, uint64_t seed,
                 SloClass slo)
    : id_(id),
      seed_(seed),
      engine_(engine),
      slo_(slo),
      plan_fingerprint_(reinterpret_cast<uint64_t>(
          engine.compiledPlanPtr().get())),
      state_(engine.makeState()),
      stats_(engine.makeStatsCollector())
{
}

Session::Snapshot
Session::snapshot() const
{
    Snapshot snap;
    snap.sloClass = slo_;
    snap.deadlineMisses =
        deadline_misses_.load(std::memory_order_relaxed);
    {
        // The two halves are read under their own locks, never
        // nested; a snapshot may interleave with a frame between
        // them, which is fine for a monitoring view.
        MutexLock lock(const_cast<Mutex &>(queue_mu_));
        snap.shard = shard_;
    }
    MutexLock lock(state_mu_);
    snap.framesCompleted = frames_completed_;
    snap.evictions = evictions_;
    snap.reuseRatio = stats_.networkComputationReuse();
    snap.similarity = stats_.meanSimilarity();
    snap.stateBytes = state_.memoryBytes();
    snap.warm = state_.warm();
    snap.corruptionRecoveries = corruption_recoveries_;
    snap.droppedFrames = dropped_frames_;
    snap.duplicatedFrames = duplicated_frames_;
    snap.inputSignature = input_signature_;
    snap.coldFrames = cold_frames_;
    return snap;
}

std::vector<LayerReuseStats>
Session::layerStats() const
{
    MutexLock lock(state_mu_);
    return stats_.layers();
}

} // namespace reuse
