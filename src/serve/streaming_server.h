/**
 * @file
 * Multi-stream serving runtime for reuse-based inference.
 *
 * Multiplexes many concurrent sessions — each a temporal input stream
 * with its own per-stream reuse state — over a shared zoo of
 * immutable ReuseEngines, executing frames on a worker thread pool
 * fed by a bounded MPMC queue.
 *
 * Ordering & parallelism model (session pinning): a session is in the
 * run queue at most once.  A worker that pops a session executes
 * exactly one of its pending frames, then re-enqueues the session if
 * more frames are waiting.  Frames of one session therefore execute
 * serially in submission order against its ReuseState (the paper's
 * incremental correction is inherently sequential per stream), while
 * frames of different sessions execute in parallel.  This makes the
 * runtime's outputs bit-identical to N independent single-stream
 * ReuseEngine runs, for any worker count.
 *
 * Memory: per-session reuse buffers live under the SessionManager's
 * budget; evicted sessions degrade to from-scratch execution on their
 * next frame and re-warm (see session_manager.h).
 */

#ifndef REUSE_DNN_SERVE_STREAMING_SERVER_H
#define REUSE_DNN_SERVE_STREAMING_SERVER_H

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "obs/reservoir.h"
#include "serve/bounded_queue.h"
#include "serve/serve_metrics.h"
#include "serve/session_manager.h"

namespace reuse {

/**
 * Streaming inference server over one or more shared ReuseEngines.
 */
class StreamingServer
{
  public:
    struct Config {
        /** Worker threads executing frames. */
        size_t workerThreads = 4;
        /** Bound of the admission queue (sessions awaiting a worker). */
        size_t queueCapacity = 1024;
        /** Reuse-buffer budget across sessions; negative = unlimited. */
        int64_t memoryBudgetBytes = -1;
        /**
         * Validate each session's reuse-state checksum on dequeue and
         * re-warm (reset + cold frame) instead of executing on
         * corrupted buffers.  Costs one state walk per frame.
         */
        bool validateState = false;
        /**
         * trySubmitFrame() sheds when a session already has this many
         * pending frames (0 = no per-session bound).
         */
        size_t maxPendingPerSession = 0;
    };

    /** Outcome of a non-blocking trySubmitFrame(). */
    struct SubmitOutcome {
        enum class Status {
            /** Frame accepted; `result` is valid. */
            Accepted,
            /** Overloaded; retry after `retryAfterMicros`. */
            Shed,
        };
        Status status = Status::Accepted;
        std::future<Tensor> result;
        /** Backoff hint for Shed (rough time for one queued frame). */
        int64_t retryAfterMicros = 0;

        bool accepted() const { return status == Status::Accepted; }
    };

    /** Single-model server; the engine is registered as "default". */
    explicit StreamingServer(const ReuseEngine &engine)
        : StreamingServer(engine, Config())
    {
    }

    StreamingServer(const ReuseEngine &engine, Config config);

    /**
     * Multi-model server over a model zoo.
     * @param zoo (name, engine) pairs; engines must outlive the
     *   server and must be feed-forward (serving is per-frame).
     */
    StreamingServer(
        const std::vector<std::pair<std::string, const ReuseEngine *>>
            &zoo,
        Config config);

    /** Stops workers; pending unexecuted frames see broken promises. */
    ~StreamingServer();

    StreamingServer(const StreamingServer &) = delete;
    StreamingServer &operator=(const StreamingServer &) = delete;

    /**
     * Opens a session against `model`.  Returns kInvalidSessionId
     * (with a logged MF001 diagnostic) when the session's reuse-state
     * footprint alone exceeds the memory budget.
     * @param seed Stream identity, recorded on the session (workload
     *   generators derive their RNG stream from it).
     */
    SessionId openSession(const std::string &model = "default",
                          uint64_t seed = 0);

    /**
     * Enqueues one frame for `id`.  Blocks for backpressure when the
     * admission queue is full.  The returned future yields the
     * frame's network output; frames of one session complete in
     * submission order.
     */
    std::future<Tensor> submitFrame(SessionId id, Tensor input);

    /**
     * Non-blocking submitFrame(): instead of blocking for
     * backpressure, sheds the frame — with a retry/backoff hint —
     * when the session's pending queue is at maxPendingPerSession or
     * the admission queue is full.
     */
    SubmitOutcome trySubmitFrame(SessionId id, Tensor input);

    /**
     * Testing hook: flips one bit in `id`'s buffered reuse state so
     * the next frame's checksum validation must detect and recover
     * it.  Returns false when the session has nothing buffered or the
     * build compiled injection out.
     */
    bool debugCorruptSessionState(SessionId id, uint64_t seed);

    /**
     * Waits for the session's pending frames to finish, then removes
     * it (releasing its reuse-buffer charge).
     */
    void closeSession(SessionId id);

    /** Waits until every submitted frame has completed. */
    void drain();

    /** Stops the worker pool (idempotent; also run by the dtor). */
    void stop();

    /** Point-in-time view of one session. */
    Session::Snapshot sessionSnapshot(SessionId id) const;

    /** Deterministically evicts one session's reuse buffers. */
    bool forceEvict(SessionId id)
    {
        return manager_.forceEvict(id);
    }

    /** Aggregate serving metrics. */
    const ServeMetrics &metrics() const { return metrics_; }

    /** The memory governor (budget, evictions, charged bytes). */
    const SessionManager &sessionManager() const { return manager_; }
    SessionManager &sessionManager() { return manager_; }

    /**
     * Publishes serving metrics plus live-session gauges into
     * `registry` under "serve.".
     */
    void publishStats(StatRegistry &registry) const;

    /** Number of worker threads. */
    size_t workerCount() const { return workers_.size(); }

  private:
    void start(size_t worker_threads);
    void workerLoop();

    /**
     * Executes `req` against `session` (the dequeue half of a pop)
     * and returns the frame's output.  The caller fulfils the promise
     * only after the manager's memory accounting ran, so a completed
     * future implies settled accounting.
     */
    Tensor executeFrame(Session &session, FrameRequest &req);

    Config config_;
    std::map<std::string, const ReuseEngine *> zoo_;
    ServeMetrics metrics_;
    SessionManager manager_;
    BoundedQueue<std::shared_ptr<Session>> queue_;
    std::vector<std::thread> workers_;
    /** Recent admission-queue depths (submit-side observations). */
    obs::SlidingWindowReservoir queue_depth_window_;

    /**
     * Count of submitted-but-incomplete frames.  Atomic (workers
     * decrement it outside any lock); drain_mu_/drain_cv_ only order
     * the sleep/wake handshake of drain() and closeSession() against
     * worker completions, so the counter carries no GUARDED_BY.
     */
    std::atomic<uint64_t> outstanding_{0};
    Mutex drain_mu_;
    CondVar drain_cv_;
    std::atomic<bool> stopped_{false};
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_STREAMING_SERVER_H
