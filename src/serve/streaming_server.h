/**
 * @file
 * Multi-stream serving runtime for reuse-based inference.
 *
 * Multiplexes many concurrent sessions — each a temporal input stream
 * with its own per-stream reuse state — over a shared zoo of
 * immutable ReuseEngines.  Frames execute on a worker pool fed by
 * per-shard EDF run queues (serve/shard_scheduler.h):
 *
 *  - sharding: sessions are placed on a shard at open time by the
 *    similarity-aware placer (serve/placement.h) and their frames are
 *    admitted, queued and accounted there; workers are pinned to a
 *    home shard and steal from other shards only when their home is
 *    idle.  Striped shard locks replace the old single global queue
 *    lock, and a session's ReuseState stays hot in one core group's
 *    caches.
 *  - deadlines: every frame gets an absolute deadline (submit time +
 *    its session's SLO-class budget).  Within a shard frames run in
 *    EDF order, and trySubmitFrame() sheds on admission — with a
 *    deadline-derived backoff hint — when the frame provably cannot
 *    meet its deadline at the shard's measured service rate.
 *
 * Ordering & parallelism model (session pinning): a session is in the
 * run queues at most once.  A worker that pops a session executes
 * exactly one of its pending frames, then re-enqueues the session if
 * more frames are waiting.  Frames of one session therefore execute
 * serially in submission order against its ReuseState (the paper's
 * incremental correction is inherently sequential per stream), while
 * frames of different sessions execute in parallel.  This makes the
 * runtime's outputs bit-identical to N independent single-stream
 * ReuseEngine runs, for any worker count.
 *
 * Determinism seam: all timestamps come from Config::clock and
 * Config::manualDispatch runs the server with no worker threads —
 * tests pump runOne() under a virtual clock to drive admission, EDF
 * ordering, deadline misses, stealing and migration deterministically.
 *
 * Memory: per-session reuse buffers live under the SessionManager's
 * budget; evicted sessions degrade to from-scratch execution on their
 * next frame and re-warm (see session_manager.h).
 */

#ifndef REUSE_DNN_SERVE_STREAMING_SERVER_H
#define REUSE_DNN_SERVE_STREAMING_SERVER_H

#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "obs/reservoir.h"
#include "serve/clock.h"
#include "serve/placement.h"
#include "serve/serve_metrics.h"
#include "serve/session_manager.h"
#include "serve/shard_scheduler.h"
#include "serve/slo.h"

namespace reuse {

/**
 * Streaming inference server over one or more shared ReuseEngines.
 */
class StreamingServer
{
  public:
    struct Config {
        /** Worker threads executing frames (split across shards). */
        size_t workerThreads = 4;
        /**
         * Run-queue shards (striped locks, one EDF queue each).
         * 0 = auto: one shard per two workers, at least one.
         */
        size_t shards = 0;
        /**
         * Total admitted-frame bound across shards, split evenly
         * (trySubmitFrame sheds beyond it; submitFrame ignores it).
         */
        size_t queueCapacity = 1024;
        /** Reuse-buffer budget across sessions; negative = unlimited. */
        int64_t memoryBudgetBytes = -1;
        /**
         * Validate each session's reuse-state checksum on dequeue and
         * re-warm (reset + cold frame) instead of executing on
         * corrupted buffers.  Costs one state walk per frame.
         */
        bool validateState = false;
        /**
         * trySubmitFrame() sheds when a session already has this many
         * pending frames (0 = no per-session bound).
         */
        size_t maxPendingPerSession = 0;
        /** Idle workers may take work from other shards. */
        bool workStealing = true;
        /**
         * Test seam: start no worker threads; callers drive execution
         * with runOne().  Blocking APIs that need workers (drain with
         * queued frames, closeSession with pending frames) must be
         * pumped first.
         */
        bool manualDispatch = false;
        /** Per-SLO-class deadline budgets. */
        SloPolicy slo;
        /**
         * Time source for deadlines/admission/latency (nullptr = the
         * process steady clock).  Tests inject a virtual clock.
         */
        Clock *clock = nullptr;
        /**
         * Seed of the per-shard service-time EWMA driving admission
         * (0 = capacity-only admission until the first completion).
         */
        int64_t initialServiceEstimateMicros = 0;
        /**
         * Tail-latency exemplar capture (obs/exemplar.h).  When
         * enabled, every frame stages its spans and commits them to
         * the exemplar ring if it missed its deadline, exceeded its
         * class threshold, was shed, re-warmed cold, or fell under
         * the reuse floor.  Also armed process-wide by the
         * REUSE_EXEMPLARS environment variable (miss-only defaults).
         */
        struct ExemplarConfig {
            bool enabled = false;
            /**
             * Per-class commit thresholds in microseconds; strictly
             * greater commits.  <= 0 = deadline misses only.
             */
            int64_t latencyThresholdMicros[kSloClassCount] = {0, 0, 0};
            /** Commit steady frames below this reuse; < 0 = off. */
            double lowReuseFloor = -1.0;
            /** Committed-exemplar ring capacity. */
            size_t ringCapacity = 256;
        };
        ExemplarConfig exemplars;
    };

    /** Outcome of a non-blocking trySubmitFrame(). */
    struct SubmitOutcome {
        enum class Status {
            /** Frame accepted; `result` is valid. */
            Accepted,
            /** Overloaded; retry after `retryAfterMicros`. */
            Shed,
        };
        Status status = Status::Accepted;
        std::future<Tensor> result;
        /**
         * Backoff hint for Shed, derived from the admission deadline
         * math (how far past its deadline the frame would land, or
         * one service slot when the queue is simply full).
         */
        int64_t retryAfterMicros = 0;

        bool accepted() const { return status == Status::Accepted; }
    };

    /** Single-model server; the engine is registered as "default". */
    explicit StreamingServer(const ReuseEngine &engine)
        : StreamingServer(engine, Config())
    {
    }

    StreamingServer(const ReuseEngine &engine, Config config);

    /**
     * Multi-model server over a model zoo.
     * @param zoo (name, engine) pairs; engines must outlive the
     *   server and must be feed-forward (serving is per-frame).
     */
    StreamingServer(
        const std::vector<std::pair<std::string, const ReuseEngine *>>
            &zoo,
        Config config);

    /** Stops workers; pending unexecuted frames see broken promises. */
    ~StreamingServer();

    StreamingServer(const StreamingServer &) = delete;
    StreamingServer &operator=(const StreamingServer &) = delete;

    /**
     * Opens a session against `model`.  Returns kInvalidSessionId
     * (with a logged MF001 diagnostic) when the session's reuse-state
     * footprint alone exceeds the memory budget.
     * @param seed Stream identity, recorded on the session (workload
     *   generators derive their RNG stream from it).
     * @param slo Latency class of every frame the session submits.
     * @param signatureHint Optional expected-input sketch
     *   (ShardPlacer::inputSketch of a representative frame; 0 =
     *   none) steering similarity-aware placement.
     */
    SessionId openSession(const std::string &model = "default",
                          uint64_t seed = 0,
                          SloClass slo = SloClass::Standard,
                          uint64_t signatureHint = 0);

    /**
     * Enqueues one frame for `id`.  Never sheds: the frame is
     * force-admitted to the session's shard even when the deadline is
     * provably unmeetable (it will count as a deadline miss).  The
     * returned future yields the frame's network output; frames of
     * one session complete in submission order.
     */
    std::future<Tensor> submitFrame(SessionId id, Tensor input);

    /**
     * Non-blocking submitFrame(): sheds the frame — with a
     * deadline-derived retry hint — when the session's pending queue
     * is at maxPendingPerSession, the shard is at capacity, or the
     * EDF feasibility test says the frame (or a frame it would
     * displace) cannot meet its deadline.
     */
    SubmitOutcome trySubmitFrame(SessionId id, Tensor input);

    /**
     * Testing hook: flips one bit in `id`'s buffered reuse state so
     * the next frame's checksum validation must detect and recover
     * it.  Returns false when the session has nothing buffered or the
     * build compiled injection out.
     */
    bool debugCorruptSessionState(SessionId id, uint64_t seed);

    /**
     * Waits for the session's pending frames to finish, then removes
     * it (releasing its reuse-buffer charge).
     */
    void closeSession(SessionId id);

    /** Waits until every submitted frame has completed. */
    void drain();

    /** Stops the worker pool (idempotent; also run by the dtor). */
    void stop();

    /**
     * Re-homes a session onto `to_shard`: its placement epoch is
     * bumped (staling any queued entry on the old shard), pending
     * frame deadlines move to the new shard's accounting, and the
     * session is re-queued there if it was runnable.  A frame already
     * executing finishes where it started.  Returns false for an
     * unknown session or an out-of-range shard.
     */
    bool migrateSession(SessionId id, size_t to_shard);

    /**
     * Manual-dispatch pump: executes at most one frame from `shard`
     * (stealing from the deepest other shard when `allow_steal` and
     * `shard` is empty).  Returns true when a frame ran.  Usable on
     * any server, but intended for Config::manualDispatch tests.
     */
    bool runOne(size_t shard, bool allow_steal = false);

    /** Point-in-time view of one session. */
    Session::Snapshot sessionSnapshot(SessionId id) const;

    /** Deterministically evicts one session's reuse buffers. */
    bool forceEvict(SessionId id)
    {
        return manager_.forceEvict(id);
    }

    /** Aggregate serving metrics. */
    const ServeMetrics &metrics() const { return metrics_; }

    /** Mutable metrics (benches reset() between warmup and
     *  measurement phases; recording itself is worker-internal). */
    ServeMetrics &metrics() { return metrics_; }

    /** The memory governor (budget, evictions, charged bytes). */
    const SessionManager &sessionManager() const { return manager_; }
    SessionManager &sessionManager() { return manager_; }

    /**
     * Publishes serving metrics plus live-session and per-shard
     * gauges into `registry` under "serve.".
     */
    void publishStats(StatRegistry &registry) const;

    /** Number of worker threads (0 under manualDispatch). */
    size_t workerCount() const { return workers_.size(); }

    /** Number of run-queue shards. */
    size_t shardCount() const { return sched_.shardCount(); }

    /** Run-queue length of one shard (sessions, not frames). */
    size_t shardDepth(size_t shard) const
    {
        return sched_.depth(shard);
    }

    /** Admitted-but-incomplete frames accounted to one shard. */
    size_t shardPendingFrames(size_t shard) const
    {
        return sched_.pendingFrames(shard);
    }

    /** One shard's service-time EWMA (0 = nothing measured yet). */
    int64_t shardServiceEstimateMicros(size_t shard) const
    {
        return sched_.serviceEstimateMicros(shard);
    }

  private:
    using Sched = EdfShardQueues<std::shared_ptr<Session>>;

    void start(size_t worker_threads);
    void workerLoop(size_t worker_index);

    /** How a frame reached the worker (steal/exemplar accounting). */
    struct DispatchContext {
        /** True when a worker of another shard took the entry. */
        bool stolen = false;
        /** The stealing worker's home shard (valid when stolen). */
        size_t thiefShard = 0;
    };

    /** Completion-side facts executeFrame reports to dispatchEntry. */
    struct FrameExecInfo {
        /** Frame executed cold (eviction or corruption re-warm). */
        bool cold = false;
    };

    /**
     * Claims and executes one frame of the popped entry's session.
     * Returns false when the entry was stale (migration re-homed the
     * session after the entry was pushed) — no frame ran.  `ctx`
     * carries steal provenance into tracing/exemplar capture; the
     * frame's admission accounting lives on the session's home shard.
     */
    bool dispatchEntry(Sched::Entry &entry, const DispatchContext &ctx);

    /**
     * Executes `req` against `session` (the dequeue half of a pop)
     * and returns the frame's output.  The caller fulfils the promise
     * only after the manager's memory accounting ran, so a completed
     * future implies settled accounting.
     */
    Tensor executeFrame(Session &session, FrameRequest &req,
                        size_t exec_shard, const DispatchContext &ctx,
                        FrameExecInfo *info);

    /** Resolved shard count for a config (before sched_ exists). */
    static size_t resolveShards(const Config &config);

    Config config_;
    Clock *clock_;
    std::map<std::string, const ReuseEngine *> zoo_;
    ServeMetrics metrics_;
    SessionManager manager_;
    Sched sched_;
    ShardPlacer placer_;
    std::vector<std::thread> workers_;
    /** Recent run-queue total depths (submit-side observations). */
    obs::SlidingWindowReservoir queue_depth_window_;

    /**
     * Count of submitted-but-incomplete frames.  Atomic (workers
     * decrement it outside any lock); drain_mu_/drain_cv_ only order
     * the sleep/wake handshake of drain() and closeSession() against
     * worker completions, so the counter carries no GUARDED_BY.
     */
    std::atomic<uint64_t> outstanding_{0};
    Mutex drain_mu_;
    CondVar drain_cv_;
    std::atomic<bool> stopped_{false};
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_STREAMING_SERVER_H
