/**
 * @file
 * One serving session: the unit of per-stream reuse state.
 *
 * A session owns everything one temporal input stream (a user's
 * speech session, a dash-cam feed) carries between frames: its
 * ReuseState (previous quantized inputs + previous outputs per
 * layer, refresh counter), a per-session reuse-statistics collector,
 * an RNG seed identifying the stream, and its pending-frame FIFO.
 *
 * Lifecycle: open (StreamingServer::openSession) → frames
 * (submitFrame, executed in order by the worker pool) → close.
 * Between frames the session's reuse buffers may be *evicted* by the
 * SessionManager under memory pressure; the session then degrades to
 * a from-scratch execution on its next frame and re-warms, which
 * preserves the correctness invariant (outputs always match what a
 * dedicated single-stream engine with a reset at the same frame
 * would produce).
 *
 * Locking: `queue_mu_` guards the scheduling half (pending frames,
 * in-flight flag), `state_mu_` guards the execution half (ReuseState,
 * stats).  Lock order when both are needed: never hold `state_mu_`
 * while acquiring a SessionManager or server lock; `state_mu_` may be
 * acquired while holding the manager lock (eviction path).
 */

#ifndef REUSE_DNN_SERVE_SESSION_H
#define REUSE_DNN_SERVE_SESSION_H

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "common/sync.h"
#include "core/reuse_engine.h"
#include "tensor/tensor.h"

namespace reuse {

/** Opaque handle of an open serving session. */
using SessionId = uint64_t;

/**
 * Sentinel returned by StreamingServer::openSession when admission is
 * rejected (e.g. the session's reuse-state footprint alone exceeds
 * the memory budget).  Real ids start at 1.
 */
constexpr SessionId kInvalidSessionId = 0;

/** One frame waiting to be executed for a session. */
struct FrameRequest {
    Tensor input;
    std::promise<Tensor> result;
    std::chrono::steady_clock::time_point enqueued;
    /** 0-based index of this frame within its session's stream. */
    uint64_t frameIndex = 0;
};

/**
 * Per-stream serving state.  Instances are created and managed by
 * StreamingServer/SessionManager; user code refers to sessions by
 * SessionId and reads progress through Snapshot.
 */
class Session
{
  public:
    /**
     * @param id Server-assigned handle.
     * @param engine Shared immutable engine executing this session's
     *   model; must outlive the session.
     * @param seed Stream identity (workload generators derive their
     *   RNG stream from it).
     */
    Session(SessionId id, const ReuseEngine &engine, uint64_t seed);

    SessionId id() const { return id_; }

    /** The stream's RNG seed (identity of the input sequence). */
    uint64_t seed() const { return seed_; }

    /** The engine executing this session's model. */
    const ReuseEngine &engine() const { return engine_; }

    /** Point-in-time view of a session's progress and reuse health. */
    struct Snapshot {
        uint64_t framesCompleted = 0;
        /** Times this session's reuse buffers were evicted. */
        uint64_t evictions = 0;
        /** MAC-weighted network computation reuse accumulated so far. */
        double reuseRatio = 0.0;
        /** Mean input similarity over reuse-enabled layers. */
        double similarity = 0.0;
        /** Bytes currently held by the session's reuse buffers. */
        int64_t stateBytes = 0;
        /** True when the session has buffered history to reuse. */
        bool warm = false;
        /** Times corrupted state was detected and re-warmed. */
        uint64_t corruptionRecoveries = 0;
        /** Frames answered with the previous output (fault drops). */
        uint64_t droppedFrames = 0;
        /** Frames executed twice (fault duplicates). */
        uint64_t duplicatedFrames = 0;
        /**
         * Frame indices that executed cold because of an eviction
         * (NOT counting the stream's first frame or periodic
         * refreshes).  Lets callers replay a reference run with
         * resets at exactly these frames.
         */
        std::vector<uint64_t> coldFrames;
    };

    /** Thread-safe snapshot (may briefly block a worker). */
    Snapshot snapshot() const;

    /**
     * Per-layer reuse statistics accumulated so far (thread-safe
     * copy; may briefly block a worker).  Feeds the per-layer
     * similarity/occupancy gauges of the metrics exposition.
     */
    std::vector<LayerReuseStats> layerStats() const;

  private:
    friend class StreamingServer;
    friend class SessionManager;

    const SessionId id_;
    const uint64_t seed_;
    const ReuseEngine &engine_;

    // --- Scheduling half ---------------------------------------------
    Mutex queue_mu_;
    std::deque<FrameRequest> pending_ GUARDED_BY(queue_mu_);
    /** True while the session sits in the run queue or executes. */
    bool inflight_ GUARDED_BY(queue_mu_) = false;
    /** Set by closeSession(); rejects further submits. */
    bool closing_ GUARDED_BY(queue_mu_) = false;
    /** Next frame index to assign at submit time. */
    uint64_t next_frame_index_ GUARDED_BY(queue_mu_) = 0;

    // --- Execution half ----------------------------------------------
    mutable Mutex state_mu_;
    ReuseState state_ GUARDED_BY(state_mu_);
    ReuseStatsCollector stats_ GUARDED_BY(state_mu_);
    uint64_t frames_completed_ GUARDED_BY(state_mu_) = 0;
    uint64_t evictions_ GUARDED_BY(state_mu_) = 0;
    /** True between an eviction and the next executed frame. */
    bool evicted_since_last_frame_ GUARDED_BY(state_mu_) = false;
    std::vector<uint64_t> cold_frames_ GUARDED_BY(state_mu_);
    /**
     * Checksum of state_ stamped after the previous frame; compared
     * on dequeue when Config::validateState is set.  Invalidated by
     * evictions (the manager mutates state_ legitimately).
     */
    uint64_t state_checksum_ GUARDED_BY(state_mu_) = 0;
    bool checksum_valid_ GUARDED_BY(state_mu_) = false;
    uint64_t corruption_recoveries_ GUARDED_BY(state_mu_) = 0;
    uint64_t dropped_frames_ GUARDED_BY(state_mu_) = 0;
    uint64_t duplicated_frames_ GUARDED_BY(state_mu_) = 0;
    /** Last frame's output, replayed for dropped frames. */
    Tensor last_output_ GUARDED_BY(state_mu_);
    bool has_last_output_ GUARDED_BY(state_mu_) = false;

    // The manager's per-session accounting (charged bytes, LRU tick)
    // lives in SessionManager::Entry under the manager lock — a
    // member here could not name that lock in a GUARDED_BY.
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_SESSION_H
