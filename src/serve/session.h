/**
 * @file
 * One serving session: the unit of per-stream reuse state.
 *
 * A session owns everything one temporal input stream (a user's
 * speech session, a dash-cam feed) carries between frames: its
 * ReuseState (previous quantized inputs + previous outputs per
 * layer, refresh counter), a per-session reuse-statistics collector,
 * an RNG seed identifying the stream, its SLO class (every frame's
 * deadline is submit time + the class budget), and its pending-frame
 * FIFO.
 *
 * Scheduling: sessions are placed on a shard at open time (see
 * serve/placement.h) and their frames run on that shard's workers in
 * EDF order; a session is runnable on at most one shard at a time
 * (run_state_, placement_epoch_).  Migration re-homes a session by
 * bumping its placement epoch, which lazily invalidates any queue
 * entry still sitting in the old shard's heap.
 *
 * Lifecycle: open (StreamingServer::openSession) → frames
 * (submitFrame, executed in order by the worker pool) → close.
 * Between frames the session's reuse buffers may be *evicted* by the
 * SessionManager under memory pressure; the session then degrades to
 * a from-scratch execution on its next frame and re-warms, which
 * preserves the correctness invariant (outputs always match what a
 * dedicated single-stream engine with a reset at the same frame
 * would produce).
 *
 * Locking: `queue_mu_` guards the scheduling half (pending frames,
 * run state, shard placement), `state_mu_` guards the execution half
 * (ReuseState, stats).  Lock order when both are needed: never hold
 * `state_mu_` while acquiring a SessionManager or server lock;
 * `state_mu_` may be acquired while holding the manager lock
 * (eviction path).  A shard lock may be acquired under `queue_mu_`
 * (submit pushes into the run queue); the reverse never happens.
 */

#ifndef REUSE_DNN_SERVE_SESSION_H
#define REUSE_DNN_SERVE_SESSION_H

#include <cstdint>
#include <deque>
#include <future>
#include <vector>

#include "common/sync.h"
#include "core/reuse_engine.h"
#include "serve/slo.h"
#include "tensor/tensor.h"

namespace reuse {

/** Opaque handle of an open serving session. */
using SessionId = uint64_t;

/**
 * Sentinel returned by StreamingServer::openSession when admission is
 * rejected (e.g. the session's reuse-state footprint alone exceeds
 * the memory budget).  Real ids start at 1.
 */
constexpr SessionId kInvalidSessionId = 0;

/** One frame waiting to be executed for a session. */
struct FrameRequest {
    Tensor input;
    std::promise<Tensor> result;
    /** Submit timestamp (serve Clock micros). */
    int64_t enqueuedMicros = 0;
    /** Absolute completion deadline (submit + SLO class budget). */
    int64_t deadlineMicros = 0;
    /** 0-based index of this frame within its session's stream. */
    uint64_t frameIndex = 0;
    /**
     * Session placement epoch at submit time; the epoch delta at
     * claim time counts the migrations this frame rode through.
     */
    uint64_t submitEpoch = 0;
};

/**
 * Per-stream serving state.  Instances are created and managed by
 * StreamingServer/SessionManager; user code refers to sessions by
 * SessionId and reads progress through Snapshot.
 */
class Session
{
  public:
    /**
     * @param id Server-assigned handle.
     * @param engine Shared immutable engine executing this session's
     *   model; must outlive the session.
     * @param seed Stream identity (workload generators derive their
     *   RNG stream from it).
     * @param slo Latency class; every frame's deadline derives from
     *   its budget.
     */
    Session(SessionId id, const ReuseEngine &engine, uint64_t seed,
            SloClass slo = SloClass::Standard);

    SessionId id() const { return id_; }

    /** The stream's RNG seed (identity of the input sequence). */
    uint64_t seed() const { return seed_; }

    /** The engine executing this session's model. */
    const ReuseEngine &engine() const { return engine_; }

    /** The session's latency class (fixed at open). */
    SloClass slo() const { return slo_; }

    /**
     * Identity of the session's compiled plan (shared by sessions of
     * one model through the plan cache); placement keys on it.
     */
    uint64_t planFingerprint() const { return plan_fingerprint_; }

    /** Point-in-time view of a session's progress and reuse health. */
    struct Snapshot {
        uint64_t framesCompleted = 0;
        /** Times this session's reuse buffers were evicted. */
        uint64_t evictions = 0;
        /** MAC-weighted network computation reuse accumulated so far. */
        double reuseRatio = 0.0;
        /** Mean input similarity over reuse-enabled layers. */
        double similarity = 0.0;
        /** Bytes currently held by the session's reuse buffers. */
        int64_t stateBytes = 0;
        /** True when the session has buffered history to reuse. */
        bool warm = false;
        /** Times corrupted state was detected and re-warmed. */
        uint64_t corruptionRecoveries = 0;
        /** Frames answered with the previous output (fault drops). */
        uint64_t droppedFrames = 0;
        /** Frames executed twice (fault duplicates). */
        uint64_t duplicatedFrames = 0;
        /** The session's latency class. */
        SloClass sloClass = SloClass::Standard;
        /** Shard the session is currently placed on. */
        size_t shard = 0;
        /** Frames that completed after their deadline. */
        uint64_t deadlineMisses = 0;
        /** Latest executed-frame input sketch (0 = none yet). */
        uint64_t inputSignature = 0;
        /**
         * Frame indices that executed cold because of an eviction
         * (NOT counting the stream's first frame or periodic
         * refreshes).  Lets callers replay a reference run with
         * resets at exactly these frames.
         */
        std::vector<uint64_t> coldFrames;
    };

    /** Thread-safe snapshot (may briefly block a worker). */
    Snapshot snapshot() const;

    /**
     * Per-layer reuse statistics accumulated so far (thread-safe
     * copy; may briefly block a worker).  Feeds the per-layer
     * similarity/occupancy gauges of the metrics exposition.
     */
    std::vector<LayerReuseStats> layerStats() const;

  private:
    friend class StreamingServer;
    friend class SessionManager;

    /** Scheduling state of the session within its shard. */
    enum class RunState : uint8_t {
        /** No pending frames; not in any run queue. */
        Idle,
        /** In its shard's run queue (exactly one live entry). */
        Queued,
        /** A worker is executing one of its frames. */
        Executing,
    };

    const SessionId id_;
    const uint64_t seed_;
    const ReuseEngine &engine_;
    const SloClass slo_;
    const uint64_t plan_fingerprint_;

    // --- Scheduling half ---------------------------------------------
    Mutex queue_mu_;
    std::deque<FrameRequest> pending_ GUARDED_BY(queue_mu_);
    RunState run_state_ GUARDED_BY(queue_mu_) = RunState::Idle;
    /** Home shard; frames are admitted and queued there. */
    size_t shard_ GUARDED_BY(queue_mu_) = 0;
    /**
     * Bumped by migration; run-queue entries carry the epoch they
     * were pushed under, and a mismatch marks them stale.
     */
    uint64_t placement_epoch_ GUARDED_BY(queue_mu_) = 0;
    /** Set by closeSession(); rejects further submits. */
    bool closing_ GUARDED_BY(queue_mu_) = false;
    /** Next frame index to assign at submit time. */
    uint64_t next_frame_index_ GUARDED_BY(queue_mu_) = 0;

    // --- Execution half ----------------------------------------------
    mutable Mutex state_mu_;
    ReuseState state_ GUARDED_BY(state_mu_);
    ReuseStatsCollector stats_ GUARDED_BY(state_mu_);
    uint64_t frames_completed_ GUARDED_BY(state_mu_) = 0;
    uint64_t evictions_ GUARDED_BY(state_mu_) = 0;
    /** True between an eviction and the next executed frame. */
    bool evicted_since_last_frame_ GUARDED_BY(state_mu_) = false;
    std::vector<uint64_t> cold_frames_ GUARDED_BY(state_mu_);
    /**
     * Checksum of state_ stamped after the previous frame; compared
     * on dequeue when Config::validateState is set.  Invalidated by
     * evictions (the manager mutates state_ legitimately).
     */
    uint64_t state_checksum_ GUARDED_BY(state_mu_) = 0;
    bool checksum_valid_ GUARDED_BY(state_mu_) = false;
    uint64_t corruption_recoveries_ GUARDED_BY(state_mu_) = 0;
    uint64_t dropped_frames_ GUARDED_BY(state_mu_) = 0;
    uint64_t duplicated_frames_ GUARDED_BY(state_mu_) = 0;
    /** Last frame's output, replayed for dropped frames. */
    Tensor last_output_ GUARDED_BY(state_mu_);
    bool has_last_output_ GUARDED_BY(state_mu_) = false;
    /** Latest executed-frame input sketch (placement similarity). */
    uint64_t input_signature_ GUARDED_BY(state_mu_) = 0;

    /**
     * Frames that completed past their deadline.  Atomic: bumped by
     * workers after the state lock is released (the miss is decided
     * by the completion timestamp, not by execution state).
     */
    std::atomic<uint64_t> deadline_misses_{0};

    // The manager's per-session accounting (charged bytes, LRU tick)
    // lives in SessionManager::Entry under the manager lock — a
    // member here could not name that lock in a GUARDED_BY.
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_SESSION_H
