/**
 * @file
 * Sharded EDF run queues: the scheduling core of the serving runtime.
 *
 * The PR-1 runtime fed all workers from one global BoundedQueue; under
 * load that scatters a session's frames across cores (ReuseState pages
 * ping-pong between caches) and serves frames in FIFO order, so a
 * 10 ms-deadline speech frame waits behind a 1 s-deadline batch frame.
 * This container replaces it with one run queue per shard (striped
 * locks, workers pinned to a home shard) ordered by Earliest Deadline
 * First, plus:
 *
 *  - shed-on-admission: admitFrame() runs the EDF feasibility test —
 *    a frame is rejected up front when, at the shard's measured
 *    service rate, it provably cannot meet its deadline or would push
 *    an already-admitted frame past its own.  The retry hint is
 *    derived from the deadline math, not a fixed constant.
 *  - work stealing only on idle: a worker first drains its home
 *    shard; only when that is empty may it take the earliest-deadline
 *    entry of another shard (spare capacity helps the stragglers, but
 *    busy shards keep their sessions' reuse state cache-resident).
 *  - epoch-stale entries: queue entries carry the payload owner's
 *    placement epoch; migration bumps the epoch and re-queues on the
 *    new shard, and consumers discard entries whose epoch no longer
 *    matches (removing from the middle of a binary heap is not worth
 *    the bookkeeping).
 *
 * Determinism seam: every operation takes explicit timestamps and the
 * try* APIs never block, so a single-threaded test harness with a
 * virtual clock (tests/support/virtual_clock.h) can drive admission,
 * EDF ordering, deadline misses and stealing with no wall-clock
 * sleeps.  Only popBlocking() — the worker-thread entry point — ever
 * waits, on a parking condvar with a lost-wakeup-proof epoch.
 */

#ifndef REUSE_DNN_SERVE_SHARD_SCHEDULER_H
#define REUSE_DNN_SERVE_SHARD_SCHEDULER_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/sync.h"

namespace reuse {

/**
 * Per-shard EDF priority queues with deadline-based admission.
 * `Payload` is the scheduled unit (the server uses
 * std::shared_ptr<Session>; tests use plain ints).
 */
template <typename Payload>
class EdfShardQueues
{
  public:
    struct Config {
        /** Number of shards (>= 1). */
        size_t shards = 1;
        /**
         * Admitted-frame bound per shard (admitFrame only; 0 = no
         * bound).  forceAdmitFrame ignores it.
         */
        size_t capacityPerShard = 0;
        /**
         * Workers draining one shard; the feasibility test models the
         * shard as a single server of rate workersPerShard / service.
         */
        size_t workersPerShard = 1;
        /**
         * Seed of the per-shard service-time EWMA.  0 = no estimate:
         * admission is capacity-only until the first completion
         * reports a measured service time.
         */
        int64_t initialServiceEstimateMicros = 0;
    };

    /** One queued schedulable unit. */
    struct Entry {
        int64_t deadlineMicros = 0;
        /** FIFO tiebreak among equal deadlines (per shard). */
        uint64_t seq = 0;
        /** Owner's placement epoch at push time (stale detection). */
        uint64_t epoch = 0;
        Payload payload{};
    };

    /** Outcome of a deadline-checked admission. */
    struct Admit {
        bool admitted = true;
        /**
         * On rejection: micros until a frame with the same budget
         * could plausibly be admitted (backlog excess plus one
         * service slot).
         */
        int64_t retryAfterMicros = 0;
    };

    explicit EdfShardQueues(Config config) : config_(config)
    {
        REUSE_ASSERT(config_.shards >= 1, "need at least one shard");
        if (config_.workersPerShard == 0)
            config_.workersPerShard = 1;
        shards_.reserve(config_.shards);
        for (size_t i = 0; i < config_.shards; ++i)
            shards_.push_back(std::make_unique<Shard>());
        for (auto &shard : shards_)
            shard->service_ewma_us = config_.initialServiceEstimateMicros;
    }

    EdfShardQueues(const EdfShardQueues &) = delete;
    EdfShardQueues &operator=(const EdfShardQueues &) = delete;

    size_t shardCount() const { return shards_.size(); }

    /**
     * EDF feasibility-checked admission of one frame with absolute
     * deadline `deadline_us`.  Admits (and accounts the deadline)
     * unless the shard is at capacity, the frame itself cannot finish
     * by its deadline at the measured service rate, or inserting it
     * would push an already-admitted frame past its own deadline.
     */
    Admit
    admitFrame(size_t shard_index, int64_t now_us, int64_t deadline_us)
    {
        Shard &s = shard(shard_index);
        MutexLock lock(s.mu);
        Admit out;
        const int64_t per = perSlotMicrosLocked(s);
        if (config_.capacityPerShard != 0 &&
            s.deadlines.size() >= config_.capacityPerShard) {
            out.admitted = false;
            // One admitted frame must complete before a slot frees.
            out.retryAfterMicros = std::max<int64_t>(per, 1);
            return out;
        }
        if (per > 0) {
            // Position the frame would take under EDF (frames with
            // earlier-or-equal deadlines run first; FIFO tiebreak).
            const auto it = std::upper_bound(
                s.deadlines.begin(), s.deadlines.end(), deadline_us);
            const size_t pos =
                static_cast<size_t>(it - s.deadlines.begin());
            const int64_t completion =
                now_us + static_cast<int64_t>(pos + 1) * per;
            if (completion > deadline_us) {
                out.admitted = false;
                out.retryAfterMicros =
                    std::max<int64_t>(completion - deadline_us, per);
                return out;
            }
            // Frames displaced one slot right must still make it.
            for (size_t i = pos; i < s.deadlines.size(); ++i) {
                const int64_t displaced =
                    now_us + static_cast<int64_t>(i + 2) * per;
                if (displaced > s.deadlines[i]) {
                    out.admitted = false;
                    out.retryAfterMicros = per;
                    return out;
                }
            }
        }
        insertDeadlineLocked(s, deadline_us);
        return out;
    }

    /** Unchecked admission (blocking submit path; never sheds). */
    void
    forceAdmitFrame(size_t shard_index, int64_t deadline_us)
    {
        Shard &s = shard(shard_index);
        MutexLock lock(s.mu);
        insertDeadlineLocked(s, deadline_us);
    }

    /**
     * Retires one admitted frame and feeds the measured service time
     * into the shard's EWMA (the admission feasibility estimate).
     * Tolerates a deadline no longer accounted here (migration races
     * resolve in the moving frame's favor).
     */
    void
    completeFrame(size_t shard_index, int64_t deadline_us,
                  int64_t service_us)
    {
        Shard &s = shard(shard_index);
        MutexLock lock(s.mu);
        eraseDeadlineLocked(s, deadline_us);
        if (service_us > 0) {
            s.service_ewma_us =
                s.service_ewma_us == 0
                    ? service_us
                    : (3 * s.service_ewma_us + service_us) / 4;
        }
    }

    /**
     * Moves admitted-frame deadlines between shards (session
     * migration).  Never holds two shard locks at once; the transient
     * undercount on `to` is benign (admission briefly optimistic).
     */
    void
    moveFrames(size_t from, size_t to,
               const std::vector<int64_t> &deadlines_us)
    {
        {
            Shard &s = shard(from);
            MutexLock lock(s.mu);
            for (int64_t d : deadlines_us)
                eraseDeadlineLocked(s, d);
        }
        Shard &t = shard(to);
        MutexLock lock(t.mu);
        for (int64_t d : deadlines_us)
            insertDeadlineLocked(t, d);
    }

    /** Enqueues a runnable unit keyed by its earliest deadline. */
    void
    push(size_t shard_index, int64_t deadline_us, uint64_t epoch,
         Payload payload)
    {
        {
            Shard &s = shard(shard_index);
            MutexLock lock(s.mu);
            s.heap.push_back(Entry{deadline_us, s.next_seq++, epoch,
                                   std::move(payload)});
            std::push_heap(s.heap.begin(), s.heap.end(), Later());
        }
        {
            MutexLock lock(park_mu_);
            ++park_epoch_;
        }
        // All parked workers re-scan: with stealing disabled only the
        // shard's own workers can run this entry, and notifyOne could
        // wake a foreign one that goes straight back to sleep.
        park_cv_.notifyAll();
    }

    /** Pops the earliest-deadline entry of one shard (non-blocking). */
    bool
    tryPop(size_t shard_index, Entry &out)
    {
        Shard &s = shard(shard_index);
        MutexLock lock(s.mu);
        if (s.heap.empty())
            return false;
        std::pop_heap(s.heap.begin(), s.heap.end(), Later());
        out = std::move(s.heap.back());
        s.heap.pop_back();
        return true;
    }

    /**
     * Steals the earliest-deadline entry of the deepest other shard.
     * Callers must try their own shard first (stealing is an
     * idle-only policy; the server enforces it structurally by
     * calling tryPop before trySteal).
     */
    bool
    trySteal(size_t thief, Entry &out, size_t &victim_out)
    {
        const size_t n = shards_.size();
        size_t victim = n;
        size_t deepest = 0;
        for (size_t off = 1; off < n; ++off) {
            const size_t i = (thief + off) % n;
            Shard &s = shard(i);
            MutexLock lock(s.mu);
            if (s.heap.size() > deepest) {
                deepest = s.heap.size();
                victim = i;
            }
        }
        if (victim == n)
            return false;
        if (!tryPop(victim, out))
            return false;   // drained between the scan and the pop
        victim_out = victim;
        return true;
    }

    /**
     * Worker-thread pop: drains the home shard, then (when allowed)
     * steals, then parks until new work or close().  Returns false
     * once the queues are closed and nothing reachable remains.
     * `src_shard` reports where the entry came from.
     */
    bool
    popBlocking(size_t home, bool allow_steal, Entry &out,
                size_t &src_shard)
    {
        for (;;) {
            uint64_t epoch = 0;
            {
                MutexLock lock(park_mu_);
                epoch = park_epoch_;
            }
            if (tryPop(home, out)) {
                src_shard = home;
                return true;
            }
            if (allow_steal && trySteal(home, out, src_shard))
                return true;
            MutexLock lock(park_mu_);
            if (closed_)
                return false;
            // A push between the scan and this lock bumped the epoch;
            // rescan instead of sleeping (lost-wakeup prevention).
            if (park_epoch_ == epoch)
                park_cv_.wait(lock);
        }
    }

    /** Wakes every parked worker; subsequent pops drain then stop. */
    void
    close()
    {
        {
            MutexLock lock(park_mu_);
            closed_ = true;
            ++park_epoch_;
        }
        park_cv_.notifyAll();
    }

    bool
    closed() const
    {
        MutexLock lock(park_mu_);
        return closed_;
    }

    /** Run-queue length (may count entries staled by migration). */
    size_t
    depth(size_t shard_index) const
    {
        const Shard &s = shard(shard_index);
        MutexLock lock(s.mu);
        return s.heap.size();
    }

    /** Admitted-but-incomplete frames accounted to the shard. */
    size_t
    pendingFrames(size_t shard_index) const
    {
        const Shard &s = shard(shard_index);
        MutexLock lock(s.mu);
        return s.deadlines.size();
    }

    /** Current service-time EWMA (0 = nothing measured yet). */
    int64_t
    serviceEstimateMicros(size_t shard_index) const
    {
        const Shard &s = shard(shard_index);
        MutexLock lock(s.mu);
        return s.service_ewma_us;
    }

  private:
    /** Min-heap order on (deadline, submission sequence). */
    struct Later {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.deadlineMicros != b.deadlineMicros)
                return a.deadlineMicros > b.deadlineMicros;
            return a.seq > b.seq;
        }
    };

    struct Shard {
        mutable Mutex mu;
        /** Runnable units, min-heap by (deadline, seq). */
        std::vector<Entry> heap GUARDED_BY(mu);
        /** Deadlines of admitted frames, sorted ascending. */
        std::vector<int64_t> deadlines GUARDED_BY(mu);
        int64_t service_ewma_us GUARDED_BY(mu) = 0;
        uint64_t next_seq GUARDED_BY(mu) = 0;
    };

    Shard &
    shard(size_t i)
    {
        REUSE_ASSERT(i < shards_.size(), "shard " << i << " out of range");
        return *shards_[i];
    }

    const Shard &
    shard(size_t i) const
    {
        REUSE_ASSERT(i < shards_.size(), "shard " << i << " out of range");
        return *shards_[i];
    }

    /** Micros one queue slot occupies at the shard's service rate. */
    int64_t
    perSlotMicrosLocked(const Shard &s) const REQUIRES(s.mu)
    {
        if (s.service_ewma_us <= 0)
            return 0;
        return std::max<int64_t>(
            1, s.service_ewma_us /
                   static_cast<int64_t>(config_.workersPerShard));
    }

    void
    insertDeadlineLocked(Shard &s, int64_t d) REQUIRES(s.mu)
    {
        s.deadlines.insert(
            std::upper_bound(s.deadlines.begin(), s.deadlines.end(), d),
            d);
    }

    void
    eraseDeadlineLocked(Shard &s, int64_t d) REQUIRES(s.mu)
    {
        const auto it = std::lower_bound(s.deadlines.begin(),
                                         s.deadlines.end(), d);
        if (it != s.deadlines.end() && *it == d)
            s.deadlines.erase(it);
    }

    Config config_;
    std::vector<std::unique_ptr<Shard>> shards_;

    /**
     * Parking lot for idle workers.  park_epoch_ increments on every
     * push/close; a worker re-reads it around its scan so a push
     * landing mid-scan forces a rescan instead of a missed wakeup.
     */
    mutable Mutex park_mu_;
    CondVar park_cv_;
    uint64_t park_epoch_ GUARDED_BY(park_mu_) = 0;
    bool closed_ GUARDED_BY(park_mu_) = false;
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_SHARD_SCHEDULER_H
