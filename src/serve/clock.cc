#include "clock.h"

#include <chrono>

namespace reuse {

int64_t
SystemClock::nowMicros() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

SystemClock &
SystemClock::instance()
{
    static SystemClock clock;
    return clock;
}

} // namespace reuse
