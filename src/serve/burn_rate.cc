#include "serve/burn_rate.h"

#include <algorithm>

#include "common/logging.h"

namespace reuse {

SloBurnTracker::SloBurnTracker(const Config &config) : config_(config)
{
    if (config_.fastWindowMicros <= 0 || config_.slowWindowMicros <= 0)
        fatal("SloBurnTracker: windows must be positive");
    if (config_.slowWindowMicros < config_.fastWindowMicros)
        fatal("SloBurnTracker: slow window shorter than fast window");
    // Six buckets across the fast window keeps its quantization error
    // under ~17% while the slow window reuses the same ring.
    bucket_micros_ = std::max<int64_t>(1, config_.fastWindowMicros / 6);
    const int64_t needed =
        (config_.slowWindowMicros + bucket_micros_ - 1) /
            bucket_micros_ +
        1;
    if (needed > static_cast<int64_t>(kMaxBuckets)) {
        bucket_micros_ =
            (config_.slowWindowMicros + kMaxBuckets - 2) /
            (kMaxBuckets - 1);
        buckets_ = kMaxBuckets;
    } else {
        buckets_ = static_cast<size_t>(needed);
    }
    for (size_t c = 0; c < kSloClassCount; ++c) {
        cum_total_[c].store(0, std::memory_order_relaxed);
        cum_bad_[c].store(0, std::memory_order_relaxed);
    }
}

void
SloBurnTracker::record(SloClass slo, bool bad, int64_t now_micros)
{
    const size_t c = static_cast<size_t>(slo);
    const int64_t epoch = now_micros / bucket_micros_;
    Bucket &bucket = rings_[c][static_cast<size_t>(epoch) % buckets_];
    int64_t seen = bucket.epoch.load(std::memory_order_acquire);
    if (seen != epoch) {
        if (bucket.epoch.compare_exchange_strong(
                seen, epoch, std::memory_order_acq_rel)) {
            // This thread claimed the recycled bucket; zero it.
            bucket.total.store(0, std::memory_order_relaxed);
            bucket.bad.store(0, std::memory_order_relaxed);
        }
    }
    bucket.total.fetch_add(1, std::memory_order_relaxed);
    if (bad)
        bucket.bad.fetch_add(1, std::memory_order_relaxed);
    cum_total_[c].fetch_add(1, std::memory_order_relaxed);
    if (bad)
        cum_bad_[c].fetch_add(1, std::memory_order_relaxed);
}

void
SloBurnTracker::sumWindow(SloClass slo, int64_t window_micros,
                          int64_t now_micros, uint64_t *total,
                          uint64_t *bad) const
{
    const size_t c = static_cast<size_t>(slo);
    const int64_t now_epoch = now_micros / bucket_micros_;
    const int64_t window_buckets =
        std::max<int64_t>(1, window_micros / bucket_micros_);
    *total = 0;
    *bad = 0;
    for (size_t i = 0; i < buckets_; ++i) {
        const Bucket &bucket = rings_[c][i];
        const int64_t epoch =
            bucket.epoch.load(std::memory_order_acquire);
        if (epoch < 0 || epoch > now_epoch ||
            epoch <= now_epoch - window_buckets)
            continue;
        *total += bucket.total.load(std::memory_order_relaxed);
        *bad += bucket.bad.load(std::memory_order_relaxed);
    }
}

double
SloBurnTracker::missFraction(SloClass slo, BurnWindow window,
                             int64_t now_micros) const
{
    const int64_t span = window == BurnWindow::Fast
                             ? config_.fastWindowMicros
                             : config_.slowWindowMicros;
    uint64_t total = 0;
    uint64_t bad = 0;
    sumWindow(slo, span, now_micros, &total, &bad);
    if (total == 0)
        return 0.0;
    return static_cast<double>(bad) / static_cast<double>(total);
}

double
SloBurnTracker::burnRate(SloClass slo, BurnWindow window,
                         int64_t now_micros) const
{
    const double budget =
        config_.budgetFraction[static_cast<size_t>(slo)];
    if (budget <= 0.0)
        return 0.0;
    return missFraction(slo, window, now_micros) / budget;
}

double
SloBurnTracker::budgetConsumed(SloClass slo) const
{
    const size_t c = static_cast<size_t>(slo);
    const uint64_t total =
        cum_total_[c].load(std::memory_order_relaxed);
    if (total == 0)
        return 0.0;
    const double budget = config_.budgetFraction[c];
    if (budget <= 0.0)
        return 0.0;
    const double frac =
        static_cast<double>(cum_bad_[c].load(std::memory_order_relaxed)) /
        static_cast<double>(total);
    return frac / budget;
}

uint64_t
SloBurnTracker::totalFrames(SloClass slo) const
{
    return cum_total_[static_cast<size_t>(slo)].load(
        std::memory_order_relaxed);
}

uint64_t
SloBurnTracker::badFrames(SloClass slo) const
{
    return cum_bad_[static_cast<size_t>(slo)].load(
        std::memory_order_relaxed);
}

void
SloBurnTracker::reset()
{
    for (size_t c = 0; c < kSloClassCount; ++c) {
        for (size_t i = 0; i < kMaxBuckets; ++i) {
            rings_[c][i].epoch.store(-1, std::memory_order_relaxed);
            rings_[c][i].total.store(0, std::memory_order_relaxed);
            rings_[c][i].bad.store(0, std::memory_order_relaxed);
        }
        cum_total_[c].store(0, std::memory_order_relaxed);
        cum_bad_[c].store(0, std::memory_order_relaxed);
    }
}

} // namespace reuse
