/**
 * @file
 * Service-level-objective classes for serving sessions.
 *
 * Each session is opened under one SLO class; every submitted frame
 * derives an absolute deadline (submit time + the class's budget)
 * that drives EDF ordering within a shard, shed-on-admission when the
 * frame provably cannot meet its deadline, and per-class deadline-
 * miss accounting.  The paper's workloads map naturally: Kaldi/EESEN
 * speech frames and AutoPilot steering frames are Interactive, batch
 * re-scoring is Batch.
 */

#ifndef REUSE_DNN_SERVE_SLO_H
#define REUSE_DNN_SERVE_SLO_H

#include <cstddef>
#include <cstdint>

namespace reuse {

/** Latency class of a serving session. */
enum class SloClass : uint8_t {
    /** Human-in-the-loop: speech, driving.  Tight deadline. */
    Interactive = 0,
    /** Default online serving. */
    Standard = 1,
    /** Throughput-oriented; effectively deadline-insensitive. */
    Batch = 2,
};

/** Number of SloClass values (array sizing). */
constexpr size_t kSloClassCount = 3;

/** Stable lowercase name ("interactive", "standard", "batch"). */
inline const char *
sloClassName(SloClass c)
{
    switch (c) {
      case SloClass::Interactive:
        return "interactive";
      case SloClass::Standard:
        return "standard";
      case SloClass::Batch:
        return "batch";
    }
    return "unknown";
}

/**
 * Per-class deadline budgets.  A frame submitted at time t for a
 * class-c session must complete by t + budget(c).
 */
struct SloPolicy {
    int64_t deadlineBudgetMicros[kSloClassCount] = {
        10'000,     // Interactive: 10 ms (speech/driving frame rate)
        50'000,     // Standard: 50 ms
        1'000'000,  // Batch: 1 s
    };

    int64_t
    budget(SloClass c) const
    {
        return deadlineBudgetMicros[static_cast<size_t>(c)];
    }
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_SLO_H
