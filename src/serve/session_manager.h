/**
 * @file
 * Session registry + reuse-buffer memory governor.
 *
 * The paper's technique trades memory (previous quantized inputs and
 * previous outputs per layer, Table III) for computation.  At serving
 * scale that memory is the scarce resource: thousands of concurrent
 * sessions each pin one ReuseState worth of buffers.  The
 * SessionManager accounts every session's buffer bytes and, when a
 * configurable budget is exceeded, evicts the least-recently-used
 * session's buffers.  An evicted session is NOT closed: its next
 * frame simply executes from scratch (exactly like a stream's first
 * frame) and re-warms the buffers, so correctness is never affected —
 * only the reuse ratio of the frames right after the eviction.
 *
 * Lock order: the manager lock may be held while acquiring a
 * session's state_mu_ (blocking in forceEvict/remove, try_lock in the
 * LRU sweep so sessions mid-execution are skipped); the reverse order
 * is forbidden.
 */

#ifndef REUSE_DNN_SERVE_SESSION_MANAGER_H
#define REUSE_DNN_SERVE_SESSION_MANAGER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "analysis/diagnostics.h"
#include "common/sync.h"
#include "serve/serve_metrics.h"
#include "serve/session.h"

namespace reuse {

/**
 * Owns all live sessions and enforces the reuse-memory budget.
 */
class SessionManager
{
  public:
    struct Config {
        /**
         * Total bytes all sessions' reuse buffers may occupy;
         * negative = unlimited.  A session whose warm footprint alone
         * exceeds the budget is rejected at admission (tryCreate):
         * admitting it would only lead to eviction thrash, since
         * there is nothing that could be evicted to make it fit.
         */
        int64_t memoryBudgetBytes = -1;
    };

    /** Outcome of a tryCreate() admission attempt. */
    struct Admission {
        /** The admitted session; nullptr when admission was denied. */
        std::shared_ptr<Session> session;
        /**
         * The static-analysis findings behind the decision (MF001 on
         * rejection, the IN002 footprint estimate otherwise).
         */
        DiagnosticReport report;
    };

    /** Unlimited-budget manager. */
    SessionManager() : SessionManager(Config(), nullptr) {}

    /**
     * @param config Budget configuration.
     * @param metrics Optional sink for eviction events.
     */
    explicit SessionManager(Config config,
                            ServeMetrics *metrics = nullptr);

    /**
     * Admission-checked session creation: estimates the engine's warm
     * per-session reuse-state footprint and rejects the session
     * (nullptr + MF001 diagnostic) when that footprint alone exceeds
     * the memory budget.  Admitted sessions are registered.
     */
    Admission tryCreate(const ReuseEngine &engine, uint64_t seed,
                        SloClass slo = SloClass::Standard);

    /**
     * Creates and registers a session; returns it.  Fatal when
     * admission is rejected — callers that can degrade gracefully
     * should use tryCreate().
     */
    std::shared_ptr<Session> create(const ReuseEngine &engine,
                                    uint64_t seed,
                                    SloClass slo = SloClass::Standard);

    /** Finds a session by id (nullptr when unknown/closed). */
    std::shared_ptr<Session> find(SessionId id) const;

    /** Unregisters a session and releases its memory charge. */
    void remove(SessionId id);

    /**
     * Called by a worker after executing a frame for `session` (with
     * the session's state_mu_ NOT held): re-charges the session's
     * buffer bytes, bumps its LRU tick, and evicts LRU sessions while
     * over budget.  Sessions currently executing are skipped.
     */
    void noteExecution(Session &session) EXCLUDES(session.state_mu_);

    /**
     * Deterministically evicts one session's reuse buffers (test and
     * operations hook).  Returns false when the id is unknown.
     * Blocks until the session is not executing.
     */
    bool forceEvict(SessionId id);

    /**
     * Records that a worker detected corrupted reuse state on
     * `session` and re-warmed it.  Called with the session's
     * state_mu_ held (takes no manager lock).
     */
    void noteCorruptionRecovery(Session &session)
        REQUIRES(session.state_mu_);

    /** Total corruption recoveries across all sessions. */
    uint64_t corruptionRecoveryCount() const
    {
        return corruption_recoveries_.load(std::memory_order_relaxed);
    }

    /** Bytes currently charged across all sessions. */
    int64_t chargedBytes() const
    {
        return charged_.load(std::memory_order_relaxed);
    }

    /** Total evictions performed (budget-forced + forced). */
    uint64_t evictionCount() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    /** Number of registered sessions. */
    size_t sessionCount() const;

    /**
     * Snapshot of all live sessions (stats-publication walk; the
     * returned shared_ptrs keep sessions alive across the walk).
     */
    std::vector<std::shared_ptr<Session>> sessions() const;

    /** The configured budget (negative = unlimited). */
    int64_t memoryBudgetBytes() const
    {
        return config_.memoryBudgetBytes;
    }

    /** Next fresh session id (used by the server). */
    SessionId allocateId()
    {
        return next_id_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    /**
     * One registered session plus the manager's accounting for it.
     * The accounting lives here — not on the Session — so it can be
     * statically tied to the manager lock that actually guards it.
     */
    struct Entry {
        std::shared_ptr<Session> session;
        /** Bytes of reuse buffers currently charged to the budget. */
        int64_t chargedBytes = 0;
        /** LRU clock; larger = more recently executed. */
        uint64_t lastUsedTick = 0;
    };

    /**
     * Evicts LRU sessions until the charge fits the budget; `exclude`
     * (the session that just ran) is never a victim.
     */
    void enforceBudgetLocked(const Session *exclude) REQUIRES(mu_);

    /** Releases one session's buffers and fixes the accounting. */
    void evictLocked(Entry &entry, Session &victim)
        REQUIRES(mu_, victim.state_mu_);

    mutable Mutex mu_;
    Config config_;
    ServeMetrics *metrics_;
    std::unordered_map<SessionId, Entry> sessions_ GUARDED_BY(mu_);
    std::atomic<int64_t> charged_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> corruption_recoveries_{0};
    std::atomic<uint64_t> next_id_{1};
    uint64_t tick_ GUARDED_BY(mu_) = 0;
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_SESSION_MANAGER_H
