/**
 * @file
 * Bounded multi-producer multi-consumer FIFO queue.
 *
 * The serving runtime's admission path: submitters block when the
 * queue is full (backpressure instead of unbounded memory growth),
 * workers block when it is empty.  close() releases everybody so the
 * server can shut down: pending items are still drained by pop(),
 * after which pop() returns false.
 */

#ifndef REUSE_DNN_SERVE_BOUNDED_QUEUE_H
#define REUSE_DNN_SERVE_BOUNDED_QUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace reuse {

/**
 * Mutex/condvar bounded MPMC queue.  All operations are thread-safe.
 */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity Maximum queued items (>= 1). */
    explicit BoundedQueue(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    /**
     * Enqueues `item`, blocking while the queue is full.  Returns
     * false (dropping the item) when the queue is closed.
     */
    bool push(T item)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock, [&] {
            return closed_ || items_.size() < capacity_;
        });
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /** Enqueues without blocking; false when full or closed. */
    bool tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Dequeues into `out`, blocking while the queue is empty.
     * Returns false once the queue is closed AND drained.
     */
    bool pop(T &out)
    {
        std::unique_lock<std::mutex> lock(mu_);
        not_empty_.wait(lock,
                        [&] { return closed_ || !items_.empty(); });
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return true;
    }

    /** Closes the queue, waking all blocked producers/consumers. */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            closed_ = true;
        }
        not_full_.notify_all();
        not_empty_.notify_all();
    }

    /** Current queue depth. */
    size_t size() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return items_.size();
    }

    /** Configured capacity. */
    size_t capacity() const { return capacity_; }

    /** True once close() has been called. */
    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return closed_;
    }

  private:
    mutable std::mutex mu_;
    std::condition_variable not_full_;
    std::condition_variable not_empty_;
    std::deque<T> items_;
    const size_t capacity_;
    bool closed_ = false;
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_BOUNDED_QUEUE_H
