/**
 * @file
 * Bounded multi-producer multi-consumer FIFO queue.
 *
 * The serving runtime's admission path: submitters block when the
 * queue is full (backpressure instead of unbounded memory growth),
 * workers block when it is empty.  close() releases everybody so the
 * server can shut down: pending items are still drained by pop(),
 * after which pop() returns false.
 */

#ifndef REUSE_DNN_SERVE_BOUNDED_QUEUE_H
#define REUSE_DNN_SERVE_BOUNDED_QUEUE_H

#include <cstddef>
#include <deque>
#include <utility>

#include "common/sync.h"

namespace reuse {

/**
 * Mutex/condvar bounded MPMC queue.  All operations are thread-safe;
 * the locking invariants are machine-checked (GUARDED_BY mu_).
 */
template <typename T>
class BoundedQueue
{
  public:
    /** @param capacity Maximum queued items (>= 1). */
    explicit BoundedQueue(size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity)
    {
    }

    /**
     * Enqueues `item`, blocking while the queue is full.  Returns
     * false (dropping the item) when the queue is closed.
     */
    bool push(T item)
    {
        MutexLock lock(mu_);
        while (!closed_ && items_.size() >= capacity_)
            not_full_.wait(lock);
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        lock.unlock();
        not_empty_.notifyOne();
        return true;
    }

    /** Enqueues without blocking; false when full or closed. */
    bool tryPush(T item)
    {
        {
            MutexLock lock(mu_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notifyOne();
        return true;
    }

    /**
     * Dequeues into `out`, blocking while the queue is empty.
     * Returns false once the queue is closed AND drained.
     */
    bool pop(T &out)
    {
        MutexLock lock(mu_);
        while (!closed_ && items_.empty())
            not_empty_.wait(lock);
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        lock.unlock();
        not_full_.notifyOne();
        return true;
    }

    /** Closes the queue, waking all blocked producers/consumers. */
    void close()
    {
        {
            MutexLock lock(mu_);
            closed_ = true;
        }
        not_full_.notifyAll();
        not_empty_.notifyAll();
    }

    /** Current queue depth. */
    size_t size() const
    {
        MutexLock lock(mu_);
        return items_.size();
    }

    /** Configured capacity. */
    size_t capacity() const { return capacity_; }

    /** True once close() has been called. */
    bool closed() const
    {
        MutexLock lock(mu_);
        return closed_;
    }

  private:
    mutable Mutex mu_;
    CondVar not_full_;
    CondVar not_empty_;
    std::deque<T> items_ GUARDED_BY(mu_);
    const size_t capacity_;
    bool closed_ GUARDED_BY(mu_) = false;
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_BOUNDED_QUEUE_H
