#include "session_manager.h"

#include <limits>

#include "analysis/model_validator.h"
#include "common/logging.h"
#include "obs/trace_recorder.h"

namespace reuse {

SessionManager::SessionManager(Config config, ServeMetrics *metrics)
    : config_(config), metrics_(metrics)
{
}

SessionManager::Admission
SessionManager::tryCreate(const ReuseEngine &engine, uint64_t seed,
                          SloClass slo)
{
    Admission admission;
    admission.report = validateMemoryFootprint(
        engine.network(), engine.plan(), config_.memoryBudgetBytes,
        /*emit_info=*/false);
    if (admission.report.hasErrors())
        return admission;
    admission.session =
        std::make_shared<Session>(allocateId(), engine, seed, slo);
    MutexLock lock(mu_);
    sessions_.emplace(admission.session->id(),
                      Entry{admission.session, 0, 0});
    return admission;
}

std::shared_ptr<Session>
SessionManager::create(const ReuseEngine &engine, uint64_t seed,
                       SloClass slo)
{
    Admission admission = tryCreate(engine, seed, slo);
    if (admission.session == nullptr) {
        fatal(engine.network().name() +
              ": session admission rejected\n" +
              admission.report.str());
    }
    return admission.session;
}

std::shared_ptr<Session>
SessionManager::find(SessionId id) const
{
    MutexLock lock(mu_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second.session;
}

void
SessionManager::remove(SessionId id)
{
    MutexLock lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return;
    charged_.fetch_sub(it->second.chargedBytes,
                       std::memory_order_relaxed);
    sessions_.erase(it);
}

void
SessionManager::evictLocked(Entry &entry, Session &victim)
{
    const int64_t held = entry.chargedBytes;
    victim.state_.releaseBuffers();
    const int64_t residual = victim.state_.memoryBytes();
    obs::recordInstant(obs::SpanKind::Eviction, -1, held - residual,
                       charged_.load(std::memory_order_relaxed), 0, 0,
                       victim.id_, victim.frames_completed_);
    charged_.fetch_add(residual - entry.chargedBytes,
                       std::memory_order_relaxed);
    entry.chargedBytes = residual;
    victim.evictions_ += 1;
    victim.evicted_since_last_frame_ = true;
    // The eviction legitimately mutates the state the checksum
    // covers; the next dequeue must not flag it as corruption.
    victim.checksum_valid_ = false;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr)
        metrics_->eviction();
}

void
SessionManager::enforceBudgetLocked(const Session *exclude)
{
    if (config_.memoryBudgetBytes < 0)
        return;
    while (charged_.load(std::memory_order_relaxed) >
           config_.memoryBudgetBytes) {
        Entry *victim = nullptr;
        uint64_t oldest = std::numeric_limits<uint64_t>::max();
        for (auto &kv : sessions_) {
            Entry &entry = kv.second;
            if (entry.session.get() == exclude ||
                entry.chargedBytes <= 0)
                continue;
            if (entry.lastUsedTick < oldest) {
                oldest = entry.lastUsedTick;
                victim = &entry;
            }
        }
        if (victim == nullptr)
            return;     // nothing evictable; tolerate over-budget
        // Skip (and stop considering) sessions mid-execution: their
        // tick will be re-bumped when they finish anyway.
        Session &s = *victim->session;
        if (!s.state_mu_.tryLock()) {
            // Pretend it was just used so the scan moves on.
            victim->lastUsedTick = ++tick_;
            continue;
        }
        evictLocked(*victim, s);
        s.state_mu_.unlock();
    }
}

void
SessionManager::noteExecution(Session &session)
{
    MutexLock lock(mu_);
    auto it = sessions_.find(session.id());
    if (it == sessions_.end())
        return;     // raced with remove(); nothing left to account
    Entry &entry = it->second;
    int64_t bytes = 0;
    {
        MutexLock state_lock(session.state_mu_);
        bytes = session.state_.memoryBytes();
    }
    charged_.fetch_add(bytes - entry.chargedBytes,
                       std::memory_order_relaxed);
    entry.chargedBytes = bytes;
    entry.lastUsedTick = ++tick_;
    enforceBudgetLocked(&session);
}

void
SessionManager::noteCorruptionRecovery(Session &session)
{
    session.corruption_recoveries_ += 1;
    corruption_recoveries_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr)
        metrics_->corruptionRecovery();
}

bool
SessionManager::forceEvict(SessionId id)
{
    MutexLock lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return false;
    Entry &entry = it->second;
    Session &victim = *entry.session;
    MutexLock state_lock(victim.state_mu_);
    evictLocked(entry, victim);
    return true;
}

size_t
SessionManager::sessionCount() const
{
    MutexLock lock(mu_);
    return sessions_.size();
}

std::vector<std::shared_ptr<Session>>
SessionManager::sessions() const
{
    MutexLock lock(mu_);
    std::vector<std::shared_ptr<Session>> out;
    out.reserve(sessions_.size());
    for (const auto &kv : sessions_)
        out.push_back(kv.second.session);
    return out;
}

} // namespace reuse
