#include "session_manager.h"

#include <limits>

#include "analysis/model_validator.h"
#include "common/logging.h"
#include "obs/trace_recorder.h"

namespace reuse {

SessionManager::SessionManager(Config config, ServeMetrics *metrics)
    : config_(config), metrics_(metrics)
{
}

SessionManager::Admission
SessionManager::tryCreate(const ReuseEngine &engine, uint64_t seed)
{
    Admission admission;
    admission.report = validateMemoryFootprint(
        engine.network(), engine.plan(), config_.memoryBudgetBytes,
        /*emit_info=*/false);
    if (admission.report.hasErrors())
        return admission;
    admission.session =
        std::make_shared<Session>(allocateId(), engine, seed);
    std::lock_guard<std::mutex> lock(mu_);
    sessions_.emplace(admission.session->id(), admission.session);
    return admission;
}

std::shared_ptr<Session>
SessionManager::create(const ReuseEngine &engine, uint64_t seed)
{
    Admission admission = tryCreate(engine, seed);
    if (admission.session == nullptr) {
        fatal(engine.network().name() +
              ": session admission rejected\n" +
              admission.report.str());
    }
    return admission.session;
}

std::shared_ptr<Session>
SessionManager::find(SessionId id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    return it == sessions_.end() ? nullptr : it->second;
}

void
SessionManager::remove(SessionId id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return;
    charged_.fetch_sub(it->second->charged_bytes_,
                       std::memory_order_relaxed);
    sessions_.erase(it);
}

void
SessionManager::evictLocked(Session &victim)
{
    const int64_t held = victim.charged_bytes_;
    victim.state_.releaseBuffers();
    const int64_t residual = victim.state_.memoryBytes();
    obs::recordInstant(obs::SpanKind::Eviction, -1, held - residual,
                       charged_.load(std::memory_order_relaxed), 0, 0,
                       victim.id_, victim.frames_completed_);
    charged_.fetch_add(residual - victim.charged_bytes_,
                       std::memory_order_relaxed);
    victim.charged_bytes_ = residual;
    victim.evictions_ += 1;
    victim.evicted_since_last_frame_ = true;
    // The eviction legitimately mutates the state the checksum
    // covers; the next dequeue must not flag it as corruption.
    victim.checksum_valid_ = false;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr)
        metrics_->eviction();
}

void
SessionManager::enforceBudgetLocked(const Session *exclude)
{
    if (config_.memoryBudgetBytes < 0)
        return;
    while (charged_.load(std::memory_order_relaxed) >
           config_.memoryBudgetBytes) {
        Session *victim = nullptr;
        uint64_t oldest = std::numeric_limits<uint64_t>::max();
        for (auto &kv : sessions_) {
            Session *s = kv.second.get();
            if (s == exclude || s->charged_bytes_ <= 0)
                continue;
            if (s->last_used_tick_ < oldest) {
                oldest = s->last_used_tick_;
                victim = s;
            }
        }
        if (victim == nullptr)
            return;     // nothing evictable; tolerate over-budget
        // Skip (and stop considering) sessions mid-execution: their
        // tick will be re-bumped when they finish anyway.
        std::unique_lock<std::mutex> state_lock(victim->state_mu_,
                                                std::try_to_lock);
        if (!state_lock.owns_lock()) {
            // Pretend it was just used so the scan moves on.
            victim->last_used_tick_ = ++tick_;
            continue;
        }
        evictLocked(*victim);
    }
}

void
SessionManager::noteExecution(Session &session)
{
    std::lock_guard<std::mutex> lock(mu_);
    int64_t bytes = 0;
    {
        std::lock_guard<std::mutex> state_lock(session.state_mu_);
        bytes = session.state_.memoryBytes();
    }
    charged_.fetch_add(bytes - session.charged_bytes_,
                       std::memory_order_relaxed);
    session.charged_bytes_ = bytes;
    session.last_used_tick_ = ++tick_;
    enforceBudgetLocked(&session);
}

void
SessionManager::noteCorruptionRecovery(Session &session)
{
    session.corruption_recoveries_ += 1;
    corruption_recoveries_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_ != nullptr)
        metrics_->corruptionRecovery();
}

bool
SessionManager::forceEvict(SessionId id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(id);
    if (it == sessions_.end())
        return false;
    Session &victim = *it->second;
    std::lock_guard<std::mutex> state_lock(victim.state_mu_);
    evictLocked(victim);
    return true;
}

size_t
SessionManager::sessionCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sessions_.size();
}

std::vector<std::shared_ptr<Session>>
SessionManager::sessions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::shared_ptr<Session>> out;
    out.reserve(sessions_.size());
    for (const auto &kv : sessions_)
        out.push_back(kv.second);
    return out;
}

} // namespace reuse
