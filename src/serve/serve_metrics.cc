#include "serve_metrics.h"

namespace reuse {

void
ServeMetrics::reset()
{
    MutexLock lock(snapshot_mu_);
    frames_submitted_.store(0, std::memory_order_relaxed);
    frames_completed_.store(0, std::memory_order_relaxed);
    sessions_opened_.store(0, std::memory_order_relaxed);
    sessions_closed_.store(0, std::memory_order_relaxed);
    evictions_.store(0, std::memory_order_relaxed);
    frames_shed_.store(0, std::memory_order_relaxed);
    frames_dropped_.store(0, std::memory_order_relaxed);
    frames_duplicated_.store(0, std::memory_order_relaxed);
    corruption_recoveries_.store(0, std::memory_order_relaxed);
    queue_peak_.store(0, std::memory_order_relaxed);
    steals_.store(0, std::memory_order_relaxed);
    migrations_.store(0, std::memory_order_relaxed);
    for (size_t c = 0; c < kSloClassCount; ++c) {
        class_completed_[c].store(0, std::memory_order_relaxed);
        class_shed_[c].store(0, std::memory_order_relaxed);
        class_misses_[c].store(0, std::memory_order_relaxed);
        class_latency_[c].reset();
    }
    latency_.reset();
    burn_.reset();
    last_event_micros_.store(0, std::memory_order_relaxed);
}

void
ServeMetrics::publishTo(StatRegistry &registry,
                        const std::string &prefix) const
{
    // Taken against reset(): without it a publisher running while
    // reset() walks the counters reads a half-reset mix (completed
    // already zeroed, submitted not yet — a snapshot that never
    // existed).
    MutexLock lock(snapshot_mu_);
    // Counter::set() replaces the value atomically: the previous
    // reset()+add() pair could interleave with a concurrent publisher
    // and lose or double a sample.
    auto set = [&](const std::string &name, double v) {
        registry.get(prefix + "." + name).set(v);
    };
    set("frames_submitted", static_cast<double>(framesSubmitted()));
    set("frames_completed", static_cast<double>(framesCompleted()));
    set("sessions_opened", static_cast<double>(sessionsOpened()));
    set("sessions_closed", static_cast<double>(sessionsClosed()));
    set("evictions", static_cast<double>(evictions()));
    set("frames_shed", static_cast<double>(framesShed()));
    set("frames_dropped", static_cast<double>(framesDropped()));
    set("frames_duplicated", static_cast<double>(framesDuplicated()));
    set("corruption_recoveries",
        static_cast<double>(corruptionRecoveries()));
    set("queue_peak", static_cast<double>(queuePeak()));
    set("latency_mean_us", latency_.mean());
    set("latency_p50_us", latency_.percentile(0.50));
    set("latency_p95_us", latency_.percentile(0.95));
    set("latency_p99_us", latency_.percentile(0.99));
    set("steals", static_cast<double>(steals()));
    set("migrations", static_cast<double>(migrations()));
    set("deadline_misses", static_cast<double>(deadlineMisses()));
    // Cumulative histogram buckets (Prometheus le-style) so external
    // dashboards can compute arbitrary quantiles without our
    // interpolation; boundaries bracket the three SLO budgets.
    static const double kLatencyBucketsUs[] = {1'000,   10'000, 50'000,
                                               100'000, 1'000'000};
    for (double le : kLatencyBucketsUs) {
        set("latency_le_" + std::to_string(static_cast<int64_t>(le)) +
                "us",
            static_cast<double>(latency_.countAtOrBelow(le)));
    }
    set("latency_count", static_cast<double>(latency_.count()));
    // Burn windows are evaluated at the newest accounted event so the
    // numbers are deterministic under the virtual test clock.
    const int64_t now = lastEventMicros();
    for (size_t c = 0; c < kSloClassCount; ++c) {
        const SloClass slo = static_cast<SloClass>(c);
        const std::string base =
            std::string("slo.") + sloClassName(slo) + ".";
        set(base + "completed",
            static_cast<double>(classCompleted(slo)));
        set(base + "shed", static_cast<double>(classShed(slo)));
        set(base + "deadline_misses",
            static_cast<double>(classDeadlineMisses(slo)));
        set(base + "latency_p50_us",
            class_latency_[c].percentile(0.50));
        set(base + "latency_p99_us",
            class_latency_[c].percentile(0.99));
        set(base + "burn_rate_fast",
            burn_.burnRate(slo, BurnWindow::Fast, now));
        set(base + "burn_rate_slow",
            burn_.burnRate(slo, BurnWindow::Slow, now));
        set(base + "budget_consumed", burn_.budgetConsumed(slo));
    }
}

} // namespace reuse
