/**
 * @file
 * Time seam of the serving runtime.
 *
 * Every scheduler decision in src/serve (frame deadlines, EDF
 * admission, deadline-miss accounting, shed backoff hints) reads time
 * through this interface instead of calling std::chrono directly, so
 * the deterministic test harness (tests/support/virtual_clock.h) can
 * drive admission, ordering, deadline misses, stealing and eviction
 * races on a virtual clock — no wall-clock sleeps, no flaky timing
 * assertions.  tools/reuse_lint bans steady_clock tokens in src/serve
 * outside clock.{h,cc} to keep it that way.
 */

#ifndef REUSE_DNN_SERVE_CLOCK_H
#define REUSE_DNN_SERVE_CLOCK_H

#include <cstdint>

namespace reuse {

/**
 * Monotonic microsecond clock.  Implementations must be thread-safe
 * and non-decreasing; the origin is arbitrary (only differences are
 * meaningful).
 */
class Clock
{
  public:
    virtual ~Clock() = default;

    /** Monotonic timestamp in microseconds. */
    virtual int64_t nowMicros() const = 0;
};

/** Wall clock (std::chrono::steady_clock).  Stateless singleton. */
class SystemClock final : public Clock
{
  public:
    int64_t nowMicros() const override;

    /** Process-wide instance used when no clock is injected. */
    static SystemClock &instance();
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_CLOCK_H
