/**
 * @file
 * Multi-window SLO error-budget burn-rate accounting.
 *
 * Each SLO class has an error budget: the fraction of frames allowed
 * to miss their deadline (or be shed) while the SLO still holds.  The
 * burn rate over a window is
 *
 *     burn = (missed / total over the window) / budget_fraction
 *
 * so burn == 1 consumes the budget exactly at the sustainable pace,
 * and burn == 14 (the classic fast-window page threshold) exhausts a
 * 30-day budget in ~2 days.  Two windows are tracked per class — a
 * fast window that catches sharp regressions quickly and a slow
 * window that rides out blips — the standard multi-window alerting
 * pair.
 *
 * Implementation: a ring of time buckets per class (bucket width =
 * fastWindow/6; ring length covers the slow window).  Buckets are
 * claimed by epoch CAS and updated with relaxed atomics — a recorder
 * racing a reader can mis-place one frame at a bucket boundary, which
 * is metrics-grade tolerance; under the virtual test clock the
 * single-threaded sequence is exactly deterministic.  All timestamps
 * are caller-supplied serve-clock microseconds.
 */

#ifndef REUSE_DNN_SERVE_BURN_RATE_H
#define REUSE_DNN_SERVE_BURN_RATE_H

#include <atomic>
#include <cstdint>

#include "serve/slo.h"

namespace reuse {

/** Which accounting window a burn-rate query reads. */
enum class BurnWindow {
    Fast,
    Slow,
};

/** Per-class multi-window deadline-miss burn tracker. */
class SloBurnTracker
{
  public:
    struct Config {
        /** Fast alerting window (catches sharp regressions). */
        int64_t fastWindowMicros = 60'000'000;
        /** Slow alerting window (rides out blips). */
        int64_t slowWindowMicros = 600'000'000;
        /**
         * Error budget per class: allowed miss fraction.  Interactive
         * and Standard serve humans (1%); Batch tolerates more.
         */
        double budgetFraction[kSloClassCount] = {0.01, 0.01, 0.05};
    };

    SloBurnTracker() : SloBurnTracker(Config()) {}
    explicit SloBurnTracker(const Config &config);

    /**
     * Accounts one frame outcome (completion or shed) for `slo` at
     * serve-clock time `now_micros`.  `bad` = deadline missed or
     * frame shed.
     */
    void record(SloClass slo, bool bad, int64_t now_micros);

    /**
     * Burn rate of `slo` over `window` ending at `now_micros`; 0 when
     * the window saw no frames.
     */
    double burnRate(SloClass slo, BurnWindow window,
                    int64_t now_micros) const;

    /** Windowed miss fraction (numerator of the burn rate). */
    double missFraction(SloClass slo, BurnWindow window,
                        int64_t now_micros) const;

    /**
     * Cumulative budget consumption since the last reset: bad/total
     * over all recorded frames divided by the budget fraction (1.0 =
     * the whole budget is gone if the recording period were the SLO
     * period).
     */
    double budgetConsumed(SloClass slo) const;

    /** Frames recorded for `slo` since the last reset. */
    uint64_t totalFrames(SloClass slo) const;

    /** Bad (missed/shed) frames recorded since the last reset. */
    uint64_t badFrames(SloClass slo) const;

    const Config &config() const { return config_; }

    /** Zeroes all windows and cumulative counters. */
    void reset();

  private:
    /** One time bucket of outcomes, claimed by epoch CAS. */
    struct Bucket {
        std::atomic<int64_t> epoch{-1};
        std::atomic<uint64_t> total{0};
        std::atomic<uint64_t> bad{0};
    };

    /** Ring length covering the slow window. */
    static constexpr size_t kMaxBuckets = 64;

    void sumWindow(SloClass slo, int64_t window_micros,
                   int64_t now_micros, uint64_t *total,
                   uint64_t *bad) const;

    Config config_;
    int64_t bucket_micros_;
    size_t buckets_;
    Bucket rings_[kSloClassCount][kMaxBuckets];
    std::atomic<uint64_t> cum_total_[kSloClassCount];
    std::atomic<uint64_t> cum_bad_[kSloClassCount];
};

} // namespace reuse

#endif // REUSE_DNN_SERVE_BURN_RATE_H
