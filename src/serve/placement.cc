#include "placement.h"

#include <limits>

#include "common/logging.h"

namespace reuse {

ShardPlacer::ShardPlacer(size_t shards)
    : shards_(shards == 0 ? 1 : shards),
      recent_signature_(shards == 0 ? 1 : shards)
{
}

int
ShardPlacer::hammingDistance(uint64_t a, uint64_t b)
{
    uint64_t x = a ^ b;
    int bits = 0;
    while (x != 0) {
        x &= x - 1;
        ++bits;
    }
    return bits;
}

uint64_t
ShardPlacer::inputSketch(const Tensor &t)
{
    const int64_t n = t.numel();
    if (n <= 0)
        return 1;
    uint64_t sketch = 0;
    const int64_t samples = n < 64 ? n : 64;
    for (int64_t i = 0; i < samples; ++i) {
        const int64_t idx = i * n / samples;
        if (t[idx] > 0.0f)
            sketch |= uint64_t(1) << (i % 64);
    }
    return sketch | 1;
}

size_t
ShardPlacer::place(uint64_t plan_fingerprint, uint64_t signature_hint)
{
    MutexLock lock(mu_);
    int64_t best_score = std::numeric_limits<int64_t>::min();
    size_t best = 0;
    for (size_t i = 0; i < shards_.size(); ++i) {
        const ShardInfo &info = shards_[i];
        int64_t score = 0;
        // Plan co-residency dominates: the shard's cores already hold
        // this model's weights and schedule.
        const auto it = info.planSessions.find(plan_fingerprint);
        if (it != info.planSessions.end() && it->second > 0)
            score += 4096;
        // Recent-input similarity: up to 512 points for a bit-exact
        // sketch match, fading with Hamming distance.
        const uint64_t sig =
            recent_signature_[i].load(std::memory_order_relaxed);
        if (signature_hint != 0 && sig != 0)
            score += (64 - hammingDistance(signature_hint, sig)) * 8;
        // Load tiebreak: fewer resident sessions wins.
        score -= static_cast<int64_t>(info.sessions);
        if (score > best_score) {
            best_score = score;
            best = i;
        }
    }
    ShardInfo &chosen = shards_[best];
    chosen.planSessions[plan_fingerprint] += 1;
    chosen.sessions += 1;
    return best;
}

void
ShardPlacer::sessionClosed(size_t shard, uint64_t plan_fingerprint)
{
    MutexLock lock(mu_);
    REUSE_ASSERT(shard < shards_.size(), "shard out of range");
    ShardInfo &info = shards_[shard];
    auto it = info.planSessions.find(plan_fingerprint);
    if (it != info.planSessions.end() && it->second > 0) {
        if (--it->second == 0)
            info.planSessions.erase(it);
    }
    if (info.sessions > 0)
        --info.sessions;
}

void
ShardPlacer::sessionMoved(size_t from, size_t to,
                          uint64_t plan_fingerprint)
{
    MutexLock lock(mu_);
    REUSE_ASSERT(from < shards_.size() && to < shards_.size(),
                 "shard out of range");
    ShardInfo &src = shards_[from];
    auto it = src.planSessions.find(plan_fingerprint);
    if (it != src.planSessions.end() && it->second > 0) {
        if (--it->second == 0)
            src.planSessions.erase(it);
    }
    if (src.sessions > 0)
        --src.sessions;
    ShardInfo &dst = shards_[to];
    dst.planSessions[plan_fingerprint] += 1;
    dst.sessions += 1;
}

size_t
ShardPlacer::sessionCount(size_t shard) const
{
    MutexLock lock(mu_);
    REUSE_ASSERT(shard < shards_.size(), "shard out of range");
    return shards_[shard].sessions;
}

} // namespace reuse
