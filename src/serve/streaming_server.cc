#include "streaming_server.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "fault/fault_injector.h"
#include "ir/plan_cache.h"
#include "obs/trace_recorder.h"

namespace reuse {

namespace {

double
elapsedMicros(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

StreamingServer::StreamingServer(const ReuseEngine &engine, Config config)
    : StreamingServer({{std::string("default"), &engine}}, config)
{
}

StreamingServer::StreamingServer(
    const std::vector<std::pair<std::string, const ReuseEngine *>> &zoo,
    Config config)
    : config_(config),
      manager_(SessionManager::Config{config.memoryBudgetBytes},
               &metrics_),
      queue_(config.queueCapacity)
{
    REUSE_ASSERT(!zoo.empty(), "server needs at least one model");
    for (const auto &[name, engine] : zoo) {
        REUSE_ASSERT(engine != nullptr, "null engine for " << name);
        REUSE_ASSERT(!engine->network().isRecurrent(),
                     "serving executes per-frame; recurrent model "
                         << name << " is not servable");
        const bool inserted = zoo_.emplace(name, engine).second;
        REUSE_ASSERT(inserted, "duplicate model name " << name);
    }
    start(config.workerThreads == 0 ? 1 : config.workerThreads);
}

StreamingServer::~StreamingServer()
{
    stop();
}

void
StreamingServer::start(size_t worker_threads)
{
    workers_.reserve(worker_threads);
    for (size_t i = 0; i < worker_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
StreamingServer::stop()
{
    if (stopped_.exchange(true))
        return;
    queue_.close();
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
}

SessionId
StreamingServer::openSession(const std::string &model, uint64_t seed)
{
    auto it = zoo_.find(model);
    REUSE_ASSERT(it != zoo_.end(), "unknown model " << model);
    REUSE_ASSERT(!stopped_.load(), "server is stopped");
    SessionManager::Admission admission =
        manager_.tryCreate(*it->second, seed);
    if (admission.session == nullptr) {
        warn(model + ": session admission rejected\n" +
             admission.report.str());
        return kInvalidSessionId;
    }
    metrics_.sessionOpened();
    return admission.session->id();
}

std::future<Tensor>
StreamingServer::submitFrame(SessionId id, Tensor input)
{
    REUSE_ASSERT(!stopped_.load(), "server is stopped");
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);

    FrameRequest req;
    req.input = std::move(input);
    req.enqueued = std::chrono::steady_clock::now();
    std::future<Tensor> future = req.result.get_future();

    bool need_enqueue = false;
    uint64_t frame_index = 0;
    {
        MutexLock lock(session->queue_mu_);
        REUSE_ASSERT(!session->closing_,
                     "session " << id << " is closing");
        frame_index = session->next_frame_index_++;
        req.frameIndex = frame_index;
        session->pending_.push_back(std::move(req));
        if (!session->inflight_) {
            session->inflight_ = true;
            need_enqueue = true;
        }
    }
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    metrics_.frameSubmitted();
    const size_t depth = queue_.size() + 1;
    metrics_.observeQueueDepth(depth);
    queue_depth_window_.observe(static_cast<double>(depth));
    obs::TraceRecorder &tracer = obs::TraceRecorder::instance();
    if (tracer.enabled() && tracer.sampleEventTick()) {
        obs::recordInstant(obs::SpanKind::FrameSubmit, -1,
                           static_cast<int64_t>(depth),
                           static_cast<int64_t>(
                               outstanding_.load(
                                   std::memory_order_relaxed)),
                           0, 0, id, frame_index);
    }

    if (need_enqueue && !queue_.push(session)) {
        // Server stopped between the checks; the pending request's
        // promise will be broken when the session is destroyed.
        MutexLock lock(session->queue_mu_);
        session->inflight_ = false;
    }
    return future;
}

StreamingServer::SubmitOutcome
StreamingServer::trySubmitFrame(SessionId id, Tensor input)
{
    REUSE_ASSERT(!stopped_.load(), "server is stopped");
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);

    SubmitOutcome outcome;
    // Backoff hint: the rough end-to-end cost of one queued frame at
    // the current service rate (floor of 1ms before any completion).
    const double mean_us = metrics_.latency().mean();
    outcome.retryAfterMicros =
        mean_us > 0.0 ? static_cast<int64_t>(mean_us) : 1000;

    FrameRequest req;
    req.input = std::move(input);
    req.enqueued = std::chrono::steady_clock::now();
    std::future<Tensor> future = req.result.get_future();

    {
        MutexLock lock(session->queue_mu_);
        REUSE_ASSERT(!session->closing_,
                     "session " << id << " is closing");
        if (config_.maxPendingPerSession > 0 &&
            session->pending_.size() >= config_.maxPendingPerSession) {
            outcome.status = SubmitOutcome::Status::Shed;
            metrics_.frameShed();
            obs::recordInstant(
                obs::SpanKind::FrameShed, -1,
                static_cast<int64_t>(session->pending_.size()),
                outcome.retryAfterMicros, 0, 0, id, 0);
            return outcome;
        }
        // Reserve the run-queue slot before publishing the frame; a
        // worker popping the session blocks on queue_mu_ until the
        // frame is in pending_, so it never sees an empty queue.
        if (!session->inflight_ && !queue_.tryPush(session)) {
            outcome.status = SubmitOutcome::Status::Shed;
            metrics_.frameShed();
            obs::recordInstant(
                obs::SpanKind::FrameShed, -1,
                static_cast<int64_t>(session->pending_.size()),
                outcome.retryAfterMicros, 0, 0, id, 0);
            return outcome;
        }
        req.frameIndex = session->next_frame_index_++;
        session->pending_.push_back(std::move(req));
        session->inflight_ = true;
    }
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    metrics_.frameSubmitted();
    const size_t depth = queue_.size();
    metrics_.observeQueueDepth(depth);
    queue_depth_window_.observe(static_cast<double>(depth));
    outcome.result = std::move(future);
    return outcome;
}

bool
StreamingServer::debugCorruptSessionState(SessionId id, uint64_t seed)
{
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);
    MutexLock lock(session->state_mu_);
    return session->state_.debugCorruptBuffer(seed);
}

Tensor
StreamingServer::executeFrame(Session &session, FrameRequest &req)
{
    // Frame-delivery faults are decided outside the state lock: they
    // model the transport, not the execution.
    bool dropped = false;
    bool duplicated = false;
    if (fault::frameFaultsArmed()) {
        dropped = fault::shouldDropFrame();
        if (!dropped)
            duplicated = fault::shouldDuplicateFrame();
    }

    // Outermost trace scope on this worker: decides whether the frame
    // is sampled and stamps every nested span (engine, kernels) with
    // the session/frame identifiers.
    obs::FrameTraceScope frame_scope(session.id(), req.frameIndex);
    if (frame_scope.active()) {
        obs::TraceRecorder &tracer = obs::TraceRecorder::instance();
        obs::recordSpanAt(obs::SpanKind::QueueWait,
                          tracer.toNs(req.enqueued), tracer.nowNs(),
                          session.id(), req.frameIndex);
    }

    Tensor output;
    ExecutionTrace trace;
    {
        MutexLock lock(session.state_mu_);
        if (dropped && session.has_last_output_) {
            // Stale-prediction delivery: answer with the previous
            // frame's output and leave the reuse state untouched, so
            // the stream continues exactly as if the frame never
            // arrived.
            output = session.last_output_;
            session.dropped_frames_ += 1;
            metrics_.frameDropped();
        } else {
            if (config_.validateState && session.checksum_valid_ &&
                session.state_.checksum() != session.state_checksum_) {
                // State corrupted between frames: degrade this frame
                // to a from-scratch execution and re-warm, instead of
                // silently poisoning every subsequent frame.
                session.state_.reset();
                session.cold_frames_.push_back(req.frameIndex);
                session.evicted_since_last_frame_ = false;
                manager_.noteCorruptionRecovery(session);
                obs::recordInstant(obs::SpanKind::CorruptionRecovery,
                                   -1, 0, 0, 0, 0, session.id(),
                                   req.frameIndex);
            }
            if (session.evicted_since_last_frame_) {
                session.cold_frames_.push_back(req.frameIndex);
                session.evicted_since_last_frame_ = false;
            }
            output = session.engine().execute(session.state_,
                                              req.input, trace);
            session.stats_.addTrace(trace);
            if (duplicated) {
                // At-least-once delivery: the frame executes again
                // against the updated state.
                output = session.engine().execute(session.state_,
                                                  req.input, trace);
                session.stats_.addTrace(trace);
                session.duplicated_frames_ += 1;
                metrics_.frameDuplicated();
            }
            session.last_output_ = output;
            session.has_last_output_ = true;
            if (config_.validateState) {
                session.state_checksum_ = session.state_.checksum();
                session.checksum_valid_ = true;
            }
        }
        session.frames_completed_ += 1;
    }
    return output;
}

void
StreamingServer::workerLoop()
{
    std::shared_ptr<Session> session;
    while (queue_.pop(session)) {
        FrameRequest req;
        {
            MutexLock lock(session->queue_mu_);
            REUSE_ASSERT(!session->pending_.empty(),
                         "scheduled session has no pending frame");
            req = std::move(session->pending_.front());
            session->pending_.pop_front();
        }

        Tensor output = executeFrame(*session, req);
        manager_.noteExecution(*session);

        req.result.set_value(std::move(output));
        metrics_.frameCompleted(elapsedMicros(req.enqueued));

        bool more = false;
        {
            MutexLock lock(session->queue_mu_);
            more = !session->pending_.empty();
            if (!more)
                session->inflight_ = false;
        }
        if (more)
            queue_.push(session);

        outstanding_.fetch_sub(1, std::memory_order_relaxed);
        {
            MutexLock lock(drain_mu_);
        }
        drain_cv_.notifyAll();
        session.reset();
    }
}

void
StreamingServer::drain()
{
    MutexLock lock(drain_mu_);
    while (outstanding_.load(std::memory_order_relaxed) != 0)
        drain_cv_.wait(lock);
}

void
StreamingServer::closeSession(SessionId id)
{
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);
    {
        MutexLock lock(session->queue_mu_);
        session->closing_ = true;
    }
    // Wait for this session's pending frames to finish.
    {
        MutexLock lock(drain_mu_);
        for (;;) {
            {
                MutexLock qlock(session->queue_mu_);
                if (session->pending_.empty() && !session->inflight_)
                    break;
            }
            drain_cv_.wait(lock);
        }
    }
    manager_.remove(id);
    metrics_.sessionClosed();
}

Session::Snapshot
StreamingServer::sessionSnapshot(SessionId id) const
{
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);
    return session->snapshot();
}

void
StreamingServer::publishStats(StatRegistry &registry) const
{
    metrics_.publishTo(registry);
    auto set = [&](const std::string &name, double v) {
        registry.get(name).set(v);
    };
    set("serve.sessions_live",
        static_cast<double>(manager_.sessionCount()));
    set("serve.state_bytes",
        static_cast<double>(manager_.chargedBytes()));
    set("serve.queue_depth", static_cast<double>(queue_.size()));
    // Queue-depth distribution over the recent submit window (the
    // all-time peak alone hides steady-state congestion).
    set("serve.queue_depth_p50", queue_depth_window_.quantile(0.50));
    set("serve.queue_depth_p95", queue_depth_window_.quantile(0.95));
    set("serve.queue_depth_p99", queue_depth_window_.quantile(0.99));
    set("serve.queue_depth_max", queue_depth_window_.max());
    // Process-wide compiled-plan cache: hits/misses tell whether
    // models served in this process share schedules (multi-model
    // serving recompiling per session would show up as misses).
    const ir::PlanCache::Stats plan_stats =
        ir::PlanCache::instance().stats();
    set("serve.plan_cache.size", static_cast<double>(plan_stats.size));
    set("serve.plan_cache.hits", static_cast<double>(plan_stats.hits));
    set("serve.plan_cache.misses",
        static_cast<double>(plan_stats.misses));

    // Per-layer reuse health, aggregated across every live session of
    // each model.  Gauge names end in the EWMA-tracked suffixes the
    // MetricsExporter smooths over scrapes.
    std::map<std::string, std::vector<LayerReuseStats>> per_model;
    for (const auto &session : manager_.sessions()) {
        const std::vector<LayerReuseStats> layers =
            session->layerStats();
        std::vector<LayerReuseStats> &agg =
            per_model[session->engine().network().name()];
        if (agg.size() < layers.size())
            agg.resize(layers.size());
        for (size_t i = 0; i < layers.size(); ++i) {
            const LayerReuseStats &l = layers[i];
            LayerReuseStats &a = agg[i];
            a.layerName = l.layerName;
            a.kind = l.kind;
            a.reuseEnabled = a.reuseEnabled || l.reuseEnabled;
            a.executions += l.executions;
            a.firstExecutions += l.firstExecutions;
            a.driftRefreshes += l.driftRefreshes;
            a.inputsChecked += l.inputsChecked;
            a.inputsChanged += l.inputsChanged;
            a.inputsNearMatched += l.inputsNearMatched;
            a.macsFull += l.macsFull;
            a.macsPerformed += l.macsPerformed;
            a.macsFullAll += l.macsFullAll;
            a.macsPerformedAll += l.macsPerformedAll;
        }
    }
    for (const auto &[model, layers] : per_model) {
        double sim_sum = 0.0;
        double reuse_sum = 0.0;
        double near_sum = 0.0;
        int64_t enabled = 0;
        int64_t refreshes = 0;
        int64_t executions = 0;
        for (size_t i = 0; i < layers.size(); ++i) {
            const LayerReuseStats &l = layers[i];
            executions += l.executions + l.firstExecutions;
            refreshes += l.driftRefreshes;
            if (!l.reuseEnabled)
                continue;
            ++enabled;
            sim_sum += l.similarity();
            reuse_sum += l.computationReuse();
            near_sum += l.nearMatchRate();
            const std::string base = "serve.model." + model +
                                     ".layer" + std::to_string(i) +
                                     ".";
            set(base + "similarity", l.similarity());
            set(base + "reuse", l.computationReuse());
            set(base + "near_match", l.nearMatchRate());
            set(base + "occupancy",
                l.inputsChecked == 0
                    ? 0.0
                    : static_cast<double>(l.inputsChanged) /
                          static_cast<double>(l.inputsChecked));
        }
        const std::string base = "serve.model." + model + ".";
        set(base + "similarity",
            enabled == 0 ? 0.0
                         : sim_sum / static_cast<double>(enabled));
        set(base + "reuse",
            enabled == 0 ? 0.0
                         : reuse_sum / static_cast<double>(enabled));
        set(base + "near_match",
            enabled == 0 ? 0.0
                         : near_sum / static_cast<double>(enabled));
        set(base + "drift_refresh_rate",
            executions == 0 ? 0.0
                            : static_cast<double>(refreshes) /
                                  static_cast<double>(executions));
    }
}

} // namespace reuse
