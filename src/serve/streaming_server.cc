#include "streaming_server.h"

#include "common/logging.h"

namespace reuse {

namespace {

double
elapsedMicros(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

StreamingServer::StreamingServer(const ReuseEngine &engine, Config config)
    : StreamingServer({{std::string("default"), &engine}}, config)
{
}

StreamingServer::StreamingServer(
    const std::vector<std::pair<std::string, const ReuseEngine *>> &zoo,
    Config config)
    : manager_(SessionManager::Config{config.memoryBudgetBytes},
               &metrics_),
      queue_(config.queueCapacity)
{
    REUSE_ASSERT(!zoo.empty(), "server needs at least one model");
    for (const auto &[name, engine] : zoo) {
        REUSE_ASSERT(engine != nullptr, "null engine for " << name);
        REUSE_ASSERT(!engine->network().isRecurrent(),
                     "serving executes per-frame; recurrent model "
                         << name << " is not servable");
        const bool inserted = zoo_.emplace(name, engine).second;
        REUSE_ASSERT(inserted, "duplicate model name " << name);
    }
    start(config.workerThreads == 0 ? 1 : config.workerThreads);
}

StreamingServer::~StreamingServer()
{
    stop();
}

void
StreamingServer::start(size_t worker_threads)
{
    workers_.reserve(worker_threads);
    for (size_t i = 0; i < worker_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

void
StreamingServer::stop()
{
    if (stopped_.exchange(true))
        return;
    queue_.close();
    for (auto &w : workers_) {
        if (w.joinable())
            w.join();
    }
}

SessionId
StreamingServer::openSession(const std::string &model, uint64_t seed)
{
    auto it = zoo_.find(model);
    REUSE_ASSERT(it != zoo_.end(), "unknown model " << model);
    REUSE_ASSERT(!stopped_.load(), "server is stopped");
    SessionManager::Admission admission =
        manager_.tryCreate(*it->second, seed);
    if (admission.session == nullptr) {
        warn(model + ": session admission rejected\n" +
             admission.report.str());
        return kInvalidSessionId;
    }
    metrics_.sessionOpened();
    return admission.session->id();
}

std::future<Tensor>
StreamingServer::submitFrame(SessionId id, Tensor input)
{
    REUSE_ASSERT(!stopped_.load(), "server is stopped");
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);

    FrameRequest req;
    req.input = std::move(input);
    req.enqueued = std::chrono::steady_clock::now();
    std::future<Tensor> future = req.result.get_future();

    bool need_enqueue = false;
    {
        std::lock_guard<std::mutex> lock(session->queue_mu_);
        REUSE_ASSERT(!session->closing_,
                     "session " << id << " is closing");
        req.frameIndex = session->next_frame_index_++;
        session->pending_.push_back(std::move(req));
        if (!session->inflight_) {
            session->inflight_ = true;
            need_enqueue = true;
        }
    }
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    metrics_.frameSubmitted();
    metrics_.observeQueueDepth(queue_.size() + 1);

    if (need_enqueue && !queue_.push(session)) {
        // Server stopped between the checks; the pending request's
        // promise will be broken when the session is destroyed.
        std::lock_guard<std::mutex> lock(session->queue_mu_);
        session->inflight_ = false;
    }
    return future;
}

void
StreamingServer::workerLoop()
{
    std::shared_ptr<Session> session;
    while (queue_.pop(session)) {
        FrameRequest req;
        {
            std::lock_guard<std::mutex> lock(session->queue_mu_);
            REUSE_ASSERT(!session->pending_.empty(),
                         "scheduled session has no pending frame");
            req = std::move(session->pending_.front());
            session->pending_.pop_front();
        }

        Tensor output;
        ExecutionTrace trace;
        {
            std::lock_guard<std::mutex> lock(session->state_mu_);
            if (session->evicted_since_last_frame_) {
                session->cold_frames_.push_back(req.frameIndex);
                session->evicted_since_last_frame_ = false;
            }
            output = session->engine().execute(session->state_,
                                               req.input, trace);
            session->stats_.addTrace(trace);
            session->frames_completed_ += 1;
        }
        manager_.noteExecution(*session);

        req.result.set_value(std::move(output));
        metrics_.frameCompleted(elapsedMicros(req.enqueued));

        bool more = false;
        {
            std::lock_guard<std::mutex> lock(session->queue_mu_);
            more = !session->pending_.empty();
            if (!more)
                session->inflight_ = false;
        }
        if (more)
            queue_.push(session);

        outstanding_.fetch_sub(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(drain_mu_);
        }
        drain_cv_.notify_all();
        session.reset();
    }
}

void
StreamingServer::drain()
{
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait(lock, [&] {
        return outstanding_.load(std::memory_order_relaxed) == 0;
    });
}

void
StreamingServer::closeSession(SessionId id)
{
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);
    {
        std::lock_guard<std::mutex> lock(session->queue_mu_);
        session->closing_ = true;
    }
    // Wait for this session's pending frames to finish.
    {
        std::unique_lock<std::mutex> lock(drain_mu_);
        drain_cv_.wait(lock, [&] {
            std::lock_guard<std::mutex> qlock(session->queue_mu_);
            return session->pending_.empty() && !session->inflight_;
        });
    }
    manager_.remove(id);
    metrics_.sessionClosed();
}

Session::Snapshot
StreamingServer::sessionSnapshot(SessionId id) const
{
    std::shared_ptr<Session> session = manager_.find(id);
    REUSE_ASSERT(session != nullptr, "unknown session " << id);
    return session->snapshot();
}

void
StreamingServer::publishStats(StatRegistry &registry) const
{
    metrics_.publishTo(registry);
    auto set = [&](const std::string &name, double v) {
        Counter &c = registry.get(name);
        c.reset();
        c.add(v);
    };
    set("serve.sessions_live",
        static_cast<double>(manager_.sessionCount()));
    set("serve.state_bytes",
        static_cast<double>(manager_.chargedBytes()));
    set("serve.queue_depth", static_cast<double>(queue_.size()));
}

} // namespace reuse
